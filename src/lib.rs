//! # dbvirt — database virtualization design
//!
//! A full implementation of the system described in Soror, Aboulnaga,
//! Salem: *Database Virtualization: A New Frontier for Database Tuning and
//! Physical Design* (ICDE 2007), including every substrate it runs on:
//!
//! * [`vmm`] — a deterministic virtual-machine-monitor simulator (resource
//!   shares, credit scheduling, demand→time conversion);
//! * [`storage`] — slotted pages, heap files, a clock-sweep buffer pool,
//!   B+tree indexes, `ANALYZE` statistics;
//! * [`engine`] — a volcano-style relational executor that meters its
//!   physical work;
//! * [`optimizer`] — a PostgreSQL-style cost-based optimizer with the
//!   paper's **virtualization-aware what-if mode**;
//! * [`calibrate`] — the experimental calibration of the optimizer's
//!   environment parameters `P(R)`;
//! * [`tpch`] — a TPC-H-like data generator and query suite;
//! * [`core`] — the paper's contribution: the **virtualization design
//!   problem** and its solution (calibrated cost model + allocation
//!   search);
//! * [`sql`] — a SQL front-end (lexer/parser/binder) so workloads can be
//!   written as the paper writes them: "a sequence of SQL statements";
//! * [`fleet`] — datacenter-scale placement: `N` VMs across `M`
//!   heterogeneous machines (greedy bin-pack → local search → LP
//!   optimality bound), served from a shared warm what-if cache;
//! * [`design`] — a physical-design advisor that chooses secondary
//!   indexes *jointly* with resource shares: alternating co-optimization
//!   with CoPhy-style what-if pricing and an LP-certified optimality gap.
//!
//! ## Quickstart
//!
//! ```
//! use dbvirt::core::{DesignProblem, SearchAlgorithm, VirtualizationAdvisor, WorkloadSpec};
//! use dbvirt::tpch::{TpchConfig, TpchDb, TpchQuery, Workload};
//! use dbvirt::vmm::MachineSpec;
//!
//! // A machine, two database workloads, one consolidation question.
//! let machine = MachineSpec::paper_testbed();
//! let t = TpchDb::generate(TpchConfig::tiny()).unwrap();
//! let w1 = Workload::compose(&t, &[(TpchQuery::Q4, 1)]);
//! let w2 = Workload::compose(&t, &[(TpchQuery::Q13, 3)]);
//! let problem = DesignProblem::new(
//!     machine,
//!     vec![
//!         WorkloadSpec::new(w1.name.clone(), &t.db, w1.queries.clone()),
//!         WorkloadSpec::new(w2.name.clone(), &t.db, w2.queries.clone()),
//!     ],
//! )
//! .unwrap();
//!
//! // Calibrate once per machine, then ask for an allocation.
//! let advisor = VirtualizationAdvisor::calibrate(machine, 2, 4).unwrap();
//! let rec = advisor
//!     .recommend(&problem, SearchAlgorithm::DynamicProgramming)
//!     .unwrap();
//! assert_eq!(rec.allocation.num_workloads(), 2);
//! assert!(rec.total_cost > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dbvirt_calibrate as calibrate;
pub use dbvirt_core as core;
pub use dbvirt_design as design;
pub use dbvirt_engine as engine;
pub use dbvirt_fleet as fleet;
pub use dbvirt_optimizer as optimizer;
pub use dbvirt_sql as sql;
pub use dbvirt_storage as storage;
pub use dbvirt_tpch as tpch;
pub use dbvirt_vmm as vmm;
