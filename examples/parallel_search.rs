//! Parallel what-if evaluation: same recommendation, less wall clock.
//!
//! ```sh
//! cargo run --release --example parallel_search
//! ```
//!
//! The allocation search's cost is dominated by what-if evaluations
//! (each cell re-optimizes a workload under the interpolated `P(R)`).
//! `SearchConfig::parallelism` spreads those evaluations over worker
//! threads; the recommendation — allocation, costs, and even the
//! evaluation count — is bit-identical at every setting, so parallelism
//! is purely a wall-clock knob. This example runs the DP search at
//! several worker counts and checks the identity as it goes.

use dbvirt::core::search::run_search;
use dbvirt::core::{
    CalibratedCostModel, DesignProblem, SearchAlgorithm, VirtualizationAdvisor, WorkloadSpec,
};
use dbvirt::tpch::{TpchConfig, TpchDb, TpchQuery, Workload};
use dbvirt::vmm::MachineSpec;

fn main() {
    let machine = MachineSpec::paper_testbed();
    println!("Generating a small TPC-H database ...");
    let t = TpchDb::generate(TpchConfig::tiny()).expect("tpch generation");
    let w1 = Workload::compose(&t, &[(TpchQuery::Q4, 2)]);
    let w2 = Workload::compose(&t, &[(TpchQuery::Q13, 6)]);
    let problem = DesignProblem::new(
        machine,
        vec![
            WorkloadSpec::new(w1.name.clone(), &t.db, w1.queries.clone()),
            WorkloadSpec::new(w2.name.clone(), &t.db, w2.queries.clone()),
        ],
    )
    .expect("problem");

    println!("Calibrating the optimizer (once per machine) ...");
    let advisor = VirtualizationAdvisor::calibrate(machine, 2, 8).expect("calibration");
    let model = CalibratedCostModel::new(advisor.grid());

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\nDP search at several evaluation-worker counts ({cores} core(s) available):");
    let mut reference: Option<dbvirt::core::Recommendation> = None;
    for workers in [1usize, 2, 4, 0] {
        let config = advisor.config().with_parallelism(workers);
        let t0 = std::time::Instant::now();
        let rec = run_search(SearchAlgorithm::DynamicProgramming, &problem, &model, config)
            .expect("search");
        let elapsed = t0.elapsed().as_secs_f64();
        let label = if workers == 0 {
            format!("auto ({})", config.effective_parallelism())
        } else {
            workers.to_string()
        };
        match &reference {
            None => reference = Some(rec.clone()),
            Some(first) => {
                assert_eq!(first.objective.to_bits(), rec.objective.to_bits());
                assert_eq!(first.evaluations, rec.evaluations);
                assert_eq!(first.allocation.to_string(), rec.allocation.to_string());
            }
        }
        println!(
            "  workers {label:>8}: {elapsed:.4}s, objective {:.4}s, {} evaluations",
            rec.objective, rec.evaluations
        );
    }
    let rec = reference.expect("at least one run");
    println!(
        "\nEvery worker count returned the identical recommendation:\n{}",
        rec.allocation
    );
    println!(
        "On a multi-core machine the evaluation phase scales with the worker \
         count; on one core the knob is a no-op — never a correctness trade."
    );
}
