//! Dynamic retuning: reconfigure VM allocations when the workload shifts.
//!
//! ```sh
//! cargo run --release --example dynamic_retuning
//! ```
//!
//! The paper's static virtualization design problem has a natural dynamic
//! extension (its Section 7): when the workload mix changes — say, an
//! end-of-month reporting burst lands on one tenant — re-run the advisor
//! and move resources. This example shows the controller handling such a
//! burst, including the hysteresis that keeps it from flip-flopping on
//! marginal gains.

use dbvirt::core::dynamic::{run_dynamic, DynamicTimeline, ReconfigPolicy};
use dbvirt::core::{
    CalibratedCostModel, DesignProblem, SearchConfig, VirtualizationAdvisor, WorkloadSpec,
};
use dbvirt::tpch::{TpchConfig, TpchDb, TpchQuery, Workload};
use dbvirt::vmm::MachineSpec;

fn main() {
    let machine = MachineSpec {
        memory_bytes: 32 * 1024 * 1024,
        disk_seq_bytes_per_sec: 25.0 * 1024.0 * 1024.0,
        disk_random_iops: 100.0,
        ..MachineSpec::paper_testbed()
    };
    println!("Generating TPC-H and calibrating the advisor ...");
    let t = TpchDb::generate(TpchConfig::experiment()).expect("generation");
    let advisor = VirtualizationAdvisor::calibrate(machine, 2, 8).expect("calibration");
    let model = CalibratedCostModel::new(advisor.grid());

    // Tenant A runs a steady mixed load; tenant B is usually light but
    // has a monthly reporting burst.
    let steady_a = Workload::compose(&t, &[(TpchQuery::Q3, 1), (TpchQuery::Q6, 2)]);
    let light_b = Workload::compose(&t, &[(TpchQuery::Q6, 1)]);
    let burst_b = Workload::compose(&t, &[(TpchQuery::Q13, 10), (TpchQuery::Q1, 1)]);

    let phase = |b: &Workload| {
        DesignProblem::new(
            machine,
            vec![
                WorkloadSpec::new(steady_a.name.clone(), &t.db, steady_a.queries.clone()),
                WorkloadSpec::new(b.name.clone(), &t.db, b.queries.clone()),
            ],
        )
        .expect("phase")
    };
    let timeline = DynamicTimeline::new(vec![
        phase(&light_b),
        phase(&light_b),
        phase(&burst_b), // the monthly burst arrives
        phase(&burst_b),
        phase(&light_b), // and subsides
    ])
    .expect("timeline");

    let policy = ReconfigPolicy {
        switch_overhead_seconds: 0.05,
        min_relative_gain: 0.05,
        ..ReconfigPolicy::new(SearchConfig::for_workloads(8, 2))
    };
    let out = run_dynamic(&timeline, &model, policy).expect("controller run");

    println!("\nphase  tenant-B mix   cpu split   reconfigured  phase cost");
    for (i, p) in out.phases.iter().enumerate() {
        let mix = if (2..4).contains(&i) {
            "burst"
        } else {
            "light"
        };
        println!(
            "{:>5}  {:<12} {:>4.0}% / {:>3.0}%  {:^12}  {:>8.3}s",
            i,
            mix,
            p.allocation.row(0).cpu().percent(),
            p.allocation.row(1).cpu().percent(),
            if p.reconfigured { "yes" } else { "-" },
            p.cost,
        );
    }
    println!(
        "\nDynamic total {:.3}s with {} reconfigurations; holding the equal split would cost \
         {:.3}s, holding the initial optimum {:.3}s.",
        out.total_cost, out.reconfigurations, out.static_equal_cost, out.static_first_phase_cost
    );
}
