//! SQL workbench: write workloads as SQL, execute them, and price them
//! under different virtual-machine allocations.
//!
//! ```sh
//! cargo run --release --example sql_workbench
//! ```
//!
//! The paper defines a workload as "a sequence of SQL statements against a
//! separate database". This example does exactly that: a handful of SQL
//! queries over the generated TPC-H data, run through the full pipeline
//! (parse → bind → optimize → execute), then priced by the calibrated
//! what-if model at two candidate allocations.

use dbvirt::calibrate::calibrate;
use dbvirt::engine::{run_plan, CpuCosts};
use dbvirt::optimizer::{plan_query, whatif, OptimizerParams};
use dbvirt::sql::parse_query;
use dbvirt::storage::BufferPool;
use dbvirt::tpch::{TpchConfig, TpchDb};
use dbvirt::vmm::{MachineSpec, ResourceVector};

const QUERIES: &[(&str, &str)] = &[
    (
        "urgent order count",
        "SELECT o_orderpriority, COUNT(*) AS n FROM orders \
         WHERE o_orderdate >= DATE '1995-01-01' AND o_orderdate < DATE '1996-01-01' \
         GROUP BY o_orderpriority ORDER BY o_orderpriority",
    ),
    (
        "revenue by returnflag",
        "SELECT l_returnflag, SUM(l_extendedprice * (1 - l_discount)) AS revenue, \
                AVG(l_quantity) AS avg_qty \
         FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' \
         GROUP BY l_returnflag ORDER BY revenue DESC",
    ),
    (
        "top customers by order count",
        "SELECT c.c_name, COUNT(*) AS orders \
         FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey \
         WHERE o.o_comment NOT LIKE '%special%requests%' \
         GROUP BY c.c_name ORDER BY orders DESC, c_name LIMIT 5",
    ),
];

fn main() {
    println!("Generating TPC-H ...");
    let mut t = TpchDb::generate(TpchConfig::tiny()).expect("generation");
    let machine = MachineSpec::paper_testbed();

    println!("Calibrating P(R) at two candidate allocations ...");
    let quarter = ResourceVector::from_fractions(0.25, 0.5, 0.5).expect("shares");
    let threequarter = ResourceVector::from_fractions(0.75, 0.5, 0.5).expect("shares");
    let p_quarter = calibrate(machine, quarter).expect("calibration");
    let p_threequarter = calibrate(machine, threequarter).expect("calibration");

    for (label, sql) in QUERIES {
        println!("\n=== {label} ===\n{sql}");
        let logical = parse_query(sql, &t.db).expect("SQL should bind");
        let planned = plan_query(&t.db, &logical, &OptimizerParams::default()).expect("planning");
        let mut pool = BufferPool::new(4096);
        let out = run_plan(
            &mut t.db,
            &mut pool,
            &planned.physical,
            4 << 20,
            CpuCosts::default(),
        )
        .expect("execution");

        // Show up to five result rows.
        let names: Vec<String> = out.schema.fields().iter().map(|f| f.name.clone()).collect();
        println!(
            "-> {} rows  (columns: {})",
            out.rows.len(),
            names.join(", ")
        );
        for row in out.rows.iter().take(5) {
            let cells: Vec<String> = row.values().iter().map(ToString::to_string).collect();
            println!("   {}", cells.join(" | "));
        }

        // Price the same query at both allocations with the what-if model.
        let est_q = whatif::estimate_query_seconds(&t.db, &logical, &p_quarter).unwrap();
        let est_t = whatif::estimate_query_seconds(&t.db, &logical, &p_threequarter).unwrap();
        println!(
            "   what-if: {est_q:.4}s at 25% CPU vs {est_t:.4}s at 75% CPU  (x{:.2} speedup)",
            est_q / est_t
        );
    }
}
