//! What-if explorer: watch the optimizer change its mind as the virtual
//! machine's resources change.
//!
//! ```sh
//! cargo run --release --example whatif_explorer
//! ```
//!
//! The paper's core mechanism is that only the environment-parameter
//! vector `P` changes with the resource allocation `R` — statistics and
//! access paths do not. This example calibrates `P(R)` at several
//! allocations and shows (a) how a query's estimated time moves, and
//! (b) that the *chosen plan itself* can flip when resources change.

use dbvirt::calibrate::calibrate;
use dbvirt::engine::{Database, Expr};
use dbvirt::optimizer::{plan_query, LogicalPlan};
use dbvirt::storage::{DataType, Datum, Field, Schema, Tuple};
use dbvirt::vmm::{MachineSpec, ResourceVector};

fn main() {
    // A memory-scarce variant of the paper testbed, so that whether a
    // table stays cached genuinely depends on the VM's memory share.
    let machine = MachineSpec {
        memory_bytes: 32 * 1024 * 1024,
        ..MachineSpec::paper_testbed()
    };

    // A table big enough that index-vs-scan is a real decision.
    println!("Building a demo table (100k rows, index on `v`) ...");
    let mut db = Database::new();
    let t = db.create_table(
        "events",
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("v", DataType::Int),
            Field::new("payload", DataType::Str),
        ]),
    );
    db.insert_rows(
        t,
        (0..100_000).map(|i| {
            Tuple::new(vec![
                Datum::Int(i),
                Datum::Int((i * 48_271) % 100_000),
                Datum::str("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"),
            ])
        }),
    )
    .expect("load");
    db.create_index("events_v", t, 1).expect("index");
    db.analyze_all().expect("analyze");

    // A borderline-selectivity range query (~10 of 100k rows): the index
    // avoids touching every tuple (saving CPU) but pays random I/O; the
    // sequential scan pays CPU for all 100k tuples but reads nothing when
    // the table is cached. Which side wins depends on the allocation.
    let query = LogicalPlan::scan_filtered(
        t,
        Expr::and(
            Expr::ge(Expr::col(1), Expr::int(0)),
            Expr::lt(Expr::col(1), Expr::int(10)),
        ),
    );

    println!(
        "\n{:<28} {:>12} {:>12}  plan",
        "allocation (cpu/mem/disk)", "est. time", "cpu_tuple"
    );
    for (cpu, mem) in [(0.75, 0.75), (0.75, 0.125), (0.25, 0.75), (0.25, 0.125)] {
        let shares = ResourceVector::from_fractions(cpu, mem, 0.5).expect("shares");
        // Calibrate P for this allocation (the paper does this off-line,
        // once per machine and R).
        let params = calibrate(machine, shares).expect("calibration");
        let planned = plan_query(&db, &query, &params).expect("planning");
        println!(
            "{:<28} {:>11.3}s {:>12.5}  {}",
            format!("{:.0}% / {:.0}% / 50%", cpu * 100.0, mem * 100.0),
            planned.est_seconds(&params),
            params.cpu_tuple_cost,
            planned.physical.node_name(),
        );
    }
    println!(
        "\nSame statistics, same indexes — different resources, different plan. This is the \
         virtualization-aware what-if mode the virtualization design problem is built on."
    );
}
