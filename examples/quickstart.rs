//! Quickstart: consolidate two database workloads onto one machine.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full pipeline from the paper: generate two workloads with
//! different resource appetites, calibrate the optimizer for the target
//! machine, and ask the advisor how to split the machine between them.

use dbvirt::core::{DesignProblem, SearchAlgorithm, VirtualizationAdvisor, WorkloadSpec};
use dbvirt::tpch::{TpchConfig, TpchDb, TpchQuery, Workload};
use dbvirt::vmm::MachineSpec;

fn main() {
    // 1. The physical machine the VMs will share (the paper's testbed:
    //    2 x 2.8 GHz Xeon, 4 GB RAM).
    let machine = MachineSpec::paper_testbed();

    // 2. Two database workloads: an I/O-leaning one (TPC-H Q4) and a
    //    CPU-leaning one (TPC-H Q13).
    println!("Generating a small TPC-H database ...");
    let t = TpchDb::generate(TpchConfig::tiny()).expect("data generation");
    let w_io = Workload::compose(&t, &[(TpchQuery::Q4, 2)]);
    let w_cpu = Workload::compose(&t, &[(TpchQuery::Q13, 6)]);
    println!("Workload 1: {}   Workload 2: {}", w_io.name, w_cpu.name);

    let problem = DesignProblem::new(
        machine,
        vec![
            WorkloadSpec::new(w_io.name.clone(), &t.db, w_io.queries.clone()),
            WorkloadSpec::new(w_cpu.name.clone(), &t.db, w_cpu.queries.clone()),
        ],
    )
    .expect("valid problem");

    // 3. Calibrate the optimizer's environment parameters P(R) for this
    //    machine — done once, reusable for any database and workload.
    println!("Calibrating the optimizer (once per machine) ...");
    let advisor = VirtualizationAdvisor::calibrate(machine, 2, 8).expect("calibration");

    // 4. Search the allocation space with the calibrated what-if model.
    let rec = advisor
        .recommend(&problem, SearchAlgorithm::DynamicProgramming)
        .expect("recommendation");

    println!("\nRecommended allocation:");
    for (i, name) in [&w_io.name, &w_cpu.name].iter().enumerate() {
        let row = rec.allocation.row(i);
        println!(
            "  {name}: cpu {:.0}%, memory {:.0}%, disk {:.0}%  (predicted {:.3}s)",
            row.cpu().percent(),
            row.memory().percent(),
            row.disk().percent(),
            rec.per_workload_costs[i],
        );
    }
    println!(
        "Total predicted cost {:.3}s after {} what-if evaluations.",
        rec.total_cost, rec.evaluations
    );
}
