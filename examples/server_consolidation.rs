//! Server consolidation: validate an allocation by *running* the
//! workloads concurrently, as the paper's Figure 5 does.
//!
//! ```sh
//! cargo run --release --example server_consolidation
//! ```
//!
//! Two department database servers — an order-fulfilment reporting server
//! (I/O-heavy) and a marketing analytics server (CPU-heavy) — are
//! consolidated onto one physical machine, each in its own VM. We compare
//! the naive equal split against a skewed CPU split by actually executing
//! both workloads concurrently under the simulated credit scheduler.

use dbvirt::core::measure::measure_concurrent_seconds;
use dbvirt::tpch::{TpchConfig, TpchDb, TpchQuery, Workload};
use dbvirt::vmm::sched::SchedMode;
use dbvirt::vmm::{AllocationMatrix, MachineSpec, ResourceVector};

fn main() {
    let machine = MachineSpec {
        memory_bytes: 64 * 1024 * 1024,
        ..MachineSpec::paper_testbed()
    };

    // Each server has its own database instance, per the paper's
    // formulation ("a sequence of SQL statements against a separate
    // database").
    println!("Generating the two servers' databases ...");
    let mut fulfilment = TpchDb::generate(TpchConfig::tiny()).expect("generation");
    let mut marketing = TpchDb::generate(TpchConfig {
        seed: 7,
        ..TpchConfig::tiny()
    })
    .expect("generation");

    let w_fulfilment = Workload::compose(&fulfilment, &[(TpchQuery::Q4, 2), (TpchQuery::Q1, 1)]);
    let w_marketing = Workload::compose(&marketing, &[(TpchQuery::Q13, 8)]);
    println!(
        "Fulfilment workload: {}   Marketing workload: {}",
        w_fulfilment.name, w_marketing.name
    );

    let candidates = [
        (
            "equal split",
            AllocationMatrix::equal_split(2).expect("alloc"),
        ),
        (
            "cpu to marketing",
            AllocationMatrix::new(vec![
                ResourceVector::from_fractions(0.25, 0.5, 0.5).expect("shares"),
                ResourceVector::from_fractions(0.75, 0.5, 0.5).expect("shares"),
            ])
            .expect("alloc"),
        ),
    ];

    println!(
        "\n{:<18} {:>12} {:>12}",
        "allocation", "fulfilment", "marketing"
    );
    for (name, alloc) in &candidates {
        let times = measure_concurrent_seconds(
            &mut [&mut fulfilment.db, &mut marketing.db],
            &[&w_fulfilment.queries, &w_marketing.queries],
            machine,
            alloc,
            SchedMode::Capped,
        )
        .expect("co-scheduled run");
        println!("{name:<18} {:>11.3}s {:>11.3}s", times[0], times[1]);
    }
    println!(
        "\nThe skewed split speeds the CPU-bound marketing server up substantially while \
         leaving the I/O-bound fulfilment server nearly untouched — the paper's Figure 5 \
         effect, on your own workloads."
    );
}
