//! The joint physical-design advisor: alternating index selection and
//! resource allocation.
//!
//! The joint problem: choose per-VM secondary-index sets `S_i` (under a
//! per-VM storage budget) *and* per-VM resource shares `R_i` (under the
//! machine's capacity) minimizing `Σ_i w_i · Cost(W_i, R_i, S_i)`, where
//! `Cost` is the config-priced what-if estimate of [`crate::pricing`].
//! An index trades I/O for memory, so the two decisions genuinely
//! interact: building an index shifts which allocation is optimal, and a
//! different allocation changes which indexes pay for themselves.
//!
//! The co-optimizer alternates exact coordinate steps:
//!
//! 1. **shares | indexes** — with `S` fixed, the existing allocation DP
//!    ([`dbvirt_core::search`]) finds the exact best cell assignment;
//! 2. **indexes | shares** — with `R` fixed, greedy selection re-picks
//!    each VM's index set, accepted only if it beats keeping the previous
//!    set at the new cell.
//!
//! **Monotonicity (proved):** step 1 minimizes the objective over
//! allocations with `S` fixed and the previous allocation in its search
//! space, so it cannot increase the objective; step 2 takes
//! `min(greedy result, previous set)` per VM at the fixed cell, so it
//! cannot either. The objective is therefore non-increasing across
//! alternations, and since `(cells, masks)` live in a finite set the loop
//! reaches a fixpoint (detected by state equality) or the iteration cap.
//!
//! **Determinism:** every decision is a pure function of the memoized
//! `(query, config, cell)` price table, which parallel pre-warming fills
//! identically to a serial run. The whole decision sequence is folded
//! into an FNV-1a fingerprint; serial and parallel runs — and separate
//! processes — must produce identical fingerprints.

use crate::candidates::{enumerate_candidates, IndexCandidate};
use crate::lp::{lower_bound, LpBound};
use crate::pricing::{DesignPricer, VmPricer};
use crate::select::{select_greedy, SelectionTrace};
use crate::DesignError;
use dbvirt_calibrate::CalibrationGrid;
use dbvirt_core::search::{run_search_cached, CostCache, SearchAlgorithm, SearchConfig};
use dbvirt_core::{CostModel, DesignProblem};
use dbvirt_telemetry as telemetry;
use dbvirt_vmm::{AllocationMatrix, ResourceVector};
use std::sync::Arc;

/// Candidates enumerated across all VMs of the latest advise call.
static TM_CANDIDATES: telemetry::Counter = telemetry::Counter::new("design.candidates");
/// Candidates dropped by the enumeration cap.
static TM_PRUNED: telemetry::Counter = telemetry::Counter::new("design.pruned");
/// Alternation iterations run.
static TM_ALTERNATIONS: telemetry::Counter = telemetry::Counter::new("design.alternations");

/// Configuration for the design advisor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignConfig {
    /// Share discretization (same meaning as the allocation search).
    pub units: u32,
    /// Minimum units of each resource per VM.
    pub min_units: u32,
    /// Fixed per-VM disk share.
    pub disk_share: f64,
    /// Per-VM index storage budget, in pages.
    pub budget_pages: u64,
    /// Cap on enumerated candidates per VM (≤ 64: sets are bitmasks).
    pub max_candidates: usize,
    /// Cap on alternation iterations.
    pub max_alternations: usize,
    /// Subgradient iterations for the LP bound.
    pub lp_iterations: usize,
    /// Worker threads for what-if pre-warming: `1` serial, `0` one per
    /// core. The answer is identical at every setting.
    pub parallelism: usize,
}

impl DesignConfig {
    /// Defaults for `n` VMs sharing a machine at `units` share steps.
    pub fn new(units: u32, n: usize) -> DesignConfig {
        DesignConfig {
            units,
            min_units: 1,
            disk_share: 1.0 / n as f64,
            budget_pages: 512,
            max_candidates: 24,
            max_alternations: 6,
            lp_iterations: 300,
            parallelism: 1,
        }
    }

    /// Sets the pre-warm parallelism (`0` = one worker per core).
    pub fn with_parallelism(mut self, parallelism: usize) -> DesignConfig {
        self.parallelism = parallelism;
        self
    }

    /// Sets the per-VM page budget.
    pub fn with_budget(mut self, pages: u64) -> DesignConfig {
        self.budget_pages = pages;
        self
    }

    fn effective_parallelism(&self) -> usize {
        match self.parallelism {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            p => p,
        }
    }

    fn validate(&self, n: usize) -> Result<(), DesignError> {
        if self.units == 0 || self.min_units == 0 {
            return Err(DesignError::BadConfig {
                reason: "units and min_units must be positive".to_string(),
            });
        }
        if self.min_units as usize * n > self.units as usize {
            return Err(DesignError::BadConfig {
                reason: format!(
                    "{n} VMs x {} min units exceed {} units",
                    self.min_units, self.units
                ),
            });
        }
        if self.max_candidates == 0 || self.max_candidates > 64 {
            return Err(DesignError::BadConfig {
                reason: format!(
                    "max_candidates {} out of range (1..=64)",
                    self.max_candidates
                ),
            });
        }
        if self.max_alternations == 0 {
            return Err(DesignError::BadConfig {
                reason: "max_alternations must be positive".to_string(),
            });
        }
        Ok(())
    }
}

/// What the co-optimizer optimizes over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Alternate both coordinates to a fixpoint.
    Joint,
    /// Indexes only, allocation pinned at the equal split.
    IndexOnly,
    /// Allocation only, no indexes.
    AllocationOnly,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Joint => "joint",
            Mode::IndexOnly => "index-only",
            Mode::AllocationOnly => "allocation-only",
        }
    }
}

/// One VM's recommended physical design.
#[derive(Debug, Clone)]
pub struct VmDesign {
    /// Workload name.
    pub name: String,
    /// The indexes to build, in candidate order.
    pub chosen: Vec<IndexCandidate>,
    /// The chosen set as a candidate bitmask.
    pub mask: u64,
    /// Pages the chosen set consumes.
    pub pages_used: u64,
    /// Candidates enumerated for this VM.
    pub num_candidates: usize,
    /// Candidates dropped by the enumeration cap.
    pub pruned: usize,
    /// Unweighted config-priced workload cost at the final design.
    pub cost: f64,
    /// LP lower bound on this VM's selection problem at its final cell.
    pub lp: LpBound,
}

/// The joint recommendation.
#[derive(Debug, Clone)]
pub struct JointRecommendation {
    /// Recommended resource shares.
    pub allocation: AllocationMatrix,
    /// The same allocation as integer `(cpu, mem)` unit cells.
    pub cells: Vec<(u32, u32)>,
    /// Per-VM index designs.
    pub per_vm: Vec<VmDesign>,
    /// The weighted objective `Σ_i w_i · cost_i`.
    pub objective: f64,
    /// Objective after each alternation (index 0 = the starting state);
    /// non-increasing by construction.
    pub alternation_objectives: Vec<f64>,
    /// Alternations executed.
    pub alternations: usize,
    /// Weighted sum of the per-VM LP bounds: a lower bound on the
    /// config-priced objective of every feasible index selection at the
    /// recommended allocation.
    pub lp_bound: f64,
    /// `(objective − lp_bound) / objective` (0 when the objective is 0).
    pub optimality_gap: f64,
    /// Distinct what-if prices computed.
    pub evaluations: usize,
    /// FNV-1a fingerprint of the full decision trace. Serial and parallel
    /// runs, and separate processes, must agree bit-for-bit.
    pub fingerprint: u64,
    /// Which optimizer produced this (`joint`, `index-only`,
    /// `allocation-only`).
    pub mode: &'static str,
}

/// FNV-1a accumulator for the decision-trace fingerprint.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn eat(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= *b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    fn eat_u64(&mut self, v: u64) {
        self.eat(&v.to_le_bytes());
    }
    fn eat_f64(&mut self, v: f64) {
        self.eat(&v.to_bits().to_le_bytes());
    }
}

/// Adapter exposing the masked config pricing as a [`CostModel`] for the
/// allocation DP. Unweighted, pure in `(w, cell)` given fixed masks.
struct MaskedModel<'a, 'g> {
    pricer: &'a DesignPricer<'g>,
    vms: &'a [VmPricer<'a>],
    masks: &'a [u64],
    units: u32,
}

impl CostModel for MaskedModel<'_, '_> {
    fn cost(
        &self,
        _problem: &DesignProblem<'_>,
        w: usize,
        shares: ResourceVector,
    ) -> Result<f64, dbvirt_core::CoreError> {
        let cpu = (shares.cpu().fraction() * self.units as f64).round() as u32;
        let mem = (shares.memory().fraction() * self.units as f64).round() as u32;
        self.pricer
            .workload_cost(&self.vms[w], self.masks[w], cpu, mem)
            .map_err(|e| dbvirt_core::CoreError::BadProblem {
                reason: format!("design pricing: {e}"),
            })
    }
}

/// The physical-design advisor: joint index + allocation recommendation
/// over a calibrated machine.
pub struct DesignAdvisor<'g> {
    grid: &'g CalibrationGrid,
    config: DesignConfig,
}

impl<'g> DesignAdvisor<'g> {
    /// An advisor over a calibration grid for the problem's machine.
    pub fn new(grid: &'g CalibrationGrid, config: DesignConfig) -> DesignAdvisor<'g> {
        DesignAdvisor { grid, config }
    }

    /// Joint co-optimization: alternate allocation and index steps to a
    /// fixpoint.
    pub fn advise(&self, problem: &DesignProblem<'_>) -> Result<JointRecommendation, DesignError> {
        self.run(problem, Mode::Joint)
    }

    /// Index selection only, with the allocation pinned at the equal
    /// split — the classical index-advisor baseline.
    pub fn advise_index_only(
        &self,
        problem: &DesignProblem<'_>,
    ) -> Result<JointRecommendation, DesignError> {
        self.run(problem, Mode::IndexOnly)
    }

    /// Resource allocation only, with no indexes — the paper's original
    /// design problem.
    pub fn advise_allocation_only(
        &self,
        problem: &DesignProblem<'_>,
    ) -> Result<JointRecommendation, DesignError> {
        self.run(problem, Mode::AllocationOnly)
    }

    fn run(
        &self,
        problem: &DesignProblem<'_>,
        mode: Mode,
    ) -> Result<JointRecommendation, DesignError> {
        let n = problem.num_workloads();
        let cfg = self.config;
        cfg.validate(n)?;
        let mut root = telemetry::span("design.advise");
        root.set_attr("mode", mode.name());
        root.set_attr("vms", n);
        let mut fp = Fnv::new();
        fp.eat_u64(cfg.units as u64);
        fp.eat_u64(cfg.budget_pages);
        fp.eat_u64(n as u64);

        // 1. Enumerate candidates per VM (empty in allocation-only mode:
        //    the budget is zero, nothing could ever be chosen).
        let mut vms: Vec<VmPricer<'_>> = Vec::with_capacity(n);
        let mut offset = 0usize;
        {
            let mut span = telemetry::span("design.enumerate");
            for w in &problem.workloads {
                let cap = match mode {
                    Mode::AllocationOnly => 1, // keep menus trivial
                    _ => cfg.max_candidates,
                };
                let mut cands = enumerate_candidates(w.db, &w.queries, cap);
                if mode == Mode::AllocationOnly {
                    cands.candidates.clear();
                    for rel in &mut cands.relevant {
                        rel.clear();
                    }
                }
                TM_CANDIDATES.add(cands.len() as u64);
                TM_PRUNED.add(cands.pruned as u64);
                for c in &cands.candidates {
                    fp.eat_u64(c.table.0 as u64);
                    for &col in &c.columns {
                        fp.eat_u64(col as u64);
                    }
                    fp.eat_u64(c.pages);
                }
                let next_offset = offset + w.queries.len();
                vms.push(VmPricer::new(w.db, &w.queries, cands, offset));
                offset = next_offset;
            }
            span.set_attr(
                "candidates",
                vms.iter().map(|v| v.cands.len()).sum::<usize>(),
            );
        }

        // 2. Pre-warm every (query, config, cell) price this run can
        //    touch. Parallelism changes wall clock only.
        let cells_rect = self.feasible_cells(n);
        let budget = match mode {
            Mode::AllocationOnly => 0,
            _ => cfg.budget_pages,
        };
        let pricer = DesignPricer::new(self.grid, cfg.units, cfg.disk_share);
        pricer.prewarm(&vms, &cells_rect, cfg.effective_parallelism())?;

        // 3. Alternate coordinate steps from the equal split, no indexes.
        let mut cells: Vec<(u32, u32)> = equal_cells(n, cfg.units);
        let mut masks = vec![0u64; n];
        let mut traces: Vec<Option<SelectionTrace>> = vec![None; n];
        let mut objective = self.objective(problem, &pricer, &vms, &masks, &cells)?;
        let mut history = vec![objective];
        let mut alternations = 0usize;

        for iter in 0..cfg.max_alternations {
            let mut span = telemetry::span("design.alternate");
            span.set_attr("iteration", iter);
            TM_ALTERNATIONS.add(1);
            let prev_state = (cells.clone(), masks.clone());

            // Shares given indexes: exact DP over the warm price table.
            if mode != Mode::IndexOnly {
                let model = MaskedModel {
                    pricer: &pricer,
                    vms: &vms,
                    masks: &masks,
                    units: cfg.units,
                };
                let scfg = SearchConfig {
                    units: cfg.units,
                    disk_share: cfg.disk_share,
                    min_units: cfg.min_units,
                    parallelism: 1,
                    cpu_budget: cfg.units,
                    mem_budget: cfg.units,
                };
                // Fresh cache: core memoizes per (w, cell), and the masks
                // behind those cells change every alternation.
                let rec = run_search_cached(
                    SearchAlgorithm::DynamicProgramming,
                    problem,
                    &model,
                    scfg,
                    &Arc::new(CostCache::new()),
                )?;
                cells = (0..n)
                    .map(|w| {
                        let row = rec.allocation.row(w);
                        (
                            (row.cpu().fraction() * cfg.units as f64).round() as u32,
                            (row.memory().fraction() * cfg.units as f64).round() as u32,
                        )
                    })
                    .collect();
            }

            // Indexes given shares: greedy per VM, accepted only if it
            // beats keeping the previous set at the new cell.
            if mode != Mode::AllocationOnly {
                for (i, vm) in vms.iter().enumerate() {
                    let (c, m) = cells[i];
                    let trace = select_greedy(&pricer, vm, budget, c, m)?;
                    let keep = pricer.workload_cost(vm, masks[i], c, m)?;
                    if trace.objective < keep {
                        for d in &trace.decisions {
                            fp.eat_u64(i as u64);
                            fp.eat_u64(d.candidate as u64);
                            fp.eat_f64(d.gain);
                            fp.eat_u64(d.pages_after);
                        }
                        masks[i] = trace.mask;
                        traces[i] = Some(trace);
                    }
                }
            }

            let new_objective = self.objective(problem, &pricer, &vms, &masks, &cells)?;
            debug_assert!(
                new_objective <= objective + objective.abs() * 1e-12,
                "alternation {iter} worsened the objective: {objective} -> {new_objective}"
            );
            objective = new_objective;
            history.push(objective);
            alternations = iter + 1;
            for (i, &(c, m)) in cells.iter().enumerate() {
                fp.eat_u64(c as u64);
                fp.eat_u64(m as u64);
                fp.eat_u64(masks[i]);
            }
            fp.eat_f64(objective);

            let fixpoint = (cells.clone(), masks.clone()) == prev_state;
            if fixpoint || mode != Mode::Joint {
                break;
            }
        }

        // 4. LP bound per VM at the final cells; weighted aggregate gap.
        let mut per_vm = Vec::with_capacity(n);
        let mut lp_total = 0.0f64;
        for (i, vm) in vms.iter().enumerate() {
            let (c, m) = cells[i];
            let nq = vm.queries.len();
            let mut costs = Vec::with_capacity(nq);
            for q in 0..nq {
                let mut qcosts = Vec::with_capacity(vm.menus[q].configs.len());
                for k in 0..vm.menus[q].configs.len() {
                    qcosts.push(pricer.price(vm, q, k, c, m)?);
                }
                costs.push(qcosts);
            }
            let members: Vec<Vec<Vec<usize>>> =
                vm.menus.iter().map(|menu| menu.configs.clone()).collect();
            let sizes: Vec<u64> = vm.cands.candidates.iter().map(|cand| cand.pages).collect();
            let cost = pricer.workload_cost(vm, masks[i], c, m)?;
            let lp = lower_bound(&costs, &members, &sizes, budget, cost, cfg.lp_iterations);
            lp_total += problem.workloads[i].weight * lp.bound;
            fp.eat_f64(lp.bound);
            let chosen: Vec<IndexCandidate> = vm
                .cands
                .candidates
                .iter()
                .enumerate()
                .filter(|(idx, _)| masks[i] & (1 << idx) != 0)
                .map(|(_, cand)| cand.clone())
                .collect();
            let pages_used = chosen.iter().map(|cand| cand.pages).sum();
            per_vm.push(VmDesign {
                name: problem.workloads[i].name.clone(),
                chosen,
                mask: masks[i],
                pages_used,
                num_candidates: vm.cands.len(),
                pruned: vm.cands.pruned,
                cost,
                lp,
            });
        }
        let optimality_gap = if objective > 0.0 {
            (objective - lp_total) / objective
        } else {
            0.0
        };
        fp.eat_f64(objective);
        fp.eat_f64(optimality_gap);

        let rows: Vec<ResourceVector> = cells
            .iter()
            .map(|&(c, m)| pricer.shares(c, m))
            .collect::<Result<_, _>>()?;
        let allocation = AllocationMatrix::new(rows).map_err(|e| DesignError::BadConfig {
            reason: format!("allocation rows: {e}"),
        })?;
        root.set_attr("objective_ms", (objective * 1e3) as usize);
        root.set_attr("evaluations", pricer.evaluations());
        Ok(JointRecommendation {
            allocation,
            cells,
            per_vm,
            objective,
            alternation_objectives: history,
            alternations,
            lp_bound: lp_total,
            optimality_gap,
            evaluations: pricer.evaluations(),
            fingerprint: fp.0,
            mode: mode.name(),
        })
    }

    /// The weighted objective at a `(masks, cells)` state, summed in VM
    /// order (bit-exact across runs).
    fn objective(
        &self,
        problem: &DesignProblem<'_>,
        pricer: &DesignPricer<'_>,
        vms: &[VmPricer<'_>],
        masks: &[u64],
        cells: &[(u32, u32)],
    ) -> Result<f64, DesignError> {
        let mut total = 0.0;
        for (i, vm) in vms.iter().enumerate() {
            let (c, m) = cells[i];
            total += problem.workloads[i].weight * pricer.workload_cost(vm, masks[i], c, m)?;
        }
        Ok(total)
    }

    /// Every cell any feasible assignment can give one VM: the rectangle
    /// `[min_units, units − (n−1)·min_units]²` (the single whole-machine
    /// cell when `n == 1`).
    fn feasible_cells(&self, n: usize) -> Vec<(u32, u32)> {
        let cfg = self.config;
        if n == 1 {
            return vec![(cfg.units, cfg.units)];
        }
        let lo = cfg.min_units;
        let hi = cfg.units - cfg.min_units * (n as u32 - 1);
        let mut cells = Vec::with_capacity(((hi - lo + 1) * (hi - lo + 1)) as usize);
        for c in lo..=hi {
            for m in lo..=hi {
                cells.push((c, m));
            }
        }
        cells
    }
}

/// The equal split of `units` into `n` cells (remainder to the first VMs).
fn equal_cells(n: usize, units: u32) -> Vec<(u32, u32)> {
    let base = units / n as u32;
    let extra = units as usize % n;
    (0..n)
        .map(|i| {
            let u = base + u32::from(i < extra);
            (u, u)
        })
        .collect()
}

/// A controller-side hook deciding when a drift signal should trigger
/// index re-advice.
///
/// The runtime controller already re-solves *allocations* when its
/// Page–Hinkley detector fires; re-running the full design advisor is an
/// order of magnitude more expensive (candidate enumeration + a what-if
/// sweep), so this hook rate-limits it: re-advise only when drift has
/// fired in at least `min_detections` distinct epochs since the last
/// re-advice, and at most once per `cooldown_epochs`. The hook has no
/// dependency on the controller crate — the controller (or any epoch
/// loop) feeds it `(epoch, drift_fired)` observations and launches
/// [`DesignAdvisor::advise`] when it returns `true`.
#[derive(Debug, Clone)]
pub struct DriftReadviceHook {
    /// Drift detections required before re-advising.
    pub min_detections: usize,
    /// Minimum epochs between re-advice runs.
    pub cooldown_epochs: usize,
    detections_since: usize,
    last_readvice: Option<usize>,
}

impl DriftReadviceHook {
    /// A hook requiring `min_detections` drift firings and at least
    /// `cooldown_epochs` epochs between re-advice runs.
    pub fn new(min_detections: usize, cooldown_epochs: usize) -> DriftReadviceHook {
        DriftReadviceHook {
            min_detections: min_detections.max(1),
            cooldown_epochs,
            detections_since: 0,
            last_readvice: None,
        }
    }

    /// Feeds one epoch's drift observation; `true` means "re-run the
    /// design advisor now" (and resets the hook's state).
    pub fn observe(&mut self, epoch: usize, drift_fired: bool) -> bool {
        if drift_fired {
            self.detections_since += 1;
        }
        let cooled = self
            .last_readvice
            .map_or(true, |last| epoch - last >= self.cooldown_epochs);
        if self.detections_since >= self.min_detections && cooled {
            self.detections_since = 0;
            self.last_readvice = Some(epoch);
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{small_grid, small_machine};
    use dbvirt_core::WorkloadSpec;
    use dbvirt_engine::{Database, Expr};
    use dbvirt_optimizer::LogicalPlan;
    use dbvirt_storage::{DataType, Datum, Field, Schema, Tuple};

    fn table(db: &mut Database) -> dbvirt_engine::TableId {
        let t = db.create_table(
            "t",
            Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Int),
            ]),
        );
        db.insert_rows(
            t,
            (0..20_000).map(|i| Tuple::new(vec![Datum::Int(i), Datum::Int(i % 100)])),
        )
        .unwrap();
        db.analyze_all().unwrap();
        t
    }

    #[test]
    fn joint_advice_end_to_end() {
        // VM 1: selective point queries — index-friendly. VM 2: scans of
        // nearly the whole table — indexes are useless, CPU is what it
        // needs.
        let mut db1 = Database::new();
        let t1 = table(&mut db1);
        let point = |k: i64| LogicalPlan::scan_filtered(t1, Expr::eq(Expr::col(0), Expr::int(k)));
        let q1 = vec![point(7), point(4242), point(19_000)];
        let mut db2 = Database::new();
        let t2 = table(&mut db2);
        let q2 = vec![
            LogicalPlan::scan_filtered(t2, Expr::lt(Expr::col(0), Expr::int(19_900))),
            LogicalPlan::scan_filtered(t2, Expr::gt(Expr::col(0), Expr::int(100))),
        ];
        let problem = dbvirt_core::DesignProblem::new(
            small_machine(),
            vec![
                WorkloadSpec::new("points".to_string(), &db1, q1),
                WorkloadSpec::new("scans".to_string(), &db2, q2),
            ],
        )
        .unwrap();
        let grid = small_grid();
        let cfg = DesignConfig::new(4, 2).with_budget(1024);
        let advisor = DesignAdvisor::new(&grid, cfg);

        let joint = advisor.advise(&problem).unwrap();
        let index_only = advisor.advise_index_only(&problem).unwrap();
        let alloc_only = advisor.advise_allocation_only(&problem).unwrap();

        // Joint can never lose to either marginal: each marginal's final
        // state is reachable by the joint loop.
        assert!(
            joint.objective <= index_only.objective + 1e-12,
            "joint {} vs index-only {}",
            joint.objective,
            index_only.objective
        );
        assert!(
            joint.objective <= alloc_only.objective + 1e-12,
            "joint {} vs allocation-only {}",
            joint.objective,
            alloc_only.objective
        );

        // The alternation history is monotone non-increasing.
        for w in joint.alternation_objectives.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "objective rose: {} -> {}", w[0], w[1]);
        }

        // Budgets hold, the LP bound is below the incumbent, the gap is
        // a sane fraction.
        for d in &joint.per_vm {
            assert!(d.pages_used <= cfg.budget_pages);
            assert!(d.lp.bound <= d.cost + 1e-9, "{} > {}", d.lp.bound, d.cost);
        }
        assert!(joint.lp_bound <= joint.objective + 1e-9);
        assert!(joint.optimality_gap >= -1e-9);
        assert!(joint.allocation.num_workloads() == 2);
        assert_eq!(joint.mode, "joint");
        assert_eq!(alloc_only.per_vm.iter().map(|d| d.mask).sum::<u64>(), 0);

        // Serial and parallel pre-warm produce bit-identical answers and
        // decision-trace fingerprints.
        let par = DesignAdvisor::new(&grid, cfg.with_parallelism(4))
            .advise(&problem)
            .unwrap();
        assert_eq!(joint.fingerprint, par.fingerprint);
        assert_eq!(joint.objective.to_bits(), par.objective.to_bits());
        assert_eq!(joint.cells, par.cells);
    }

    #[test]
    fn equal_cells_distribute_remainder() {
        assert_eq!(equal_cells(2, 8), vec![(4, 4), (4, 4)]);
        assert_eq!(equal_cells(3, 8), vec![(3, 3), (3, 3), (2, 2)]);
    }

    #[test]
    fn config_validation_rejects_bad_shapes() {
        let grid_err = |cfg: DesignConfig, n: usize| cfg.validate(n).is_err();
        let mut cfg = DesignConfig::new(4, 2);
        assert!(!grid_err(cfg, 2));
        cfg.max_candidates = 65;
        assert!(grid_err(cfg, 2));
        cfg = DesignConfig::new(4, 2);
        cfg.min_units = 3;
        assert!(grid_err(cfg, 2), "2 VMs x 3 min units > 4 units");
        cfg = DesignConfig::new(0, 2);
        assert!(grid_err(cfg, 2));
        cfg = DesignConfig::new(4, 2);
        cfg.max_alternations = 0;
        assert!(grid_err(cfg, 2));
    }

    #[test]
    fn drift_hook_rate_limits_readvice() {
        let mut hook = DriftReadviceHook::new(2, 5);
        assert!(!hook.observe(0, true), "one detection is not enough");
        assert!(hook.observe(1, true), "second detection fires");
        assert!(!hook.observe(2, true));
        assert!(!hook.observe(3, true), "cooldown holds even at threshold");
        assert!(hook.observe(6, false), "cooldown elapsed, detections banked");
        assert!(!hook.observe(7, false), "state was reset");
    }
}
