//! LP lower bound for the index-selection ILP, via Lagrangian relaxation
//! of the config→index coupling rows (the `fleet::lp` recipe applied to
//! the CoPhy formulation).
//!
//! The ILP (one VM, allocation cell fixed):
//!
//! ```text
//! min  Σ_q Σ_k c[q][k] · x[q][k]
//! s.t. Σ_k x[q][k] = 1                 for every query q
//!      x[q][k] ≤ y[c]                  for every index c ∈ config k
//!      Σ_c size[c] · y[c] ≤ budget
//!      x ∈ {0,1},  y ∈ {0,1}
//! ```
//!
//! Dualizing the coupling rows with multipliers `μ[q][k][c] ≥ 0` makes
//! the Lagrangian separable:
//!
//! ```text
//! L(μ) = Σ_q min_k ( c[q][k] + Σ_{c∈k} μ[q][k][c] )
//!        − max_{0≤y≤1, Σ size·y ≤ budget} Σ_c gain[c] · y[c]
//! ```
//!
//! where `gain[c] = Σ_{q,k∋c} μ[q][k][c]`. The inner `y` problem is a
//! fractional knapsack, solved exactly by density order. Every `L(μ)` is
//! a valid lower bound on the LP relaxation — and hence on every feasible
//! integer selection priced by the same config menus (in particular the
//! greedy incumbent). Projected subgradient ascent with Polyak steps
//! against the incumbent, fixed iteration order, pure `f64` arithmetic:
//! bit-identical on every run.

/// The LP bound and how the ascent behaved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LpBound {
    /// Best Lagrangian value: a certified lower bound on every feasible
    /// selection's config-priced objective.
    pub bound: f64,
    /// Subgradient iterations run.
    pub iterations: usize,
    /// `true` when ascent stopped on a zero subgradient (exact dual
    /// optimum) rather than step-size exhaustion.
    pub converged: bool,
}

/// Computes the Lagrangian lower bound for one VM's selection problem.
///
/// * `costs[q][k]` — config `k`'s what-if price for query `q`;
/// * `members[q][k]` — the candidate indices config `k` couples to;
/// * `sizes[c]` — candidate `c`'s pages;
/// * `budget` — the page budget;
/// * `incumbent` — best known feasible objective (drives Polyak steps).
pub fn lower_bound(
    costs: &[Vec<f64>],
    members: &[Vec<Vec<usize>>],
    sizes: &[u64],
    budget: u64,
    incumbent: f64,
    max_iterations: usize,
) -> LpBound {
    let n_cands = sizes.len();
    let mut mu: Vec<Vec<Vec<f64>>> = members
        .iter()
        .map(|qs| qs.iter().map(|k| vec![0.0; k.len()]).collect())
        .collect();

    let mut best = f64::NEG_INFINITY;
    let mut theta = 1.0f64;
    let mut since_improved = 0usize;
    let mut iterations = 0usize;
    let mut converged = false;

    // Scratch reused across iterations.
    let mut chosen: Vec<usize> = vec![0; costs.len()];
    let mut y = vec![0.0f64; n_cands];
    let mut gain = vec![0.0f64; n_cands];
    let mut density_order: Vec<usize> = (0..n_cands).collect();

    for _ in 0..max_iterations {
        iterations += 1;

        // Per-query inner minimization: cheapest config under current
        // prices; strict `<` keeps the first minimizer — deterministic.
        let mut value = 0.0f64;
        for (q, qcosts) in costs.iter().enumerate() {
            let mut min_val = f64::INFINITY;
            let mut min_k = 0usize;
            for (k, &c) in qcosts.iter().enumerate() {
                let priced = c + mu[q][k].iter().sum::<f64>();
                if priced < min_val {
                    min_val = priced;
                    min_k = k;
                }
            }
            value += min_val;
            chosen[q] = min_k;
        }

        // Inner y problem: fractional knapsack over positive gains.
        for g in gain.iter_mut() {
            *g = 0.0;
        }
        for (q, qk) in members.iter().enumerate() {
            for (k, kmembers) in qk.iter().enumerate() {
                for (pos, &c) in kmembers.iter().enumerate() {
                    gain[c] += mu[q][k][pos];
                }
            }
        }
        // Density order: gain/size descending, ties to the lower index.
        density_order.sort_by(|&a, &b| {
            let da = gain[a] * sizes[b].max(1) as f64;
            let db = gain[b] * sizes[a].max(1) as f64;
            db.partial_cmp(&da)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut remaining = budget as f64;
        for yc in y.iter_mut() {
            *yc = 0.0;
        }
        for &c in &density_order {
            if gain[c] <= 0.0 || remaining <= 0.0 {
                break;
            }
            let size = sizes[c].max(1) as f64;
            let frac = (remaining / size).min(1.0);
            y[c] = frac;
            remaining -= frac * size;
            value -= frac * gain[c];
        }

        if value > best {
            best = value;
            since_improved = 0;
        } else {
            since_improved += 1;
            if since_improved >= 20 {
                theta *= 0.5;
                since_improved = 0;
            }
        }
        if theta < 1e-6 {
            break;
        }

        // Subgradient g[q][k][c] = x[q][k] − y[c].
        let mut norm_sq = 0.0f64;
        for (q, qk) in members.iter().enumerate() {
            for (k, kmembers) in qk.iter().enumerate() {
                let x = f64::from(chosen[q] == k);
                for &c in kmembers.iter() {
                    let g = x - y[c];
                    norm_sq += g * g;
                }
            }
        }
        if norm_sq == 0.0 {
            converged = true;
            break;
        }
        let gap = incumbent - value;
        if gap <= 0.0 {
            break;
        }
        let step = theta * gap / norm_sq;
        for (q, qk) in members.iter().enumerate() {
            for (k, kmembers) in qk.iter().enumerate() {
                let x = f64::from(chosen[q] == k);
                for (pos, &c) in kmembers.iter().enumerate() {
                    mu[q][k][pos] = (mu[q][k][pos] + step * (x - y[c])).max(0.0);
                }
            }
        }
    }

    LpBound {
        bound: best,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force ILP optimum over all index subsets (config pricing).
    fn ilp_opt(costs: &[Vec<f64>], members: &[Vec<Vec<usize>>], sizes: &[u64], budget: u64) -> f64 {
        let n = sizes.len();
        let mut best = f64::INFINITY;
        for mask in 0u64..(1 << n) {
            let pages: u64 = (0..n).filter(|&c| mask & (1 << c) != 0).map(|c| sizes[c]).sum();
            if pages > budget {
                continue;
            }
            let mut total = 0.0;
            for (q, qcosts) in costs.iter().enumerate() {
                let mut m = f64::INFINITY;
                for (k, &c) in qcosts.iter().enumerate() {
                    if members[q][k].iter().all(|&i| mask & (1 << i) != 0) && c < m {
                        m = c;
                    }
                }
                total += m;
            }
            best = best.min(total);
        }
        best
    }

    #[test]
    fn bound_is_below_ilp_and_tight_when_budget_is_loose() {
        // Two queries, two candidates. q0 wants c0 (10 -> 2), q1 wants c1
        // (8 -> 3), the pair helps q0 a bit more (10 -> 1.5).
        let costs = vec![vec![10.0, 2.0, 9.5, 1.5], vec![8.0, 7.9, 3.0, 2.9]];
        let members = vec![
            vec![vec![], vec![0], vec![1], vec![0, 1]],
            vec![vec![], vec![0], vec![1], vec![0, 1]],
        ];
        let sizes = vec![5, 5];

        // Loose budget: both indexes fit; opt = 1.5 + 2.9.
        let opt = ilp_opt(&costs, &members, &sizes, 10);
        assert!((opt - 4.4).abs() < 1e-12);
        let lb = lower_bound(&costs, &members, &sizes, 10, opt, 400);
        assert!(lb.bound <= opt + 1e-9, "{} > {opt}", lb.bound);
        assert!(lb.bound >= opt - 0.5, "loose-budget bound should be tight");

        // Tight budget: only one index fits; opt = min(2 + 3, 10 + ... ).
        let opt_tight = ilp_opt(&costs, &members, &sizes, 5);
        let lb_tight = lower_bound(&costs, &members, &sizes, 5, opt_tight, 400);
        assert!(lb_tight.bound <= opt_tight + 1e-9);
        // And the budget genuinely binds: tight opt > loose opt.
        assert!(opt_tight > opt);
    }

    #[test]
    fn zero_budget_bound_equals_empty_config_cost() {
        let costs = vec![vec![10.0, 2.0], vec![8.0, 3.0]];
        let members = vec![vec![vec![], vec![0]], vec![vec![], vec![0]]];
        let sizes = vec![4];
        let opt = ilp_opt(&costs, &members, &sizes, 0);
        assert_eq!(opt, 18.0);
        let lb = lower_bound(&costs, &members, &sizes, 0, opt, 400);
        assert!(lb.bound <= opt + 1e-9);
        // With no capacity the dual should close the gap completely.
        assert!(opt - lb.bound < 1e-6, "gap {}", opt - lb.bound);
    }

    #[test]
    fn no_candidates_is_exact() {
        let costs = vec![vec![7.0], vec![5.0]];
        let members = vec![vec![vec![]], vec![vec![]]];
        let lb = lower_bound(&costs, &members, &[], 100, 12.0, 50);
        assert_eq!(lb.bound, 12.0);
    }

    #[test]
    fn bound_is_deterministic() {
        let costs = vec![
            vec![10.0, 2.0, 9.5, 1.5],
            vec![8.0, 7.9, 3.0, 2.9],
            vec![6.0, 5.0, 4.0, 3.5],
        ];
        let members = vec![
            vec![vec![], vec![0], vec![1], vec![0, 1]],
            vec![vec![], vec![0], vec![1], vec![0, 1]],
            vec![vec![], vec![0], vec![1], vec![0, 1]],
        ];
        let sizes = vec![5, 7];
        let a = lower_bound(&costs, &members, &sizes, 7, 10.0, 300);
        let b = lower_bound(&costs, &members, &sizes, 7, 10.0, 300);
        assert_eq!(a.bound.to_bits(), b.bound.to_bits());
        assert_eq!(a.iterations, b.iterations);
    }
}
