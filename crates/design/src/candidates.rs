//! Candidate-index enumeration from bound predicates.
//!
//! Walks a workload's logical plans, collects every sargable
//! `(table, column)` — columns compared to literals, `LIKE` prefix
//! patterns, `IN` lists — and turns them into candidate secondary
//! indexes: one single-column candidate per sargable column, plus bounded
//! two-column composites for columns that co-occur in one scan's
//! conjunction with an equality on the leading column (the classic
//! merge-eligible shape). Candidates whose exact column list already
//! exists as a real index are dropped, the remainder is deterministically
//! ordered, and the set is truncated to [`enumerate_candidates`]'s cap
//! (the overflow is counted as pruned).

use dbvirt_engine::{Database, Expr, TableId};
use dbvirt_optimizer::card::like_prefix;
use dbvirt_optimizer::LogicalPlan;
use dbvirt_storage::BPlusTree;
use std::collections::{BTreeMap, BTreeSet};

/// A candidate secondary index: a table, an ordered column list, and the
/// estimated B+tree footprint a real build would have (the same
/// `bulk_geometry` arithmetic the what-if planner prices with).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct IndexCandidate {
    /// The indexed table.
    pub table: TableId,
    /// Key columns, major first.
    pub columns: Vec<usize>,
    /// Estimated index size in pages (the storage-budget currency).
    pub pages: u64,
}

/// One query's sargable surface: the `(table, column)` pairs usable as
/// index keys, split by whether an equality conjunct exists on them.
#[derive(Debug, Clone, Default)]
struct QuerySargs {
    /// Columns with an equality-shaped conjunct (`=`, `IN`).
    eq: BTreeSet<(TableId, usize)>,
    /// All sargable columns (equality, range, `LIKE` prefix).
    any: BTreeSet<(TableId, usize)>,
}

/// The enumerated candidate set for one workload.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// Candidates, deterministically ordered by `(table, columns)`.
    pub candidates: Vec<IndexCandidate>,
    /// `relevant[q]` lists the candidate indices usable by query `q`
    /// (their leading column is sargable in `q`).
    pub relevant: Vec<Vec<usize>>,
    /// Candidates dropped by the enumeration cap.
    pub pruned: usize,
}

impl CandidateSet {
    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True when enumeration produced nothing.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }
}

fn split_conjuncts<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
    match expr {
        Expr::And(a, b) => {
            split_conjuncts(a, out);
            split_conjuncts(b, out);
        }
        other => out.push(other),
    }
}

/// The sargable column of one conjunct, with its equality-ness, if any.
fn sargable_column(conjunct: &Expr) -> Option<(usize, bool)> {
    match conjunct {
        Expr::Cmp { op, lhs, rhs } => {
            use dbvirt_engine::CmpOp;
            if matches!(op, CmpOp::Ne) {
                return None;
            }
            match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Column(c), Expr::Literal(_)) | (Expr::Literal(_), Expr::Column(c)) => {
                    Some((*c, matches!(op, CmpOp::Eq)))
                }
                _ => None,
            }
        }
        Expr::Like {
            expr,
            pattern,
            negated: false,
        } => match expr.as_ref() {
            Expr::Column(c) if like_prefix(pattern).is_some() => Some((*c, false)),
            _ => None,
        },
        Expr::InList { expr, .. } => match expr.as_ref() {
            Expr::Column(c) => Some((*c, true)),
            _ => None,
        },
        _ => None,
    }
}

/// Collects every `Scan` node's sargable surface into `sargs`, and
/// records composite opportunities (eq column, other sargable column on
/// the same scan) into `pairs`.
fn walk(plan: &LogicalPlan, sargs: &mut QuerySargs, pairs: &mut BTreeSet<(TableId, usize, usize)>) {
    match plan {
        LogicalPlan::Scan { table, filter } => {
            let Some(filter) = filter else { return };
            let mut conjuncts = Vec::new();
            split_conjuncts(filter, &mut conjuncts);
            let mut eq_cols = BTreeSet::new();
            let mut any_cols = BTreeSet::new();
            for c in conjuncts {
                if let Some((col, is_eq)) = sargable_column(c) {
                    any_cols.insert(col);
                    if is_eq {
                        eq_cols.insert(col);
                    }
                }
            }
            for &c in &any_cols {
                sargs.any.insert((*table, c));
            }
            for &c in &eq_cols {
                sargs.eq.insert((*table, c));
                for &other in &any_cols {
                    if other != c {
                        pairs.insert((*table, c, other));
                    }
                }
            }
        }
        LogicalPlan::Join { left, right, .. } => {
            walk(left, sargs, pairs);
            walk(right, sargs, pairs);
        }
        LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => walk(input, sargs, pairs),
    }
}

fn candidate_pages(db: &Database, table: TableId) -> u64 {
    let n_rows = db
        .table(table)
        .stats
        .as_ref()
        .map(|s| s.n_rows)
        .unwrap_or(0);
    let (_, pages) = BPlusTree::bulk_geometry(n_rows as usize);
    pages as u64
}

/// Enumerates candidate indexes for a workload against `db`, capped at
/// `max_candidates` (overflow counts as pruned). Real indexes with the
/// identical column list are excluded — they already exist.
pub fn enumerate_candidates(
    db: &Database,
    queries: &[LogicalPlan],
    max_candidates: usize,
) -> CandidateSet {
    let mut per_query: Vec<QuerySargs> = Vec::with_capacity(queries.len());
    let mut keys: BTreeSet<(TableId, Vec<usize>)> = BTreeSet::new();
    for q in queries {
        let mut sargs = QuerySargs::default();
        let mut pairs = BTreeSet::new();
        walk(q, &mut sargs, &mut pairs);
        for &(t, c) in &sargs.any {
            keys.insert((t, vec![c]));
        }
        for &(t, a, b) in &pairs {
            keys.insert((t, vec![a, b]));
        }
        per_query.push(sargs);
    }

    // Drop candidates that already exist as real indexes.
    let existing: BTreeSet<(TableId, Vec<usize>)> = db
        .indexes()
        .map(|(_, meta)| (meta.table, meta.columns.clone()))
        .collect();
    keys.retain(|k| !existing.contains(k));

    // Deterministic order (BTreeSet iteration), then the cap.
    let mut sizes: BTreeMap<TableId, u64> = BTreeMap::new();
    let all: Vec<IndexCandidate> = keys
        .into_iter()
        .map(|(table, columns)| {
            let pages = *sizes
                .entry(table)
                .or_insert_with(|| candidate_pages(db, table));
            IndexCandidate {
                table,
                columns,
                pages,
            }
        })
        .collect();
    let pruned = all.len().saturating_sub(max_candidates);
    let candidates: Vec<IndexCandidate> = all.into_iter().take(max_candidates).collect();

    let relevant = per_query
        .iter()
        .map(|sargs| {
            candidates
                .iter()
                .enumerate()
                .filter(|(_, cand)| {
                    let lead = (cand.table, cand.columns[0]);
                    match cand.columns.len() {
                        1 => sargs.any.contains(&lead),
                        _ => {
                            sargs.eq.contains(&lead)
                                && sargs.any.contains(&(cand.table, cand.columns[1]))
                        }
                    }
                })
                .map(|(i, _)| i)
                .collect()
        })
        .collect();

    CandidateSet {
        candidates,
        relevant,
        pruned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbvirt_storage::{DataType, Datum, Field, Schema, Tuple};

    fn db() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.create_table(
            "t",
            Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Int),
                Field::new("s", DataType::Str),
            ]),
        );
        db.insert_rows(
            t,
            (0..500).map(|i| {
                Tuple::new(vec![
                    Datum::Int(i),
                    Datum::Int(i % 7),
                    Datum::str(format!("v{i:03}")),
                ])
            }),
        )
        .unwrap();
        db.analyze_all().unwrap();
        (db, t)
    }

    #[test]
    fn single_and_composite_candidates_from_predicates() {
        let (db, t) = db();
        // a = 3 AND b < 5: singles on a and b, composite (a, b) with the
        // equality leading.
        let q = LogicalPlan::scan_filtered(
            t,
            Expr::and(
                Expr::eq(Expr::col(0), Expr::int(3)),
                Expr::lt(Expr::col(1), Expr::int(5)),
            ),
        );
        let set = enumerate_candidates(&db, &[q], 16);
        let cols: Vec<Vec<usize>> = set.candidates.iter().map(|c| c.columns.clone()).collect();
        assert_eq!(cols, vec![vec![0], vec![0, 1], vec![1]]);
        assert_eq!(set.relevant[0], vec![0, 1, 2]);
        assert_eq!(set.pruned, 0);
        assert!(set.candidates.iter().all(|c| c.pages > 0));
    }

    #[test]
    fn like_prefix_and_in_list_are_sargable() {
        let (db, t) = db();
        let q = LogicalPlan::scan_filtered(
            t,
            Expr::and(
                Expr::like(Expr::col(2), "v0%"),
                Expr::in_list(Expr::col(1), vec![Datum::Int(1), Datum::Int(2)]),
            ),
        );
        let set = enumerate_candidates(&db, &[q], 16);
        let cols: Vec<Vec<usize>> = set.candidates.iter().map(|c| c.columns.clone()).collect();
        // IN is equality-shaped, so (b, s) is a composite; the non-prefix
        // wildcard column still yields its single candidate.
        assert_eq!(cols, vec![vec![1], vec![1, 2], vec![2]]);
    }

    #[test]
    fn existing_indexes_are_excluded_and_cap_counts_pruned() {
        let (mut db, t) = db();
        db.create_index("t_a", t, 0).unwrap();
        let q = LogicalPlan::scan_filtered(
            t,
            Expr::and(
                Expr::eq(Expr::col(0), Expr::int(3)),
                Expr::lt(Expr::col(1), Expr::int(5)),
            ),
        );
        let set = enumerate_candidates(&db, &[q.clone()], 16);
        let cols: Vec<Vec<usize>> = set.candidates.iter().map(|c| c.columns.clone()).collect();
        assert_eq!(cols, vec![vec![0, 1], vec![1]], "single [0] exists already");

        let capped = enumerate_candidates(&db, &[q], 1);
        assert_eq!(capped.len(), 1);
        assert_eq!(capped.pruned, 1);
    }

    #[test]
    fn non_sargable_shapes_yield_nothing() {
        let (db, t) = db();
        // col-col comparison, NOT LIKE, arithmetic on the column: none are
        // index-usable.
        let q = LogicalPlan::scan_filtered(
            t,
            Expr::and(
                Expr::lt(Expr::col(0), Expr::col(1)),
                Expr::and(
                    Expr::not_like(Expr::col(2), "v%"),
                    Expr::eq(Expr::add(Expr::col(0), Expr::int(1)), Expr::int(2)),
                ),
            ),
        );
        let set = enumerate_candidates(&db, &[q], 16);
        assert!(set.is_empty());
    }

    #[test]
    fn relevance_is_per_query() {
        let (db, t) = db();
        let qa = LogicalPlan::scan_filtered(t, Expr::eq(Expr::col(0), Expr::int(1)));
        let qb = LogicalPlan::scan_filtered(t, Expr::lt(Expr::col(1), Expr::int(3)));
        let set = enumerate_candidates(&db, &[qa, qb], 16);
        let cols: Vec<Vec<usize>> = set.candidates.iter().map(|c| c.columns.clone()).collect();
        assert_eq!(cols, vec![vec![0], vec![1]]);
        assert_eq!(set.relevant[0], vec![0]);
        assert_eq!(set.relevant[1], vec![1]);
    }
}
