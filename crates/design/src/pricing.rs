//! CoPhy-style what-if pricing of `(index configuration, allocation)`
//! pairs.
//!
//! The selection objective is defined over enumerated **configurations**:
//! per query, the empty set, every relevant single candidate, and every
//! relevant candidate pair. A config's cost is the what-if optimizer's
//! estimate with exactly that config offered as hypothetical indexes,
//! under the calibrated parameters `P(R)` of the allocation cell being
//! priced. The cost of an index *set* for a query is then the cheapest
//! config contained in the set — monotone non-increasing in the set, and
//! an upper bound on the true planner cost with the whole set available
//! (a larger menu can only help). Restricting to configurations of size
//! ≤ 2 is what makes the companion LP relaxation ([`crate::lp`]) an exact
//! relaxation of this objective, so the reported optimality gap is sound.
//!
//! Every `(query, config, cell)` price is memoized in the same sharded
//! [`CostCache`] the allocation search uses, keyed
//! `(global query index, config id, (cpu units << 16) | mem units)`.
//! Prices are pure functions of the key, so parallel pre-warming fills
//! the identical table a serial run would — the foundation of the
//! advisor's serial-vs-parallel determinism contract.

use crate::candidates::CandidateSet;
use crate::DesignError;
use dbvirt_calibrate::CalibrationGrid;
use dbvirt_core::search::CostCache;
use dbvirt_engine::Database;
use dbvirt_optimizer::{plan_query_with_indexes, HypoIndex, LogicalPlan};
use dbvirt_telemetry as telemetry;
use dbvirt_vmm::ResourceVector;
use std::sync::{Arc, Mutex};

/// What-if prices answered from the shared cache.
static TM_CACHE_HITS: telemetry::Counter = telemetry::Counter::new("design.cache_hits");
/// What-if prices that had to run the planner.
static TM_WHATIF_CALLS: telemetry::Counter = telemetry::Counter::new("design.whatif_calls");

/// One query's priced configuration menu: `configs[k]` is the candidate
/// indices of config `k` (empty first, then singletons, then pairs, in
/// candidate order), `masks[k]` the same as a bitmask.
#[derive(Debug, Clone)]
pub struct ConfigMenu {
    /// Candidate indices per config.
    pub configs: Vec<Vec<usize>>,
    /// Bitmask per config (bit `i` = candidate `i`).
    pub masks: Vec<u64>,
}

/// Builds the per-query config menus from a candidate set: `∅`, relevant
/// singletons, relevant pairs.
pub fn config_menus(cands: &CandidateSet) -> Vec<ConfigMenu> {
    cands
        .relevant
        .iter()
        .map(|rel| {
            let mut configs = vec![Vec::new()];
            for &c in rel {
                configs.push(vec![c]);
            }
            for (i, &a) in rel.iter().enumerate() {
                for &b in &rel[i + 1..] {
                    configs.push(vec![a, b]);
                }
            }
            let masks = configs
                .iter()
                .map(|cfg| cfg.iter().fold(0u64, |m, &c| m | (1 << c)))
                .collect();
            ConfigMenu { configs, masks }
        })
        .collect()
}

/// The pricing context for one workload (one VM): its database, queries,
/// candidates, config menus, and a global query-index offset that keeps
/// its cache keys disjoint from other VMs sharing the same cache.
pub struct VmPricer<'a> {
    /// The workload's database (catalog + statistics only).
    pub db: &'a Database,
    /// The workload's queries.
    pub queries: &'a [LogicalPlan],
    /// Enumerated candidates.
    pub cands: CandidateSet,
    /// Per-query config menus.
    pub menus: Vec<ConfigMenu>,
    /// Global query-index base for cache keys.
    pub offset: usize,
}

impl<'a> VmPricer<'a> {
    /// Builds a pricer from an already-enumerated candidate set.
    pub fn new(
        db: &'a Database,
        queries: &'a [LogicalPlan],
        cands: CandidateSet,
        offset: usize,
    ) -> VmPricer<'a> {
        let menus = config_menus(&cands);
        VmPricer {
            db,
            queries,
            cands,
            menus,
            offset,
        }
    }
}

/// Shared pricing state: the calibration grid mapping cells to `P(R)`,
/// the share discretization, and the cost cache.
pub struct DesignPricer<'g> {
    grid: &'g CalibrationGrid,
    units: u32,
    disk_share: f64,
    cache: Arc<CostCache>,
}

/// Encodes a `(cpu units, mem units)` cell into one cache-key word.
pub fn cell_code(cpu: u32, mem: u32) -> u32 {
    (cpu << 16) | mem
}

impl<'g> DesignPricer<'g> {
    /// A pricer over a fresh cache.
    pub fn new(grid: &'g CalibrationGrid, units: u32, disk_share: f64) -> DesignPricer<'g> {
        DesignPricer {
            grid,
            units,
            disk_share,
            cache: Arc::new(CostCache::new()),
        }
    }

    /// The underlying cache (shared with the allocation search's warm
    /// pre-computation).
    pub fn cache(&self) -> &Arc<CostCache> {
        &self.cache
    }

    /// Distinct what-if evaluations performed so far.
    pub fn evaluations(&self) -> usize {
        self.cache.evaluations()
    }

    /// The resource shares a cell denotes.
    pub fn shares(&self, cpu: u32, mem: u32) -> Result<ResourceVector, DesignError> {
        ResourceVector::from_fractions(
            cpu as f64 / self.units as f64,
            mem as f64 / self.units as f64,
            self.disk_share,
        )
        .map_err(|e| DesignError::BadConfig {
            reason: format!("cell ({cpu}, {mem}) of {} units: {e}", self.units),
        })
    }

    /// Price of `(query, config, cell)`: the what-if estimate with exactly
    /// the config's candidates offered as hypothetical indexes under the
    /// calibrated `P(R)` of the cell. Memoized; pure in the key.
    pub fn price(
        &self,
        vm: &VmPricer<'_>,
        q: usize,
        config: usize,
        cpu: u32,
        mem: u32,
    ) -> Result<f64, DesignError> {
        let key = (vm.offset + q, config as u32, cell_code(cpu, mem));
        if let Some(c) = self.cache.get(&key) {
            TM_CACHE_HITS.add(1);
            return Ok(c);
        }
        TM_WHATIF_CALLS.add(1);
        let params = self.grid.params_for(self.shares(cpu, mem)?)?;
        let hypo: Vec<HypoIndex> = vm.menus[q].configs[config]
            .iter()
            .map(|&c| HypoIndex {
                table: vm.cands.candidates[c].table,
                columns: vm.cands.candidates[c].columns.clone(),
            })
            .collect();
        let planned = plan_query_with_indexes(vm.db, &vm.queries[q], &params, &hypo)?;
        let cost = planned.est_seconds(&params);
        self.cache.insert(key, cost);
        Ok(cost)
    }

    /// Unweighted workload cost of an index set (as a candidate bitmask)
    /// at a cell: per query, the cheapest config contained in the mask.
    /// Summed in query order — deterministic.
    pub fn workload_cost(
        &self,
        vm: &VmPricer<'_>,
        mask: u64,
        cpu: u32,
        mem: u32,
    ) -> Result<f64, DesignError> {
        let mut total = 0.0;
        for q in 0..vm.queries.len() {
            let menu = &vm.menus[q];
            let mut best = f64::INFINITY;
            for (k, &kmask) in menu.masks.iter().enumerate() {
                if kmask & !mask != 0 {
                    continue;
                }
                let c = self.price(vm, q, k, cpu, mem)?;
                if c < best {
                    best = c;
                }
            }
            total += best;
        }
        Ok(total)
    }

    /// Fills the cache with every `(query, config, cell)` price for the
    /// given VMs over the given cells, splitting work across `workers`
    /// threads. Prices are pure in the key, so any interleaving produces
    /// the identical table; the error for the lowest-indexed failing
    /// triple is returned regardless of interleaving.
    pub fn prewarm(
        &self,
        vms: &[VmPricer<'_>],
        cells: &[(u32, u32)],
        workers: usize,
    ) -> Result<(), DesignError> {
        let mut triples: Vec<(usize, usize, usize, u32, u32)> = Vec::new();
        for (v, vm) in vms.iter().enumerate() {
            for q in 0..vm.queries.len() {
                for k in 0..vm.menus[q].configs.len() {
                    for &(c, m) in cells {
                        triples.push((v, q, k, c, m));
                    }
                }
            }
        }
        let mut span = telemetry::span("design.whatif");
        span.set_attr("prices", triples.len());
        span.set_attr("workers", workers.max(1));
        if workers <= 1 || triples.len() <= 1 {
            for &(v, q, k, c, m) in &triples {
                self.price(&vms[v], q, k, c, m)?;
            }
            return Ok(());
        }
        let failures: Mutex<Vec<(usize, DesignError)>> = Mutex::new(Vec::new());
        let chunk_len = triples.len().div_ceil(workers);
        let parent = span.id();
        std::thread::scope(|scope| {
            for (chunk_idx, chunk) in triples.chunks(chunk_len).enumerate() {
                let failures = &failures;
                scope.spawn(move || {
                    let mut wspan = telemetry::span_with_parent("design.whatif_worker", parent);
                    wspan.set_attr("chunk", chunk_idx);
                    wspan.set_attr("prices", chunk.len());
                    for (offset, &(v, q, k, c, m)) in chunk.iter().enumerate() {
                        if let Err(e) = self.price(&vms[v], q, k, c, m) {
                            failures
                                .lock()
                                .unwrap()
                                .push((chunk_idx * chunk_len + offset, e));
                            return;
                        }
                    }
                });
            }
        });
        let mut failures = failures.into_inner().unwrap();
        failures.sort_by_key(|(idx, _)| *idx);
        match failures.into_iter().next() {
            Some((_, e)) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::enumerate_candidates;
    use crate::testutil::small_grid;
    use dbvirt_engine::Expr;
    use dbvirt_storage::{DataType, Datum, Field, Schema, Tuple};

    fn fixture() -> (Database, Vec<LogicalPlan>) {
        let mut db = Database::new();
        let t = db.create_table(
            "t",
            Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Int),
            ]),
        );
        db.insert_rows(
            t,
            (0..20_000).map(|i| Tuple::new(vec![Datum::Int(i), Datum::Int(i % 100)])),
        )
        .unwrap();
        db.analyze_all().unwrap();
        let q = LogicalPlan::scan_filtered(t, Expr::eq(Expr::col(0), Expr::int(7)));
        (db, vec![q])
    }

    fn grid() -> CalibrationGrid {
        small_grid()
    }

    #[test]
    fn config_menus_enumerate_empty_singletons_pairs() {
        let (db, queries) = fixture();
        let cands = enumerate_candidates(&db, &queries, 16);
        assert_eq!(cands.len(), 1);
        let menus = config_menus(&cands);
        assert_eq!(menus[0].configs, vec![vec![], vec![0]]);
        assert_eq!(menus[0].masks, vec![0, 1]);
    }

    #[test]
    fn an_index_config_prices_below_empty_and_is_cached() {
        let (db, queries) = fixture();
        let grid = grid();
        let cands = enumerate_candidates(&db, &queries, 16);
        let vm = VmPricer::new(&db, &queries, cands, 0);
        let pricer = DesignPricer::new(&grid, 4, 0.5);
        // A CPU- and memory-scarce cell: random index I/O is cheaper than
        // grinding 20k tuples through a slow CPU share.
        let empty = pricer.price(&vm, 0, 0, 2, 1).unwrap();
        let indexed = pricer.price(&vm, 0, 1, 2, 1).unwrap();
        assert!(
            indexed < empty,
            "a 1-in-20000 equality must prefer the hypothetical index \
             ({indexed} vs {empty})"
        );
        let evals = pricer.evaluations();
        // Re-pricing answers from the cache.
        assert_eq!(pricer.price(&vm, 0, 1, 2, 1).unwrap(), indexed);
        assert_eq!(pricer.evaluations(), evals);
        // The set cost picks the cheaper config; the empty mask can only
        // use the empty config.
        assert_eq!(pricer.workload_cost(&vm, 1, 2, 1).unwrap(), indexed);
        assert_eq!(pricer.workload_cost(&vm, 0, 2, 1).unwrap(), empty);
    }

    #[test]
    fn prewarm_parallel_fills_the_same_table_as_serial() {
        let (db, queries) = fixture();
        let grid = grid();
        let cells: Vec<(u32, u32)> = (1..=3).flat_map(|c| (1..=3).map(move |m| (c, m))).collect();

        let serial = DesignPricer::new(&grid, 4, 0.5);
        let cands = enumerate_candidates(&db, &queries, 16);
        let vm = VmPricer::new(&db, &queries, cands.clone(), 0);
        serial.prewarm(std::slice::from_ref(&vm), &cells, 1).unwrap();

        let parallel = DesignPricer::new(&grid, 4, 0.5);
        let vm2 = VmPricer::new(&db, &queries, cands, 0);
        parallel
            .prewarm(std::slice::from_ref(&vm2), &cells, 4)
            .unwrap();

        assert_eq!(serial.cache().entries(), parallel.cache().entries());
        assert_eq!(serial.evaluations(), parallel.evaluations());
    }
}
