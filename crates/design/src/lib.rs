//! dbvirt-design: physical-design advisor co-optimizing secondary
//! indexes and virtual-machine resource shares.
//!
//! The paper's virtualization design advisor chooses each database VM's
//! resource shares assuming the physical design is fixed. This crate
//! closes the other half of the loop: *what to build* and *what to
//! allocate* are decided jointly, because the two interact — an index
//! converts I/O into a little CPU and memory, which changes the shares a
//! VM should receive, which changes which indexes pay for themselves.
//!
//! The pipeline:
//!
//! 1. [`candidates`] — enumerate candidate secondary indexes from the
//!    workload's bound predicates (sargable columns, bounded two-column
//!    composites), priced by the B+tree footprint a real build would
//!    have;
//! 2. [`pricing`] — CoPhy-style what-if pricing: per query, a menu of
//!    configurations (`∅`, singletons, pairs) priced through the what-if
//!    optimizer under the calibrated parameters of each allocation cell,
//!    memoized in the allocation search's sharded cost cache;
//! 3. [`select`] — greedy selection under a per-VM storage budget,
//!    emitting a replayable decision trace;
//! 4. [`lp`] — a Lagrangian-relaxation lower bound on the selection ILP,
//!    certifying how far greedy can be from optimal;
//! 5. [`advisor`] — the alternating co-optimizer: exact allocation DP
//!    given the indexes, greedy indexes given the allocation, objective
//!    provably non-increasing, to a fixpoint. Its full decision trace is
//!    folded into an FNV-1a fingerprint that must be bit-identical across
//!    serial and parallel runs and across processes.
//!
//! [`DriftReadviceHook`] lets the runtime controller's drift detector
//! trigger index re-advice without coupling this crate to the controller.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advisor;
pub mod candidates;
mod error;
pub mod lp;
pub mod pricing;
pub mod select;

pub use advisor::{
    DesignAdvisor, DesignConfig, DriftReadviceHook, JointRecommendation, VmDesign,
};
pub use candidates::{enumerate_candidates, CandidateSet, IndexCandidate};
pub use error::DesignError;
pub use lp::{lower_bound, LpBound};
pub use pricing::{cell_code, config_menus, ConfigMenu, DesignPricer, VmPricer};
pub use select::{select_greedy, Decision, SelectionTrace};

/// Shared test fixtures: a memory-constrained machine whose calibrated
/// cost regime lets secondary indexes genuinely beat cached sequential
/// scans at CPU- or memory-scarce allocation cells.
#[cfg(test)]
pub(crate) mod testutil {
    use dbvirt_calibrate::CalibrationGrid;
    use dbvirt_vmm::MachineSpec;

    /// 1 core, 8 MiB RAM, slow disk: small enough that the effective
    /// cache and CPU budget both bind on a 20k-row table.
    pub fn small_machine() -> MachineSpec {
        MachineSpec {
            cores: 1,
            cycles_per_sec: 1.0e9,
            memory_bytes: 8 * 1024 * 1024,
            disk_seq_bytes_per_sec: 20.0 * 1024.0 * 1024.0,
            disk_random_iops: 100.0,
            page_size: 8192,
        }
    }

    /// A 4x4 calibration grid over [`small_machine`].
    pub fn small_grid() -> CalibrationGrid {
        CalibrationGrid::calibrate(
            small_machine(),
            vec![0.25, 0.5, 0.75, 1.0],
            vec![0.25, 0.5, 0.75, 1.0],
            0.5,
        )
        .unwrap()
    }
}
