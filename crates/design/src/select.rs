//! Greedy index selection under a storage budget.
//!
//! Classic benefit-greedy: starting from the empty set, repeatedly add
//! the candidate with the largest strict reduction in the config-priced
//! workload cost ([`crate::pricing::DesignPricer::workload_cost`]) that
//! still fits the page budget. Ties break to the lowest candidate index,
//! so the decision sequence — recorded as a [`SelectionTrace`] — is a
//! pure function of the priced table and feeds the advisor's
//! decision-trace fingerprint.

use crate::pricing::{DesignPricer, VmPricer};
use crate::DesignError;

/// One greedy round's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// The candidate considered best this round.
    pub candidate: usize,
    /// Cost reduction it offered (positive = improvement).
    pub gain: f64,
    /// Pages used after accepting it.
    pub pages_after: u64,
    /// Whether it was accepted (always true for recorded decisions; the
    /// loop stops at the first non-improving or non-fitting round).
    pub accepted: bool,
}

/// The full greedy run: decisions in order, the chosen set, and its cost.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionTrace {
    /// Accepted candidates as a bitmask.
    pub mask: u64,
    /// Pages consumed by the chosen set.
    pub pages_used: u64,
    /// Config-priced workload cost of the chosen set.
    pub objective: f64,
    /// The decision sequence.
    pub decisions: Vec<Decision>,
}

/// Runs greedy selection for one VM at a fixed allocation cell.
pub fn select_greedy(
    pricer: &DesignPricer<'_>,
    vm: &VmPricer<'_>,
    budget_pages: u64,
    cpu: u32,
    mem: u32,
) -> Result<SelectionTrace, DesignError> {
    let n = vm.cands.len();
    let mut mask = 0u64;
    let mut pages_used = 0u64;
    let mut objective = pricer.workload_cost(vm, mask, cpu, mem)?;
    let mut decisions = Vec::new();

    loop {
        let mut best: Option<(usize, f64, u64)> = None;
        for c in 0..n {
            if mask & (1 << c) != 0 {
                continue;
            }
            let pages = vm.cands.candidates[c].pages;
            if pages_used + pages > budget_pages {
                continue;
            }
            let cost = pricer.workload_cost(vm, mask | (1 << c), cpu, mem)?;
            let gain = objective - cost;
            // Strict improvement only; ties break to the lowest index
            // (the `>` keeps the first maximizer).
            if gain > 0.0 && best.map_or(true, |(_, g, _)| gain > g) {
                best = Some((c, gain, pages));
            }
        }
        let Some((c, gain, pages)) = best else { break };
        mask |= 1 << c;
        pages_used += pages;
        objective -= gain;
        decisions.push(Decision {
            candidate: c,
            gain,
            pages_after: pages_used,
            accepted: true,
        });
    }

    // Re-price the final mask from the cache rather than trusting the
    // accumulated deltas: bit-exact no matter how many rounds ran.
    let objective = pricer.workload_cost(vm, mask, cpu, mem)?;
    Ok(SelectionTrace {
        mask,
        pages_used,
        objective,
        decisions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::enumerate_candidates;
    use crate::testutil::small_grid;
    use dbvirt_calibrate::CalibrationGrid;
    use dbvirt_engine::{Database, Expr};
    use dbvirt_optimizer::LogicalPlan;
    use dbvirt_storage::{DataType, Datum, Field, Schema, Tuple};

    fn fixture() -> (Database, Vec<LogicalPlan>) {
        let mut db = Database::new();
        let t = db.create_table(
            "t",
            Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Int),
            ]),
        );
        db.insert_rows(
            t,
            (0..20_000).map(|i| Tuple::new(vec![Datum::Int(i), Datum::Int(i % 100)])),
        )
        .unwrap();
        db.analyze_all().unwrap();
        // Two selective equality queries on different columns: two useful
        // single-column candidates (plus composites).
        let qa = LogicalPlan::scan_filtered(t, Expr::eq(Expr::col(0), Expr::int(7)));
        let qb = LogicalPlan::scan_filtered(t, Expr::eq(Expr::col(1), Expr::int(3)));
        (db, vec![qa, qb])
    }

    fn grid() -> CalibrationGrid {
        small_grid()
    }

    #[test]
    fn greedy_takes_improving_candidates_within_budget() {
        let (db, queries) = fixture();
        let grid = grid();
        let cands = enumerate_candidates(&db, &queries, 16);
        let per_index_pages = cands.candidates[0].pages;
        let vm = VmPricer::new(&db, &queries, cands, 0);
        let pricer = DesignPricer::new(&grid, 4, 0.5);

        let trace = select_greedy(&pricer, &vm, per_index_pages * 8, 2, 1).unwrap();
        assert!(!trace.decisions.is_empty(), "some index must help");
        assert!(trace.pages_used <= per_index_pages * 8);
        let empty = pricer.workload_cost(&vm, 0, 2, 1).unwrap();
        assert!(trace.objective < empty);
        // Decisions carry strictly positive gains.
        assert!(trace.decisions.iter().all(|d| d.gain > 0.0));

        // Zero budget: nothing fits, empty selection, empty-set objective.
        let none = select_greedy(&pricer, &vm, 0, 2, 1).unwrap();
        assert_eq!(none.mask, 0);
        assert_eq!(none.objective, empty);
        assert!(none.decisions.is_empty());

        // One-index budget: exactly one accepted, and it is the better of
        // the two single candidates.
        let one = select_greedy(&pricer, &vm, per_index_pages, 2, 1).unwrap();
        assert_eq!(one.decisions.len(), 1);
        assert!(one.pages_used <= per_index_pages);
        assert!(one.objective <= trace.objective + (empty - trace.objective));
    }

    #[test]
    fn greedy_is_deterministic() {
        let (db, queries) = fixture();
        let grid = grid();
        let cands = enumerate_candidates(&db, &queries, 16);
        let budget = cands.candidates[0].pages * 4;
        let vm = VmPricer::new(&db, &queries, cands, 0);
        let a = {
            let pricer = DesignPricer::new(&grid, 4, 0.5);
            select_greedy(&pricer, &vm, budget, 2, 1).unwrap()
        };
        let b = {
            let pricer = DesignPricer::new(&grid, 4, 0.5);
            select_greedy(&pricer, &vm, budget, 2, 1).unwrap()
        };
        assert_eq!(a, b);
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
    }
}
