//! Error type for the design advisor.

use dbvirt_calibrate::CalError;
use dbvirt_core::CoreError;
use dbvirt_optimizer::OptError;
use std::fmt;

/// Anything that can go wrong while advising a physical design.
#[derive(Debug)]
pub enum DesignError {
    /// A what-if planning call failed.
    Optimizer(OptError),
    /// The calibration grid rejected an allocation.
    Calibration(CalError),
    /// The embedded allocation search failed.
    Core(CoreError),
    /// The advisor's inputs were malformed.
    BadConfig {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::Optimizer(e) => write!(f, "optimizer: {e}"),
            DesignError::Calibration(e) => write!(f, "calibration: {e}"),
            DesignError::Core(e) => write!(f, "allocation search: {e}"),
            DesignError::BadConfig { reason } => write!(f, "bad design config: {reason}"),
        }
    }
}

impl std::error::Error for DesignError {}

impl From<OptError> for DesignError {
    fn from(e: OptError) -> DesignError {
        DesignError::Optimizer(e)
    }
}

impl From<CalError> for DesignError {
    fn from(e: CalError) -> DesignError {
        DesignError::Calibration(e)
    }
}

impl From<CoreError> for DesignError {
    fn from(e: CoreError) -> DesignError {
        DesignError::Core(e)
    }
}
