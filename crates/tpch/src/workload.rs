//! Workload composition.
//!
//! The paper's Figure 5 workloads are "3 copies of Q4" and "9 copies of
//! Q13" — multiple copies "to reduce any effects of startup overheads",
//! sized so the two workloads take about the same time at the default
//! 50/50 allocation. A [`Workload`] is exactly that: a named sequence of
//! query plans.

use crate::{TpchDb, TpchQuery};
use dbvirt_optimizer::LogicalPlan;

/// A named sequence of queries to be run by one virtual machine.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name, e.g. `3xQ4`.
    pub name: String,
    /// The queries, in execution order.
    pub queries: Vec<LogicalPlan>,
}

impl Workload {
    /// Builds a workload from `(query, copies)` pairs.
    pub fn compose(t: &TpchDb, mix: &[(TpchQuery, usize)]) -> Workload {
        let name = mix
            .iter()
            .map(|(q, n)| format!("{n}x{q}"))
            .collect::<Vec<_>>()
            .join("+");
        let queries = mix
            .iter()
            .flat_map(|(q, n)| std::iter::repeat_with(|| q.plan(t)).take(*n))
            .collect();
        Workload { name, queries }
    }

    /// A single-query workload.
    pub fn single(t: &TpchDb, q: TpchQuery) -> Workload {
        Workload::compose(t, &[(q, 1)])
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if the workload has no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TpchConfig;

    #[test]
    fn compose_repeats_and_names() {
        let t = TpchDb::generate(TpchConfig::tiny()).unwrap();
        let w = Workload::compose(&t, &[(TpchQuery::Q4, 3), (TpchQuery::Q6, 2)]);
        assert_eq!(w.len(), 5);
        assert_eq!(w.name, "3xQ4+2xQ6");
        assert!(!w.is_empty());
        // Copies are identical plans.
        assert_eq!(w.queries[0], w.queries[1]);
        assert_ne!(w.queries[0], w.queries[4]);
    }

    #[test]
    fn single_is_one_query() {
        let t = TpchDb::generate(TpchConfig::tiny()).unwrap();
        let w = Workload::single(&t, TpchQuery::Q13);
        assert_eq!(w.len(), 1);
        assert_eq!(w.name, "1xQ13");
    }
}
