//! Logical plans for the TPC-H query subset.
//!
//! Q4 and Q13 are the queries the paper's Figures 4 and 5 are built on:
//! Q4 is I/O-bound (a date-windowed semi-join counting orders with late
//! lineitems), Q13 is CPU-bound (a `NOT LIKE` filter over every order
//! comment feeding a two-level aggregation). The remaining queries give
//! the search experiments a spread of resource profiles.

use crate::col::{customer, lineitem, nation, orders, part, region, supplier};
use crate::{date, TpchDb};
use dbvirt_engine::{AggExpr, AggFunc, Expr, JoinType, SortKey};
use dbvirt_optimizer::{JoinCondition, LogicalPlan};
use std::fmt;

/// The implemented TPC-H queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpchQuery {
    /// Pricing summary report (scan + wide aggregation).
    Q1,
    /// Shipping priority (3-way join, top-10).
    Q3,
    /// Order priority checking (date window + semi-join) — Figure 4/5's
    /// I/O-bound query.
    Q4,
    /// Local supplier volume (6-way join).
    Q5,
    /// Forecasting revenue change (selective scan, global aggregate).
    Q6,
    /// Returned item reporting (4-way join, top-20).
    Q10,
    /// Customer distribution (left join + double aggregation) — Figure
    /// 4/5's CPU-bound query.
    Q13,
    /// Promotion effect (join + CASE aggregation).
    Q14,
    /// Large volume customer (HAVING subquery + 3-way join, top-100).
    Q18,
}

impl TpchQuery {
    /// Every implemented query.
    pub fn all() -> [TpchQuery; 9] {
        [
            TpchQuery::Q1,
            TpchQuery::Q3,
            TpchQuery::Q4,
            TpchQuery::Q5,
            TpchQuery::Q6,
            TpchQuery::Q10,
            TpchQuery::Q13,
            TpchQuery::Q14,
            TpchQuery::Q18,
        ]
    }

    /// Builds this query's logical plan against a generated database.
    pub fn plan(self, t: &TpchDb) -> LogicalPlan {
        match self {
            TpchQuery::Q1 => q1(t),
            TpchQuery::Q3 => q3(t),
            TpchQuery::Q4 => q4(t),
            TpchQuery::Q5 => q5(t),
            TpchQuery::Q6 => q6(t),
            TpchQuery::Q10 => q10(t),
            TpchQuery::Q13 => q13(t),
            TpchQuery::Q14 => q14(t),
            TpchQuery::Q18 => q18(t),
        }
    }
}

impl fmt::Display for TpchQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

fn on(left_col: usize, right_col: usize) -> JoinCondition {
    JoinCondition {
        left_col,
        right_col,
    }
}

/// `l_extendedprice * (1 - l_discount)` at a given column offset.
fn revenue_expr(offset: usize) -> Expr {
    Expr::mul(
        Expr::col(offset + lineitem::EXTENDEDPRICE),
        Expr::sub(Expr::float(1.0), Expr::col(offset + lineitem::DISCOUNT)),
    )
}

/// Q1: pricing summary report.
fn q1(t: &TpchDb) -> LogicalPlan {
    let cutoff = date(1998, 12, 1) - 90;
    LogicalPlan::scan_filtered(
        t.lineitem,
        Expr::le(Expr::col(lineitem::SHIPDATE), Expr::date(cutoff)),
    )
    .aggregate(
        vec![lineitem::RETURNFLAG, lineitem::LINESTATUS],
        vec![
            AggExpr::new(AggFunc::Sum, Expr::col(lineitem::QUANTITY), "sum_qty"),
            AggExpr::new(
                AggFunc::Sum,
                Expr::col(lineitem::EXTENDEDPRICE),
                "sum_base_price",
            ),
            AggExpr::new(AggFunc::Sum, revenue_expr(0), "sum_disc_price"),
            AggExpr::new(
                AggFunc::Sum,
                Expr::mul(
                    revenue_expr(0),
                    Expr::add(Expr::float(1.0), Expr::col(lineitem::TAX)),
                ),
                "sum_charge",
            ),
            AggExpr::new(AggFunc::Avg, Expr::col(lineitem::QUANTITY), "avg_qty"),
            AggExpr::new(
                AggFunc::Avg,
                Expr::col(lineitem::EXTENDEDPRICE),
                "avg_price",
            ),
            AggExpr::new(AggFunc::Avg, Expr::col(lineitem::DISCOUNT), "avg_disc"),
            AggExpr::count_star("count_order"),
        ],
    )
    .sort(vec![SortKey::asc(0), SortKey::asc(1)])
}

/// Q3: shipping priority.
fn q3(t: &TpchDb) -> LogicalPlan {
    let d = date(1995, 3, 15);
    let cust_arity = 8;
    let orders_off = cust_arity;
    let line_off = orders_off + 8;
    LogicalPlan::scan_filtered(
        t.customer,
        Expr::eq(Expr::col(customer::MKTSEGMENT), Expr::str("BUILDING")),
    )
    .join(
        LogicalPlan::scan_filtered(
            t.orders,
            Expr::lt(Expr::col(orders::ORDERDATE), Expr::date(d)),
        ),
        vec![on(customer::CUSTKEY, orders::CUSTKEY)],
    )
    .join(
        LogicalPlan::scan_filtered(
            t.lineitem,
            Expr::gt(Expr::col(lineitem::SHIPDATE), Expr::date(d)),
        ),
        vec![on(orders_off + orders::ORDERKEY, lineitem::ORDERKEY)],
    )
    .aggregate(
        vec![
            orders_off + orders::ORDERKEY,
            orders_off + orders::ORDERDATE,
            orders_off + orders::SHIPPRIORITY,
        ],
        vec![AggExpr::new(
            AggFunc::Sum,
            revenue_expr(line_off),
            "revenue",
        )],
    )
    .sort(vec![SortKey::desc(3), SortKey::asc(1)])
    .limit(10)
}

/// Q4: order priority checking — the paper's I/O-bound query.
fn q4(t: &TpchDb) -> LogicalPlan {
    let lo = date(1993, 7, 1);
    let hi = date(1993, 10, 1);
    LogicalPlan::scan_filtered(
        t.orders,
        Expr::and(
            Expr::ge(Expr::col(orders::ORDERDATE), Expr::date(lo)),
            Expr::lt(Expr::col(orders::ORDERDATE), Expr::date(hi)),
        ),
    )
    .join_as(
        LogicalPlan::scan_filtered(
            t.lineitem,
            Expr::lt(
                Expr::col(lineitem::COMMITDATE),
                Expr::col(lineitem::RECEIPTDATE),
            ),
        ),
        vec![on(orders::ORDERKEY, lineitem::ORDERKEY)],
        JoinType::Semi,
    )
    .aggregate(
        vec![orders::ORDERPRIORITY],
        vec![AggExpr::count_star("order_count")],
    )
    .sort(vec![SortKey::asc(0)])
}

/// Q5: local supplier volume.
fn q5(t: &TpchDb) -> LogicalPlan {
    let lo = date(1994, 1, 1);
    let hi = date(1995, 1, 1);
    let orders_off = 8;
    let line_off = orders_off + 8; // 16
    let supp_off = line_off + 13; // 29
    let nation_off = supp_off + 4; // 33
    LogicalPlan::scan(t.customer)
        .join(
            LogicalPlan::scan_filtered(
                t.orders,
                Expr::and(
                    Expr::ge(Expr::col(orders::ORDERDATE), Expr::date(lo)),
                    Expr::lt(Expr::col(orders::ORDERDATE), Expr::date(hi)),
                ),
            ),
            vec![on(customer::CUSTKEY, orders::CUSTKEY)],
        )
        .join(
            LogicalPlan::scan(t.lineitem),
            vec![on(orders_off + orders::ORDERKEY, lineitem::ORDERKEY)],
        )
        .join(
            LogicalPlan::scan(t.supplier),
            vec![
                on(line_off + lineitem::SUPPKEY, supplier::SUPPKEY),
                on(customer::NATIONKEY, supplier::NATIONKEY),
            ],
        )
        .join(
            LogicalPlan::scan(t.nation),
            vec![on(supp_off + supplier::NATIONKEY, nation::NATIONKEY)],
        )
        .join(
            LogicalPlan::scan_filtered(
                t.region,
                Expr::eq(Expr::col(region::NAME), Expr::str("ASIA")),
            ),
            vec![on(nation_off + nation::REGIONKEY, region::REGIONKEY)],
        )
        .aggregate(
            vec![nation_off + nation::NAME],
            vec![AggExpr::new(
                AggFunc::Sum,
                revenue_expr(line_off),
                "revenue",
            )],
        )
        .sort(vec![SortKey::desc(1)])
}

/// Q6: forecasting revenue change.
fn q6(t: &TpchDb) -> LogicalPlan {
    let lo = date(1994, 1, 1);
    let hi = date(1995, 1, 1);
    LogicalPlan::scan_filtered(
        t.lineitem,
        Expr::and_all(vec![
            Expr::ge(Expr::col(lineitem::SHIPDATE), Expr::date(lo)),
            Expr::lt(Expr::col(lineitem::SHIPDATE), Expr::date(hi)),
            Expr::between(
                Expr::col(lineitem::DISCOUNT),
                dbvirt_storage::Datum::Float(0.05),
                dbvirt_storage::Datum::Float(0.07),
            ),
            Expr::lt(Expr::col(lineitem::QUANTITY), Expr::int(24)),
        ]),
    )
    .aggregate(
        vec![],
        vec![AggExpr::new(
            AggFunc::Sum,
            Expr::mul(
                Expr::col(lineitem::EXTENDEDPRICE),
                Expr::col(lineitem::DISCOUNT),
            ),
            "revenue",
        )],
    )
}

/// Q10: returned item reporting.
fn q10(t: &TpchDb) -> LogicalPlan {
    let lo = date(1993, 10, 1);
    let hi = date(1994, 1, 1);
    let orders_off = 8;
    let line_off = orders_off + 8; // 16
    let nation_off = line_off + 13; // 29
    LogicalPlan::scan(t.customer)
        .join(
            LogicalPlan::scan_filtered(
                t.orders,
                Expr::and(
                    Expr::ge(Expr::col(orders::ORDERDATE), Expr::date(lo)),
                    Expr::lt(Expr::col(orders::ORDERDATE), Expr::date(hi)),
                ),
            ),
            vec![on(customer::CUSTKEY, orders::CUSTKEY)],
        )
        .join(
            LogicalPlan::scan_filtered(
                t.lineitem,
                Expr::eq(Expr::col(lineitem::RETURNFLAG), Expr::str("R")),
            ),
            vec![on(orders_off + orders::ORDERKEY, lineitem::ORDERKEY)],
        )
        .join(
            LogicalPlan::scan(t.nation),
            vec![on(customer::NATIONKEY, nation::NATIONKEY)],
        )
        .aggregate(
            vec![
                customer::CUSTKEY,
                customer::NAME,
                customer::ACCTBAL,
                customer::PHONE,
                nation_off + nation::NAME,
                customer::ADDRESS,
                customer::COMMENT,
            ],
            vec![AggExpr::new(
                AggFunc::Sum,
                revenue_expr(line_off),
                "revenue",
            )],
        )
        .sort(vec![SortKey::desc(7)])
        .limit(20)
}

/// Q13: customer distribution — the paper's CPU-bound query.
fn q13(t: &TpchDb) -> LogicalPlan {
    let orders_off = 8;
    LogicalPlan::scan(t.customer)
        .join_as(
            LogicalPlan::scan_filtered(
                t.orders,
                Expr::not_like(Expr::col(orders::COMMENT), "%special%requests%"),
            ),
            vec![on(customer::CUSTKEY, orders::CUSTKEY)],
            JoinType::Left,
        )
        // c_orders: count of non-null order keys per customer.
        .aggregate(
            vec![customer::CUSTKEY],
            vec![AggExpr::new(
                AggFunc::Count,
                Expr::col(orders_off + orders::ORDERKEY),
                "c_count",
            )],
        )
        // custdist: how many customers have each order count.
        .aggregate(vec![1], vec![AggExpr::count_star("custdist")])
        .sort(vec![SortKey::desc(1), SortKey::desc(0)])
}

/// Q14: promotion effect.
fn q14(t: &TpchDb) -> LogicalPlan {
    let lo = date(1995, 9, 1);
    let hi = date(1995, 10, 1);
    let part_off = 13;
    LogicalPlan::scan_filtered(
        t.lineitem,
        Expr::and(
            Expr::ge(Expr::col(lineitem::SHIPDATE), Expr::date(lo)),
            Expr::lt(Expr::col(lineitem::SHIPDATE), Expr::date(hi)),
        ),
    )
    .join(
        LogicalPlan::scan(t.part),
        vec![on(lineitem::PARTKEY, part::PARTKEY)],
    )
    .aggregate(
        vec![],
        vec![
            AggExpr::new(
                AggFunc::Sum,
                Expr::Case {
                    branches: vec![(
                        Expr::like(Expr::col(part_off + part::TYPE), "PROMO%"),
                        revenue_expr(0),
                    )],
                    else_expr: Some(Box::new(Expr::float(0.0))),
                },
                "promo",
            ),
            AggExpr::new(AggFunc::Sum, revenue_expr(0), "total"),
        ],
    )
    .project(vec![(
        Expr::arith(
            dbvirt_engine::BinOp::Div,
            Expr::mul(Expr::float(100.0), Expr::col(0)),
            Expr::col(1),
        ),
        "promo_revenue".to_string(),
    )])
}

/// Q18: large volume customer. The `HAVING SUM(l_quantity) > 250` inner
/// aggregate becomes a semi-join filter on orders.
fn q18(t: &TpchDb) -> LogicalPlan {
    let big_orders = LogicalPlan::scan(t.lineitem)
        .aggregate(
            vec![lineitem::ORDERKEY],
            vec![AggExpr::new(
                AggFunc::Sum,
                Expr::col(lineitem::QUANTITY),
                "sum_qty",
            )],
        )
        .filter(Expr::gt(Expr::col(1), Expr::int(250)));

    let orders_off = 8;
    let line_off = orders_off + 8;
    LogicalPlan::scan(t.customer)
        .join(
            LogicalPlan::scan(t.orders).join_as(
                big_orders,
                vec![on(orders::ORDERKEY, 0)],
                JoinType::Semi,
            ),
            vec![on(customer::CUSTKEY, orders::CUSTKEY)],
        )
        .join(
            LogicalPlan::scan(t.lineitem),
            vec![on(orders_off + orders::ORDERKEY, lineitem::ORDERKEY)],
        )
        .aggregate(
            vec![
                customer::NAME,
                customer::CUSTKEY,
                orders_off + orders::ORDERKEY,
                orders_off + orders::ORDERDATE,
                orders_off + orders::TOTALPRICE,
            ],
            vec![AggExpr::new(
                AggFunc::Sum,
                Expr::col(line_off + lineitem::QUANTITY),
                "sum_qty",
            )],
        )
        .sort(vec![SortKey::desc(4), SortKey::asc(3)])
        .limit(100)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TpchConfig;
    use dbvirt_engine::{run_plan, CpuCosts};
    use dbvirt_optimizer::{plan_query, OptimizerParams};
    use dbvirt_storage::BufferPool;

    fn run(q: TpchQuery) -> dbvirt_engine::QueryOutput {
        let mut t = TpchDb::generate(TpchConfig::tiny()).unwrap();
        let logical = q.plan(&t);
        let planned = plan_query(&t.db, &logical, &OptimizerParams::default()).unwrap();
        let mut pool = BufferPool::new(4096);
        run_plan(
            &mut t.db,
            &mut pool,
            &planned.physical,
            4 << 20,
            CpuCosts::default(),
        )
        .unwrap()
    }

    #[test]
    fn q1_produces_flag_status_groups() {
        let out = run(TpchQuery::Q1);
        // 3 return flags x 2 line statuses, possibly minus empty combos.
        assert!(
            (4..=6).contains(&out.rows.len()),
            "{} groups",
            out.rows.len()
        );
        assert_eq!(out.schema.field(2).name, "sum_qty");
        // Sorted by flag then status.
        let keys: Vec<(String, String)> = out
            .rows
            .iter()
            .map(|r| {
                (
                    r.get(0).as_str().unwrap().to_string(),
                    r.get(1).as_str().unwrap().to_string(),
                )
            })
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        // sum_disc_price <= sum_base_price (discounts only reduce).
        for r in &out.rows {
            assert!(r.get(4).as_float().unwrap() <= r.get(3).as_float().unwrap());
        }
    }

    #[test]
    fn q3_returns_top_orders() {
        let out = run(TpchQuery::Q3);
        assert!(out.rows.len() <= 10);
        assert!(!out.rows.is_empty());
        // Revenue is descending.
        let revenues: Vec<f64> = out
            .rows
            .iter()
            .map(|r| r.get(3).as_float().unwrap())
            .collect();
        assert!(revenues.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn q4_counts_priorities() {
        let out = run(TpchQuery::Q4);
        assert_eq!(out.rows.len(), 5, "all five priorities appear");
        // Alphabetical priority order.
        let names: Vec<&str> = out
            .rows
            .iter()
            .map(|r| r.get(0).as_str().unwrap())
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        for r in &out.rows {
            assert!(r.get(1).as_int().unwrap() > 0);
        }
    }

    #[test]
    fn q5_sums_by_nation() {
        let out = run(TpchQuery::Q5);
        // Only ASIA nations (5 of 25) can appear.
        assert!(out.rows.len() <= 5);
        let revenues: Vec<f64> = out
            .rows
            .iter()
            .map(|r| r.get(1).as_float().unwrap())
            .collect();
        assert!(revenues.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn q6_returns_single_revenue() {
        let out = run(TpchQuery::Q6);
        assert_eq!(out.rows.len(), 1);
        let revenue = out.rows[0].get(0).as_float().unwrap();
        assert!(revenue > 0.0);
    }

    #[test]
    fn q10_returns_top20_customers() {
        let out = run(TpchQuery::Q10);
        assert!(out.rows.len() <= 20);
        assert!(!out.rows.is_empty());
        assert_eq!(out.schema.field(7).name, "revenue");
    }

    #[test]
    fn q13_is_a_count_distribution() {
        let out = run(TpchQuery::Q13);
        assert!(!out.rows.is_empty());
        // Total customers across the distribution equals the customer count.
        let total: i64 = out
            .rows
            .iter()
            .map(|r| r.get(1).as_int().unwrap())
            .collect::<Vec<_>>()
            .iter()
            .sum();
        let t = TpchDb::generate(TpchConfig::tiny()).unwrap();
        let n_customers = t.db.table(t.customer).stats.as_ref().unwrap().n_rows as i64;
        assert_eq!(total, n_customers);
        // custdist descending.
        let dist: Vec<i64> = out
            .rows
            .iter()
            .map(|r| r.get(1).as_int().unwrap())
            .collect();
        assert!(dist.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn q14_returns_percentage() {
        let out = run(TpchQuery::Q14);
        assert_eq!(out.rows.len(), 1);
        let pct = out.rows[0].get(0).as_float().unwrap();
        assert!((0.0..=100.0).contains(&pct), "promo fraction {pct}%");
        // PROMO is 1 of 6 type syllables, so expect roughly 1/6.
        assert!((5.0..35.0).contains(&pct), "promo fraction {pct}%");
    }

    #[test]
    fn q18_finds_large_volume_orders() {
        let out = run(TpchQuery::Q18);
        assert!(out.rows.len() <= 100);
        assert!(
            !out.rows.is_empty(),
            "some orders exceed the quantity threshold"
        );
        // Every returned order's summed quantity exceeds the threshold.
        for r in &out.rows {
            assert!(r.get(5).as_int().unwrap() > 250);
        }
    }

    #[test]
    fn all_queries_plan_and_execute() {
        let mut t = TpchDb::generate(TpchConfig::tiny()).unwrap();
        let params = OptimizerParams::default();
        for q in TpchQuery::all() {
            let logical = q.plan(&t);
            let planned = plan_query(&t.db, &logical, &params)
                .unwrap_or_else(|e| panic!("{q} failed to plan: {e}"));
            let mut pool = BufferPool::new(4096);
            let out = run_plan(
                &mut t.db,
                &mut pool,
                &planned.physical,
                4 << 20,
                CpuCosts::default(),
            )
            .unwrap_or_else(|e| panic!("{q} failed to execute: {e}"));
            assert!(out.demand.cpu_cycles > 0.0, "{q} did no work");
        }
    }
}
