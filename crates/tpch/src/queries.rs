//! SQL text for the TPC-H query subset.
//!
//! Q4 and Q13 are the queries the paper's Figures 4 and 5 are built on:
//! Q4 is I/O-bound (a date-windowed semi-join counting orders with late
//! lineitems), Q13 is CPU-bound (a `NOT LIKE` filter over every order
//! comment feeding a two-level aggregation). The remaining queries give
//! the search experiments a spread of resource profiles.
//!
//! Every query is SQL, compiled through the full parser → binder →
//! optimizer pipeline ([`TpchQuery::plan`] → [`dbvirt_sql::parse_query`]).
//! There are no hand-built plans.

use crate::TpchDb;
use dbvirt_optimizer::LogicalPlan;
use std::fmt;

/// The implemented TPC-H queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpchQuery {
    /// Pricing summary report (scan + wide aggregation).
    Q1,
    /// Shipping priority (3-way join, top-10).
    Q3,
    /// Order priority checking (date window + semi-join) — Figure 4/5's
    /// I/O-bound query.
    Q4,
    /// Local supplier volume (6-way join).
    Q5,
    /// Forecasting revenue change (selective scan, global aggregate).
    Q6,
    /// Returned item reporting (4-way join, top-20).
    Q10,
    /// Customer distribution (left join + double aggregation) — Figure
    /// 4/5's CPU-bound query.
    Q13,
    /// Promotion effect (join + CASE aggregation).
    Q14,
    /// Large volume customer (HAVING subquery + 3-way join, top-100).
    Q18,
}

impl TpchQuery {
    /// Every implemented query.
    pub fn all() -> [TpchQuery; 9] {
        [
            TpchQuery::Q1,
            TpchQuery::Q3,
            TpchQuery::Q4,
            TpchQuery::Q5,
            TpchQuery::Q6,
            TpchQuery::Q10,
            TpchQuery::Q13,
            TpchQuery::Q14,
            TpchQuery::Q18,
        ]
    }

    /// The SQL text of this query (parameters inlined at the spec's
    /// validation values, dates pre-resolved).
    pub fn sql(self) -> &'static str {
        match self {
            // 1998-12-01 minus 90 days.
            TpchQuery::Q1 => {
                "SELECT l_returnflag, l_linestatus, \
                 SUM(l_quantity) AS sum_qty, \
                 SUM(l_extendedprice) AS sum_base_price, \
                 SUM(l_extendedprice * (1.0 - l_discount)) AS sum_disc_price, \
                 SUM(l_extendedprice * (1.0 - l_discount) * (1.0 + l_tax)) AS sum_charge, \
                 AVG(l_quantity) AS avg_qty, \
                 AVG(l_extendedprice) AS avg_price, \
                 AVG(l_discount) AS avg_disc, \
                 COUNT(*) AS count_order \
                 FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' \
                 GROUP BY l_returnflag, l_linestatus \
                 ORDER BY l_returnflag, l_linestatus"
            }
            TpchQuery::Q3 => {
                "SELECT o_orderkey, o_orderdate, o_shippriority, \
                 SUM(l_extendedprice * (1.0 - l_discount)) AS revenue \
                 FROM customer, orders, lineitem \
                 WHERE c_mktsegment = 'BUILDING' \
                 AND c_custkey = o_custkey AND l_orderkey = o_orderkey \
                 AND o_orderdate < DATE '1995-03-15' \
                 AND l_shipdate > DATE '1995-03-15' \
                 GROUP BY o_orderkey, o_orderdate, o_shippriority \
                 ORDER BY revenue DESC, o_orderdate LIMIT 10"
            }
            TpchQuery::Q4 => {
                "SELECT o_orderpriority, COUNT(*) AS order_count \
                 FROM orders \
                 WHERE o_orderdate >= DATE '1993-07-01' \
                 AND o_orderdate < DATE '1993-10-01' \
                 AND EXISTS (SELECT * FROM lineitem \
                 WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate) \
                 GROUP BY o_orderpriority ORDER BY o_orderpriority"
            }
            TpchQuery::Q5 => {
                "SELECT n_name, SUM(l_extendedprice * (1.0 - l_discount)) AS revenue \
                 FROM customer \
                 JOIN orders ON c_custkey = o_custkey \
                 JOIN lineitem ON o_orderkey = l_orderkey \
                 JOIN supplier ON l_suppkey = s_suppkey AND c_nationkey = s_nationkey \
                 JOIN nation ON s_nationkey = n_nationkey \
                 JOIN region ON n_regionkey = r_regionkey \
                 WHERE r_name = 'ASIA' \
                 AND o_orderdate >= DATE '1994-01-01' \
                 AND o_orderdate < DATE '1995-01-01' \
                 GROUP BY n_name ORDER BY revenue DESC"
            }
            TpchQuery::Q6 => {
                "SELECT SUM(l_extendedprice * l_discount) AS revenue \
                 FROM lineitem \
                 WHERE l_shipdate >= DATE '1994-01-01' \
                 AND l_shipdate < DATE '1995-01-01' \
                 AND l_discount BETWEEN 0.05 AND 0.07 \
                 AND l_quantity < 24"
            }
            TpchQuery::Q10 => {
                "SELECT c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment, \
                 SUM(l_extendedprice * (1.0 - l_discount)) AS revenue \
                 FROM customer \
                 JOIN orders ON c_custkey = o_custkey \
                 JOIN lineitem ON o_orderkey = l_orderkey \
                 JOIN nation ON c_nationkey = n_nationkey \
                 WHERE o_orderdate >= DATE '1993-10-01' \
                 AND o_orderdate < DATE '1994-01-01' \
                 AND l_returnflag = 'R' \
                 GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment \
                 ORDER BY revenue DESC LIMIT 20"
            }
            TpchQuery::Q13 => {
                "SELECT c_count, COUNT(*) AS custdist FROM \
                 (SELECT c_custkey, COUNT(o_orderkey) AS c_count \
                 FROM customer LEFT JOIN orders \
                 ON c_custkey = o_custkey AND o_comment NOT LIKE '%special%requests%' \
                 GROUP BY c_custkey) c_orders \
                 GROUP BY c_count ORDER BY custdist DESC, c_count DESC"
            }
            TpchQuery::Q14 => {
                "SELECT 100.0 * SUM(CASE WHEN p_type LIKE 'PROMO%' \
                 THEN l_extendedprice * (1.0 - l_discount) ELSE 0.0 END) \
                 / SUM(l_extendedprice * (1.0 - l_discount)) AS promo_revenue \
                 FROM lineitem JOIN part ON l_partkey = p_partkey \
                 WHERE l_shipdate >= DATE '1995-09-01' \
                 AND l_shipdate < DATE '1995-10-01'"
            }
            TpchQuery::Q18 => {
                "SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, \
                 SUM(l_quantity) AS sum_qty \
                 FROM customer \
                 JOIN orders ON c_custkey = o_custkey \
                 JOIN lineitem ON o_orderkey = l_orderkey \
                 WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem \
                 GROUP BY l_orderkey HAVING SUM(l_quantity) > 250) \
                 GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice \
                 ORDER BY o_totalprice DESC, o_orderdate LIMIT 100"
            }
        }
    }

    /// Compiles this query's SQL against a generated database: the full
    /// parser → binder pipeline, no hand-built plans.
    pub fn plan(self, t: &TpchDb) -> LogicalPlan {
        dbvirt_sql::parse_query(self.sql(), &t.db)
            .unwrap_or_else(|e| panic!("{self} failed to compile: {e}"))
    }
}

impl fmt::Display for TpchQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TpchConfig, TpchDb};
    use dbvirt_engine::{run_plan, CpuCosts};
    use dbvirt_optimizer::{plan_query, OptimizerParams};
    use dbvirt_storage::BufferPool;

    fn run(q: TpchQuery) -> dbvirt_engine::QueryOutput {
        let mut t = TpchDb::generate(TpchConfig::tiny()).unwrap();
        let logical = q.plan(&t);
        let planned = plan_query(&t.db, &logical, &OptimizerParams::default()).unwrap();
        let mut pool = BufferPool::new(4096);
        run_plan(
            &mut t.db,
            &mut pool,
            &planned.physical,
            4 << 20,
            CpuCosts::default(),
        )
        .unwrap()
    }

    #[test]
    fn q1_produces_flag_status_groups() {
        let out = run(TpchQuery::Q1);
        // 3 return flags x 2 line statuses, possibly minus empty combos.
        assert!(
            (4..=6).contains(&out.rows.len()),
            "{} groups",
            out.rows.len()
        );
        assert_eq!(out.schema.field(2).name, "sum_qty");
        // Sorted by flag then status.
        let keys: Vec<(String, String)> = out
            .rows
            .iter()
            .map(|r| {
                (
                    r.get(0).as_str().unwrap().to_string(),
                    r.get(1).as_str().unwrap().to_string(),
                )
            })
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        // sum_disc_price <= sum_base_price (discounts only reduce).
        for r in &out.rows {
            assert!(r.get(4).as_float().unwrap() <= r.get(3).as_float().unwrap());
        }
    }

    #[test]
    fn q3_returns_top_orders() {
        let out = run(TpchQuery::Q3);
        assert!(out.rows.len() <= 10);
        assert!(!out.rows.is_empty());
        // Revenue is descending.
        let revenues: Vec<f64> = out
            .rows
            .iter()
            .map(|r| r.get(3).as_float().unwrap())
            .collect();
        assert!(revenues.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn q4_counts_priorities() {
        let out = run(TpchQuery::Q4);
        assert_eq!(out.rows.len(), 5, "all five priorities appear");
        // Alphabetical priority order.
        let names: Vec<&str> = out
            .rows
            .iter()
            .map(|r| r.get(0).as_str().unwrap())
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        for r in &out.rows {
            assert!(r.get(1).as_int().unwrap() > 0);
        }
    }

    #[test]
    fn q5_sums_by_nation() {
        let out = run(TpchQuery::Q5);
        // Only ASIA nations (5 of 25) can appear.
        assert!(out.rows.len() <= 5);
        let revenues: Vec<f64> = out
            .rows
            .iter()
            .map(|r| r.get(1).as_float().unwrap())
            .collect();
        assert!(revenues.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn q6_returns_single_revenue() {
        let out = run(TpchQuery::Q6);
        assert_eq!(out.rows.len(), 1);
        let revenue = out.rows[0].get(0).as_float().unwrap();
        assert!(revenue > 0.0);
    }

    #[test]
    fn q10_returns_top20_customers() {
        let out = run(TpchQuery::Q10);
        assert!(out.rows.len() <= 20);
        assert!(!out.rows.is_empty());
        assert_eq!(out.schema.field(7).name, "revenue");
    }

    #[test]
    fn q13_is_a_count_distribution() {
        let out = run(TpchQuery::Q13);
        assert!(!out.rows.is_empty());
        // Total customers across the distribution equals the customer count.
        let total: i64 = out
            .rows
            .iter()
            .map(|r| r.get(1).as_int().unwrap())
            .collect::<Vec<_>>()
            .iter()
            .sum();
        let t = TpchDb::generate(TpchConfig::tiny()).unwrap();
        let n_customers = t.db.table(t.customer).stats.as_ref().unwrap().n_rows as i64;
        assert_eq!(total, n_customers);
        // custdist descending.
        let dist: Vec<i64> = out
            .rows
            .iter()
            .map(|r| r.get(1).as_int().unwrap())
            .collect();
        assert!(dist.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn q14_returns_percentage() {
        let out = run(TpchQuery::Q14);
        assert_eq!(out.rows.len(), 1);
        let pct = out.rows[0].get(0).as_float().unwrap();
        assert!((0.0..=100.0).contains(&pct), "promo fraction {pct}%");
        // PROMO is 1 of 6 type syllables, so expect roughly 1/6.
        assert!((5.0..35.0).contains(&pct), "promo fraction {pct}%");
    }

    #[test]
    fn q18_finds_large_volume_orders() {
        let out = run(TpchQuery::Q18);
        assert!(out.rows.len() <= 100);
        assert!(
            !out.rows.is_empty(),
            "some orders exceed the quantity threshold"
        );
        // Every returned order's summed quantity exceeds the threshold.
        for r in &out.rows {
            assert!(r.get(5).as_int().unwrap() > 250);
        }
    }

    #[test]
    fn all_queries_plan_and_execute() {
        let mut t = TpchDb::generate(TpchConfig::tiny()).unwrap();
        let params = OptimizerParams::default();
        for q in TpchQuery::all() {
            let logical = q.plan(&t);
            let planned = plan_query(&t.db, &logical, &params)
                .unwrap_or_else(|e| panic!("{q} failed to plan: {e}"));
            let mut pool = BufferPool::new(4096);
            let out = run_plan(
                &mut t.db,
                &mut pool,
                &planned.physical,
                4 << 20,
                CpuCosts::default(),
            )
            .unwrap_or_else(|e| panic!("{q} failed to execute: {e}"));
            assert!(out.demand.cpu_cycles > 0.0, "{q} did no work");
        }
    }

    /// The acceptance contract: for every query, the plan chosen over the
    /// indexed database returns results bit-identical to the plan chosen
    /// over the scan-only database.
    #[test]
    fn indexed_results_bit_identical_to_scan_only() {
        let run_on = |cfg: TpchConfig, q: TpchQuery| {
            let mut t = TpchDb::generate(cfg).unwrap();
            let logical = q.plan(&t);
            let planned = plan_query(&t.db, &logical, &OptimizerParams::default()).unwrap();
            let mut pool = BufferPool::new(4096);
            let out = run_plan(
                &mut t.db,
                &mut pool,
                &planned.physical,
                4 << 20,
                CpuCosts::default(),
            )
            .unwrap();
            out.rows
        };
        for q in TpchQuery::all() {
            let indexed = run_on(TpchConfig::tiny(), q);
            let scan_only = run_on(TpchConfig::tiny().scan_only(), q);
            assert_eq!(indexed, scan_only, "{q} differs between index and scan");
        }
    }
}
