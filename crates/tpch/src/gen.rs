//! The seeded TPC-H data generator.

use dbvirt_engine::{Database, TableId};
use dbvirt_storage::{DataType, Datum, Field, Schema, StorageError, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Days since 1970-01-01 for a calendar date (civil-days algorithm,
/// valid for the TPC-H date range).
pub fn date(year: i32, month: u32, day: u32) -> i32 {
    // Howard Hinnant's days_from_civil.
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64;
    let m = month as i64;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + day as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era as i64 * 146_097 + doe - 719_468) as i32
}

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpchConfig {
    /// TPC-H scale factor (1.0 = the paper's 1 GB database). The
    /// experiments use small fractions; row counts scale linearly with the
    /// spec's SF=1 sizes.
    pub scale: f64,
    /// RNG seed; the same seed always produces the same database.
    pub seed: u64,
    /// Build the OSDB-style secondary index set (true by default).
    /// `scan_only()` disables it, for scan-vs-index comparisons and for
    /// handing the physical-design advisor a blank slate.
    pub with_indexes: bool,
}

impl TpchConfig {
    /// A scale suitable for unit tests (a few thousand lineitems).
    pub fn tiny() -> TpchConfig {
        TpchConfig {
            scale: 0.001,
            seed: 42,
            with_indexes: true,
        }
    }

    /// The scale the experiment harness uses.
    pub fn experiment() -> TpchConfig {
        TpchConfig {
            scale: 0.02,
            seed: 42,
            with_indexes: true,
        }
    }

    /// The same database with no secondary indexes built.
    pub fn scan_only(mut self) -> TpchConfig {
        self.with_indexes = false;
        self
    }

    fn customers(&self) -> i64 {
        ((150_000.0 * self.scale) as i64).max(100)
    }

    fn suppliers(&self) -> i64 {
        ((10_000.0 * self.scale) as i64).max(10)
    }

    fn parts(&self) -> i64 {
        ((200_000.0 * self.scale) as i64).max(200)
    }
}

/// The generated TPC-H database with its catalog handles.
#[derive(Debug)]
pub struct TpchDb {
    /// The database.
    pub db: Database,
    /// `region`.
    pub region: TableId,
    /// `nation`.
    pub nation: TableId,
    /// `supplier`.
    pub supplier: TableId,
    /// `customer`.
    pub customer: TableId,
    /// `part`.
    pub part: TableId,
    /// `partsupp`.
    pub partsupp: TableId,
    /// `orders`.
    pub orders: TableId,
    /// `lineitem`.
    pub lineitem: TableId,
    /// The configuration it was generated with.
    pub config: TpchConfig,
}

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const TYPE_SYLL1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_SYLL2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_SYLL3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const WORDS: [&str; 16] = [
    "furiously",
    "quick",
    "pending",
    "final",
    "ironic",
    "even",
    "bold",
    "regular",
    "express",
    "silent",
    "blithe",
    "careful",
    "dogged",
    "daring",
    "sly",
    "close",
];

/// The earliest order date (1992-01-01) and the generation window in days.
fn order_date_range() -> (i32, i32) {
    let start = date(1992, 1, 1);
    let end = date(1998, 8, 2);
    (start, end - start)
}

fn comment(rng: &mut StdRng, special_requests: bool) -> String {
    let mut words: Vec<&str> = (0..4)
        .map(|_| WORDS[rng.gen_range(0..WORDS.len())])
        .collect();
    if special_requests {
        // The phrase Q13's `NOT LIKE '%special%requests%'` targets.
        words.insert(1, "special");
        words.insert(3, "requests");
    }
    words.join(" ")
}

impl TpchDb {
    /// Generates, indexes, and analyzes a TPC-H database.
    pub fn generate(config: TpchConfig) -> Result<TpchDb, StorageError> {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut db = Database::new();

        let region = db.create_table(
            "region",
            Schema::new(vec![
                Field::new("r_regionkey", DataType::Int),
                Field::new("r_name", DataType::Str),
                Field::new("r_comment", DataType::Str),
            ]),
        );
        db.insert_rows(
            region,
            REGIONS.iter().enumerate().map(|(i, name)| {
                Tuple::new(vec![
                    Datum::Int(i as i64),
                    Datum::str(*name),
                    Datum::str("region comment"),
                ])
            }),
        )?;

        let nation = db.create_table(
            "nation",
            Schema::new(vec![
                Field::new("n_nationkey", DataType::Int),
                Field::new("n_name", DataType::Str),
                Field::new("n_regionkey", DataType::Int),
                Field::new("n_comment", DataType::Str),
            ]),
        );
        db.insert_rows(
            nation,
            NATIONS.iter().enumerate().map(|(i, (name, rk))| {
                Tuple::new(vec![
                    Datum::Int(i as i64),
                    Datum::str(*name),
                    Datum::Int(*rk),
                    Datum::str("nation comment"),
                ])
            }),
        )?;

        let supplier = db.create_table(
            "supplier",
            Schema::new(vec![
                Field::new("s_suppkey", DataType::Int),
                Field::new("s_name", DataType::Str),
                Field::new("s_nationkey", DataType::Int),
                Field::new("s_acctbal", DataType::Float),
            ]),
        );
        let n_suppliers = config.suppliers();
        {
            let rows: Vec<Tuple> = (0..n_suppliers)
                .map(|i| {
                    Tuple::new(vec![
                        Datum::Int(i),
                        Datum::str(format!("Supplier#{i:09}")),
                        Datum::Int(rng.gen_range(0..25)),
                        Datum::Float(rng.gen_range(-999.99..9999.99)),
                    ])
                })
                .collect();
            db.insert_rows(supplier, rows)?;
        }

        let customer = db.create_table(
            "customer",
            Schema::new(vec![
                Field::new("c_custkey", DataType::Int),
                Field::new("c_name", DataType::Str),
                Field::new("c_address", DataType::Str),
                Field::new("c_nationkey", DataType::Int),
                Field::new("c_phone", DataType::Str),
                Field::new("c_acctbal", DataType::Float),
                Field::new("c_mktsegment", DataType::Str),
                Field::new("c_comment", DataType::Str),
            ]),
        );
        let n_customers = config.customers();
        {
            let rows: Vec<Tuple> = (0..n_customers)
                .map(|i| {
                    Tuple::new(vec![
                        Datum::Int(i),
                        Datum::str(format!("Customer#{i:09}")),
                        Datum::str(format!("addr-{i}")),
                        Datum::Int(rng.gen_range(0..25)),
                        Datum::str(format!("{:02}-{:07}", rng.gen_range(10..35), i)),
                        Datum::Float(rng.gen_range(-999.99..9999.99)),
                        Datum::str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
                        Datum::str(comment(&mut rng, false)),
                    ])
                })
                .collect();
            db.insert_rows(customer, rows)?;
        }

        let part = db.create_table(
            "part",
            Schema::new(vec![
                Field::new("p_partkey", DataType::Int),
                Field::new("p_name", DataType::Str),
                Field::new("p_brand", DataType::Str),
                Field::new("p_type", DataType::Str),
                Field::new("p_size", DataType::Int),
                Field::new("p_retailprice", DataType::Float),
            ]),
        );
        let n_parts = config.parts();
        {
            let rows: Vec<Tuple> = (0..n_parts)
                .map(|i| {
                    let ptype = format!(
                        "{} {} {}",
                        TYPE_SYLL1[rng.gen_range(0..TYPE_SYLL1.len())],
                        TYPE_SYLL2[rng.gen_range(0..TYPE_SYLL2.len())],
                        TYPE_SYLL3[rng.gen_range(0..TYPE_SYLL3.len())],
                    );
                    Tuple::new(vec![
                        Datum::Int(i),
                        Datum::str(format!("part {i}")),
                        Datum::str(format!(
                            "Brand#{}{}",
                            rng.gen_range(1..6),
                            rng.gen_range(1..6)
                        )),
                        Datum::str(ptype),
                        Datum::Int(rng.gen_range(1..51)),
                        Datum::Float(900.0 + (i % 1000) as f64 / 10.0),
                    ])
                })
                .collect();
            db.insert_rows(part, rows)?;
        }

        let partsupp = db.create_table(
            "partsupp",
            Schema::new(vec![
                Field::new("ps_partkey", DataType::Int),
                Field::new("ps_suppkey", DataType::Int),
                Field::new("ps_availqty", DataType::Int),
                Field::new("ps_supplycost", DataType::Float),
            ]),
        );
        {
            let mut rows = Vec::with_capacity((n_parts * 4) as usize);
            for pk in 0..n_parts {
                for s in 0..4 {
                    rows.push(Tuple::new(vec![
                        Datum::Int(pk),
                        Datum::Int((pk + s * (n_suppliers / 4).max(1)) % n_suppliers),
                        Datum::Int(rng.gen_range(1..10_000)),
                        Datum::Float(rng.gen_range(1.0..1000.0)),
                    ]));
                }
            }
            db.insert_rows(partsupp, rows)?;
        }

        let orders = db.create_table(
            "orders",
            Schema::new(vec![
                Field::new("o_orderkey", DataType::Int),
                Field::new("o_custkey", DataType::Int),
                Field::new("o_orderstatus", DataType::Str),
                Field::new("o_totalprice", DataType::Float),
                Field::new("o_orderdate", DataType::Date),
                Field::new("o_orderpriority", DataType::Str),
                Field::new("o_shippriority", DataType::Int),
                Field::new("o_comment", DataType::Str),
            ]),
        );
        let lineitem = db.create_table(
            "lineitem",
            Schema::new(vec![
                Field::new("l_orderkey", DataType::Int),
                Field::new("l_partkey", DataType::Int),
                Field::new("l_suppkey", DataType::Int),
                Field::new("l_linenumber", DataType::Int),
                Field::new("l_quantity", DataType::Int),
                Field::new("l_extendedprice", DataType::Float),
                Field::new("l_discount", DataType::Float),
                Field::new("l_tax", DataType::Float),
                Field::new("l_returnflag", DataType::Str),
                Field::new("l_linestatus", DataType::Str),
                Field::new("l_shipdate", DataType::Date),
                Field::new("l_commitdate", DataType::Date),
                Field::new("l_receiptdate", DataType::Date),
            ]),
        );

        let n_orders = n_customers * 10;
        let (date_start, date_span) = order_date_range();
        let mut order_rows = Vec::with_capacity(n_orders as usize);
        let mut line_rows = Vec::new();
        for ok in 0..n_orders {
            let odate = date_start + rng.gen_range(0..date_span);
            let n_lines = rng.gen_range(1..=7);
            let mut total = 0.0;
            for ln in 0..n_lines {
                let qty = rng.gen_range(1..=50) as i64;
                let price = qty as f64 * rng.gen_range(90.0..1100.0);
                total += price;
                let shipdate = odate + rng.gen_range(1..=121);
                let commitdate = odate + rng.gen_range(30..=90);
                let receiptdate = shipdate + rng.gen_range(1..=30);
                line_rows.push(Tuple::new(vec![
                    Datum::Int(ok),
                    Datum::Int(rng.gen_range(0..n_parts)),
                    Datum::Int(rng.gen_range(0..n_suppliers)),
                    Datum::Int(ln),
                    Datum::Int(qty),
                    Datum::Float(price),
                    Datum::Float(rng.gen_range(0..=10) as f64 / 100.0),
                    Datum::Float(rng.gen_range(0..=8) as f64 / 100.0),
                    Datum::str(["A", "N", "R"][rng.gen_range(0..3)]),
                    Datum::str(if shipdate > date(1995, 6, 17) {
                        "O"
                    } else {
                        "F"
                    }),
                    Datum::Date(shipdate),
                    Datum::Date(commitdate),
                    Datum::Date(receiptdate),
                ]));
            }
            // ~2% of order comments contain the special-requests phrase.
            let special = rng.gen_bool(0.02);
            order_rows.push(Tuple::new(vec![
                Datum::Int(ok),
                Datum::Int(rng.gen_range(0..n_customers)),
                Datum::str(["F", "O", "P"][rng.gen_range(0..3)]),
                Datum::Float(total),
                Datum::Date(odate),
                Datum::str(PRIORITIES[rng.gen_range(0..PRIORITIES.len())]),
                Datum::Int(0),
                Datum::str(comment(&mut rng, special)),
            ]));
        }
        db.insert_rows(orders, order_rows)?;
        db.insert_rows(lineitem, line_rows)?;

        // The OSDB-style index set: primary keys, foreign keys, and the
        // date columns the workload predicates use.
        if config.with_indexes {
            Self::build_indexes(
                &mut db, region, nation, supplier, customer, part, partsupp, orders, lineitem,
            )?;
        }

        db.analyze_all()?;

        Ok(TpchDb {
            db,
            region,
            nation,
            supplier,
            customer,
            part,
            partsupp,
            orders,
            lineitem,
            config,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn build_indexes(
        db: &mut Database,
        region: TableId,
        nation: TableId,
        supplier: TableId,
        customer: TableId,
        part: TableId,
        partsupp: TableId,
        orders: TableId,
        lineitem: TableId,
    ) -> Result<(), StorageError> {
        db.create_index("region_pk", region, crate::col::region::REGIONKEY)?;
        db.create_index("nation_pk", nation, crate::col::nation::NATIONKEY)?;
        db.create_index("nation_region_fk", nation, crate::col::nation::REGIONKEY)?;
        db.create_index("supplier_pk", supplier, crate::col::supplier::SUPPKEY)?;
        db.create_index(
            "supplier_nation_fk",
            supplier,
            crate::col::supplier::NATIONKEY,
        )?;
        db.create_index("customer_pk", customer, crate::col::customer::CUSTKEY)?;
        db.create_index(
            "customer_nation_fk",
            customer,
            crate::col::customer::NATIONKEY,
        )?;
        db.create_index("part_pk", part, crate::col::part::PARTKEY)?;
        db.create_index("partsupp_part_fk", partsupp, crate::col::partsupp::PARTKEY)?;
        db.create_index("orders_pk", orders, crate::col::orders::ORDERKEY)?;
        db.create_index("orders_cust_fk", orders, crate::col::orders::CUSTKEY)?;
        db.create_index("orders_date", orders, crate::col::orders::ORDERDATE)?;
        db.create_index(
            "lineitem_order_fk",
            lineitem,
            crate::col::lineitem::ORDERKEY,
        )?;
        db.create_index("lineitem_part_fk", lineitem, crate::col::lineitem::PARTKEY)?;
        db.create_index(
            "lineitem_shipdate",
            lineitem,
            crate::col::lineitem::SHIPDATE,
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::col;

    #[test]
    fn date_conversion_matches_known_values() {
        assert_eq!(date(1970, 1, 1), 0);
        assert_eq!(date(1970, 1, 2), 1);
        assert_eq!(date(1971, 1, 1), 365);
        assert_eq!(date(1992, 1, 1), 8035);
        assert_eq!(date(2000, 3, 1), 11017);
        // Leap-year behavior around 1996-02-29.
        assert_eq!(date(1996, 3, 1) - date(1996, 2, 28), 2);
        assert_eq!(date(1997, 3, 1) - date(1997, 2, 28), 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TpchDb::generate(TpchConfig::tiny()).unwrap();
        let b = TpchDb::generate(TpchConfig::tiny()).unwrap();
        let sa = a.db.table(a.lineitem).stats.as_ref().unwrap();
        let sb = b.db.table(b.lineitem).stats.as_ref().unwrap();
        assert_eq!(sa, sb);
    }

    #[test]
    fn row_counts_scale() {
        let t = TpchDb::generate(TpchConfig::tiny()).unwrap();
        let orders = t.db.table(t.orders).stats.as_ref().unwrap();
        let customers = t.db.table(t.customer).stats.as_ref().unwrap();
        let lineitems = t.db.table(t.lineitem).stats.as_ref().unwrap();
        assert_eq!(orders.n_rows, customers.n_rows * 10);
        // 1..=7 lines per order, so ~4x orders.
        let ratio = lineitems.n_rows as f64 / orders.n_rows as f64;
        assert!((3.0..5.0).contains(&ratio), "lines/order ratio {ratio}");
    }

    #[test]
    fn reference_tables_are_fixed() {
        let t = TpchDb::generate(TpchConfig::tiny()).unwrap();
        assert_eq!(t.db.table(t.region).stats.as_ref().unwrap().n_rows, 5);
        assert_eq!(t.db.table(t.nation).stats.as_ref().unwrap().n_rows, 25);
    }

    #[test]
    fn indexes_exist_on_key_columns() {
        let t = TpchDb::generate(TpchConfig::tiny()).unwrap();
        assert!(t.db.index_on(t.orders, col::orders::ORDERDATE).is_some());
        assert!(t.db.index_on(t.lineitem, col::lineitem::ORDERKEY).is_some());
        assert!(t.db.index_on(t.customer, col::customer::CUSTKEY).is_some());
        assert!(t.db.index_on(t.lineitem, col::lineitem::DISCOUNT).is_none());
    }

    #[test]
    fn some_order_comments_match_q13_pattern() {
        let t = TpchDb::generate(TpchConfig::tiny()).unwrap();
        // Count via a metered-free path: read stats? Simplest: scan pages
        // through the catalog's disk directly is private; use an executor.
        let mut db = t.db;
        let mut pool = dbvirt_storage::BufferPool::new(1024);
        let plan = dbvirt_engine::PhysicalPlan::SeqScan {
            table: t.orders,
            filter: Some(dbvirt_engine::Expr::like(
                dbvirt_engine::Expr::col(col::orders::COMMENT),
                "%special%requests%",
            )),
        };
        let out = dbvirt_engine::run_plan(
            &mut db,
            &mut pool,
            &plan,
            1 << 20,
            dbvirt_engine::CpuCosts::default(),
        )
        .unwrap();
        let total = db.table(t.orders).heap.num_pages(db.disk());
        assert!(total > 0);
        assert!(
            !out.rows.is_empty(),
            "the special-requests phrase must occur sometimes"
        );
    }
}
