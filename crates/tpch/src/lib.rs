//! # dbvirt-tpch — the TPC-H-like workload substrate
//!
//! The paper's experiments run OSDB's TPC-H implementation ("which includes
//! an extensive set of indexes to boost performance") at 1 GB scale. This
//! crate is the equivalent substrate for the simulator: a **seeded,
//! deterministic generator** for the eight TPC-H tables at a configurable
//! scale factor, the index set, logical plans for a representative query
//! subset (including **Q4 and Q13**, the two queries Figures 4 and 5 are
//! built on), and workload composition ("3 copies of Q4", "9 copies of
//! Q13").
//!
//! Dates are days since the Unix epoch ([`date`]); money is `f64`; comments
//! are drawn from a word list with the occasional `special … requests`
//! phrase that Q13's `NOT LIKE` filter exists to exclude.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod col;
mod gen;
pub mod queries;
mod workload;

pub use gen::{date, TpchConfig, TpchDb};
pub use queries::TpchQuery;
pub use workload::Workload;
