//! Optimizer error type.

use std::error::Error;
use std::fmt;

/// Errors raised during planning or cost estimation.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// A table referenced by the plan has no statistics (run `ANALYZE`).
    MissingStats {
        /// The table's name.
        table: String,
    },
    /// The logical plan is malformed.
    BadPlan {
        /// Description of the problem.
        reason: String,
    },
    /// A parameter vector failed validation.
    InvalidParams {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::MissingStats { table } => {
                write!(f, "table {table:?} has no statistics; run ANALYZE first")
            }
            OptError::BadPlan { reason } => write!(f, "bad logical plan: {reason}"),
            OptError::InvalidParams { reason } => write!(f, "invalid parameters: {reason}"),
        }
    }
}

impl Error for OptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = OptError::MissingStats {
            table: "orders".into(),
        };
        assert!(e.to_string().contains("orders"));
        assert!(e.to_string().contains("ANALYZE"));
    }
}
