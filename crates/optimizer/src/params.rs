//! The optimizer's environment-parameter vector `P`.
//!
//! These are the knobs the paper's calibration process solves for. The
//! names and defaults follow PostgreSQL 8.1 (`random_page_cost = 4`,
//! `cpu_tuple_cost = 0.01`, `cpu_index_tuple_cost = 0.005`,
//! `cpu_operator_cost = 0.0025`), all expressed — as the paper says — "as a
//! fraction of the cost of a sequential page fetch". The extra
//! `unit_seconds` field anchors that unit in (simulated) wall-clock time,
//! so workload cost estimates come out in seconds, which is what the
//! virtualization design problem minimizes.

use std::fmt;

/// The parameter vector `P`: everything the cost model knows about the
/// physical environment. One `P` per calibrated resource allocation `R`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerParams {
    /// Seconds per sequential page fetch — the size of one cost unit.
    pub unit_seconds: f64,
    /// Cost of a sequential page fetch (1.0 by definition of the unit).
    pub seq_page_cost: f64,
    /// Cost of a random page fetch, relative to a sequential one.
    pub random_page_cost: f64,
    /// CPU cost of processing one tuple.
    pub cpu_tuple_cost: f64,
    /// CPU cost of processing one index entry.
    pub cpu_index_tuple_cost: f64,
    /// CPU cost of evaluating one operator (one WHERE-clause item).
    pub cpu_operator_cost: f64,
    /// Pages of data expected to be cached (buffer pool + OS cache); drives
    /// the Mackert–Lohman discount on repeated index-scan heap fetches.
    pub effective_cache_size_pages: f64,
    /// Memory budget for sorts and hash tables, in bytes.
    pub work_mem_bytes: f64,
}

impl OptimizerParams {
    /// PostgreSQL 8.1 defaults, anchored to the paper-testbed disk
    /// (one 8 KiB sequential page fetch ≈ 98 µs at 80 MiB/s) with the
    /// whole machine allocated.
    pub fn postgres_defaults() -> OptimizerParams {
        OptimizerParams {
            unit_seconds: 8192.0 / (80.0 * 1024.0 * 1024.0),
            seq_page_cost: 1.0,
            random_page_cost: 4.0,
            cpu_tuple_cost: 0.01,
            cpu_index_tuple_cost: 0.005,
            cpu_operator_cost: 0.0025,
            effective_cache_size_pages: 1000.0,
            work_mem_bytes: (1 << 20) as f64,
        }
    }

    /// Validates that every parameter is finite and positive.
    pub fn validate(&self) -> Result<(), crate::OptError> {
        let fields = [
            ("unit_seconds", self.unit_seconds),
            ("seq_page_cost", self.seq_page_cost),
            ("random_page_cost", self.random_page_cost),
            ("cpu_tuple_cost", self.cpu_tuple_cost),
            ("cpu_index_tuple_cost", self.cpu_index_tuple_cost),
            ("cpu_operator_cost", self.cpu_operator_cost),
            (
                "effective_cache_size_pages",
                self.effective_cache_size_pages,
            ),
            ("work_mem_bytes", self.work_mem_bytes),
        ];
        for (name, v) in fields {
            if !(v.is_finite() && v > 0.0) {
                return Err(crate::OptError::InvalidParams {
                    reason: format!("{name} must be positive and finite, got {v}"),
                });
            }
        }
        Ok(())
    }

    /// Converts a cost in units into estimated seconds.
    pub fn units_to_seconds(&self, units: f64) -> f64 {
        units * self.unit_seconds
    }

    /// The parameters as a fixed-order vector (used by the calibration
    /// solver). Order: `[unit_seconds, random_page_cost, cpu_tuple_cost,
    /// cpu_index_tuple_cost, cpu_operator_cost, effective_cache_size_pages]`
    /// (`seq_page_cost` is pinned at 1 and `work_mem` is set separately).
    pub fn free_parameters(&self) -> [f64; 6] {
        [
            self.unit_seconds,
            self.random_page_cost,
            self.cpu_tuple_cost,
            self.cpu_index_tuple_cost,
            self.cpu_operator_cost,
            self.effective_cache_size_pages,
        ]
    }
}

impl Default for OptimizerParams {
    fn default() -> OptimizerParams {
        OptimizerParams::postgres_defaults()
    }
}

impl fmt::Display for OptimizerParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "P{{unit={:.2}us, rand={:.2}, tup={:.5}, idx={:.5}, op={:.5}, ecs={:.0}pg, wm={:.0}KiB}}",
            self.unit_seconds * 1e6,
            self.random_page_cost,
            self.cpu_tuple_cost,
            self.cpu_index_tuple_cost,
            self.cpu_operator_cost,
            self.effective_cache_size_pages,
            self.work_mem_bytes / 1024.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        OptimizerParams::postgres_defaults().validate().unwrap();
    }

    #[test]
    fn invalid_params_are_rejected() {
        let mut p = OptimizerParams::postgres_defaults();
        p.cpu_tuple_cost = 0.0;
        assert!(p.validate().is_err());
        let mut p = OptimizerParams::postgres_defaults();
        p.unit_seconds = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn unit_conversion() {
        let p = OptimizerParams::postgres_defaults();
        let s = p.units_to_seconds(1000.0);
        assert!((s - 1000.0 * p.unit_seconds).abs() < 1e-15);
    }

    #[test]
    fn pg_default_ratios_hold() {
        let p = OptimizerParams::postgres_defaults();
        assert_eq!(p.seq_page_cost, 1.0);
        assert_eq!(p.random_page_cost, 4.0);
        assert!((p.cpu_tuple_cost / p.cpu_operator_cost - 4.0).abs() < 1e-12);
    }
}
