//! Selectivity and cardinality estimation.
//!
//! The estimators follow PostgreSQL's structure: histogram-based range
//! selectivity, NDV-based equality selectivity, independence for
//! conjunctions, and fixed default selectivities where statistics cannot
//! help (`DEFAULT_EQ_SEL`, `DEFAULT_RANGE_SEL`, `DEFAULT_MATCH_SEL` — the
//! same constants `selfuncs.c` uses).

use dbvirt_engine::{CmpOp, Expr, JoinType};
use dbvirt_storage::{Datum, TableStats};

/// Default selectivity for an equality whose operand statistics are
/// unavailable (PostgreSQL's `DEFAULT_EQ_SEL`).
pub const DEFAULT_EQ_SEL: f64 = 0.005;
/// Default selectivity for an inequality without statistics
/// (PostgreSQL's `DEFAULT_INEQ_SEL`).
pub const DEFAULT_RANGE_SEL: f64 = 1.0 / 3.0;
/// Default selectivity for a `LIKE` pattern match
/// (PostgreSQL's `DEFAULT_MATCH_SEL`).
pub const DEFAULT_MATCH_SEL: f64 = 0.005;

fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

/// The literal prefix of a `LIKE` pattern, if any: the characters before
/// the first wildcard (`%` or `_`). Returns `(prefix, exact)` where
/// `exact` means the pattern is precisely `prefix%` — i.e. the prefix
/// match alone decides the predicate, with no residual matching beyond it.
pub fn like_prefix(pattern: &str) -> Option<(String, bool)> {
    let mut prefix = String::new();
    let mut rest = pattern.chars();
    for c in rest.by_ref() {
        if c == '%' || c == '_' {
            let exact = c == '%' && rest.clone().next().is_none();
            if prefix.is_empty() {
                return None;
            }
            return Some((prefix, exact));
        }
        prefix.push(c);
    }
    // No wildcard at all: LIKE degenerates to equality on the prefix.
    Some((prefix, false))
}

/// The smallest string strictly greater than every string starting with
/// `prefix` (increment the last character, dropping characters with no
/// valid successor). `None` when no such string exists.
pub fn string_prefix_successor(prefix: &str) -> Option<String> {
    let mut chars: Vec<char> = prefix.chars().collect();
    while let Some(c) = chars.pop() {
        if let Some(next) = char::from_u32(c as u32 + 1) {
            chars.push(next);
            return Some(chars.into_iter().collect());
        }
    }
    None
}

/// Histogram-backed selectivity of a string column falling in
/// `[prefix, successor(prefix))` — the key range a `LIKE 'prefix%'`
/// predicate selects.
pub fn prefix_range_selectivity(stats: &TableStats, col: usize, prefix: &str) -> Option<f64> {
    let cs = stats.columns.get(col)?;
    let h = cs.histogram.as_ref()?;
    let below_lo = h.fraction_below(&Datum::str(prefix));
    let below_hi = match string_prefix_successor(prefix) {
        Some(succ) => h.fraction_below(&Datum::str(succ)),
        None => 1.0,
    };
    Some(clamp01((below_hi - below_lo) * (1.0 - cs.null_frac)))
}

/// Extracts `(column, op, literal)` from a comparison, normalizing
/// `literal op column` to `column op' literal`.
fn as_col_cmp(expr: &Expr) -> Option<(usize, CmpOp, &Datum)> {
    let Expr::Cmp { op, lhs, rhs } = expr else {
        return None;
    };
    match (lhs.as_ref(), rhs.as_ref()) {
        (Expr::Column(c), Expr::Literal(d)) => Some((*c, *op, d)),
        (Expr::Literal(d), Expr::Column(c)) => {
            let flipped = match op {
                CmpOp::Eq => CmpOp::Eq,
                CmpOp::Ne => CmpOp::Ne,
                CmpOp::Lt => CmpOp::Gt,
                CmpOp::Le => CmpOp::Ge,
                CmpOp::Gt => CmpOp::Lt,
                CmpOp::Ge => CmpOp::Le,
            };
            Some((*c, flipped, d))
        }
        _ => None,
    }
}

/// Selectivity of a single normalized column-vs-literal comparison.
fn col_cmp_selectivity(stats: &TableStats, col: usize, op: CmpOp, lit: &Datum) -> f64 {
    let Some(cs) = stats.columns.get(col) else {
        return default_for_op(op);
    };
    let nonnull = 1.0 - cs.null_frac;
    match op {
        CmpOp::Eq => cs.eq_selectivity(),
        CmpOp::Ne => clamp01(nonnull - cs.eq_selectivity()),
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            let Some(h) = &cs.histogram else {
                return default_for_op(op);
            };
            let below = h.fraction_below(lit);
            let eq = cs.eq_selectivity();
            let sel = match op {
                CmpOp::Lt => below,
                CmpOp::Le => below + eq,
                CmpOp::Gt => 1.0 - below - eq,
                CmpOp::Ge => 1.0 - below,
                _ => unreachable!(),
            };
            clamp01(sel * nonnull)
        }
    }
}

fn default_for_op(op: CmpOp) -> f64 {
    match op {
        CmpOp::Eq => DEFAULT_EQ_SEL,
        CmpOp::Ne => 1.0 - DEFAULT_EQ_SEL,
        _ => DEFAULT_RANGE_SEL,
    }
}

/// Splits a conjunction into conjuncts.
fn split_and<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
    match expr {
        Expr::And(l, r) => {
            split_and(l, out);
            split_and(r, out);
        }
        other => out.push(other),
    }
}

/// Selectivity of a conjunction, pairing lower and upper range bounds on
/// the same column through the histogram before falling back to
/// independence — PostgreSQL's `clauselist_selectivity` /
/// `addRangeClause` behaviour, without which `lo <= x AND x < hi` badly
/// overestimates narrow windows (e.g. TPC-H date ranges).
fn conjunction_selectivity(conjuncts: &[&Expr], stats: &TableStats) -> f64 {
    use std::collections::HashMap;
    // Per column: tightest lower bound, tightest upper bound (as
    // fraction_below positions).
    struct Range {
        lo: Option<f64>,
        hi: Option<f64>,
        count: usize,
    }
    let mut ranges: HashMap<usize, Range> = HashMap::new();
    let mut sel = 1.0;
    for c in conjuncts {
        if let Some((col, op, lit)) = as_col_cmp(c) {
            if let Some(h) = stats.columns.get(col).and_then(|cs| cs.histogram.as_ref()) {
                let below = h.fraction_below(lit);
                let entry = ranges.entry(col).or_insert(Range {
                    lo: None,
                    hi: None,
                    count: 0,
                });
                match op {
                    CmpOp::Gt | CmpOp::Ge => {
                        entry.lo = Some(entry.lo.map_or(below, |x: f64| x.max(below)));
                        entry.count += 1;
                        continue;
                    }
                    CmpOp::Lt | CmpOp::Le => {
                        entry.hi = Some(entry.hi.map_or(below, |x: f64| x.min(below)));
                        entry.count += 1;
                        continue;
                    }
                    _ => {}
                }
            }
        }
        sel *= filter_selectivity(c, stats);
    }
    for (col, r) in ranges {
        let nonnull = stats.columns.get(col).map_or(1.0, |cs| 1.0 - cs.null_frac);
        let combined = match (r.lo, r.hi) {
            (Some(lo), Some(hi)) => clamp01(hi - lo),
            (Some(lo), None) => clamp01(1.0 - lo),
            (None, Some(hi)) => hi,
            (None, None) => 1.0,
        };
        sel *= clamp01(combined * nonnull);
    }
    clamp01(sel)
}

/// Estimated selectivity of `expr` as a filter over a base table with
/// statistics `stats`, in `[0, 1]`.
pub fn filter_selectivity(expr: &Expr, stats: &TableStats) -> f64 {
    match expr {
        Expr::Literal(Datum::Bool(true)) => 1.0,
        Expr::Literal(Datum::Bool(false)) => 0.0,
        Expr::And(..) => {
            let mut conjuncts = Vec::new();
            split_and(expr, &mut conjuncts);
            conjunction_selectivity(&conjuncts, stats)
        }
        Expr::Or(l, r) => {
            let (a, b) = (filter_selectivity(l, stats), filter_selectivity(r, stats));
            clamp01(a + b - a * b)
        }
        Expr::Not(e) => clamp01(1.0 - filter_selectivity(e, stats)),
        Expr::Cmp { .. } => match as_col_cmp(expr) {
            Some((col, op, lit)) => col_cmp_selectivity(stats, col, op, lit),
            None => DEFAULT_RANGE_SEL,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let sel = match (expr.as_ref(), like_prefix(pattern)) {
                (Expr::Column(c), Some((prefix, exact))) => {
                    match prefix_range_selectivity(stats, *c, &prefix) {
                        // A residual beyond the prefix (more wildcards or
                        // a missing `%`) filters further; halve, like
                        // PostgreSQL's heuristic rest-selectivity.
                        Some(range) => {
                            if exact {
                                range
                            } else {
                                clamp01(range * 0.5)
                            }
                        }
                        None => DEFAULT_MATCH_SEL,
                    }
                }
                _ => DEFAULT_MATCH_SEL,
            };
            if *negated {
                clamp01(1.0 - sel)
            } else {
                sel
            }
        }
        Expr::InList { expr, list } => {
            if let Expr::Column(c) = expr.as_ref() {
                if let Some(cs) = stats.columns.get(*c) {
                    return clamp01(cs.eq_selectivity() * list.len() as f64);
                }
            }
            clamp01(DEFAULT_EQ_SEL * list.len() as f64)
        }
        Expr::IsNull { expr, negated } => {
            if let Expr::Column(c) = expr.as_ref() {
                if let Some(cs) = stats.columns.get(*c) {
                    let f = cs.null_frac;
                    return if *negated { 1.0 - f } else { f };
                }
            }
            if *negated {
                0.99
            } else {
                0.01
            }
        }
        Expr::Case { .. } | Expr::Arith { .. } | Expr::Column(_) | Expr::Literal(_) => {
            // Non-boolean or opaque: PostgreSQL would use 0.5 for an
            // unknown boolean expression.
            0.5
        }
    }
}

/// Estimated output rows of an equi-join.
///
/// Inner-join selectivity is `1 / max(ndv_left, ndv_right)` per condition
/// (PostgreSQL's `eqjoinsel`); semi/anti use the containment assumption
/// (the fraction of left rows with a match is `min(ndvs)/ndv_left`).
pub fn join_output_rows(
    left_rows: f64,
    right_rows: f64,
    left_ndv: f64,
    right_ndv: f64,
    join_type: JoinType,
) -> f64 {
    let left_ndv = left_ndv.max(1.0);
    let right_ndv = right_ndv.max(1.0);
    match join_type {
        JoinType::Inner => left_rows * right_rows / left_ndv.max(right_ndv),
        JoinType::Left => {
            let inner = left_rows * right_rows / left_ndv.max(right_ndv);
            inner.max(left_rows)
        }
        JoinType::Semi => {
            let match_frac = (left_ndv.min(right_ndv) / left_ndv).clamp(0.0, 1.0);
            left_rows * match_frac
        }
        JoinType::Anti => {
            let match_frac = (left_ndv.min(right_ndv) / left_ndv).clamp(0.0, 1.0);
            left_rows * (1.0 - match_frac)
        }
    }
}

/// Estimated number of groups for a `GROUP BY`: the product of per-column
/// NDVs, clamped to the input row count (PostgreSQL's
/// `estimate_num_groups` without correlation knowledge).
pub fn num_groups(input_rows: f64, ndvs: &[f64]) -> f64 {
    if ndvs.is_empty() {
        return 1.0;
    }
    let product: f64 = ndvs.iter().map(|&n| n.max(1.0)).product();
    product.min(input_rows.max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbvirt_storage::{stats, Tuple};

    fn uniform_stats(n: i64) -> TableStats {
        let tuples: Vec<Tuple> = (0..n)
            .map(|i| Tuple::new(vec![Datum::Int(i), Datum::str(format!("s{}", i % 10))]))
            .collect();
        stats::analyze(tuples.iter(), 2, (n / 50).max(1) as u32)
    }

    #[test]
    fn equality_uses_ndv() {
        let s = uniform_stats(1000);
        let sel = filter_selectivity(&Expr::eq(Expr::col(1), Expr::str("s3")), &s);
        assert!(
            (sel - 0.1).abs() < 0.02,
            "10 distinct strings -> ~0.1, got {sel}"
        );
    }

    #[test]
    fn range_uses_histogram() {
        let s = uniform_stats(1000);
        let sel = filter_selectivity(&Expr::lt(Expr::col(0), Expr::int(250)), &s);
        assert!((sel - 0.25).abs() < 0.05, "got {sel}");
        let sel = filter_selectivity(&Expr::ge(Expr::col(0), Expr::int(900)), &s);
        assert!((sel - 0.1).abs() < 0.05, "got {sel}");
    }

    #[test]
    fn reversed_comparison_normalizes() {
        let s = uniform_stats(1000);
        let a = filter_selectivity(&Expr::lt(Expr::col(0), Expr::int(250)), &s);
        let b = filter_selectivity(&Expr::gt(Expr::int(250), Expr::col(0)), &s);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn conjunction_multiplies() {
        let s = uniform_stats(1000);
        let e = Expr::and(
            Expr::lt(Expr::col(0), Expr::int(500)),
            Expr::eq(Expr::col(1), Expr::str("s3")),
        );
        let sel = filter_selectivity(&e, &s);
        assert!((sel - 0.05).abs() < 0.02, "got {sel}");
    }

    #[test]
    fn disjunction_is_inclusion_exclusion() {
        let s = uniform_stats(1000);
        let half = Expr::lt(Expr::col(0), Expr::int(500));
        let sel = filter_selectivity(&Expr::or(half.clone(), half), &s);
        assert!((sel - 0.75).abs() < 0.05, "got {sel}");
    }

    #[test]
    fn like_defaults() {
        let s = uniform_stats(100);
        let pos = filter_selectivity(&Expr::like(Expr::col(1), "%x%"), &s);
        let neg = filter_selectivity(&Expr::not_like(Expr::col(1), "%x%"), &s);
        assert_eq!(pos, DEFAULT_MATCH_SEL);
        assert!((pos + neg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn like_prefix_extraction() {
        assert_eq!(like_prefix("abc%"), Some(("abc".into(), true)));
        assert_eq!(like_prefix("abc%def"), Some(("abc".into(), false)));
        assert_eq!(like_prefix("abc_"), Some(("abc".into(), false)));
        assert_eq!(like_prefix("abc"), Some(("abc".into(), false)));
        assert_eq!(like_prefix("%abc"), None);
        assert_eq!(like_prefix("_bc"), None);
        assert_eq!(string_prefix_successor("abc"), Some("abd".into()));
        assert_eq!(string_prefix_successor(""), None);
    }

    #[test]
    fn like_prefix_uses_histogram() {
        // Column 1 holds s0..s9 uniformly; "s3%" selects ~10%.
        let s = uniform_stats(1000);
        let sel = filter_selectivity(&Expr::like(Expr::col(1), "s3%"), &s);
        assert!((sel - 0.1).abs() < 0.05, "prefix range estimate, got {sel}");
        // Prefix covering everything.
        let all = filter_selectivity(&Expr::like(Expr::col(1), "s%"), &s);
        assert!(all > 0.8, "got {all}");
    }

    #[test]
    fn selectivities_stay_in_unit_interval() {
        let s = uniform_stats(100);
        let exprs = [
            Expr::eq(Expr::col(0), Expr::int(5)),
            Expr::not(Expr::lt(Expr::col(0), Expr::int(5))),
            Expr::in_list(Expr::col(0), (0..50).map(Datum::Int).collect()),
            Expr::between(Expr::col(0), Datum::Int(10), Datum::Int(20)),
            Expr::or(
                Expr::lt(Expr::col(0), Expr::int(90)),
                Expr::gt(Expr::col(0), Expr::int(10)),
            ),
        ];
        for e in exprs {
            let sel = filter_selectivity(&e, &s);
            assert!((0.0..=1.0).contains(&sel), "{e:?} -> {sel}");
        }
    }

    #[test]
    fn join_rows_inner_and_semi() {
        // 1000 x 10000 on a key with 1000/1000 NDVs: FK-ish join.
        let inner = join_output_rows(1000.0, 10_000.0, 1000.0, 1000.0, JoinType::Inner);
        assert!((inner - 10_000.0).abs() < 1.0);
        // Semi: every left value appears on the right -> all left rows pass.
        let semi = join_output_rows(1000.0, 10_000.0, 1000.0, 1000.0, JoinType::Semi);
        assert!((semi - 1000.0).abs() < 1.0);
        // Anti is the complement.
        let anti = join_output_rows(1000.0, 10_000.0, 1000.0, 1000.0, JoinType::Anti);
        assert!(anti.abs() < 1.0);
        // Left join never shrinks below the left input.
        let left = join_output_rows(1000.0, 10.0, 1000.0, 10.0, JoinType::Left);
        assert!(left >= 1000.0);
    }

    #[test]
    fn group_estimates_clamp() {
        assert_eq!(num_groups(100.0, &[]), 1.0);
        assert!((num_groups(1000.0, &[10.0, 5.0]) - 50.0).abs() < 1e-9);
        assert_eq!(num_groups(20.0, &[10.0, 5.0]), 20.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use dbvirt_storage::{stats, Tuple};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Histogram-backed range selectivity tracks the true fraction
        /// within a loose tolerance on uniform-ish data. Narrow spans are
        /// excluded: the two range bounds are combined under PostgreSQL's
        /// independence assumption, which legitimately over-estimates
        /// near-equality ranges.
        #[test]
        fn prop_range_selectivity_tracks_truth(
            n in 200i64..2000,
            lo in 0i64..800,
            span in 50i64..400,
        ) {
            let tuples: Vec<Tuple> = (0..n).map(|i| Tuple::new(vec![Datum::Int(i % 1000)])).collect();
            let s = stats::analyze(tuples.iter(), 1, 10);
            let hi = lo + span;
            let e = Expr::and(
                Expr::ge(Expr::col(0), Expr::int(lo)),
                Expr::lt(Expr::col(0), Expr::int(hi)),
            );
            let est = filter_selectivity(&e, &s);
            let truth = (0..n).filter(|i| (lo..hi).contains(&(i % 1000))).count() as f64 / n as f64;
            prop_assert!((0.0..=1.0).contains(&est));
            prop_assert!(
                (est - truth).abs() < 0.12,
                "estimate {est} vs truth {truth} for [{lo}, {hi})"
            );
        }

        /// Join cardinalities are non-negative and inner joins never exceed
        /// the cross product.
        #[test]
        fn prop_join_rows_bounded(
            l in 1.0f64..1e6,
            r in 1.0f64..1e6,
            lndv in 1.0f64..1e5,
            rndv in 1.0f64..1e5,
        ) {
            for jt in [JoinType::Inner, JoinType::Left, JoinType::Semi, JoinType::Anti] {
                let rows = join_output_rows(l, r, lndv, rndv, jt);
                prop_assert!(rows >= 0.0, "{jt:?} produced {rows}");
                if jt == JoinType::Inner {
                    prop_assert!(rows <= l * r + 1e-6);
                }
                if jt == JoinType::Semi || jt == JoinType::Anti {
                    prop_assert!(rows <= l + 1e-6, "{jt:?} exceeded left input");
                }
            }
            // Semi + anti partition the left side.
            let semi = join_output_rows(l, r, lndv, rndv, JoinType::Semi);
            let anti = join_output_rows(l, r, lndv, rndv, JoinType::Anti);
            prop_assert!((semi + anti - l).abs() < 1e-6 * l.max(1.0));
        }
    }
}
