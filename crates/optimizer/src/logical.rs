//! The logical plan algebra — the optimizer's input.
//!
//! Logical plans describe *what* to compute; the planner decides *how*
//! (access paths, join order, physical operators). Column references in
//! every node are positions in that node's input schema, with join inputs
//! concatenated left-then-right.

use dbvirt_engine::{AggExpr, Expr, JoinType, SortKey, TableId};

/// One equi-join condition: `left column = right column`, each indexed into
/// its own side's output schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinCondition {
    /// Column in the left input's schema.
    pub left_col: usize,
    /// Column in the right input's schema.
    pub right_col: usize,
}

/// A logical query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Base-table access with an optional filter over the table's columns.
    Scan {
        /// The table.
        table: TableId,
        /// Predicate over table columns.
        filter: Option<Expr>,
    },
    /// Join of two inputs on equality conditions.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Equi-join conditions (must be non-empty).
        on: Vec<JoinCondition>,
        /// Join variant.
        join_type: JoinType,
    },
    /// Grouped aggregation.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Grouping columns (empty = global aggregate).
        group_by: Vec<usize>,
        /// Aggregates.
        aggs: Vec<AggExpr>,
    },
    /// Residual filter (e.g. `HAVING`).
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// The predicate.
        predicate: Expr,
    },
    /// Projection.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(expression, name)` pairs.
        exprs: Vec<(Expr, String)>,
    },
    /// Ordering.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys.
        keys: Vec<SortKey>,
    },
    /// Row limit.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Maximum rows.
        limit: usize,
    },
}

impl LogicalPlan {
    /// Scan builder.
    pub fn scan(table: TableId) -> LogicalPlan {
        LogicalPlan::Scan {
            table,
            filter: None,
        }
    }

    /// Scan-with-filter builder.
    pub fn scan_filtered(table: TableId, filter: Expr) -> LogicalPlan {
        LogicalPlan::Scan {
            table,
            filter: Some(filter),
        }
    }

    /// Inner equi-join builder.
    pub fn join(self, right: LogicalPlan, on: Vec<JoinCondition>) -> LogicalPlan {
        self.join_as(right, on, JoinType::Inner)
    }

    /// Join builder with an explicit join type.
    pub fn join_as(
        self,
        right: LogicalPlan,
        on: Vec<JoinCondition>,
        join_type: JoinType,
    ) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            on,
            join_type,
        }
    }

    /// Aggregation builder.
    pub fn aggregate(self, group_by: Vec<usize>, aggs: Vec<AggExpr>) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(self),
            group_by,
            aggs,
        }
    }

    /// Filter builder.
    pub fn filter(self, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Projection builder.
    pub fn project(self, exprs: Vec<(Expr, String)>) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            exprs,
        }
    }

    /// Sort builder.
    pub fn sort(self, keys: Vec<SortKey>) -> LogicalPlan {
        LogicalPlan::Sort {
            input: Box::new(self),
            keys,
        }
    }

    /// Limit builder.
    pub fn limit(self, limit: usize) -> LogicalPlan {
        LogicalPlan::Limit {
            input: Box::new(self),
            limit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let plan = LogicalPlan::scan(TableId(0))
            .join(
                LogicalPlan::scan(TableId(1)),
                vec![JoinCondition {
                    left_col: 0,
                    right_col: 0,
                }],
            )
            .aggregate(vec![1], vec![AggExpr::count_star("n")])
            .sort(vec![SortKey::desc(1)])
            .limit(10);
        match plan {
            LogicalPlan::Limit { limit, input } => {
                assert_eq!(limit, 10);
                assert!(matches!(*input, LogicalPlan::Sort { .. }));
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }
}
