//! The paper's virtualization-aware **what-if mode**.
//!
//! Section 4 of the paper: to model `Cost(W_i, R_i)`, set the optimizer's
//! environment parameters `P` to the values calibrated for allocation
//! `R_i`, re-optimize every query of the workload under that `P` (access
//! paths and statistics unchanged, nothing executed), and sum the
//! estimated execution times. This module is that operation, as a small
//! API over the planner.

use crate::{plan_query, LogicalPlan, OptError, OptimizerParams};
use dbvirt_engine::Database;

/// Estimated execution time of one query under `params`, in seconds.
///
/// Touches only the catalog and statistics — never the data — so it is
/// safe and cheap to call for many candidate allocations.
pub fn estimate_query_seconds(
    db: &Database,
    query: &LogicalPlan,
    params: &OptimizerParams,
) -> Result<f64, OptError> {
    let planned = plan_query(db, query, params)?;
    Ok(planned.est_seconds(params))
}

/// Estimated execution time of a whole workload (a sequence of queries)
/// under `params`: the sum of per-query estimates, matching the paper's
/// throughput-oriented cost definition.
pub fn estimate_workload_seconds(
    db: &Database,
    workload: &[LogicalPlan],
    params: &OptimizerParams,
) -> Result<f64, OptError> {
    workload
        .iter()
        .map(|q| estimate_query_seconds(db, q, params))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbvirt_engine::{Expr, TableId};
    use dbvirt_storage::{DataType, Datum, Field, Schema, Tuple};

    fn db() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.create_table(
            "t",
            Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Int),
            ]),
        );
        db.insert_rows(
            t,
            (0..10_000).map(|i| Tuple::new(vec![Datum::Int(i), Datum::Int(i * 2)])),
        )
        .unwrap();
        db.analyze_all().unwrap();
        (db, t)
    }

    #[test]
    fn workload_estimate_is_sum_of_queries() {
        let (db, t) = db();
        let q1 = LogicalPlan::scan(t);
        let q2 = LogicalPlan::scan_filtered(t, Expr::lt(Expr::col(0), Expr::int(100)));
        let p = OptimizerParams::default();
        let a = estimate_query_seconds(&db, &q1, &p).unwrap();
        let b = estimate_query_seconds(&db, &q2, &p).unwrap();
        let total = estimate_workload_seconds(&db, &[q1, q2], &p).unwrap();
        assert!((total - (a + b)).abs() < 1e-12);
        assert!(a > 0.0 && b > 0.0);
    }

    #[test]
    fn cpu_heavier_params_raise_cpu_bound_estimates_more() {
        let (db, t) = db();
        // CPU-bound: heavy predicate over every row.
        let heavy_pred = Expr::and_all(
            (0..8)
                .map(|i| Expr::ge(Expr::add(Expr::col(0), Expr::int(i)), Expr::int(0)))
                .collect(),
        );
        let cpu_q = LogicalPlan::scan_filtered(t, heavy_pred);
        // I/O-bound: bare scan.
        let io_q = LogicalPlan::scan(t);
        // A small cache so the bare scan really pays page I/O.
        let base = OptimizerParams {
            effective_cache_size_pages: 1.0,
            ..OptimizerParams::default()
        };
        let mut slow_cpu = base;
        slow_cpu.cpu_tuple_cost *= 3.0;
        slow_cpu.cpu_operator_cost *= 3.0;

        let cpu_base = estimate_query_seconds(&db, &cpu_q, &base).unwrap();
        let cpu_slow = estimate_query_seconds(&db, &cpu_q, &slow_cpu).unwrap();
        let io_base = estimate_query_seconds(&db, &io_q, &base).unwrap();
        let io_slow = estimate_query_seconds(&db, &io_q, &slow_cpu).unwrap();

        let cpu_ratio = cpu_slow / cpu_base;
        let io_ratio = io_slow / io_base;
        assert!(
            cpu_ratio > io_ratio,
            "CPU-bound queries must be more sensitive to CPU-cost growth \
             ({cpu_ratio:.3} vs {io_ratio:.3})"
        );
    }
}
