//! Per-operator cost formulas (the shape of PostgreSQL's `costsize.c`).
//!
//! All costs are in optimizer units (1 = one sequential page fetch) and are
//! functions of the environment-parameter vector [`OptimizerParams`] plus
//! statistics-derived sizes. The virtualization-aware what-if mode works by
//! evaluating these same formulas under different calibrated `P(R)`.

use crate::OptimizerParams;
use dbvirt_storage::PAGE_SIZE;

/// Expected number of distinct pages touched when fetching `k` random
/// tuples from a table of `n_rows` rows on `n_pages` pages (Yao's formula,
/// in the closed approximation `p * (1 - (1 - 1/p)^k)`).
pub fn yao_pages(n_pages: f64, _n_rows: f64, k_tuples: f64) -> f64 {
    if n_pages <= 0.0 || k_tuples <= 0.0 {
        return 0.0;
    }
    let p = n_pages.max(1.0);
    p * (1.0 - (1.0 - 1.0 / p).powf(k_tuples))
}

/// Physical pages a steady-state sequential scan reads: zero when the
/// **query's whole base-table working set** fits in the effective cache
/// (repeated executions are all hits), the full table when it does not —
/// a clock-swept cache smaller than the working set is flushed by the
/// query's own looping scans, so every page misses again.
///
/// PostgreSQL's `cost_seqscan` charges every page unconditionally; this
/// cache cutoff is a documented extension (DESIGN.md) that matches the
/// steady-state measurements the virtualization design problem optimizes
/// for — it is what makes the *memory* share matter to the what-if model,
/// as it does in the paper's Figure 3. Gating on the working set rather
/// than the single table keeps the model honest: it cannot claim a cache
/// win for one table of a query whose total footprint still thrashes.
pub fn seq_scan_io_pages(p: &OptimizerParams, pages: f64, working_set_pages: f64) -> f64 {
    if working_set_pages.max(pages) <= p.effective_cache_size_pages {
        0.0
    } else {
        pages
    }
}

/// Sequential scan: steady-state page I/O (see [`seq_scan_io_pages`]),
/// every row processed, the filter (with `filter_ops` operator
/// applications) evaluated per row. `working_set_pages` is the summed page
/// count of every distinct base table the whole query touches.
pub fn seq_scan_cost(
    p: &OptimizerParams,
    pages: f64,
    rows: f64,
    filter_ops: f64,
    working_set_pages: f64,
) -> f64 {
    seq_scan_io_pages(p, pages, working_set_pages) * p.seq_page_cost
        + rows * (p.cpu_tuple_cost + filter_ops * p.cpu_operator_cost)
}

/// Index scan: B+tree descent and leaf walk, index-entry CPU, then heap
/// fetches with a Mackert–Lohman-style cache discount against
/// `effective_cache_size`.
///
/// * `tuples_fetched` — rows selected by the index condition;
/// * repeats beyond the first touch of a page are free when the table fits
///   in the effective cache, and cost a full random fetch when it does not
///   (linear in between).
#[allow(clippy::too_many_arguments)]
pub fn index_scan_cost(
    p: &OptimizerParams,
    index_height: f64,
    index_leaf_pages: f64,
    index_entries: f64,
    selectivity: f64,
    table_pages: f64,
    table_rows: f64,
    filter_ops: f64,
) -> f64 {
    let selectivity = selectivity.clamp(0.0, 1.0);
    let tuples_fetched = (table_rows * selectivity).max(0.0);

    // Index I/O: descent plus the visited fraction of the leaf level.
    let index_pages = index_height + selectivity * index_leaf_pages;
    let index_io = index_pages * p.random_page_cost;
    let index_cpu = selectivity * index_entries * p.cpu_index_tuple_cost;

    // Heap I/O: distinct pages always fault once; repeats fault only when
    // the table exceeds the effective cache.
    let distinct = yao_pages(table_pages, table_rows, tuples_fetched);
    let cached_frac = if table_pages > 0.0 {
        (p.effective_cache_size_pages / table_pages).min(1.0)
    } else {
        1.0
    };
    let repeats = (tuples_fetched - distinct).max(0.0);
    let heap_pages = distinct + repeats * (1.0 - cached_frac);
    let heap_io = heap_pages * p.random_page_cost;

    let heap_cpu = tuples_fetched * (p.cpu_tuple_cost + filter_ops * p.cpu_operator_cost);
    index_io + index_cpu + heap_io + heap_cpu
}

/// Heap-fetch side shared by all index access paths: distinct pages fault
/// once (Yao), repeats fault only when the table exceeds the effective
/// cache, plus per-tuple CPU and residual-filter evaluation.
fn heap_fetch_cost(
    p: &OptimizerParams,
    table_pages: f64,
    table_rows: f64,
    tuples_fetched: f64,
    filter_ops: f64,
) -> f64 {
    let distinct = yao_pages(table_pages, table_rows, tuples_fetched);
    let cached_frac = if table_pages > 0.0 {
        (p.effective_cache_size_pages / table_pages).min(1.0)
    } else {
        1.0
    };
    let repeats = (tuples_fetched - distinct).max(0.0);
    let heap_pages = distinct + repeats * (1.0 - cached_frac);
    heap_pages * p.random_page_cost
        + tuples_fetched * (p.cpu_tuple_cost + filter_ops * p.cpu_operator_cost)
}

/// Statistics describing one arm of a multi-index scan for costing:
/// the probed index's geometry plus the arm condition's selectivity.
#[derive(Debug, Clone, Copy)]
pub struct ArmStats {
    /// B+tree height of the probed index.
    pub height: f64,
    /// Total node pages of the probed index.
    pub pages: f64,
    /// Total entries in the probed index.
    pub entries: f64,
    /// Fraction of entries the arm's key range selects.
    pub selectivity: f64,
}

/// Index side of one multi-index arm: descent + visited leaf fraction,
/// per-entry index CPU, plus one comparison per entry for the TID merge.
fn arm_cost(p: &OptimizerParams, a: &ArmStats) -> f64 {
    let sel = a.selectivity.clamp(0.0, 1.0);
    let index_pages = a.height + sel * a.pages;
    index_pages * p.random_page_cost + sel * a.entries * (p.cpu_index_tuple_cost + p.cpu_operator_cost)
}

fn multi_index_cost(
    p: &OptimizerParams,
    arms: &[ArmStats],
    combined_selectivity: f64,
    table_pages: f64,
    table_rows: f64,
    filter_ops: f64,
) -> f64 {
    let index_side: f64 = arms.iter().map(|a| arm_cost(p, a)).sum();
    let tuples = (table_rows * combined_selectivity.clamp(0.0, 1.0)).max(0.0);
    index_side + heap_fetch_cost(p, table_pages, table_rows, tuples, filter_ops)
}

/// Index intersection (`IndexAnd`): every arm pays its index side, then
/// only the intersection (`combined_selectivity`, typically the product of
/// arm selectivities) is fetched from the heap.
pub fn index_and_cost(
    p: &OptimizerParams,
    arms: &[ArmStats],
    combined_selectivity: f64,
    table_pages: f64,
    table_rows: f64,
    filter_ops: f64,
) -> f64 {
    multi_index_cost(
        p,
        arms,
        combined_selectivity,
        table_pages,
        table_rows,
        filter_ops,
    )
}

/// Index union (`IndexOr`): every arm pays its index side, then the union
/// (`combined_selectivity`, at most the sum of arm selectivities) is
/// fetched from the heap.
pub fn index_or_cost(
    p: &OptimizerParams,
    arms: &[ArmStats],
    combined_selectivity: f64,
    table_pages: f64,
    table_rows: f64,
    filter_ops: f64,
) -> f64 {
    multi_index_cost(
        p,
        arms,
        combined_selectivity,
        table_pages,
        table_rows,
        filter_ops,
    )
}

/// Sort: `2 * cpu_operator_cost` per comparison over `n log2 n`
/// comparisons, plus one spill write+read pass when the input exceeds
/// `work_mem`.
pub fn sort_cost(p: &OptimizerParams, rows: f64, avg_width_bytes: f64) -> f64 {
    if rows < 2.0 {
        return rows * p.cpu_operator_cost;
    }
    let cpu = 2.0 * p.cpu_operator_cost * rows * rows.log2();
    let bytes = rows * avg_width_bytes;
    let io = if bytes > p.work_mem_bytes {
        let pages = (bytes / PAGE_SIZE as f64).ceil();
        2.0 * pages * p.seq_page_cost
    } else {
        0.0
    };
    cpu + io
}

/// Hash join: build-side hashing, probe-side hashing, per-output tuple
/// cost, plus grace-hash spill I/O when the build side exceeds `work_mem`.
pub fn hash_join_cost(
    p: &OptimizerParams,
    probe_rows: f64,
    build_rows: f64,
    out_rows: f64,
    probe_bytes: f64,
    build_bytes: f64,
) -> f64 {
    let cpu = (probe_rows + build_rows) * (p.cpu_operator_cost + 0.5 * p.cpu_tuple_cost)
        + out_rows * p.cpu_tuple_cost;
    let io = if build_bytes > p.work_mem_bytes {
        let batches = (build_bytes / p.work_mem_bytes).ceil().max(2.0);
        let spilled = (batches - 1.0) / batches;
        2.0 * spilled * (build_bytes + probe_bytes) / PAGE_SIZE as f64 * p.seq_page_cost
    } else {
        0.0
    };
    cpu + io
}

/// Merge join over pre-sorted inputs: linear passes plus output.
pub fn merge_join_cost(p: &OptimizerParams, left_rows: f64, right_rows: f64, out_rows: f64) -> f64 {
    (left_rows + right_rows) * p.cpu_tuple_cost + out_rows * p.cpu_tuple_cost
}

/// Nested-loop join over a materialized inner: a predicate evaluation per
/// pair.
pub fn nl_join_cost(
    p: &OptimizerParams,
    left_rows: f64,
    right_rows: f64,
    pred_ops: f64,
    out_rows: f64,
) -> f64 {
    left_rows * right_rows * (p.cpu_tuple_cost + pred_ops * p.cpu_operator_cost)
        + out_rows * p.cpu_tuple_cost
}

/// Aggregation: per-row transition work (one operator per aggregate plus
/// argument evaluation, plus hashing when `hashed`), per-group output
/// tuples.
pub fn agg_cost(
    p: &OptimizerParams,
    rows: f64,
    groups: f64,
    n_aggs: f64,
    arg_ops: f64,
    hashed: bool,
) -> f64 {
    let hash_term = if hashed { p.cpu_operator_cost } else { 0.0 };
    rows * (n_aggs * p.cpu_operator_cost + arg_ops * p.cpu_operator_cost + hash_term)
        + groups * p.cpu_tuple_cost
}

/// Standalone filter.
pub fn filter_cost(p: &OptimizerParams, rows: f64, pred_ops: f64) -> f64 {
    rows * (p.cpu_tuple_cost + pred_ops * p.cpu_operator_cost)
}

/// Projection.
pub fn project_cost(p: &OptimizerParams, rows: f64, expr_ops: f64) -> f64 {
    rows * (p.cpu_tuple_cost + expr_ops * p.cpu_operator_cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> OptimizerParams {
        OptimizerParams::postgres_defaults()
    }

    #[test]
    fn yao_properties() {
        // Fetching nothing touches nothing.
        assert_eq!(yao_pages(100.0, 1000.0, 0.0), 0.0);
        // Fetching one tuple touches ~one page.
        assert!((yao_pages(100.0, 1000.0, 1.0) - 1.0).abs() < 0.01);
        // Never exceeds the page count.
        assert!(yao_pages(100.0, 1000.0, 1e9) <= 100.0 + 1e-9);
        // Monotone in k.
        assert!(yao_pages(100.0, 1000.0, 50.0) < yao_pages(100.0, 1000.0, 500.0));
    }

    /// Parameters with a negligible cache, so page I/O is always charged.
    fn p_uncached() -> OptimizerParams {
        OptimizerParams {
            effective_cache_size_pages: 1.0,
            ..p()
        }
    }

    #[test]
    fn seq_scan_monotone_in_pages_and_rows() {
        let base = seq_scan_cost(&p_uncached(), 100.0, 5000.0, 2.0, 100.0);
        assert!(seq_scan_cost(&p_uncached(), 200.0, 5000.0, 2.0, 200.0) > base);
        assert!(seq_scan_cost(&p_uncached(), 100.0, 10_000.0, 2.0, 100.0) > base);
        assert!(seq_scan_cost(&p_uncached(), 100.0, 5000.0, 4.0, 100.0) > base);
    }

    #[test]
    fn seq_scan_io_is_free_for_cached_tables() {
        let params = p(); // ecs = 1000 pages
        assert_eq!(seq_scan_io_pages(&params, 500.0, 500.0), 0.0);
        assert_eq!(seq_scan_io_pages(&params, 1500.0, 1500.0), 1500.0);
        // Cached table, thrashing query: still charged.
        assert_eq!(seq_scan_io_pages(&params, 500.0, 5000.0), 500.0);
        // A cached scan costs only CPU.
        let cached = seq_scan_cost(&params, 500.0, 1000.0, 0.0, 500.0);
        assert!((cached - 1000.0 * params.cpu_tuple_cost).abs() < 1e-12);
    }

    #[test]
    fn index_scan_wins_when_selective_loses_when_not() {
        let params = p_uncached();
        let (pages, rows) = (1000.0, 100_000.0);
        let seq = seq_scan_cost(&params, pages, rows, 2.0, pages);
        let selective = index_scan_cost(&params, 3.0, 200.0, rows, 0.001, pages, rows, 0.0);
        let unselective = index_scan_cost(&params, 3.0, 200.0, rows, 0.9, pages, rows, 0.0);
        assert!(selective < seq, "0.1% selectivity should favor the index");
        assert!(unselective > seq, "90% selectivity should favor the scan");
    }

    #[test]
    fn larger_effective_cache_makes_index_scans_cheaper() {
        let mut small = p();
        small.effective_cache_size_pages = 10.0;
        let mut large = p();
        large.effective_cache_size_pages = 100_000.0;
        let cost_small =
            index_scan_cost(&small, 3.0, 200.0, 100_000.0, 0.3, 1000.0, 100_000.0, 0.0);
        let cost_large =
            index_scan_cost(&large, 3.0, 200.0, 100_000.0, 0.3, 1000.0, 100_000.0, 0.0);
        assert!(
            cost_large < cost_small,
            "cache discount must reduce repeat-fetch cost ({cost_large} vs {cost_small})"
        );
    }

    #[test]
    fn sort_spills_when_past_work_mem() {
        let mut params = p();
        params.work_mem_bytes = 1024.0;
        let in_mem = sort_cost(&params, 10.0, 50.0);
        let spilled = sort_cost(&params, 10_000.0, 50.0);
        let cpu_only = 2.0 * params.cpu_operator_cost * 10_000.0 * 10_000f64.log2();
        assert!(in_mem < 1.0);
        assert!(spilled > cpu_only, "spill I/O must be charged");
    }

    #[test]
    fn hash_join_spill_kicks_in() {
        let mut params = p();
        params.work_mem_bytes = 8192.0;
        let small = hash_join_cost(&params, 1000.0, 100.0, 1000.0, 50_000.0, 5_000.0);
        let large = hash_join_cost(&params, 1000.0, 10_000.0, 1000.0, 50_000.0, 500_000.0);
        assert!(large > small);
        // The spilled variant includes I/O beyond linear CPU scaling.
        let linear_cpu = hash_join_cost(
            &OptimizerParams {
                work_mem_bytes: f64::MAX,
                ..params
            },
            1000.0,
            10_000.0,
            1000.0,
            50_000.0,
            500_000.0,
        );
        assert!(large > linear_cpu);
    }

    #[test]
    fn costs_respond_to_parameter_changes() {
        // This is the heart of the what-if mode: raising cpu_tuple_cost
        // raises CPU-heavy costs but leaves pure I/O costs alone.
        let base = p_uncached();
        let mut cpu_heavy = p_uncached();
        cpu_heavy.cpu_tuple_cost *= 4.0;
        let scan_base = seq_scan_cost(&base, 100.0, 100_000.0, 0.0, 100.0);
        let scan_heavy = seq_scan_cost(&cpu_heavy, 100.0, 100_000.0, 0.0, 100.0);
        assert!(scan_heavy > scan_base);
        // Pure page cost unchanged.
        let io_base = seq_scan_cost(&base, 100.0, 0.0, 0.0, 100.0);
        let io_heavy = seq_scan_cost(&cpu_heavy, 100.0, 0.0, 0.0, 100.0);
        assert_eq!(io_base, io_heavy);
    }
}
