//! # dbvirt-optimizer — the virtualization-aware query optimizer
//!
//! A cost-based optimizer in the PostgreSQL mold, built around the paper's
//! central idea: the optimizer's cost model is parameterized by a vector of
//! **environment parameters** `P` ([`OptimizerParams`], with PostgreSQL's
//! names: `cpu_tuple_cost`, `cpu_operator_cost`, `random_page_cost`,
//! `effective_cache_size`, …), and *only* `P` changes when the virtual
//! machine's resource allocation changes. Access paths and statistics stay
//! fixed. Re-optimizing a workload under a calibrated `P(R)` therefore
//! yields a cost estimate for running the workload under allocation `R`
//! without executing anything — the paper's **what-if mode** ([`whatif`]).
//!
//! Components:
//!
//! * [`OptimizerParams`] — the parameter vector `P`, with PostgreSQL 8.1
//!   defaults and a `unit_seconds` scale (seconds per sequential page
//!   fetch) so that cost units convert to estimated execution time;
//! * [`LogicalPlan`] — the optimizer's input algebra;
//! * [`card`] — statistics-driven selectivity and cardinality estimation;
//! * [`cost`] — per-operator cost formulas mirroring `costsize.c`,
//!   including a Mackert–Lohman-style cache adjustment for index scans
//!   against `effective_cache_size`;
//! * [`planner`] — access-path selection, Selinger-style dynamic-
//!   programming join ordering for inner-join chains, and physical
//!   operator choice, producing the same [`dbvirt_engine::PhysicalPlan`]s
//!   the executor runs;
//! * [`whatif`] — `estimate_workload_seconds(db, workload, P)`: the
//!   function the virtualization design problem's `Cost(W, R)` is built
//!   from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod card;
pub mod cost;
mod error;
mod logical;
mod params;
pub mod planner;
pub mod whatif;

pub use error::OptError;
pub use logical::{JoinCondition, LogicalPlan};
pub use params::OptimizerParams;
pub use planner::{plan_query, plan_query_with_indexes, HypoIndex, PlannedQuery};
pub use whatif::{estimate_query_seconds, estimate_workload_seconds};
