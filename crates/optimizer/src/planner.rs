//! The planner: logical plans in, costed physical plans out.
//!
//! Planning follows the classic System R / PostgreSQL recipe:
//!
//! 1. **Access-path selection** — for every base-table scan, compare a
//!    sequential scan against every index whose column appears in a
//!    sargable conjunct of the filter, using the cost formulas in
//!    [`crate::cost`] under the supplied [`OptimizerParams`];
//! 2. **Join ordering** — chains of inner equi-joins are flattened and
//!    re-ordered with Selinger-style dynamic programming over relation
//!    subsets (no cross products unless the join graph is disconnected);
//!    outer/semi/anti joins act as optimization barriers;
//! 3. **Physical operator choice** — hash joins build on the cheaper
//!    (smaller) side; aggregation picks hash vs sort+sorted-agg by cost.
//!
//! Because the cost formulas take `P` as an argument, *the same planner* is
//! both the normal optimizer (default `P`) and the paper's what-if
//! optimizer (calibrated `P(R)`); changing `P` can genuinely change the
//! chosen plan, exactly as in the paper.

use crate::{card, cost, LogicalPlan, OptError, OptimizerParams};
use dbvirt_engine::{
    CmpOp, Database, Expr, IndexArm, IndexId, JoinType, PhysicalPlan, SortKey, TableId,
};
use dbvirt_storage::{keyenc, BPlusTree, DataType, Datum, TableStats, PAGE_SIZE};
use std::collections::HashMap;
use std::ops::Bound;

/// A hypothetical ("what-if") index over `columns` of `table`, priced by
/// the planner exactly as a real index would be — its B+tree geometry is
/// computed from the table's row count via [`BPlusTree::bulk_geometry`]
/// without building anything. Plans that pick a hypothetical access path
/// are estimate-only (see [`PlannedQuery::uses_hypothetical`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HypoIndex {
    /// The indexed table.
    pub table: TableId,
    /// Key columns, major first.
    pub columns: Vec<usize>,
}

/// A fully planned query: the physical plan plus its estimates.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The executable physical plan.
    pub physical: PhysicalPlan,
    /// Estimated output rows.
    pub est_rows: f64,
    /// Estimated total cost, in optimizer units.
    pub est_cost_units: f64,
    /// True when the plan references a hypothetical index (what-if
    /// planning via [`plan_query_with_indexes`]); such plans cost-estimate
    /// but must not be executed.
    pub uses_hypothetical: bool,
}

impl PlannedQuery {
    /// Estimated execution time in seconds under the parameters used for
    /// planning.
    pub fn est_seconds(&self, params: &OptimizerParams) -> f64 {
        params.units_to_seconds(self.est_cost_units)
    }
}

/// Per-node planning state.
#[derive(Debug, Clone)]
struct Planned {
    phys: PhysicalPlan,
    rows: f64,
    cost: f64,
    /// Average output tuple width in bytes (drives spill estimates).
    width: f64,
    /// Provenance of each output column: `(table, column)` for base
    /// columns, `None` for derived values.
    origins: Vec<Option<(TableId, usize)>>,
}

impl Planned {
    fn arity(&self) -> usize {
        self.origins.len()
    }
}

/// Statistics with no columns: every estimator falls back to its PostgreSQL
/// default constant. Used for predicates over derived schemas.
fn empty_stats() -> TableStats {
    TableStats {
        n_rows: 0,
        n_pages: 0,
        columns: Vec::new(),
    }
}

fn table_stats(db: &Database, table: TableId) -> Result<&TableStats, OptError> {
    db.table(table)
        .stats
        .as_ref()
        .ok_or_else(|| OptError::MissingStats {
            table: db.table(table).name.clone(),
        })
}

/// NDV of an output column, via its base-table origin; falls back to the
/// node's row estimate (i.e. "assume distinct") when provenance is lost.
fn ndv_of(db: &Database, planned: &Planned, col: usize) -> f64 {
    match planned.origins.get(col).copied().flatten() {
        Some((table, base_col)) => db
            .table(table)
            .stats
            .as_ref()
            .and_then(|s| s.columns.get(base_col))
            .map(|c| c.n_distinct as f64)
            .unwrap_or(planned.rows)
            .max(1.0),
        None => planned.rows.max(1.0),
    }
}

/// Splits a conjunction into its top-level conjuncts.
fn split_conjuncts(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::And(l, r) => {
            split_conjuncts(l, out);
            split_conjuncts(r, out);
        }
        other => out.push(other.clone()),
    }
}

/// Planning context threaded through the recursive planner: the catalog,
/// the environment-parameter vector, and any hypothetical indexes to price
/// alongside the real ones.
struct PlanCtx<'a> {
    db: &'a Database,
    params: &'a OptimizerParams,
    hypo: &'a [HypoIndex],
}

/// One access-path candidate's index description: a real catalog index or
/// a hypothetical one (id numbered past the catalog), with its (actual or
/// computed) B+tree geometry.
struct IndexInfo {
    id: IndexId,
    columns: Vec<usize>,
    height: f64,
    pages: f64,
    entries: f64,
}

impl PlanCtx<'_> {
    /// Real indexes on `table` (catalog order) followed by hypothetical
    /// ones (declaration order, ids continuing past the catalog).
    fn index_menu(&self, table: TableId, stats: &TableStats) -> Vec<IndexInfo> {
        let meta = self.db.table(table);
        let mut menu: Vec<IndexInfo> = meta
            .indexes
            .iter()
            .map(|&id| {
                let m = self.db.index(id);
                let t = self.db.index_tree(id);
                IndexInfo {
                    id,
                    columns: m.columns.clone(),
                    height: t.height() as f64,
                    pages: t.num_pages() as f64,
                    entries: t.len() as f64,
                }
            })
            .collect();
        let base = self.db.num_indexes();
        for (i, h) in self.hypo.iter().enumerate() {
            if h.table != table {
                continue;
            }
            let (height, pages) = BPlusTree::bulk_geometry(stats.n_rows as usize);
            menu.push(IndexInfo {
                id: IndexId(base + i),
                columns: h.columns.clone(),
                height: height as f64,
                pages: pages as f64,
                entries: stats.n_rows as f64,
            });
        }
        menu
    }
}

/// A sargable bound extracted from one conjunct: `column op literal`.
struct Sarg {
    column: usize,
    op: CmpOp,
    literal: Datum,
}

fn as_sarg(expr: &Expr) -> Option<Sarg> {
    let Expr::Cmp { op, lhs, rhs } = expr else {
        return None;
    };
    match (lhs.as_ref(), rhs.as_ref()) {
        (Expr::Column(c), Expr::Literal(d)) => Some(Sarg {
            column: *c,
            op: *op,
            literal: d.clone(),
        }),
        (Expr::Literal(d), Expr::Column(c)) => {
            let flipped = match op {
                CmpOp::Eq => CmpOp::Eq,
                CmpOp::Ne => CmpOp::Ne,
                CmpOp::Lt => CmpOp::Gt,
                CmpOp::Le => CmpOp::Ge,
                CmpOp::Gt => CmpOp::Lt,
                CmpOp::Ge => CmpOp::Le,
            };
            Some(Sarg {
                column: *c,
                op: flipped,
                literal: d.clone(),
            })
        }
        _ => None,
    }
}

/// Splits a disjunction into its top-level disjuncts.
fn split_disjuncts(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Or(l, r) => {
            split_disjuncts(l, out);
            split_disjuncts(r, out);
        }
        other => out.push(other.clone()),
    }
}

/// Coerces a literal to a column's type for index-key comparison; `None`
/// when no order-preserving coercion exists (the predicate then stays a
/// residual filter).
fn coerce_literal(lit: &Datum, ty: DataType) -> Option<Datum> {
    match (lit, ty) {
        (Datum::Int(i), DataType::Float) => Some(Datum::Float(*i as f64)),
        _ if lit.data_type() == Some(ty) => Some(lit.clone()),
        _ => None,
    }
}

/// Max per-arm selectivity for an index to participate in a multi-index
/// AND/OR (the fanout gate: wide arms make intersection/union pointless).
const MULTI_INDEX_ARM_MAX_SEL: f64 = 0.25;
/// Max arms of a multi-index AND (each arm pays a full index probe).
const MULTI_INDEX_MAX_ARMS: usize = 4;

/// Key bounds and bookkeeping extracted for one single-column index from
/// a conjunct list.
struct ColBounds {
    lo: Bound<Datum>,
    hi: Bound<Datum>,
    /// Remaining conjuncts (applied as the residual filter).
    residual: Vec<Expr>,
    /// Estimated fraction of the index's entries the bounds select.
    selectivity: f64,
}

/// Extracts single-column key bounds on `column` from `conjuncts`:
/// comparison sargs plus `LIKE 'prefix%'` ranges on string columns.
fn single_col_bounds(
    conjuncts: &[Expr],
    column: usize,
    col_type: DataType,
    stats: &TableStats,
) -> Option<ColBounds> {
    let mut lo: Bound<Datum> = Bound::Unbounded;
    let mut hi: Bound<Datum> = Bound::Unbounded;
    let mut residual: Vec<Expr> = Vec::new();
    let mut bound_terms: Vec<Expr> = Vec::new();
    for c in conjuncts {
        if let Some(s) = as_sarg(c).filter(|s| s.column == column) {
            match s.op {
                CmpOp::Eq => {
                    lo = Bound::Included(s.literal.clone());
                    hi = Bound::Included(s.literal);
                    bound_terms.push(c.clone());
                }
                CmpOp::Lt => {
                    hi = Bound::Excluded(s.literal);
                    bound_terms.push(c.clone());
                }
                CmpOp::Le => {
                    hi = Bound::Included(s.literal);
                    bound_terms.push(c.clone());
                }
                CmpOp::Gt => {
                    lo = Bound::Excluded(s.literal);
                    bound_terms.push(c.clone());
                }
                CmpOp::Ge => {
                    lo = Bound::Included(s.literal);
                    bound_terms.push(c.clone());
                }
                CmpOp::Ne => residual.push(c.clone()),
            }
            continue;
        }
        // LIKE 'prefix%' on a string column: the prefix is a key range.
        if let Expr::Like {
            expr,
            pattern,
            negated: false,
        } = c
        {
            if matches!(expr.as_ref(), Expr::Column(lc) if *lc == column)
                && col_type == DataType::Str
            {
                if let Some((prefix, exact)) = card::like_prefix(pattern) {
                    lo = Bound::Included(Datum::str(prefix.clone()));
                    hi = match card::string_prefix_successor(&prefix) {
                        Some(succ) => {
                            bound_terms.push(Expr::lt(Expr::col(column), Expr::str(succ.clone())));
                            Bound::Excluded(Datum::str(succ))
                        }
                        None => Bound::Unbounded,
                    };
                    bound_terms.push(Expr::ge(Expr::col(column), Expr::str(prefix)));
                    if !exact {
                        // The range over-covers; re-check the pattern.
                        residual.push(c.clone());
                    }
                    continue;
                }
            }
        }
        residual.push(c.clone());
    }
    if bound_terms.is_empty() {
        return None;
    }
    let selectivity = card::filter_selectivity(&Expr::and_all(bound_terms), stats);
    Some(ColBounds {
        lo,
        hi,
        residual,
        selectivity,
    })
}

/// Encoded key bounds for a composite index given an equality prefix and
/// an optional range on the following key column (see `storage::keyenc`
/// for why the sentinel arithmetic is sound).
fn composite_bounds(
    prefix: &[Datum],
    range: Option<&(Bound<Datum>, Bound<Datum>)>,
) -> (Bound<Datum>, Bound<Datum>) {
    let ext = |v: &Datum| {
        let mut p = prefix.to_vec();
        p.push(v.clone());
        p
    };
    match range {
        None => (
            Bound::Included(keyenc::encode_key(prefix)),
            Bound::Excluded(keyenc::encode_prefix_upper(prefix)),
        ),
        Some((lo, hi)) => {
            let lo_enc = match lo {
                Bound::Included(v) => Bound::Included(keyenc::encode_key(&ext(v))),
                Bound::Excluded(v) => Bound::Included(keyenc::encode_prefix_upper(&ext(v))),
                Bound::Unbounded if prefix.is_empty() => Bound::Unbounded,
                Bound::Unbounded => Bound::Included(keyenc::encode_key(prefix)),
            };
            let hi_enc = match hi {
                Bound::Included(v) => Bound::Excluded(keyenc::encode_prefix_upper(&ext(v))),
                Bound::Excluded(v) => Bound::Excluded(keyenc::encode_key(&ext(v))),
                Bound::Unbounded if prefix.is_empty() => Bound::Unbounded,
                Bound::Unbounded => Bound::Excluded(keyenc::encode_prefix_upper(prefix)),
            };
            (lo_enc, hi_enc)
        }
    }
}

/// Encoded key bounds + matched terms for a composite index: an equality
/// prefix over the leading key columns, optionally extended by a range on
/// the next one. `None` when the filter doesn't constrain the leading
/// column.
fn composite_col_bounds(
    conjuncts: &[Expr],
    info: &IndexInfo,
    schema: &dbvirt_storage::Schema,
    stats: &TableStats,
) -> Option<(Bound<Datum>, Bound<Datum>, f64)> {
    let mut prefix: Vec<Datum> = Vec::new();
    let mut matched: Vec<Expr> = Vec::new();
    let mut range: Option<(Bound<Datum>, Bound<Datum>)> = None;
    for &col in &info.columns {
        let ty = schema.field(col).data_type;
        // An equality pins the column and extends the prefix.
        let eq = conjuncts.iter().find_map(|c| {
            as_sarg(c)
                .filter(|s| s.column == col && s.op == CmpOp::Eq)
                .and_then(|s| coerce_literal(&s.literal, ty).map(|lit| (lit, c.clone())))
        });
        if let Some((lit, term)) = eq {
            prefix.push(lit);
            matched.push(term);
            continue;
        }
        // Otherwise a range on this column ends the prefix.
        let mut lo: Bound<Datum> = Bound::Unbounded;
        let mut hi: Bound<Datum> = Bound::Unbounded;
        for c in conjuncts {
            let Some(s) = as_sarg(c).filter(|s| s.column == col) else {
                continue;
            };
            let Some(lit) = coerce_literal(&s.literal, ty) else {
                continue;
            };
            match s.op {
                CmpOp::Lt => hi = Bound::Excluded(lit),
                CmpOp::Le => hi = Bound::Included(lit),
                CmpOp::Gt => lo = Bound::Excluded(lit),
                CmpOp::Ge => lo = Bound::Included(lit),
                CmpOp::Eq | CmpOp::Ne => continue,
            }
            matched.push(c.clone());
        }
        if !matches!((&lo, &hi), (Bound::Unbounded, Bound::Unbounded)) {
            range = Some((lo, hi));
        }
        break;
    }
    if matched.is_empty() {
        return None;
    }
    let selectivity = card::filter_selectivity(&Expr::and_all(matched), stats);
    let (lo, hi) = composite_bounds(&prefix, range.as_ref());
    Some((lo, hi, selectivity))
}

/// Plans a base-table scan: sequential scan vs. every usable index access
/// path — single-column and composite-prefix index scans, plus fanout-gated
/// multi-index intersections (`IndexAnd`) and unions (`IndexOr`).
fn plan_scan(
    cx: &PlanCtx<'_>,
    table: TableId,
    filter: &Option<Expr>,
    working_set_pages: f64,
) -> Result<Planned, OptError> {
    let db = cx.db;
    let params = cx.params;
    let stats = table_stats(db, table)?;
    let meta = db.table(table);
    let pages = stats.n_pages as f64;
    let rows = stats.n_rows as f64;
    let width = if rows > 0.0 {
        (pages * PAGE_SIZE as f64 / rows).clamp(8.0, 512.0)
    } else {
        64.0
    };
    let origins: Vec<Option<(TableId, usize)>> =
        (0..meta.schema.len()).map(|c| Some((table, c))).collect();

    let sel = filter
        .as_ref()
        .map_or(1.0, |f| card::filter_selectivity(f, stats));
    let out_rows = (rows * sel).max(0.0);
    let filter_ops = filter.as_ref().map_or(0.0, |f| f.num_operators() as f64);

    // Candidate: sequential scan.
    let mut best = Planned {
        phys: PhysicalPlan::SeqScan {
            table,
            filter: filter.clone(),
        },
        rows: out_rows,
        cost: cost::seq_scan_cost(params, pages, rows, filter_ops, working_set_pages),
        width,
        origins: origins.clone(),
    };

    // Candidates: one per index with a sargable bound.
    let Some(filter) = filter else {
        return Ok(best);
    };
    let mut conjuncts = Vec::new();
    split_conjuncts(filter, &mut conjuncts);

    let menu = cx.index_menu(table, stats);
    // Single-column bounds per menu entry, reused as multi-index arms.
    let mut arm_pool: Vec<(usize, ColBounds)> = Vec::new();

    for (pos, info) in menu.iter().enumerate() {
        let candidate = if info.columns.len() == 1 {
            let col = info.columns[0];
            let col_type = meta.schema.field(col).data_type;
            let Some(cb) = single_col_bounds(&conjuncts, col, col_type, stats) else {
                continue;
            };
            let residual_ops: f64 = cb.residual.iter().map(|e| e.num_operators() as f64).sum();
            let index_cost = cost::index_scan_cost(
                params,
                info.height,
                info.pages,
                info.entries,
                cb.selectivity,
                pages,
                rows,
                residual_ops,
            );
            let phys = PhysicalPlan::IndexScan {
                table,
                index: info.id,
                lo: cb.lo.clone(),
                hi: cb.hi.clone(),
                filter: if cb.residual.is_empty() {
                    None
                } else {
                    Some(Expr::and_all(cb.residual.clone()))
                },
            };
            arm_pool.push((pos, cb));
            (phys, index_cost)
        } else {
            // Composite index: encoded prefix (+ range) bounds. The full
            // original filter stays as the residual — the encoded range is
            // a superset of the qualifying rows, never a subset.
            let Some((lo, hi, index_sel)) =
                composite_col_bounds(&conjuncts, info, &meta.schema, stats)
            else {
                continue;
            };
            let index_cost = cost::index_scan_cost(
                params,
                info.height,
                info.pages,
                info.entries,
                index_sel,
                pages,
                rows,
                filter_ops,
            );
            let phys = PhysicalPlan::IndexScan {
                table,
                index: info.id,
                lo,
                hi,
                filter: Some(filter.clone()),
            };
            (phys, index_cost)
        };
        if candidate.1 < best.cost {
            best = Planned {
                phys: candidate.0,
                rows: out_rows,
                cost: candidate.1,
                width,
                origins: origins.clone(),
            };
        }
    }

    // Candidate: multi-index intersection over selective single-column
    // arms (fanout-gated; every arm pays its own index probe, so the cost
    // comparison rejects useless extra arms via the seq/single baselines).
    let mut and_arms: Vec<&(usize, ColBounds)> = arm_pool
        .iter()
        .filter(|(_, cb)| cb.selectivity <= MULTI_INDEX_ARM_MAX_SEL)
        .collect();
    and_arms.sort_by(|a, b| {
        a.1.selectivity
            .total_cmp(&b.1.selectivity)
            .then(a.0.cmp(&b.0))
    });
    and_arms.truncate(MULTI_INDEX_MAX_ARMS);
    // Distinct columns only: two arms on one column add probes, not power.
    {
        let mut seen_cols: Vec<usize> = Vec::new();
        and_arms.retain(|(pos, _)| {
            let col = menu[*pos].columns[0];
            if seen_cols.contains(&col) {
                false
            } else {
                seen_cols.push(col);
                true
            }
        });
    }
    if and_arms.len() >= 2 {
        let arm_stats: Vec<cost::ArmStats> = and_arms
            .iter()
            .map(|(pos, cb)| cost::ArmStats {
                height: menu[*pos].height,
                pages: menu[*pos].pages,
                entries: menu[*pos].entries,
                selectivity: cb.selectivity,
            })
            .collect();
        let combined: f64 = and_arms
            .iter()
            .map(|(_, cb)| cb.selectivity)
            .product::<f64>()
            .clamp(0.0, 1.0);
        let and_cost = cost::index_and_cost(params, &arm_stats, combined, pages, rows, filter_ops);
        if and_cost < best.cost {
            best = Planned {
                phys: PhysicalPlan::IndexAnd {
                    table,
                    arms: and_arms
                        .iter()
                        .map(|(pos, cb)| IndexArm {
                            index: menu[*pos].id,
                            lo: cb.lo.clone(),
                            hi: cb.hi.clone(),
                        })
                        .collect(),
                    filter: Some(filter.clone()),
                },
                rows: out_rows,
                cost: and_cost,
                width,
                origins: origins.clone(),
            };
        }
    }

    // Candidate: multi-index union when the whole filter is a disjunction
    // and every disjunct is sargable on some single-column index.
    if conjuncts.len() == 1 && matches!(conjuncts[0], Expr::Or(..)) {
        let mut disjuncts = Vec::new();
        split_disjuncts(&conjuncts[0], &mut disjuncts);
        let mut or_arms: Vec<(IndexArm, cost::ArmStats)> = Vec::new();
        let mut covered = true;
        for d in &disjuncts {
            let mut d_terms = Vec::new();
            split_conjuncts(d, &mut d_terms);
            // Cheapest sargable arm for this disjunct, menu order on ties.
            let mut arm: Option<(f64, usize, ColBounds)> = None;
            for (pos, info) in menu.iter().enumerate() {
                if info.columns.len() != 1 {
                    continue;
                }
                let col = info.columns[0];
                let col_type = meta.schema.field(col).data_type;
                let Some(cb) = single_col_bounds(&d_terms, col, col_type, stats) else {
                    continue;
                };
                if cb.selectivity > MULTI_INDEX_ARM_MAX_SEL {
                    continue;
                }
                if arm.as_ref().is_none_or(|(s, _, _)| cb.selectivity < *s) {
                    arm = Some((cb.selectivity, pos, cb));
                }
            }
            match arm {
                Some((_, pos, cb)) => or_arms.push((
                    IndexArm {
                        index: menu[pos].id,
                        lo: cb.lo,
                        hi: cb.hi,
                    },
                    cost::ArmStats {
                        height: menu[pos].height,
                        pages: menu[pos].pages,
                        entries: menu[pos].entries,
                        selectivity: cb.selectivity,
                    },
                )),
                None => {
                    covered = false;
                    break;
                }
            }
        }
        if covered && or_arms.len() >= 2 {
            let combined: f64 = or_arms
                .iter()
                .map(|(_, s)| s.selectivity)
                .sum::<f64>()
                .clamp(0.0, 1.0);
            let arm_stats: Vec<cost::ArmStats> = or_arms.iter().map(|(_, s)| *s).collect();
            let or_cost = cost::index_or_cost(params, &arm_stats, combined, pages, rows, filter_ops);
            if or_cost < best.cost {
                best = Planned {
                    phys: PhysicalPlan::IndexOr {
                        table,
                        arms: or_arms.into_iter().map(|(a, _)| a).collect(),
                        filter: Some(filter.clone()),
                    },
                    rows: out_rows,
                    cost: or_cost,
                    width,
                    origins: origins.clone(),
                };
            }
        }
    }
    Ok(best)
}

/// One flattened inner-join input with its global column offset.
struct FlatRelation {
    planned: Planned,
    global_offset: usize,
}

/// One equi-join edge in global column coordinates.
#[derive(Debug, Clone, Copy)]
struct FlatEdge {
    left_global: usize,
    right_global: usize,
}

/// Flattens a tree of inner equi-joins into base relations plus edges.
/// Non-inner joins and non-join nodes become opaque leaves.
fn flatten_inner_joins(
    cx: &PlanCtx<'_>,
    plan: &LogicalPlan,
    relations: &mut Vec<FlatRelation>,
    edges: &mut Vec<FlatEdge>,
    offset: usize,
    working_set_pages: f64,
) -> Result<usize, OptError> {
    match plan {
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type: JoinType::Inner,
        } => {
            let left_width =
                flatten_inner_joins(cx, left, relations, edges, offset, working_set_pages)?;
            let right_width = flatten_inner_joins(
                cx,
                right,
                relations,
                edges,
                offset + left_width,
                working_set_pages,
            )?;
            for c in on {
                edges.push(FlatEdge {
                    left_global: offset + c.left_col,
                    right_global: offset + left_width + c.right_col,
                });
            }
            Ok(left_width + right_width)
        }
        other => {
            let planned = plan_node(cx, other, working_set_pages)?;
            let width = planned.arity();
            relations.push(FlatRelation {
                planned,
                global_offset: offset,
            });
            Ok(width)
        }
    }
}

/// A DP entry: the best plan found for one relation subset.
#[derive(Debug, Clone)]
struct DpEntry {
    planned: Planned,
    /// Output layout: the global column id at each output position.
    layout: Vec<usize>,
}

fn hash_join_entry(
    cx: &PlanCtx<'_>,
    probe: &DpEntry,
    build: &DpEntry,
    conditions: &[(usize, usize)], // positions (probe_pos, build_pos)
) -> DpEntry {
    let (db, params) = (cx.db, cx.params);
    let mut sel = 1.0;
    let (mut lkeys, mut rkeys) = (Vec::new(), Vec::new());
    for &(lp, rp) in conditions {
        let lndv = ndv_of(db, &probe.planned, lp);
        let rndv = ndv_of(db, &build.planned, rp);
        sel /= lndv.max(rndv);
        lkeys.push(lp);
        rkeys.push(rp);
    }
    let out_rows = (probe.planned.rows * build.planned.rows * sel).max(1.0);
    let join_cost = cost::hash_join_cost(
        params,
        probe.planned.rows,
        build.planned.rows,
        out_rows,
        probe.planned.rows * probe.planned.width,
        build.planned.rows * build.planned.width,
    );
    let mut layout = probe.layout.clone();
    layout.extend(&build.layout);
    let mut origins = probe.planned.origins.clone();
    origins.extend(build.planned.origins.iter().copied());
    DpEntry {
        planned: Planned {
            phys: PhysicalPlan::HashJoin {
                left: Box::new(probe.planned.phys.clone()),
                right: Box::new(build.planned.phys.clone()),
                left_keys: lkeys,
                right_keys: rkeys,
                join_type: JoinType::Inner,
            },
            rows: out_rows,
            cost: probe.planned.cost + build.planned.cost + join_cost,
            width: probe.planned.width + build.planned.width,
            origins,
        },
        layout,
    }
}

/// Conditions joining entries `a` and `b`, as (a-position, b-position).
fn connecting_conditions(a: &DpEntry, b: &DpEntry, edges: &[FlatEdge]) -> Vec<(usize, usize)> {
    let pos_in = |layout: &[usize], g: usize| layout.iter().position(|&x| x == g);
    edges
        .iter()
        .filter_map(|e| {
            if let (Some(ap), Some(bp)) = (
                pos_in(&a.layout, e.left_global),
                pos_in(&b.layout, e.right_global),
            ) {
                Some((ap, bp))
            } else if let (Some(ap), Some(bp)) = (
                pos_in(&a.layout, e.right_global),
                pos_in(&b.layout, e.left_global),
            ) {
                Some((ap, bp))
            } else {
                None
            }
        })
        .collect()
}

/// Selinger DP over relation subsets; falls back to greedy cross joins for
/// disconnected graphs. Returns the best full-set entry.
fn dp_join_order(cx: &PlanCtx<'_>, relations: Vec<FlatRelation>, edges: &[FlatEdge]) -> DpEntry {
    let n = relations.len();
    let base: Vec<DpEntry> = relations
        .into_iter()
        .map(|r| {
            let arity = r.planned.arity();
            DpEntry {
                planned: r.planned,
                layout: (r.global_offset..r.global_offset + arity).collect(),
            }
        })
        .collect();

    if n == 1 {
        return base.into_iter().next().expect("one relation");
    }

    // For large N, cap DP with a greedy fallback (never hit by the TPC-H
    // subset, whose widest query joins 6 relations).
    if n > 12 {
        return greedy_join(cx, base, edges);
    }

    let full: u32 = (1u32 << n) - 1;
    let mut table: HashMap<u32, DpEntry> = HashMap::new();
    for (i, entry) in base.iter().enumerate() {
        table.insert(1 << i, entry.clone());
    }

    for subset in 1..=full {
        if subset.count_ones() < 2 || table.contains_key(&subset) {
            continue;
        }
        let mut best: Option<DpEntry> = None;
        // Enumerate proper non-empty splits.
        let mut sub = (subset - 1) & subset;
        while sub > 0 {
            let other = subset & !sub;
            if let (Some(a), Some(b)) = (table.get(&sub), table.get(&other)) {
                let conds = connecting_conditions(a, b, edges);
                if !conds.is_empty() {
                    // Build on the smaller side.
                    let (probe, build, conds) = if a.planned.rows >= b.planned.rows {
                        (a, b, conds)
                    } else {
                        (b, a, conds.iter().map(|&(x, y)| (y, x)).collect())
                    };
                    let candidate = hash_join_entry(cx, probe, build, &conds);
                    let better = best
                        .as_ref()
                        .is_none_or(|cur| candidate.planned.cost < cur.planned.cost);
                    if better {
                        best = Some(candidate);
                    }
                }
            }
            sub = (sub - 1) & subset;
        }
        if let Some(entry) = best {
            table.insert(subset, entry);
        }
    }

    match table.remove(&full) {
        Some(entry) => entry,
        // Disconnected join graph: stitch components with cross joins.
        None => {
            let components: Vec<DpEntry> = base;
            greedy_join(cx, components, edges)
        }
    }
}

/// Greedy fallback: repeatedly join the pair with the cheapest result,
/// using a cross nested-loop join when no equi-edge connects a pair.
fn greedy_join(cx: &PlanCtx<'_>, mut entries: Vec<DpEntry>, edges: &[FlatEdge]) -> DpEntry {
    while entries.len() > 1 {
        let mut best: Option<(usize, usize, DpEntry)> = None;
        for i in 0..entries.len() {
            for j in 0..entries.len() {
                if i == j {
                    continue;
                }
                let conds = connecting_conditions(&entries[i], &entries[j], edges);
                let candidate = if conds.is_empty() {
                    cross_join_entry(cx.params, &entries[i], &entries[j])
                } else {
                    hash_join_entry(cx, &entries[i], &entries[j], &conds)
                };
                let better = best.as_ref().is_none_or(|(_, _, cur)| {
                    candidate.planned.cost < cur.planned.cost
                });
                if better {
                    best = Some((i, j, candidate));
                }
            }
        }
        let (i, j, merged) = best.expect("at least two entries");
        let (hi, lo) = (i.max(j), i.min(j));
        entries.swap_remove(hi);
        entries.swap_remove(lo);
        entries.push(merged);
    }
    entries.into_iter().next().expect("one entry remains")
}

fn cross_join_entry(params: &OptimizerParams, a: &DpEntry, b: &DpEntry) -> DpEntry {
    let out_rows = (a.planned.rows * b.planned.rows).max(1.0);
    let join_cost = cost::nl_join_cost(params, a.planned.rows, b.planned.rows, 0.0, out_rows);
    let mut layout = a.layout.clone();
    layout.extend(&b.layout);
    let mut origins = a.planned.origins.clone();
    origins.extend(b.planned.origins.iter().copied());
    DpEntry {
        planned: Planned {
            phys: PhysicalPlan::NestedLoopJoin {
                left: Box::new(a.planned.phys.clone()),
                right: Box::new(b.planned.phys.clone()),
                predicate: None,
                join_type: JoinType::Inner,
            },
            rows: out_rows,
            cost: a.planned.cost + b.planned.cost + join_cost,
            width: a.planned.width + b.planned.width,
            origins,
        },
        layout,
    }
}

/// Plans an inner-join tree: flatten, DP-order, restore column order.
fn plan_inner_join_tree(
    cx: &PlanCtx<'_>,
    plan: &LogicalPlan,
    working_set_pages: f64,
) -> Result<Planned, OptError> {
    let mut relations = Vec::new();
    let mut edges = Vec::new();
    let total_width =
        flatten_inner_joins(cx, plan, &mut relations, &mut edges, 0, working_set_pages)?;
    let entry = dp_join_order(cx, relations, &edges);

    // The DP may have permuted columns; restore the logical (left-to-right)
    // order with a projection if needed.
    let identity: Vec<usize> = (0..total_width).collect();
    if entry.layout == identity {
        return Ok(entry.planned);
    }
    let mut exprs = Vec::with_capacity(total_width);
    let mut origins = Vec::with_capacity(total_width);
    for g in 0..total_width {
        let pos = entry
            .layout
            .iter()
            .position(|&x| x == g)
            .expect("inner joins preserve all columns");
        exprs.push((Expr::col(pos), format!("c{g}")));
        origins.push(entry.planned.origins[pos]);
    }
    Ok(Planned {
        phys: PhysicalPlan::Project {
            input: Box::new(entry.planned.phys),
            exprs,
        },
        rows: entry.planned.rows,
        cost: entry.planned.cost + cost::project_cost(cx.params, entry.planned.rows, 0.0),
        width: entry.planned.width,
        origins,
    })
}

/// Recursive planning entry point.
fn plan_node(
    cx: &PlanCtx<'_>,
    plan: &LogicalPlan,
    working_set_pages: f64,
) -> Result<Planned, OptError> {
    let (db, params) = (cx.db, cx.params);
    match plan {
        LogicalPlan::Scan { table, filter } => plan_scan(cx, *table, filter, working_set_pages),
        LogicalPlan::Join {
            join_type: JoinType::Inner,
            ..
        } => plan_inner_join_tree(cx, plan, working_set_pages),
        LogicalPlan::Join {
            left,
            right,
            on,
            join_type,
        } => {
            if on.is_empty() {
                return Err(OptError::BadPlan {
                    reason: "join without conditions".to_string(),
                });
            }
            let l = plan_node(cx, left, working_set_pages)?;
            let r = plan_node(cx, right, working_set_pages)?;
            let mut sel_parts = Vec::new();
            for c in on {
                sel_parts.push((ndv_of(db, &l, c.left_col), ndv_of(db, &r, c.right_col)));
            }
            // Use the first condition's NDVs for the match-fraction model
            // and multiply extra conditions as inner-style selectivities.
            let (lndv, rndv) = sel_parts[0];
            let mut out_rows = card::join_output_rows(l.rows, r.rows, lndv, rndv, *join_type);
            for &(a, b) in &sel_parts[1..] {
                out_rows /= a.max(b).max(1.0);
            }
            let out_rows = out_rows.max(if *join_type == JoinType::Left {
                l.rows
            } else {
                0.0
            });
            let join_cost = cost::hash_join_cost(
                params,
                l.rows,
                r.rows,
                out_rows,
                l.rows * l.width,
                r.rows * r.width,
            );
            let mut origins = l.origins.clone();
            if join_type.emits_right() {
                origins.extend(r.origins.iter().copied());
            }
            let width = if join_type.emits_right() {
                l.width + r.width
            } else {
                l.width
            };
            Ok(Planned {
                phys: PhysicalPlan::HashJoin {
                    left: Box::new(l.phys),
                    right: Box::new(r.phys),
                    left_keys: on.iter().map(|c| c.left_col).collect(),
                    right_keys: on.iter().map(|c| c.right_col).collect(),
                    join_type: *join_type,
                },
                rows: out_rows.max(0.0),
                cost: l.cost + r.cost + join_cost,
                width,
                origins,
            })
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let child = plan_node(cx, input, working_set_pages)?;
            let ndvs: Vec<f64> = group_by.iter().map(|&c| ndv_of(db, &child, c)).collect();
            let groups = card::num_groups(child.rows, &ndvs);
            let arg_ops: f64 = aggs
                .iter()
                .map(|a| a.arg.as_ref().map_or(0.0, |e| e.num_operators() as f64))
                .sum();

            let hash_cost =
                cost::agg_cost(params, child.rows, groups, aggs.len() as f64, arg_ops, true);
            let sort_cost_units = cost::sort_cost(params, child.rows, child.width)
                + cost::agg_cost(
                    params,
                    child.rows,
                    groups,
                    aggs.len() as f64,
                    arg_ops,
                    false,
                );

            let mut origins: Vec<Option<(TableId, usize)>> = group_by
                .iter()
                .map(|&c| child.origins.get(c).copied().flatten())
                .collect();
            origins.extend(std::iter::repeat_n(None, aggs.len()));
            let width = 16.0 * origins.len() as f64;

            if hash_cost <= sort_cost_units || group_by.is_empty() {
                Ok(Planned {
                    phys: PhysicalPlan::HashAgg {
                        input: Box::new(child.phys),
                        group_by: group_by.clone(),
                        aggs: aggs.clone(),
                    },
                    rows: groups,
                    cost: child.cost + hash_cost,
                    width,
                    origins,
                })
            } else {
                let sort_keys: Vec<SortKey> = group_by.iter().map(|&c| SortKey::asc(c)).collect();
                Ok(Planned {
                    phys: PhysicalPlan::SortAgg {
                        input: Box::new(PhysicalPlan::Sort {
                            input: Box::new(child.phys),
                            keys: sort_keys,
                        }),
                        group_by: group_by.clone(),
                        aggs: aggs.clone(),
                    },
                    rows: groups,
                    cost: child.cost + sort_cost_units,
                    width,
                    origins,
                })
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let child = plan_node(cx, input, working_set_pages)?;
            let sel = card::filter_selectivity(predicate, &empty_stats());
            let ops = predicate.num_operators() as f64;
            Ok(Planned {
                rows: (child.rows * sel).max(0.0),
                cost: child.cost + cost::filter_cost(params, child.rows, ops),
                width: child.width,
                origins: child.origins.clone(),
                phys: PhysicalPlan::Filter {
                    input: Box::new(child.phys),
                    predicate: predicate.clone(),
                },
            })
        }
        LogicalPlan::Project { input, exprs } => {
            let child = plan_node(cx, input, working_set_pages)?;
            let ops: f64 = exprs.iter().map(|(e, _)| e.num_operators() as f64).sum();
            let origins: Vec<Option<(TableId, usize)>> = exprs
                .iter()
                .map(|(e, _)| match e {
                    Expr::Column(c) => child.origins.get(*c).copied().flatten(),
                    _ => None,
                })
                .collect();
            Ok(Planned {
                rows: child.rows,
                cost: child.cost + cost::project_cost(params, child.rows, ops),
                width: 16.0 * exprs.len() as f64,
                origins,
                phys: PhysicalPlan::Project {
                    input: Box::new(child.phys),
                    exprs: exprs.clone(),
                },
            })
        }
        LogicalPlan::Sort { input, keys } => {
            let child = plan_node(cx, input, working_set_pages)?;
            Ok(Planned {
                rows: child.rows,
                cost: child.cost + cost::sort_cost(params, child.rows, child.width),
                width: child.width,
                origins: child.origins.clone(),
                phys: PhysicalPlan::Sort {
                    input: Box::new(child.phys),
                    keys: keys.clone(),
                },
            })
        }
        LogicalPlan::Limit { input, limit } => {
            let child = plan_node(cx, input, working_set_pages)?;
            Ok(Planned {
                rows: child.rows.min(*limit as f64),
                cost: child.cost,
                width: child.width,
                origins: child.origins.clone(),
                phys: PhysicalPlan::Limit {
                    input: Box::new(child.phys),
                    limit: *limit,
                },
            })
        }
    }
}

/// Plans `plan` against `db` under `params`, returning the physical plan
/// and its cost estimates. This is both the regular optimizer (default
/// `params`) and the paper's what-if optimizer (calibrated `params`).
/// Summed heap pages of every distinct base table a plan touches — the
/// query's steady-state cache working set.
fn working_set_pages(db: &Database, plan: &LogicalPlan, seen: &mut Vec<TableId>) -> f64 {
    match plan {
        LogicalPlan::Scan { table, .. } => {
            if seen.contains(table) {
                0.0
            } else {
                seen.push(*table);
                db.table(*table)
                    .stats
                    .as_ref()
                    .map_or(0.0, |s| s.n_pages as f64)
            }
        }
        LogicalPlan::Join { left, right, .. } => {
            working_set_pages(db, left, seen) + working_set_pages(db, right, seen)
        }
        LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => working_set_pages(db, input, seen),
    }
}

/// Plans `plan` against `db` under `params`, returning the physical plan
/// and its cost estimates. This is both the regular optimizer (default
/// `params`) and the paper's what-if optimizer (calibrated `params`).
pub fn plan_query(
    db: &Database,
    plan: &LogicalPlan,
    params: &OptimizerParams,
) -> Result<PlannedQuery, OptError> {
    plan_query_with_indexes(db, plan, params, &[])
}

/// True if any scan in the plan references an index id past the catalog —
/// i.e. a hypothetical index.
fn references_hypo(phys: &PhysicalPlan, num_real: usize) -> bool {
    let local = match phys {
        PhysicalPlan::IndexScan { index, .. } => index.0 >= num_real,
        PhysicalPlan::IndexAnd { arms, .. } | PhysicalPlan::IndexOr { arms, .. } => {
            arms.iter().any(|a| a.index.0 >= num_real)
        }
        _ => false,
    };
    local || phys.children().iter().any(|c| references_hypo(c, num_real))
}

/// What-if planning: like [`plan_query`], but the access-path menu also
/// offers `hypo` as hypothetical indexes (ids numbered past the catalog,
/// in declaration order). A returned plan with
/// [`PlannedQuery::uses_hypothetical`] set prices what the plan *would*
/// cost if those indexes were built; it must not be executed.
pub fn plan_query_with_indexes(
    db: &Database,
    plan: &LogicalPlan,
    params: &OptimizerParams,
    hypo: &[HypoIndex],
) -> Result<PlannedQuery, OptError> {
    params.validate()?;
    let cx = PlanCtx { db, params, hypo };
    let ws = working_set_pages(db, plan, &mut Vec::new());
    let planned = plan_node(&cx, plan, ws)?;
    let uses_hypothetical = !hypo.is_empty() && references_hypo(&planned.phys, db.num_indexes());
    Ok(PlannedQuery {
        physical: planned.phys,
        est_rows: planned.rows,
        est_cost_units: planned.cost,
        uses_hypothetical,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JoinCondition;
    use dbvirt_engine::{AggExpr, AggFunc};
    use dbvirt_storage::{DataType, Field, Schema, Tuple};

    /// Two tables: fact(k, v, grp) with 20k rows and an index on k;
    /// dim(k, label) with 100 rows.
    fn fixture() -> (Database, TableId, TableId) {
        let mut db = Database::new();
        let fact = db.create_table(
            "fact",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("v", DataType::Int),
                Field::new("grp", DataType::Str),
            ]),
        );
        db.insert_rows(
            fact,
            (0..20_000).map(|i| {
                Tuple::new(vec![
                    Datum::Int(i % 100),
                    Datum::Int(i),
                    Datum::str(format!("g{}", i % 5)),
                ])
            }),
        )
        .unwrap();
        let dim = db.create_table(
            "dim",
            Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("label", DataType::Str),
            ]),
        );
        db.insert_rows(
            dim,
            (0..100).map(|i| Tuple::new(vec![Datum::Int(i), Datum::str(format!("l{i}"))])),
        )
        .unwrap();
        db.create_index("fact_v", fact, 1).unwrap();
        db.analyze_all().unwrap();
        (db, fact, dim)
    }

    #[test]
    fn missing_stats_is_an_error() {
        let mut db = Database::new();
        let t = db.create_table("t", Schema::new(vec![Field::new("a", DataType::Int)]));
        let err = plan_query(&db, &LogicalPlan::scan(t), &OptimizerParams::default()).unwrap_err();
        assert!(matches!(err, OptError::MissingStats { .. }));
    }

    #[test]
    fn selective_predicate_chooses_index_scan() {
        let (db, fact, _) = fixture();
        let p = OptimizerParams::default();
        // v = 7: one row in 20k — index, please.
        let selective = LogicalPlan::scan_filtered(fact, Expr::eq(Expr::col(1), Expr::int(7)));
        let planned = plan_query(&db, &selective, &p).unwrap();
        assert_eq!(planned.physical.node_name(), "IndexScan");
        assert!(planned.est_rows < 10.0);
        // v >= 0: everything — sequential scan.
        let unselective = LogicalPlan::scan_filtered(fact, Expr::ge(Expr::col(1), Expr::int(0)));
        let planned = plan_query(&db, &unselective, &p).unwrap();
        assert_eq!(planned.physical.node_name(), "SeqScan");
    }

    #[test]
    fn what_if_parameters_can_flip_the_access_path() {
        let (db, fact, _) = fixture();
        // A mid-selectivity range where the cache discount decides.
        let q = LogicalPlan::scan_filtered(
            fact,
            Expr::and(
                Expr::ge(Expr::col(1), Expr::int(0)),
                Expr::lt(Expr::col(1), Expr::int(50)),
            ),
        );
        let rich_cache = OptimizerParams {
            effective_cache_size_pages: 1e6,
            ..OptimizerParams::default()
        };
        let poor_cache = OptimizerParams {
            effective_cache_size_pages: 1.0,
            random_page_cost: 40.0,
            ..OptimizerParams::default()
        };
        let rich = plan_query(&db, &q, &rich_cache).unwrap();
        let poor = plan_query(&db, &q, &poor_cache).unwrap();
        assert_eq!(rich.physical.node_name(), "IndexScan");
        assert_eq!(poor.physical.node_name(), "SeqScan");
    }

    #[test]
    fn hypothetical_index_prices_like_a_real_one() {
        let (db, fact, _) = fixture();
        // Cheap random I/O + big cache: the 1%-selective point lookup
        // should prefer an index when one is available.
        let p = OptimizerParams {
            effective_cache_size_pages: 1e6,
            random_page_cost: 1.0,
            ..OptimizerParams::default()
        };
        // k = 7 (200 rows in 20k): no real index on k, so a scan...
        let q = LogicalPlan::scan_filtered(fact, Expr::eq(Expr::col(0), Expr::int(7)));
        let without = plan_query(&db, &q, &p).unwrap();
        assert_eq!(without.physical.node_name(), "SeqScan");
        assert!(!without.uses_hypothetical);
        // ...but a hypothetical index on k flips the access path.
        let hypo = vec![HypoIndex {
            table: fact,
            columns: vec![0],
        }];
        let with = plan_query_with_indexes(&db, &q, &p, &hypo).unwrap();
        assert_eq!(with.physical.node_name(), "IndexScan");
        assert!(with.uses_hypothetical);
        assert!(with.est_cost_units < without.est_cost_units);
        // Its priced geometry must match what a real build produces.
        let mut db2 = db;
        let real = db2.create_index("fact_k", fact, 0).unwrap();
        let with_real = plan_query(&db2, &q, &p).unwrap();
        assert_eq!(with_real.physical.node_name(), "IndexScan");
        assert!(!with_real.uses_hypothetical);
        let tree = db2.index_tree(real);
        let (h, pg) = dbvirt_storage::BPlusTree::bulk_geometry(tree.len());
        assert_eq!((h, pg), (tree.height(), tree.num_pages()));
        assert!(
            (with.est_cost_units - with_real.est_cost_units).abs() < 1e-9,
            "hypothetical pricing {} != real pricing {}",
            with.est_cost_units,
            with_real.est_cost_units
        );
    }

    #[test]
    fn composite_hypothetical_beats_single_on_two_column_predicate() {
        let (db, fact, _) = fixture();
        let p = OptimizerParams::default();
        // k = 7 AND v < 1000: composite (k, v) prefix range is far more
        // selective at the index than k alone.
        let q = LogicalPlan::scan_filtered(
            fact,
            Expr::and(
                Expr::eq(Expr::col(0), Expr::int(7)),
                Expr::lt(Expr::col(1), Expr::int(1000)),
            ),
        );
        let single = plan_query_with_indexes(
            &db,
            &q,
            &p,
            &[HypoIndex {
                table: fact,
                columns: vec![0],
            }],
        )
        .unwrap();
        let composite = plan_query_with_indexes(
            &db,
            &q,
            &p,
            &[HypoIndex {
                table: fact,
                columns: vec![0, 1],
            }],
        )
        .unwrap();
        assert_eq!(composite.physical.node_name(), "IndexScan");
        assert!(composite.uses_hypothetical);
        assert!(
            composite.est_cost_units < single.est_cost_units,
            "composite {} vs single {}",
            composite.est_cost_units,
            single.est_cost_units
        );
    }

    #[test]
    fn composite_index_scan_executes_and_matches_seq_scan() {
        let (mut db, fact, _) = fixture();
        let idx = db.create_index_multi("fact_k_v", fact, &[0, 1]).unwrap();
        db.analyze_all().unwrap();
        let p = OptimizerParams::default();
        let filter = Expr::and(
            Expr::eq(Expr::col(0), Expr::int(7)),
            Expr::lt(Expr::col(1), Expr::int(1000)),
        );
        let q = LogicalPlan::scan_filtered(fact, filter.clone());
        let planned = plan_query(&db, &q, &p).unwrap();
        match &planned.physical {
            PhysicalPlan::IndexScan { index, .. } => assert_eq!(*index, idx),
            other => panic!("expected composite IndexScan, got {}", other.node_name()),
        }
        let run = |db: &mut Database, plan: &PhysicalPlan| {
            let mut pool = dbvirt_storage::BufferPool::new(256);
            dbvirt_engine::run_plan(db, &mut pool, plan, 1 << 20, dbvirt_engine::CpuCosts::default())
                .unwrap()
                .rows
        };
        let via_index = run(&mut db, &planned.physical);
        let via_scan = run(
            &mut db,
            &PhysicalPlan::SeqScan {
                table: fact,
                filter: Some(filter),
            },
        );
        // k=7, v<1000 -> v in {7, 107, ..., 907}: 10 rows.
        assert_eq!(via_index.len(), 10);
        let sorted = |mut rows: Vec<Tuple>| {
            rows.sort_by_key(|t| t.get(1).as_int());
            rows
        };
        assert_eq!(sorted(via_index), sorted(via_scan));
    }

    #[test]
    fn like_prefix_is_sargable_on_string_index() {
        let mut db = Database::new();
        let t = db.create_table("s", Schema::new(vec![Field::new("name", DataType::Str)]));
        db.insert_rows(
            t,
            (0..10_000).map(|i| Tuple::new(vec![Datum::str(format!("n{:04}", i % 1000))])),
        )
        .unwrap();
        db.create_index("s_name", t, 0).unwrap();
        db.analyze_all().unwrap();
        let p = OptimizerParams {
            effective_cache_size_pages: 1e6,
            random_page_cost: 1.0,
            ..OptimizerParams::default()
        };
        // "n000%" matches n0000..n0009: 1% of rows.
        let filter = Expr::like(Expr::col(0), "n000%");
        let q = LogicalPlan::scan_filtered(t, filter.clone());
        let planned = plan_query(&db, &q, &p).unwrap();
        assert_eq!(planned.physical.node_name(), "IndexScan");
        let mut pool = dbvirt_storage::BufferPool::new(256);
        let out = dbvirt_engine::run_plan(
            &mut db,
            &mut pool,
            &planned.physical,
            1 << 20,
            dbvirt_engine::CpuCosts::default(),
        )
        .unwrap();
        assert_eq!(out.rows.len(), 100, "10 names x 10 repeats");
        assert!(out.rows.iter().all(|t| match t.get(0) {
            Datum::Str(s) => s.starts_with("n000"),
            _ => false,
        }));
    }

    #[test]
    fn index_and_path_chosen_for_two_selective_arms() {
        let (mut db, fact, _) = fixture();
        db.create_index("fact_k", fact, 0).unwrap();
        db.analyze_all().unwrap();
        // Pay dearly for page I/O of any kind: each single-index arm still
        // fetches ~200 heap tuples, while the intersection fetches 2 —
        // narrowing before the heap wins.
        let p = OptimizerParams {
            effective_cache_size_pages: 1.0,
            random_page_cost: 400.0,
            seq_page_cost: 400.0,
            ..OptimizerParams::default()
        };
        let filter = Expr::and(
            Expr::eq(Expr::col(0), Expr::int(7)),
            Expr::lt(Expr::col(1), Expr::int(200)),
        );
        let q = LogicalPlan::scan_filtered(fact, filter.clone());
        let planned = plan_query(&db, &q, &p).unwrap();
        assert_eq!(planned.physical.node_name(), "IndexAnd");
        let mut pool = dbvirt_storage::BufferPool::new(256);
        let out = dbvirt_engine::run_plan(
            &mut db,
            &mut pool,
            &planned.physical,
            1 << 20,
            dbvirt_engine::CpuCosts::default(),
        )
        .unwrap();
        // k=7 and v<200 -> v in {7, 107}: 2 rows.
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn index_or_path_covers_disjunction() {
        let (mut db, fact, _) = fixture();
        db.analyze_all().unwrap();
        // Expensive pages: two point probes beat one full scan.
        let p = OptimizerParams {
            effective_cache_size_pages: 1.0,
            random_page_cost: 400.0,
            seq_page_cost: 400.0,
            ..OptimizerParams::default()
        };
        let filter = Expr::or(
            Expr::eq(Expr::col(1), Expr::int(7)),
            Expr::eq(Expr::col(1), Expr::int(9901)),
        );
        let q = LogicalPlan::scan_filtered(fact, filter.clone());
        let planned = plan_query(&db, &q, &p).unwrap();
        assert_eq!(planned.physical.node_name(), "IndexOr");
        let mut pool = dbvirt_storage::BufferPool::new(256);
        let out = dbvirt_engine::run_plan(
            &mut db,
            &mut pool,
            &planned.physical,
            1 << 20,
            dbvirt_engine::CpuCosts::default(),
        )
        .unwrap();
        // v=7 plus v=9901: 2 distinct rows.
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn join_plans_build_on_smaller_side() {
        let (db, fact, dim) = fixture();
        let q = LogicalPlan::scan(fact).join(
            LogicalPlan::scan(dim),
            vec![JoinCondition {
                left_col: 0,
                right_col: 0,
            }],
        );
        let planned = plan_query(&db, &q, &OptimizerParams::default()).unwrap();
        // The join output order must match the logical order, and the build
        // (right) side should be the small dimension table.
        match &planned.physical {
            PhysicalPlan::HashJoin { right, .. } => {
                assert_eq!(right.node_name(), "SeqScan");
                match right.as_ref() {
                    PhysicalPlan::SeqScan { table, .. } => assert_eq!(*table, dim),
                    _ => unreachable!(),
                }
            }
            PhysicalPlan::Project { input, .. } => {
                assert_eq!(input.node_name(), "HashJoin");
            }
            other => panic!("expected a hash join, got {}", other.node_name()),
        }
        // FK join cardinality ~ fact size.
        assert!((planned.est_rows - 20_000.0).abs() / 20_000.0 < 0.2);
    }

    #[test]
    fn three_way_join_dp_produces_executable_plan() {
        let (db, fact, dim) = fixture();
        // fact JOIN dim ON k JOIN dim2 ON k (reuse dim as a third relation
        // via a second scan).
        let q = LogicalPlan::scan(fact)
            .join(
                LogicalPlan::scan(dim),
                vec![JoinCondition {
                    left_col: 0,
                    right_col: 0,
                }],
            )
            .join(
                LogicalPlan::scan(dim),
                vec![JoinCondition {
                    left_col: 3, // dim.k from the first join's output
                    right_col: 0,
                }],
            );
        let planned = plan_query(&db, &q, &OptimizerParams::default()).unwrap();
        assert!(planned.est_cost_units > 0.0);
        // Execute it and verify output arity = 3 + 2 + 2.
        let mut db = db;
        let mut pool = dbvirt_storage::BufferPool::new(256);
        let out = dbvirt_engine::run_plan(
            &mut db,
            &mut pool,
            &planned.physical,
            1 << 20,
            dbvirt_engine::CpuCosts::default(),
        )
        .unwrap();
        assert_eq!(out.schema.len(), 7);
        assert_eq!(out.rows.len(), 20_000);
        // Column order restored: column 0 is fact.k, column 3 is dim.k.
        for row in out.rows.iter().take(50) {
            assert_eq!(row.get(0), row.get(3));
            assert_eq!(row.get(0), row.get(5));
        }
    }

    #[test]
    fn aggregate_estimates_groups() {
        let (db, fact, _) = fixture();
        let q = LogicalPlan::scan(fact)
            .aggregate(vec![2], vec![AggExpr::new(AggFunc::Sum, Expr::col(1), "s")]);
        let planned = plan_query(&db, &q, &OptimizerParams::default()).unwrap();
        assert!((planned.est_rows - 5.0).abs() < 1.0, "5 groups expected");
    }

    #[test]
    fn semi_join_keeps_left_schema() {
        let (db, fact, dim) = fixture();
        let q = LogicalPlan::scan(fact).join_as(
            LogicalPlan::scan(dim),
            vec![JoinCondition {
                left_col: 0,
                right_col: 0,
            }],
            JoinType::Semi,
        );
        let planned = plan_query(&db, &q, &OptimizerParams::default()).unwrap();
        let mut db = db;
        let mut pool = dbvirt_storage::BufferPool::new(256);
        let out = dbvirt_engine::run_plan(
            &mut db,
            &mut pool,
            &planned.physical,
            1 << 20,
            dbvirt_engine::CpuCosts::default(),
        )
        .unwrap();
        assert_eq!(out.schema.len(), 3);
        assert_eq!(out.rows.len(), 20_000, "all fact keys appear in dim");
    }

    #[test]
    fn estimated_seconds_scale_with_unit() {
        let (db, fact, _) = fixture();
        let q = LogicalPlan::scan(fact);
        let mut p1 = OptimizerParams::default();
        let planned = plan_query(&db, &q, &p1).unwrap();
        let s1 = planned.est_seconds(&p1);
        p1.unit_seconds *= 2.0;
        assert!((planned.est_seconds(&p1) - 2.0 * s1).abs() < 1e-12);
    }
}
