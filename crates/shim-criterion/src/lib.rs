//! In-tree shim for the `criterion` crate (offline build environment).
//!
//! A minimal wall-clock benchmark harness with criterion's API shape:
//! warm up, run timed batches until a time budget is spent, report the
//! median per-iteration time. No statistics machinery, plots, or saved
//! baselines — just honest numbers on stdout.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    measure_for: Duration,
    warmup_for: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measure_for: Duration::from_millis(600),
            warmup_for: Duration::from_millis(150),
        }
    }
}

impl Criterion {
    /// Runs one benchmark and prints its timing.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            measure_for: self.measure_for,
            warmup_for: self.warmup_for,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Starts a named group (the shim flattens groups into prefixed names).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's time budget already
    /// bounds the number of samples.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{name}", self.prefix);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Runs and times the measured closure.
pub struct Bencher {
    measure_for: Duration,
    warmup_for: Duration,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `f`, collecting per-iteration samples until the time budget
    /// is exhausted.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warm-up: also estimates the per-iteration cost so batches can
        // amortize clock overhead for fast closures.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup_for {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((0.01 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let start = Instant::now();
        while start.elapsed() < self.measure_for {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples
                .push(t0.elapsed().as_secs_f64() / batch as f64);
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        self.samples.sort_by(f64::total_cmp);
        let median = self.samples[self.samples.len() / 2];
        let lo = self.samples[0];
        let hi = self.samples[self.samples.len() - 1];
        println!(
            "{name:<44} time: [{} {} {}]",
            format_time(lo),
            format_time(median),
            format_time(hi)
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(20),
            warmup_for: Duration::from_millis(5),
        };
        let mut ran = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(10),
            warmup_for: Duration::from_millis(2),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("inner", |b| b.iter(|| black_box(1)));
        group.finish();
    }
}
