//! Workload profiles: the controller's compact belief about each VM.
//!
//! The static advisor prices a workload by re-planning its queries under
//! every candidate allocation. An online controller cannot afford that per
//! decision, and — more fundamentally — it does not *know* the workload; it
//! only sees completed queries. A [`WorkloadProfile`] is the distilled
//! belief the streaming statistics maintain: per-query base resource
//! consumption split into cold (compulsory) and re-read (cache-dependent)
//! page accesses, plus a working-set size and an arrival rate. Pricing a
//! profile under a candidate allocation is then closed-form via the linear
//! working-set cache model: a buffer pool of `p` pages serving a working
//! set of `w` pages hits with probability `min(p / w, 1)`.

use crate::ControllerError;
use dbvirt_core::{CoreError, CostModel, DesignProblem, WorkloadSpec};
use dbvirt_engine::Database;
use dbvirt_optimizer::LogicalPlan;
use dbvirt_vmm::{MachineSpec, ResourceDemand, ResourceVector, VirtualMachine};
use std::collections::BTreeMap;

/// Per-query resource profile of one VM's workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// CPU cycles per query.
    pub cpu_cycles: f64,
    /// Compulsory sequential page reads per query (miss regardless of
    /// buffer pool size).
    pub cold_seq_reads: f64,
    /// Compulsory random page reads per query.
    pub cold_random_reads: f64,
    /// Pages written back per query.
    pub page_writes: f64,
    /// Logical sequential re-accesses per query; each misses with
    /// probability `1 - hit_fraction(pool)`.
    pub reread_seq: f64,
    /// Logical random re-accesses per query.
    pub reread_random: f64,
    /// Working-set size in pages (what the re-accesses touch).
    pub working_set_pages: f64,
    /// Queries completed per control epoch.
    pub queries_per_epoch: f64,
}

impl WorkloadProfile {
    /// Validates that every field is finite and non-negative (and the
    /// arrival rate positive).
    pub fn validate(&self) -> Result<(), ControllerError> {
        let fields = [
            ("cpu_cycles", self.cpu_cycles),
            ("cold_seq_reads", self.cold_seq_reads),
            ("cold_random_reads", self.cold_random_reads),
            ("page_writes", self.page_writes),
            ("reread_seq", self.reread_seq),
            ("reread_random", self.reread_random),
            ("working_set_pages", self.working_set_pages),
            ("queries_per_epoch", self.queries_per_epoch),
        ];
        for (name, v) in fields {
            if !(v.is_finite() && v >= 0.0) {
                return Err(ControllerError::BadScenario {
                    reason: format!("profile {name} must be finite and >= 0, got {v}"),
                });
            }
        }
        if self.queries_per_epoch <= 0.0 {
            return Err(ControllerError::BadScenario {
                reason: "profile queries_per_epoch must be positive".to_string(),
            });
        }
        Ok(())
    }

    /// Buffer-pool hit fraction for the re-access stream under a pool of
    /// `pool_pages` pages (linear working-set model).
    pub fn hit_fraction(&self, pool_pages: usize) -> f64 {
        if self.working_set_pages <= 0.0 {
            return 1.0;
        }
        (pool_pages as f64 / self.working_set_pages).min(1.0)
    }

    /// The *physical* demand of one query under a buffer pool of
    /// `pool_pages` pages, with all components scaled by `scale`
    /// (per-query size variability).
    pub fn demand_at(&self, pool_pages: usize, scale: f64) -> ResourceDemand {
        let hit = self.hit_fraction(pool_pages);
        let miss = 1.0 - hit;
        ResourceDemand {
            cpu_cycles: self.cpu_cycles * scale,
            seq_page_reads: ((self.cold_seq_reads + self.reread_seq * miss) * scale).round()
                as u64,
            random_page_reads: ((self.cold_random_reads + self.reread_random * miss) * scale)
                .round() as u64,
            page_writes: (self.page_writes * scale).round() as u64,
        }
    }

    /// Predicted seconds per query on `vm`.
    pub fn seconds_per_query(&self, vm: &VirtualMachine) -> f64 {
        vm.demand_seconds(&self.demand_at(vm.buffer_pool_pages(), 1.0))
    }

    /// Predicted seconds per control epoch on `vm` (the controller's
    /// per-VM cost unit).
    pub fn epoch_seconds(&self, vm: &VirtualMachine) -> f64 {
        self.seconds_per_query(vm) * self.queries_per_epoch
    }

    /// Allocation-independent per-query reference seconds: the demand
    /// priced on the whole machine with every re-access charged as a miss.
    /// Feeding the drift detector this (rather than observed latency) means
    /// the controller's own share changes cannot self-trigger drift.
    pub fn reference_seconds(&self, machine: &MachineSpec) -> f64 {
        self.cpu_cycles / machine.total_cycles_per_sec()
            + (self.cold_seq_reads + self.reread_seq + self.page_writes)
                * machine.seq_page_seconds()
            + (self.cold_random_reads + self.reread_random) * machine.random_page_seconds()
    }

    /// This profile with every per-query demand component (and the working
    /// set) scaled by `factor`, arrival rate unchanged — a query mix that
    /// got heavier, not more frequent.
    pub fn scaled(&self, factor: f64) -> WorkloadProfile {
        WorkloadProfile {
            cpu_cycles: self.cpu_cycles * factor,
            cold_seq_reads: self.cold_seq_reads * factor,
            cold_random_reads: self.cold_random_reads * factor,
            page_writes: self.page_writes * factor,
            reread_seq: self.reread_seq * factor,
            reread_random: self.reread_random * factor,
            working_set_pages: self.working_set_pages * factor,
            queries_per_epoch: self.queries_per_epoch,
        }
    }

    /// This profile with the arrival rate scaled by `factor` — the same
    /// queries, arriving more (or less) often.
    pub fn rate_scaled(&self, factor: f64) -> WorkloadProfile {
        WorkloadProfile {
            queries_per_epoch: self.queries_per_epoch * factor,
            ..*self
        }
    }

    /// Componentwise linear interpolation toward `other`: `t = 0` is this
    /// profile, `t = 1` is `other`.
    pub fn lerp(&self, other: &WorkloadProfile, t: f64) -> WorkloadProfile {
        let mix = |a: f64, b: f64| a + t * (b - a);
        WorkloadProfile {
            cpu_cycles: mix(self.cpu_cycles, other.cpu_cycles),
            cold_seq_reads: mix(self.cold_seq_reads, other.cold_seq_reads),
            cold_random_reads: mix(self.cold_random_reads, other.cold_random_reads),
            page_writes: mix(self.page_writes, other.page_writes),
            reread_seq: mix(self.reread_seq, other.reread_seq),
            reread_random: mix(self.reread_random, other.reread_random),
            working_set_pages: mix(self.working_set_pages, other.working_set_pages),
            queries_per_epoch: mix(self.queries_per_epoch, other.queries_per_epoch),
        }
    }

    /// Quantizes the profile into logarithmic buckets of relative width
    /// `rel` (e.g. `0.2` = 20%). Two profiles with the same key are
    /// "the same workload" for cache-reuse purposes: the controller keys
    /// its warm [`dbvirt_core::CostCache`]s on the quantized vector, so a
    /// recurring phase re-solves against already-paid-for cells while a
    /// genuinely new mix gets a fresh cache.
    pub fn quantize(&self, rel: f64) -> ProfileKey {
        let bucket = |v: f64| -> i64 {
            if !(v.is_finite() && v > 0.0) {
                return i64::MIN;
            }
            (v.ln() / (1.0 + rel).ln()).floor() as i64
        };
        ProfileKey([
            bucket(self.cpu_cycles),
            bucket(self.cold_seq_reads),
            bucket(self.cold_random_reads),
            bucket(self.page_writes),
            bucket(self.reread_seq),
            bucket(self.reread_random),
            bucket(self.working_set_pages),
            bucket(self.queries_per_epoch),
        ])
    }
}

/// Log-bucketed profile fingerprint (see [`WorkloadProfile::quantize`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProfileKey(pub [i64; 8]);

/// A [`CostModel`] that prices workloads from profiles by index: workload
/// `i` of the problem is priced as `profiles[i].epoch_seconds` under the
/// candidate shares. Weight-independent, as the cache contract requires.
#[derive(Debug, Clone)]
pub struct ProfileCostModel {
    /// The physical machine.
    pub machine: MachineSpec,
    /// One profile per workload, aligned with the problem's workloads.
    pub profiles: Vec<WorkloadProfile>,
}

impl CostModel for ProfileCostModel {
    fn cost(
        &self,
        problem: &DesignProblem<'_>,
        w_idx: usize,
        shares: ResourceVector,
    ) -> Result<f64, CoreError> {
        debug_assert_eq!(problem.num_workloads(), self.profiles.len());
        let vm = VirtualMachine::new(self.machine, shares)?;
        Ok(self.profiles[w_idx].epoch_seconds(&vm))
    }
}

/// A [`CostModel`] that prices workloads from profiles *by workload name*.
/// The regret oracle builds one [`DesignProblem`] per phase whose workload
/// names encode the phase's profile ordinal (see
/// [`ProblemTemplate::phase_problem`]); this model dispatches on those
/// names, so one model serves the whole timeline.
#[derive(Debug, Clone)]
pub struct PhasedProfileModel {
    /// The physical machine.
    pub machine: MachineSpec,
    /// Profile for each phase-qualified workload name (`"vm@ordinal"`).
    pub by_name: BTreeMap<String, WorkloadProfile>,
}

impl CostModel for PhasedProfileModel {
    fn cost(
        &self,
        problem: &DesignProblem<'_>,
        w_idx: usize,
        shares: ResourceVector,
    ) -> Result<f64, CoreError> {
        let name = &problem.workloads[w_idx].name;
        let profile = self.by_name.get(name).ok_or_else(|| CoreError::BadProblem {
            reason: format!("no profile registered for workload {name}"),
        })?;
        let vm = VirtualMachine::new(self.machine, shares)?;
        Ok(profile.epoch_seconds(&vm))
    }
}

/// Identity of one persistent VM: a name plus the catalog/plan skeleton a
/// [`DesignProblem`] requires. The profile cost models never execute or
/// re-plan these queries — the skeleton only satisfies the problem
/// statement's shape (and, for phase problems, encodes phase identity).
#[derive(Debug)]
pub struct VmTemplate<'a> {
    /// VM display name.
    pub name: String,
    /// The database the VM serves.
    pub db: &'a Database,
    /// A representative query plan.
    pub base_query: LogicalPlan,
}

/// The set of persistent VMs sharing one machine.
#[derive(Debug)]
pub struct ProblemTemplate<'a> {
    /// The physical machine.
    pub machine: MachineSpec,
    /// One template per VM.
    pub vms: Vec<VmTemplate<'a>>,
}

impl<'a> ProblemTemplate<'a> {
    /// The design-problem skeleton the controller re-solves at every
    /// decision (profiles supply the costs; this supplies the shape).
    pub fn problem(&self) -> Result<DesignProblem<'a>, CoreError> {
        DesignProblem::new(
            self.machine,
            self.vms
                .iter()
                .map(|vm| WorkloadSpec::new(vm.name.clone(), vm.db, vec![vm.base_query.clone()]))
                .collect(),
        )
    }

    /// The design-problem skeleton restricted to a subset of VMs, in the
    /// given order — the shape of a localized re-solve, where only the
    /// drifted VMs' shares are searched and everyone else stays pinned.
    pub fn subset_problem(&self, vms: &[usize]) -> Result<DesignProblem<'a>, CoreError> {
        DesignProblem::new(
            self.machine,
            vms.iter()
                .map(|&i| {
                    let vm = &self.vms[i];
                    WorkloadSpec::new(vm.name.clone(), vm.db, vec![vm.base_query.clone()])
                })
                .collect(),
        )
    }

    /// A phase-qualified problem for the clairvoyant oracle. The phase's
    /// profile `ordinal` is encoded in the workload identity twice over:
    /// in the name (`"{vm}@{ordinal}"`, which [`PhasedProfileModel`]
    /// dispatches on) and in the query count (`ordinal + 1` copies of the
    /// base plan). The latter matters for cache soundness:
    /// [`dbvirt_core::dynamic::run_dynamic`] shares one warm cost cache
    /// across phases whose machine, databases, and *queries* compare
    /// equal — under a profile-keyed model two phases with different
    /// profiles must therefore present unequal query lists, or phase 0's
    /// cached cells would silently misprice later phases. Repeated
    /// occurrences of the same ordinal compare equal and soundly share
    /// warm entries.
    pub fn phase_problem(&self, ordinal: usize) -> Result<DesignProblem<'a>, CoreError> {
        DesignProblem::new(
            self.machine,
            self.vms
                .iter()
                .map(|vm| {
                    WorkloadSpec::new(
                        format!("{}@{ordinal}", vm.name),
                        vm.db,
                        vec![vm.base_query.clone(); ordinal + 1],
                    )
                })
                .collect(),
        )
    }
}

/// Derives a [`WorkloadProfile`] from real query plans by measuring their
/// demands on the whole machine (stock-optimizer what-if planning, shared
/// warm buffer pool). The measured page counts become the cold component;
/// `reread_factor` sets the logical re-access stream as a multiple of the
/// cold reads, and the working set is the mean pages a query touches.
pub fn profile_from_queries(
    db: &mut Database,
    queries: &[LogicalPlan],
    machine: MachineSpec,
    queries_per_epoch: f64,
    reread_factor: f64,
) -> Result<WorkloadProfile, ControllerError> {
    if queries.is_empty() {
        return Err(ControllerError::BadScenario {
            reason: "profile_from_queries needs at least one query".to_string(),
        });
    }
    let demands =
        dbvirt_core::measure::workload_demands(db, queries, machine, ResourceVector::full_machine())?;
    let n = demands.len() as f64;
    let mean = |f: fn(&ResourceDemand) -> f64| demands.iter().map(f).sum::<f64>() / n;
    let cold_seq = mean(|d| d.seq_page_reads as f64);
    let cold_random = mean(|d| d.random_page_reads as f64);
    let profile = WorkloadProfile {
        cpu_cycles: mean(|d| d.cpu_cycles),
        cold_seq_reads: cold_seq,
        cold_random_reads: cold_random,
        page_writes: mean(|d| d.page_writes as f64),
        reread_seq: cold_seq * reread_factor,
        reread_random: cold_random * reread_factor,
        working_set_pages: cold_seq + cold_random,
        queries_per_epoch,
    };
    profile.validate()?;
    Ok(profile)
}

/// A CPU-dominated profile used by tests across the crate.
#[cfg(test)]
pub(crate) fn cpu_heavy() -> WorkloadProfile {
    WorkloadProfile {
        cpu_cycles: 2e8,
        cold_seq_reads: 20.0,
        cold_random_reads: 5.0,
        page_writes: 0.0,
        reread_seq: 40.0,
        reread_random: 10.0,
        working_set_pages: 800.0,
        queries_per_epoch: 4.0,
    }
}

/// An I/O- and cache-dominated profile used by tests across the crate.
#[cfg(test)]
pub(crate) fn io_heavy() -> WorkloadProfile {
    WorkloadProfile {
        cpu_cycles: 2e7,
        cold_seq_reads: 400.0,
        cold_random_reads: 60.0,
        page_writes: 20.0,
        reread_seq: 2000.0,
        reread_random: 300.0,
        working_set_pages: 6000.0,
        queries_per_epoch: 2.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbvirt_vmm::Share;

    #[test]
    fn bigger_pools_reduce_physical_reads() {
        let p = io_heavy();
        let small = p.demand_at(500, 1.0);
        let large = p.demand_at(6000, 1.0);
        assert!(small.seq_page_reads > large.seq_page_reads);
        // A pool covering the whole working set leaves only the cold reads.
        assert_eq!(large.seq_page_reads, 400);
        assert_eq!(large.random_page_reads, 60);
    }

    #[test]
    fn epoch_seconds_decrease_with_memory() {
        let spec = MachineSpec::tiny();
        let p = io_heavy();
        let starved = VirtualMachine::new(
            spec,
            ResourceVector::from_fractions(0.5, 0.05, 0.5).unwrap(),
        )
        .unwrap();
        let comfortable =
            VirtualMachine::new(spec, ResourceVector::uniform(Share::HALF)).unwrap();
        assert!(p.epoch_seconds(&starved) > p.epoch_seconds(&comfortable));
    }

    #[test]
    fn reference_seconds_ignore_the_allocation() {
        let spec = MachineSpec::tiny();
        let p = cpu_heavy();
        // Priced on the raw machine: no VM, no pool, so nothing the
        // controller changes can move it.
        let x = p.reference_seconds(&spec);
        assert!(x.is_finite() && x > 0.0);
    }

    #[test]
    fn quantization_is_tolerant_within_a_bucket_and_sensitive_across() {
        let a = cpu_heavy();
        let mut near = a;
        near.cpu_cycles *= 1.05;
        let mut far = a;
        far.cpu_cycles *= 4.0;
        assert_eq!(a.quantize(0.25), near.quantize(0.25));
        assert_ne!(a.quantize(0.25), far.quantize(0.25));
        // Zero components land in the sentinel bucket, not a panic.
        let mut zeroed = a;
        zeroed.page_writes = 0.0;
        assert_eq!(zeroed.quantize(0.25).0[3], i64::MIN);
    }

    #[test]
    fn validation_rejects_non_finite_profiles() {
        let mut p = cpu_heavy();
        p.cpu_cycles = f64::NAN;
        assert!(p.validate().is_err());
        let mut p = cpu_heavy();
        p.working_set_pages = -1.0;
        assert!(p.validate().is_err());
        let mut p = cpu_heavy();
        p.queries_per_epoch = 0.0;
        assert!(p.validate().is_err());
        assert!(cpu_heavy().validate().is_ok());
    }
}
