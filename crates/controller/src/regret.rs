//! Regret accounting: how far from clairvoyant did the controller land?
//!
//! The controller only *observes* drift after the fact; the offline
//! [`run_dynamic`] controller in `dbvirt-core` is told the phase sequence
//! up front. Replaying the exact same query stream under the oracle's
//! per-phase allocations (and under a never-reconfigure baseline) through
//! the same fluid simulator turns that information gap into a number:
//! cumulative-cost regret, switch counts, and time spent in a suboptimal
//! allocation.

use crate::controller::{pool_pages, switch_cost_seconds, ControllerConfig, ControllerOutcome};
use crate::profile::{PhasedProfileModel, ProblemTemplate};
use crate::scenario::Scenario;
use crate::ControllerError;
use dbvirt_core::dynamic::{run_dynamic, DynamicTimeline, ReconfigPolicy};
use dbvirt_vmm::sched::{co_schedule, SchedMode};
use dbvirt_vmm::AllocationMatrix;
use std::collections::BTreeMap;

/// The regret ledger for one controller run.
#[derive(Debug, Clone)]
pub struct RegretReport {
    /// The controller's realized cost (epochs + switch charges).
    pub controller_cost: f64,
    /// The clairvoyant oracle's cost on the same stream (its per-phase
    /// optimal allocations replayed through the simulator, switch charges
    /// included).
    pub oracle_cost: f64,
    /// Cost of holding the controller's first informed placement (or the
    /// initial equal split, if the run never placed) for the whole stream.
    pub never_cost: f64,
    /// `controller_cost - oracle_cost`.
    pub regret_seconds: f64,
    /// `regret_seconds / oracle_cost`.
    pub relative_regret: f64,
    /// Reconfigurations the controller applied.
    pub controller_switches: usize,
    /// Allocation changes in the oracle's replayed trajectory.
    pub oracle_switches: usize,
    /// Epochs the controller spent under an allocation different from the
    /// oracle's for that epoch.
    pub suboptimal_epochs: usize,
    /// Simulated seconds accumulated during those epochs.
    pub suboptimal_seconds: f64,
    /// The oracle's allocation for each phase of the scenario.
    pub oracle_allocations: Vec<AllocationMatrix>,
}

/// Replays the scenario's clean query stream under a fixed per-epoch
/// allocation trajectory, charging the modeled reconfiguration cost at
/// every epoch boundary where the allocation changes. Returns the total
/// cost and the number of switches charged. Each epoch's co-run goes
/// through the incremental `co_schedule` (capped mode), so replays scale
/// with events touched rather than fleet size × events.
fn replay(
    scenario: &Scenario,
    by_epoch: &[&AllocationMatrix],
    base_seconds: f64,
) -> Result<(f64, usize), ControllerError> {
    let machine = scenario.machine;
    let mut total = 0.0;
    let mut switches = 0usize;
    let mut prev: Option<&AllocationMatrix> = None;
    for (epoch, allocation) in by_epoch.iter().enumerate() {
        if let Some(p) = prev {
            if p != *allocation {
                total += switch_cost_seconds(machine, p, allocation, base_seconds)?;
                switches += 1;
            }
        }
        let pools = pool_pages(machine, allocation)?;
        let jobs = scenario.epoch_jobs(epoch, &pools)?;
        let outcomes = co_schedule(machine, allocation, &jobs, SchedMode::Capped)?;
        total += outcomes
            .iter()
            .map(|o| o.makespan().as_secs_f64())
            .sum::<f64>();
        prev = Some(allocation);
    }
    Ok((total, switches))
}

/// Accounts a controller run against the clairvoyant per-phase optimum and
/// the never-reconfigure baseline, on the identical query stream.
pub fn account_regret(
    scenario: &Scenario,
    template: &ProblemTemplate<'_>,
    config: &ControllerConfig,
    outcome: &ControllerOutcome,
) -> Result<RegretReport, ControllerError> {
    scenario.validate()?;
    if outcome.allocations.len() != scenario.total_epochs() {
        return Err(ControllerError::BadScenario {
            reason: format!(
                "outcome covers {} epochs, scenario has {}",
                outcome.allocations.len(),
                scenario.total_epochs()
            ),
        });
    }
    let ordinals = scenario.phase_ordinals();

    // The oracle knows the true profiles; hand them to the offline
    // controller as a phase timeline. Workload names encode the profile
    // ordinal, which both dispatches the cost model and keeps warm-cache
    // sharing sound across phases (see ProblemTemplate::phase_problem).
    let mut by_name = BTreeMap::new();
    for (phase, &ordinal) in scenario.phases.iter().zip(&ordinals) {
        for (vm, profile) in template.vms.iter().zip(&phase.profiles) {
            by_name.insert(format!("{}@{ordinal}", vm.name), *profile);
        }
    }
    let model = PhasedProfileModel {
        machine: scenario.machine,
        by_name,
    };
    let phases = ordinals
        .iter()
        .map(|&k| template.phase_problem(k))
        .collect::<Result<Vec<_>, _>>()?;
    let timeline = DynamicTimeline::new(phases)?;
    let policy = ReconfigPolicy {
        algorithm: config.algorithm,
        config: config.search,
        switch_overhead_seconds: config.switch_base_seconds,
        min_relative_gain: 0.0,
    };
    let oracle = run_dynamic(&timeline, &model, policy)?;
    let oracle_allocations: Vec<AllocationMatrix> = oracle
        .phases
        .iter()
        .map(|p| p.allocation.clone())
        .collect();

    // Replay the oracle's trajectory and the never-reconfigure baseline
    // through the same simulator the controller ran under.
    let oracle_by_epoch: Vec<&AllocationMatrix> = (0..scenario.total_epochs())
        .map(|e| &oracle_allocations[scenario.phase_of_epoch(e)])
        .collect();
    let (oracle_cost, oracle_switches) =
        replay(scenario, &oracle_by_epoch, config.switch_base_seconds)?;

    let held = outcome
        .placement
        .as_ref()
        .unwrap_or(&outcome.initial_allocation);
    let never_by_epoch: Vec<&AllocationMatrix> =
        (0..scenario.total_epochs()).map(|_| held).collect();
    let (never_cost, _) = replay(scenario, &never_by_epoch, config.switch_base_seconds)?;

    let mut suboptimal_epochs = 0usize;
    let mut suboptimal_seconds = 0.0;
    for (epoch, in_force) in outcome.allocations.iter().enumerate() {
        if in_force != oracle_by_epoch[epoch] {
            suboptimal_epochs += 1;
            suboptimal_seconds += outcome.epoch_costs[epoch];
        }
    }

    let regret_seconds = outcome.total_cost - oracle_cost;
    Ok(RegretReport {
        controller_cost: outcome.total_cost,
        oracle_cost,
        never_cost,
        regret_seconds,
        relative_regret: if oracle_cost > 0.0 {
            regret_seconds / oracle_cost
        } else {
            0.0
        },
        controller_switches: outcome.switches.len(),
        oracle_switches,
        suboptimal_epochs,
        suboptimal_seconds,
        oracle_allocations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::run_controller;
    use crate::profile::{cpu_heavy, io_heavy};
    use crate::testkit::{template, tiny_db};
    use dbvirt_core::search::SearchConfig;
    use dbvirt_vmm::MachineSpec;

    fn config() -> ControllerConfig {
        ControllerConfig::new(SearchConfig::for_workloads(8, 2))
    }

    fn drifting() -> Scenario {
        Scenario::drifting(
            "drifting",
            MachineSpec::tiny(),
            vec![cpu_heavy(), io_heavy()],
            12,
            vec![io_heavy(), cpu_heavy()],
            12,
            11,
        )
    }

    #[test]
    fn controller_lands_between_oracle_and_never_on_drift() {
        let db = tiny_db();
        let template = template(&db, 2, MachineSpec::tiny());
        let out = run_controller(&drifting(), &template, &config()).unwrap();
        let report = account_regret(&drifting(), &template, &config(), &out).unwrap();
        assert!(
            report.oracle_cost <= report.controller_cost,
            "oracle {} vs controller {}",
            report.oracle_cost,
            report.controller_cost
        );
        assert!(
            report.controller_cost < report.never_cost,
            "reconfiguring must beat holding the placement: {} vs {}",
            report.controller_cost,
            report.never_cost
        );
        assert!(report.relative_regret >= 0.0 && report.relative_regret.is_finite());
        assert_eq!(report.oracle_switches, 1, "one phase flip, one oracle switch");
        assert!(report.suboptimal_epochs > 0, "detection lag is not free");
        assert!(report.suboptimal_seconds > 0.0);
        assert_eq!(report.oracle_allocations.len(), 2);
    }

    #[test]
    fn stationary_oracle_never_switches_and_regret_is_tiny() {
        let db = tiny_db();
        let template = template(&db, 2, MachineSpec::tiny());
        let scenario = Scenario::stationary(
            "stationary",
            MachineSpec::tiny(),
            vec![cpu_heavy(), io_heavy()],
            16,
            11,
        );
        let out = run_controller(&scenario, &template, &config()).unwrap();
        let report = account_regret(&scenario, &template, &config(), &out).unwrap();
        assert_eq!(report.oracle_switches, 0);
        assert_eq!(report.controller_switches, 0);
        // The only loss is the warmup epochs under the equal split.
        assert!(
            report.relative_regret < 0.10,
            "stationary regret should be warmup-only, got {}",
            report.relative_regret
        );
    }

    #[test]
    fn mismatched_outcomes_are_rejected() {
        let db = tiny_db();
        let template = template(&db, 2, MachineSpec::tiny());
        let out = run_controller(&drifting(), &template, &config()).unwrap();
        let shorter = Scenario::stationary(
            "short",
            MachineSpec::tiny(),
            vec![cpu_heavy(), io_heavy()],
            3,
            11,
        );
        assert!(account_regret(&shorter, &template, &config(), &out).is_err());
    }
}
