//! Streaming per-VM statistics.
//!
//! Each completed query yields a [`QueryObservation`]: the physical demand
//! the simulator actually served plus the buffer-pool hit counts the
//! "database" reported. [`VmStats`] inverts the linear working-set cache
//! model to recover the *allocation-independent* base components (cold
//! reads, logical re-accesses, working set), blends them into an EWMA
//! estimate, and feeds a [`PageHinkley`] detector with each observation's
//! whole-machine reference cost. The output is a [`WorkloadProfile`] the
//! controller can hand to the search, plus a drift signal telling it when
//! that profile stopped describing reality.

use crate::drift::{DriftConfig, PageHinkley};
use crate::profile::WorkloadProfile;
use dbvirt_vmm::{MachineSpec, ResourceDemand};

/// What the controller learns from one completed query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryObservation {
    /// Physical demand served (what the scheduler executed).
    pub demand: ResourceDemand,
    /// Sequential page requests absorbed by the buffer pool.
    pub seq_hits: f64,
    /// Random page requests absorbed by the buffer pool.
    pub random_hits: f64,
    /// Distinct pages the query touched (its working-set contribution).
    pub touched_pages: f64,
}

/// Inverted, allocation-independent components of one observation:
/// `[cpu, cold_seq, cold_random, writes, reread_seq, reread_random, ws]`.
type BaseComponents = [f64; 7];

/// Streaming estimator for one VM.
#[derive(Debug, Clone)]
pub struct VmStats {
    alpha: f64,
    machine: MachineSpec,
    detector: PageHinkley,
    est: Option<BaseComponents>,
    rate: Option<f64>,
    epoch_queries: u64,
    observations: u64,
    /// Whether the detector has fired since its last reset: the estimate
    /// is re-seeded only on the *first* firing of a detection window, so
    /// back-to-back firings inside one epoch blend instead of clobbering.
    fired_since_reset: bool,
    /// Sum of this epoch's inverted base components (for the epoch-mean
    /// snapshot the governor keys regimes on).
    epoch_base: BaseComponents,
    /// Consecutive epochs that ended with zero usable observations (the
    /// estimate is carried over, not decayed).
    staleness: usize,
    /// Largest staleness run seen over the VM's lifetime.
    max_staleness: usize,
    /// Total epochs closed with zero usable observations.
    stale_epochs: usize,
}

impl VmStats {
    /// Creates an estimator with EWMA factor `alpha` (weight of the newest
    /// observation) and the given drift-detector parameters.
    pub fn new(alpha: f64, machine: MachineSpec, drift: DriftConfig) -> VmStats {
        VmStats {
            alpha,
            machine,
            detector: PageHinkley::new(drift),
            est: None,
            rate: None,
            epoch_queries: 0,
            observations: 0,
            fired_since_reset: false,
            epoch_base: [0.0; 7],
            staleness: 0,
            max_staleness: 0,
            stale_epochs: 0,
        }
    }

    /// Total observations absorbed.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Consecutive epochs (ending now) closed with zero usable
    /// observations — how stale the carried-over estimate currently is.
    pub fn staleness(&self) -> usize {
        self.staleness
    }

    /// The largest consecutive run of observation-free epochs seen.
    pub fn max_staleness(&self) -> usize {
        self.max_staleness
    }

    /// Total epochs closed with zero usable observations.
    pub fn stale_epochs(&self) -> usize {
        self.stale_epochs
    }

    /// Recovers base components from a physical observation taken under a
    /// pool of `pool_pages` pages. Returns `None` for degenerate input
    /// (non-finite or negative fields), which the caller should drop.
    fn invert(&self, obs: &QueryObservation, pool_pages: usize) -> Option<BaseComponents> {
        let ws = obs.touched_pages;
        if !(ws.is_finite() && ws >= 0.0)
            || !(obs.seq_hits.is_finite() && obs.seq_hits >= 0.0)
            || !(obs.random_hits.is_finite() && obs.random_hits >= 0.0)
            || !(obs.demand.cpu_cycles.is_finite() && obs.demand.cpu_cycles >= 0.0)
        {
            return None;
        }
        let hit = if ws <= 0.0 {
            1.0
        } else {
            (pool_pages as f64 / ws).min(1.0)
        };
        let miss = 1.0 - hit;
        // hits = rereads * hit  =>  rereads = hits / hit. With a zero hit
        // fraction nothing is absorbed, so observed hits must be ~0 and the
        // re-access stream is unobservable this epoch: fall back to zero.
        let invert_stream = |hits: f64, physical: f64| -> (f64, f64) {
            if hit <= 0.0 {
                return (physical, 0.0);
            }
            let rereads = hits / hit;
            let cold = (physical - rereads * miss).max(0.0);
            (cold, rereads)
        };
        let (cold_seq, reread_seq) =
            invert_stream(obs.seq_hits, obs.demand.seq_page_reads as f64);
        let (cold_random, reread_random) =
            invert_stream(obs.random_hits, obs.demand.random_page_reads as f64);
        Some([
            obs.demand.cpu_cycles,
            cold_seq,
            cold_random,
            obs.demand.page_writes as f64,
            reread_seq,
            reread_random,
            ws,
        ])
    }

    /// Absorbs one completed-query observation made under a buffer pool of
    /// `pool_pages` pages. Returns `Ok(true)` when the drift detector
    /// fires, and `Err(())` when the observation was degenerate and
    /// dropped.
    pub fn observe(
        &mut self,
        obs: &QueryObservation,
        pool_pages: usize,
    ) -> Result<bool, ()> {
        let base = self.invert(obs, pool_pages).ok_or(())?;
        self.observations += 1;
        self.epoch_queries += 1;
        for (sum, b) in self.epoch_base.iter_mut().zip(base) {
            *sum += b;
        }
        match &mut self.est {
            None => self.est = Some(base),
            Some(est) => {
                for (e, b) in est.iter_mut().zip(base) {
                    *e += self.alpha * (b - *e);
                }
            }
        }
        // Reference cost of *this* observation's base components, priced on
        // the whole machine with re-accesses as misses: invariant under the
        // controller's own allocation moves.
        let reference = base[0] / self.machine.total_cycles_per_sec()
            + (base[1] + base[4] + base[3]) * self.machine.seq_page_seconds()
            + (base[2] + base[5]) * self.machine.random_page_seconds();
        let fired = self.detector.observe(reference.max(1e-12).ln());
        if fired && !self.fired_since_reset {
            // The observation that trips the detector already belongs to
            // the new regime: re-seed the estimate from it so the
            // controller's post-drift re-solve prices the new workload,
            // not an EWMA still dominated by the stale one. Only the
            // *first* firing of a detection window re-seeds; the detector
            // keeps firing until reset, and clobbering the estimate with
            // every subsequent observation would pin it to whichever
            // query happened to arrive last instead of blending.
            self.est = Some(base);
            self.fired_since_reset = true;
        }
        Ok(fired)
    }

    /// Closes a control epoch, folding the epoch's completed-query count
    /// into the arrival-rate estimate. Returns the epoch-mean observed
    /// profile (components averaged over this epoch's queries) when the
    /// epoch had any usable observations — the snapshot the switch
    /// governor keys workload regimes on — and `None` for an
    /// observation-free epoch, in which case the rate and component
    /// estimates are carried over unchanged (bounded-staleness carryover:
    /// a sensor dropout is not evidence the workload stopped).
    pub fn end_epoch(&mut self) -> Option<WorkloadProfile> {
        let n = self.epoch_queries as f64;
        self.epoch_queries = 0;
        if n <= 0.0 {
            self.staleness += 1;
            self.stale_epochs += 1;
            self.max_staleness = self.max_staleness.max(self.staleness);
            return None;
        }
        self.staleness = 0;
        match &mut self.rate {
            None => self.rate = Some(n),
            Some(r) => *r += self.alpha * (n - *r),
        }
        let mean = self.epoch_base.map(|sum| sum / n);
        self.epoch_base = [0.0; 7];
        Some(WorkloadProfile {
            cpu_cycles: mean[0],
            cold_seq_reads: mean[1],
            cold_random_reads: mean[2],
            page_writes: mean[3],
            reread_seq: mean[4],
            reread_random: mean[5],
            working_set_pages: mean[6],
            queries_per_epoch: n,
        })
    }

    /// The current profile estimate, once at least one observation and one
    /// epoch boundary have been absorbed.
    pub fn profile(&self) -> Option<WorkloadProfile> {
        let est = self.est?;
        let rate = self.rate?;
        if rate <= 0.0 {
            return None;
        }
        Some(WorkloadProfile {
            cpu_cycles: est[0],
            cold_seq_reads: est[1],
            cold_random_reads: est[2],
            page_writes: est[3],
            reread_seq: est[4],
            reread_random: est[5],
            working_set_pages: est[6],
            queries_per_epoch: rate,
        })
    }

    /// Resets the drift detector (after the controller acted on a
    /// detection, so one change is not reported twice).
    pub fn reset_detector(&mut self) {
        self.detector.reset();
        self.fired_since_reset = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::io_heavy;

    fn clean_observation(profile: &WorkloadProfile, pool_pages: usize) -> QueryObservation {
        let hit = profile.hit_fraction(pool_pages);
        QueryObservation {
            demand: profile.demand_at(pool_pages, 1.0),
            seq_hits: profile.reread_seq * hit,
            random_hits: profile.reread_random * hit,
            touched_pages: profile.working_set_pages,
        }
    }

    fn stats() -> VmStats {
        VmStats::new(0.25, MachineSpec::tiny(), DriftConfig::default())
    }

    #[test]
    fn clean_observations_recover_the_generating_profile() {
        let truth = io_heavy();
        let mut s = stats();
        let pool = 1500usize;
        for _ in 0..32 {
            s.observe(&clean_observation(&truth, pool), pool).unwrap();
        }
        s.end_epoch();
        let est = s.profile().expect("profile after observations");
        // Demand counts are rounded to whole pages before observation, so
        // recovery is near-exact, not bit-exact.
        assert!((est.cpu_cycles - truth.cpu_cycles).abs() / truth.cpu_cycles < 1e-9);
        assert!((est.reread_seq - truth.reread_seq).abs() / truth.reread_seq < 0.01);
        assert!((est.cold_seq_reads - truth.cold_seq_reads).abs() < 2.0);
        assert!(
            (est.working_set_pages - truth.working_set_pages).abs() < 1e-9,
            "working set is observed directly"
        );
        assert_eq!(est.queries_per_epoch, 32.0);
    }

    #[test]
    fn recovery_is_pool_invariant() {
        // The whole point of the inversion: observations taken under
        // different pools estimate the same base profile.
        let truth = io_heavy();
        let mut small = stats();
        let mut large = stats();
        for _ in 0..16 {
            small.observe(&clean_observation(&truth, 800), 800).unwrap();
            large.observe(&clean_observation(&truth, 4000), 4000).unwrap();
        }
        small.end_epoch();
        large.end_epoch();
        let (a, b) = (small.profile().unwrap(), large.profile().unwrap());
        assert!((a.reread_seq - b.reread_seq).abs() / truth.reread_seq < 0.02);
        assert!((a.cold_seq_reads - b.cold_seq_reads).abs() < 3.0);
    }

    #[test]
    fn a_profile_shift_fires_the_detector() {
        let a = io_heavy();
        let mut b = a;
        b.cpu_cycles *= 30.0;
        b.cold_seq_reads *= 8.0;
        let mut s = stats();
        let pool = 1500usize;
        for _ in 0..20 {
            assert_eq!(s.observe(&clean_observation(&a, pool), pool), Ok(false));
        }
        let mut fired = false;
        for _ in 0..30 {
            if s.observe(&clean_observation(&b, pool), pool).unwrap() {
                fired = true;
                break;
            }
        }
        assert!(fired, "an 8-30x demand shift must be detected");
    }

    #[test]
    fn allocation_changes_alone_do_not_fire_the_detector() {
        // Same workload, wildly different pools: the reference stream is
        // pool-invariant, so the detector must stay quiet.
        let truth = io_heavy();
        let mut s = stats();
        for i in 0..200 {
            let pool = if i % 2 == 0 { 400 } else { 5000 };
            let fired = s.observe(&clean_observation(&truth, pool), pool).unwrap();
            assert!(!fired, "false drift at observation {i}");
        }
    }

    #[test]
    fn back_to_back_firings_blend_instead_of_clobbering() {
        // Satellite: the detector keeps firing on every observation after
        // a regime change until the controller resets it. The estimate
        // must re-seed from the FIRST firing observation and then blend
        // normally — not be clobbered to whichever observation fired last.
        let a = io_heavy();
        let mut b = a;
        b.cpu_cycles *= 30.0;
        b.cold_seq_reads *= 8.0;
        let mut c = b;
        c.cpu_cycles *= 1.5; // a third, slightly different regime
        let pool = 1500usize;
        let mut s = stats();
        for _ in 0..20 {
            s.observe(&clean_observation(&a, pool), pool).unwrap();
        }
        let first = clean_observation(&b, pool);
        let mut fired = false;
        for _ in 0..30 {
            if s.observe(&first, pool).unwrap() {
                fired = true;
                break;
            }
        }
        assert!(fired, "regime shift must fire");
        let seeded = s.est.unwrap();
        assert_eq!(seeded[0], b.cpu_cycles, "first firing re-seeds the estimate");
        let second = clean_observation(&c, pool);
        assert!(
            s.observe(&second, pool).unwrap(),
            "detector keeps firing until reset"
        );
        let blended = s.est.unwrap();
        // EWMA trajectory: seeded + alpha * (second_base - seeded), where
        // second_base's cpu component is c.cpu_cycles.
        let expected_cpu = seeded[0] + 0.25 * (c.cpu_cycles - seeded[0]);
        assert!(
            (blended[0] - expected_cpu).abs() / expected_cpu < 1e-12,
            "second firing must blend ({} != {expected_cpu})",
            blended[0]
        );
        assert!(
            (blended[0] - c.cpu_cycles).abs() / c.cpu_cycles > 0.1,
            "estimate must not be pinned to the last firing observation"
        );
        // After the controller acts and resets, the next firing re-seeds.
        s.reset_detector();
        assert!(!s.fired_since_reset);
    }

    #[test]
    fn observation_free_epochs_carry_the_estimate_over() {
        let truth = io_heavy();
        let pool = 1500usize;
        let mut s = stats();
        for _ in 0..8 {
            s.observe(&clean_observation(&truth, pool), pool).unwrap();
        }
        let snapshot = s.end_epoch().expect("populated epoch yields a snapshot");
        assert_eq!(snapshot.queries_per_epoch, 8.0);
        assert!((snapshot.cpu_cycles - truth.cpu_cycles).abs() / truth.cpu_cycles < 1e-9);
        let before = s.profile().unwrap();
        // Three dropout epochs: no observations at all.
        for _ in 0..3 {
            assert!(s.end_epoch().is_none());
        }
        let after = s.profile().unwrap();
        assert_eq!(before, after, "dropouts must not decay the estimate");
        assert_eq!(s.staleness(), 3);
        assert_eq!(s.max_staleness(), 3);
        assert_eq!(s.stale_epochs(), 3);
        // A fresh observation clears the consecutive counter.
        s.observe(&clean_observation(&truth, pool), pool).unwrap();
        s.end_epoch().unwrap();
        assert_eq!(s.staleness(), 0);
        assert_eq!(s.max_staleness(), 3);
        assert_eq!(s.stale_epochs(), 3);
    }

    #[test]
    fn extreme_shares_do_not_fire_the_detector() {
        // Allocation invariance at the limits: a 1-page pool (everything
        // misses) and an effectively infinite pool (everything hits) must
        // both invert to the same reference stream.
        let truth = io_heavy();
        let mut s = stats();
        for i in 0..200 {
            let pool = if i % 2 == 0 { 1 } else { 1_000_000 };
            let fired = s.observe(&clean_observation(&truth, pool), pool).unwrap();
            assert!(!fired, "false drift at extreme pools, observation {i}");
        }
    }

    #[test]
    fn degenerate_observations_are_dropped() {
        let mut s = stats();
        let mut obs = clean_observation(&io_heavy(), 1000);
        obs.seq_hits = f64::NAN;
        assert_eq!(s.observe(&obs, 1000), Err(()));
        let mut obs = clean_observation(&io_heavy(), 1000);
        obs.demand.cpu_cycles = f64::INFINITY;
        assert_eq!(s.observe(&obs, 1000), Err(()));
        assert_eq!(s.observations(), 0);
        assert!(s.profile().is_none());
    }
}
