//! Switch-frequency governor: phase-recurrence learning.
//!
//! The drift-gated controller reacts to workload change after the fact:
//! the Page–Hinkley detector needs several observations of the new regime
//! before it fires, and the cooldown defers the re-solve further, so a
//! fast-alternating (adversarial) workload spends most of every phase
//! under the *previous* phase's allocation — and worse, each reactive
//! switch lands exactly when the phase is about to flip again.
//!
//! The governor closes that gap by learning the workload's recurrence
//! structure from the stream of quantized per-epoch profile keys:
//!
//! * each distinct key vector is a **regime**; the governor tracks an EWMA
//!   of how many epochs each regime stays before flipping (its
//!   *residence*) and which regime follows it (its *successor*);
//! * a regime is **trusted** once it has completed at least
//!   [`TRUST_CLOSINGS`] full stays — until a stay closes, the regime's
//!   period has never been measured and no prediction is possible. One
//!   measured stay is enough to *act* because every prediction is
//!   verified an epoch later: a confirmed hit saves a re-solve, a miss
//!   forces a corrective one, so a wrong early trust costs one bounded
//!   mistake rather than compounding;
//! * for a trusted regime, [`SwitchGovernor::governed_horizon`] shrinks
//!   the switch-cost amortization horizon to the epochs the regime is
//!   still expected to last. At the predicted boundary the horizon
//!   reaches zero and the benefit gate can no longer pass: the governor
//!   *refuses* re-solved switches that would take effect just as their
//!   justifying regime ends;
//! * instead, [`SwitchGovernor::predicted_switch`] fires one epoch
//!   *before* a predicted flip between two trusted regimes, offering both
//!   regimes' *snapshot profiles* so the controller can solve for the
//!   whole alternation cycle at once (pricing candidates under the sum of
//!   the two regime-pure models) and provision before the flip arrives.
//!   Snapshots are per-epoch means, so they stay regime-pure even when
//!   the controller's slow EWMA estimate has blended several phases
//!   together — which is exactly the failure mode of fast alternation: a
//!   decision solved against the blend barely differs from the incumbent,
//!   and no gate would ever pass. The pair pricing matters for the same
//!   reason: an allocation solved for one phase alone lands exactly when
//!   that phase is about to hand back to the other, so the only switch
//!   worth pre-paying for is one that serves *both* sides of the
//!   boundary. The pre-switch is offered only inside fast alternation —
//!   both residences shorter than the configured amortization horizon;
//!   longer phases give the ordinary drift loop room to pay for reactive
//!   switches, and governing them would change behaviour the reactive
//!   path already handles well. It still pays the normal reconfiguration
//!   charge and must clear the same benefit gate, with the horizon capped
//!   at one alternation cycle and the remaining stream length — at the
//!   end of the stream there is nothing left to amortize against and the
//!   governor refuses to pre-switch at all.
//!
//! Workloads without recurrence (stationary, a one-shot drift whose new
//! regime never completes a stay) never produce a trusted *current*
//! regime, and the governor is entirely inert for them: the controller
//! behaves bit-identically to a governor-free build.

use crate::profile::{ProfileKey, WorkloadProfile};
use std::collections::BTreeMap;

/// Completed stays before a regime's residence estimate is trusted. One
/// is enough: a prediction is verified the very next epoch (hit or miss),
/// so acting on a single measured period risks one bounded mistake while
/// waiting for a second costs a full unprovisioned phase.
pub const TRUST_CLOSINGS: usize = 1;

/// EWMA factor for residence updates (weight of the newest stay).
const RESIDENCE_ALPHA: f64 = 0.5;

/// What the governor learned about one regime.
#[derive(Debug, Clone)]
struct Regime {
    /// EWMA of completed residences, in epochs.
    residence: f64,
    /// Completed stays folded into `residence`.
    closings: usize,
    /// The regime observed immediately after this one, last time.
    successor: Option<Vec<ProfileKey>>,
    /// The most recent per-epoch mean profiles observed under this regime
    /// — regime-pure (unlike the controller's blended EWMA estimate), so
    /// a pre-switch can solve for what this regime *actually* wants.
    snapshot: Option<Vec<WorkloadProfile>>,
}

impl Regime {
    fn new() -> Regime {
        Regime {
            residence: 0.0,
            closings: 0,
            successor: None,
            snapshot: None,
        }
    }

    fn trusted(&self) -> bool {
        self.closings >= TRUST_CLOSINGS
    }

    /// Residence rounded to whole epochs, at least one.
    fn residence_epochs(&self) -> usize {
        (self.residence.round() as usize).max(1)
    }
}

/// Outcome of absorbing one epoch's regime key.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochVerdict {
    /// A pre-switch prediction was pending and the epoch's regime matched:
    /// the drift the detector is about to report is an anticipated
    /// recurrence the controller has already provisioned for, so the
    /// re-solve may be skipped.
    pub prediction_hit: bool,
    /// A pre-switch prediction was pending and the epoch's regime did
    /// *not* match: the controller holds a speculatively applied
    /// allocation with no justification and should re-solve even if the
    /// drift detector stays quiet.
    pub prediction_missed: bool,
}

/// A recommended anticipatory switch (see [`SwitchGovernor::predicted_switch`]).
#[derive(Debug, Clone)]
pub struct PredictedSwitch {
    /// The successor regime's key (to confirm or refute next epoch).
    pub key: Vec<ProfileKey>,
    /// Cache namespace for the pair solve: the outgoing regime's key
    /// concatenated with the successor's. Twice the length of a reactive
    /// solve's key, so the two families can never collide.
    pub pair_key: Vec<ProfileKey>,
    /// The outgoing (current) regime's snapshot profiles.
    pub outgoing_profiles: Vec<WorkloadProfile>,
    /// The incoming (successor) regime's snapshot profiles.
    pub incoming_profiles: Vec<WorkloadProfile>,
    /// Epochs the benefit may be amortized over: one full alternation
    /// cycle (successor residence plus current residence), capped by the
    /// remaining stream length.
    pub horizon_epochs: f64,
}

/// Streaming phase-recurrence learner and switch governor.
#[derive(Debug, Clone)]
pub struct SwitchGovernor {
    regimes: BTreeMap<Vec<ProfileKey>, Regime>,
    /// Current regime key and the epoch it was entered.
    current: Option<(Vec<ProfileKey>, usize)>,
    /// Successor key predicted by an applied pre-switch, awaiting the next
    /// epoch's confirmation.
    pending: Option<Vec<ProfileKey>>,
    prediction_hits: usize,
    prediction_misses: usize,
}

impl SwitchGovernor {
    /// Creates an empty governor.
    pub fn new() -> SwitchGovernor {
        SwitchGovernor {
            regimes: BTreeMap::new(),
            current: None,
            pending: None,
            prediction_hits: 0,
            prediction_misses: 0,
        }
    }

    /// Confirmed pre-switch predictions.
    pub fn prediction_hits(&self) -> usize {
        self.prediction_hits
    }

    /// Refuted pre-switch predictions.
    pub fn prediction_misses(&self) -> usize {
        self.prediction_misses
    }

    /// Regimes whose residence estimate is currently trusted.
    pub fn trusted_regimes(&self) -> usize {
        self.regimes.values().filter(|r| r.trusted()).count()
    }

    /// Absorbs one epoch's quantized regime key and the per-epoch mean
    /// profiles it was derived from. `None` means the epoch produced no
    /// usable snapshot (sensor dropout): the current regime stays open —
    /// missing data is not evidence of change — and any pending
    /// prediction is dropped unconfirmed.
    pub fn observe_epoch(
        &mut self,
        epoch: usize,
        snapshot: Option<(Vec<ProfileKey>, Vec<WorkloadProfile>)>,
    ) -> EpochVerdict {
        let mut verdict = EpochVerdict::default();
        let Some((key, profiles)) = snapshot else {
            self.pending = None;
            return verdict;
        };
        if let Some(predicted) = self.pending.take() {
            if predicted == key {
                verdict.prediction_hit = true;
                self.prediction_hits += 1;
            } else {
                verdict.prediction_missed = true;
                self.prediction_misses += 1;
            }
        }
        match &self.current {
            None => self.current = Some((key.clone(), epoch)),
            Some((cur, _)) if *cur == key => {}
            Some((cur, entry)) => {
                let stay = (epoch - entry) as f64;
                let regime = self.regimes.entry(cur.clone()).or_insert_with(Regime::new);
                if regime.closings == 0 {
                    regime.residence = stay;
                } else {
                    regime.residence += RESIDENCE_ALPHA * (stay - regime.residence);
                }
                regime.closings += 1;
                regime.successor = Some(key.clone());
                self.current = Some((key.clone(), epoch));
            }
        }
        self.regimes
            .entry(key)
            .or_insert_with(Regime::new)
            .snapshot = Some(profiles);
        verdict
    }

    /// The switch-cost amortization horizon for a decision taken at the
    /// end of `epoch` (in force from `epoch + 1`). For untrusted regimes
    /// this is the configured horizon unchanged. For a trusted regime it
    /// is capped at the epochs the regime is still expected to last — zero
    /// exactly at the predicted boundary, which makes the benefit gate
    /// unpassable and vetoes the switch. A regime that *overstays* its
    /// predicted residence has already broken its own pattern, so the
    /// governor falls back to the configured horizon rather than vetoing
    /// adaptation indefinitely.
    pub fn governed_horizon(&self, epoch: usize, config_horizon: usize) -> f64 {
        let full = config_horizon as f64;
        let Some((cur, entry)) = &self.current else {
            return full;
        };
        let Some(regime) = self.regimes.get(cur) else {
            return full;
        };
        if !regime.trusted() {
            return full;
        }
        let predicted_flip = entry + regime.residence_epochs();
        let in_force_from = epoch + 1;
        if in_force_from > predicted_flip {
            return full;
        }
        full.min((predicted_flip - in_force_from) as f64)
    }

    /// When the next epoch is the current (trusted) regime's predicted
    /// flip and its successor is itself trusted with a stored snapshot,
    /// proposes provisioning for the alternation now — so the new phase
    /// starts under an allocation priced for both sides of the boundary
    /// instead of the old one. Offered only inside *fast* alternation
    /// (both residences shorter than `config_horizon`): longer phases
    /// leave the reactive drift loop enough epochs to amortize its own
    /// switches, and governing them would perturb behaviour the reactive
    /// path already handles. Returns `None` when nothing trustworthy is
    /// predicted, or when the stream ends before any benefit could be
    /// realized.
    pub fn predicted_switch(
        &self,
        epoch: usize,
        total_epochs: usize,
        config_horizon: usize,
    ) -> Option<PredictedSwitch> {
        let (cur, entry) = self.current.as_ref()?;
        let regime = self.regimes.get(cur)?;
        if !regime.trusted() || regime.residence_epochs() >= config_horizon {
            return None;
        }
        if entry + regime.residence_epochs() != epoch + 1 {
            return None;
        }
        let outgoing = regime.snapshot.as_ref()?;
        let succ_key = regime.successor.as_ref()?;
        let succ = self.regimes.get(succ_key)?;
        if !succ.trusted() || succ.residence_epochs() >= config_horizon {
            return None;
        }
        let incoming = succ.snapshot.as_ref()?;
        let remaining = total_epochs.checked_sub(epoch + 1)?;
        if remaining == 0 {
            return None;
        }
        let cycle = succ.residence_epochs() + regime.residence_epochs();
        let mut pair_key = cur.clone();
        pair_key.extend(succ_key.iter().cloned());
        Some(PredictedSwitch {
            key: succ_key.clone(),
            pair_key,
            outgoing_profiles: outgoing.clone(),
            incoming_profiles: incoming.clone(),
            horizon_epochs: cycle.min(remaining) as f64,
        })
    }

    /// Marks a pre-switch as applied: the successor prediction is now
    /// pending and the next epoch's key confirms or refutes it.
    pub fn note_preswitch(&mut self, predicted: Vec<ProfileKey>) {
        self.pending = Some(predicted);
    }
}

impl Default for SwitchGovernor {
    fn default() -> SwitchGovernor {
        SwitchGovernor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: i64) -> Vec<ProfileKey> {
        vec![ProfileKey([tag; 8]), ProfileKey([-tag; 8])]
    }

    fn profiles(tag: i64) -> Vec<WorkloadProfile> {
        let p = WorkloadProfile {
            cpu_cycles: 1.0e9 * tag as f64,
            cold_seq_reads: 10.0,
            cold_random_reads: 5.0,
            page_writes: 1.0,
            reread_seq: 100.0,
            reread_random: 50.0,
            working_set_pages: 1000.0,
            queries_per_epoch: 4.0,
        };
        vec![p, p]
    }

    fn snap(tag: i64) -> Option<(Vec<ProfileKey>, Vec<WorkloadProfile>)> {
        Some((key(tag), profiles(tag)))
    }

    /// Drives an alternating A(period) / B(period) snapshot stream
    /// through the governor.
    fn drive(g: &mut SwitchGovernor, epochs: usize, period: usize) {
        for epoch in 0..epochs {
            let phase = (epoch / period) % 2;
            g.observe_epoch(epoch, snap(if phase == 0 { 1 } else { 2 }));
        }
    }

    #[test]
    fn a_single_regime_never_becomes_trusted() {
        let mut g = SwitchGovernor::new();
        for epoch in 0..100 {
            g.observe_epoch(epoch, snap(1));
        }
        assert_eq!(g.trusted_regimes(), 0);
        assert_eq!(g.governed_horizon(100, 8), 8.0);
        assert!(g.predicted_switch(100, 200, 8).is_none());
    }

    #[test]
    fn a_one_shot_drift_leaves_the_governor_inert() {
        // A -> B once: A's single closing makes *A* trusted, but the
        // regime now in force (B) never completes a stay, so the governed
        // horizon stays full and nothing is predicted — the drifting
        // scenario's guarantee.
        let mut g = SwitchGovernor::new();
        for epoch in 0..12 {
            g.observe_epoch(epoch, snap(1));
        }
        for epoch in 12..24 {
            g.observe_epoch(epoch, snap(2));
        }
        assert_eq!(g.trusted_regimes(), 1);
        assert_eq!(g.governed_horizon(23, 8), 8.0);
        assert!(g.predicted_switch(23, 48, 8).is_none());
    }

    #[test]
    fn one_full_cycle_is_enough_to_predict_the_second() {
        // A(0-1) B(2-3) A(4-5): both regimes close once, which is all the
        // trust a verified-next-epoch prediction needs.
        let mut g = SwitchGovernor::new();
        drive(&mut g, 6, 2);
        assert_eq!(g.trusted_regimes(), 2);
        let p = g.predicted_switch(5, 16, 8).expect("first recurrence");
        assert_eq!(p.key, key(2));
        // One epoch earlier A's stay is not over yet.
        assert!(g.predicted_switch(4, 16, 8).is_none());
    }

    #[test]
    fn slow_alternation_is_left_to_the_reactive_loop() {
        // Period 8 with an 8-epoch amortization horizon: the reactive
        // drift path can pay for its own switches, so the governor must
        // not pre-empt it. A longer config horizon re-enables prediction.
        let mut g = SwitchGovernor::new();
        drive(&mut g, 40, 8);
        assert_eq!(g.trusted_regimes(), 2);
        assert!(g.predicted_switch(39, 64, 8).is_none());
        assert!(g.predicted_switch(39, 64, 9).is_some());
    }

    #[test]
    fn alternation_learns_residence_and_predicts_the_flip() {
        let mut g = SwitchGovernor::new();
        // A(0-1) B(2-3) A(4-5) B(6-7) A(8-9): A closes at 2 and 6, B at 4
        // and 8 — both trusted with residence 2 from epoch 8 on.
        drive(&mut g, 10, 2);
        assert_eq!(g.trusted_regimes(), 2);
        // Decision at the end of epoch 9 would take force at 10 — exactly
        // the predicted flip: horizon 0, switch vetoed.
        assert_eq!(g.governed_horizon(9, 8), 0.0);
        // Mid-regime (end of epoch 8, in force from 9): one epoch left.
        assert_eq!(g.governed_horizon(8, 8), 1.0);
        // And the pre-switch offers both sides of the boundary for epoch
        // 10, amortized over one full alternation cycle.
        let p = g.predicted_switch(9, 16, 8).expect("flip must be predicted");
        assert_eq!(p.key, key(2));
        assert_eq!(p.pair_key, [key(1), key(2)].concat());
        assert_eq!(p.outgoing_profiles, profiles(1));
        assert_eq!(p.incoming_profiles, profiles(2));
        assert_eq!(p.horizon_epochs, 4.0);
        // One epoch earlier there is nothing to predict.
        assert!(g.predicted_switch(8, 16, 8).is_none());
    }

    #[test]
    fn the_stream_tail_refuses_pre_switching() {
        let mut g = SwitchGovernor::new();
        drive(&mut g, 10, 2);
        // Predicted flip at 10, but the stream ends at 10: nothing left to
        // amortize against.
        assert!(g.predicted_switch(9, 10, 8).is_none());
        // With one epoch left the horizon is capped to it.
        let p = g.predicted_switch(9, 11, 8).unwrap();
        assert_eq!(p.horizon_epochs, 1.0);
    }

    #[test]
    fn predictions_are_confirmed_or_refuted_by_the_next_key() {
        let mut g = SwitchGovernor::new();
        drive(&mut g, 10, 2);
        g.note_preswitch(key(2));
        let v = g.observe_epoch(10, snap(2));
        assert!(v.prediction_hit && !v.prediction_missed);
        assert_eq!(g.prediction_hits(), 1);

        g.note_preswitch(key(1));
        let v = g.observe_epoch(11, snap(3));
        assert!(v.prediction_missed && !v.prediction_hit);
        assert_eq!(g.prediction_misses(), 1);
    }

    #[test]
    fn dropout_epochs_leave_the_regime_open_and_drop_pending_predictions() {
        let mut g = SwitchGovernor::new();
        drive(&mut g, 10, 2);
        g.note_preswitch(key(1));
        let v = g.observe_epoch(10, None);
        assert_eq!(v, EpochVerdict::default());
        assert_eq!(g.prediction_hits() + g.prediction_misses(), 0);
        // The regime entered at epoch 8 is still current; a later flip
        // measures residence across the gap.
        g.observe_epoch(11, snap(2));
        // No panic, still trusted; pending was consumed without counting.
        assert_eq!(g.trusted_regimes(), 2);
    }

    #[test]
    fn an_overstaying_regime_falls_back_to_the_full_horizon() {
        let mut g = SwitchGovernor::new();
        drive(&mut g, 10, 2);
        // Regime A re-entered at 8 with trusted residence 2 is still
        // current at epoch 14: the pattern broke, so the governor must not
        // keep vetoing forever.
        for epoch in 10..15 {
            g.observe_epoch(epoch, snap(1));
        }
        assert_eq!(g.governed_horizon(14, 8), 8.0);
    }

    #[test]
    fn residence_tracks_a_changing_period() {
        let mut g = SwitchGovernor::new();
        // Two stays of 2, then stays of 4: EWMA moves toward 4.
        drive(&mut g, 8, 2);
        for epoch in 8..24 {
            let phase = ((epoch - 8) / 4) % 2;
            g.observe_epoch(epoch, snap(if phase == 0 { 1 } else { 2 }));
        }
        let a = g.regimes.get(&key(1)).unwrap();
        assert!(a.residence > 2.0 && a.residence <= 4.0);
    }
}
