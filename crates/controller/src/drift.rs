//! Two-sided Page–Hinkley change detection.
//!
//! The controller watches a single scalar summary per VM — the log of each
//! completed query's *reference* cost (priced on the whole machine, so the
//! controller's own reallocation decisions cannot masquerade as workload
//! drift). The Page–Hinkley test maintains cumulative deviations from the
//! running mean and fires when either the upward or downward excursion
//! exceeds a threshold `lambda`; `delta` is the magnitude of change the
//! test tolerates without firing, which suppresses per-query noise.

use crate::ControllerError;

/// Page–Hinkley parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Tolerated deviation magnitude (in the observed unit — the controller
    /// feeds log-seconds, so `0.05` tolerates ~5% per-query wobble).
    pub delta: f64,
    /// Detection threshold on the cumulative excursion.
    pub lambda: f64,
    /// Number of observations before the test may fire (lets the running
    /// mean settle).
    pub warmup: u64,
}

impl Default for DriftConfig {
    fn default() -> DriftConfig {
        DriftConfig {
            delta: 0.05,
            lambda: 0.6,
            warmup: 8,
        }
    }
}

impl DriftConfig {
    /// Validates the parameters.
    pub fn validate(&self) -> Result<(), ControllerError> {
        if !(self.delta.is_finite() && self.delta >= 0.0) {
            return Err(ControllerError::BadConfig {
                reason: format!("drift delta must be finite and >= 0, got {}", self.delta),
            });
        }
        if !(self.lambda.is_finite() && self.lambda > 0.0) {
            return Err(ControllerError::BadConfig {
                reason: format!("drift lambda must be finite and > 0, got {}", self.lambda),
            });
        }
        Ok(())
    }
}

/// Streaming two-sided Page–Hinkley detector.
#[derive(Debug, Clone)]
pub struct PageHinkley {
    config: DriftConfig,
    count: u64,
    mean: f64,
    up: f64,
    up_min: f64,
    down: f64,
    down_max: f64,
}

impl PageHinkley {
    /// Creates a detector in its reset state.
    pub fn new(config: DriftConfig) -> PageHinkley {
        PageHinkley {
            config,
            count: 0,
            mean: 0.0,
            up: 0.0,
            up_min: 0.0,
            down: 0.0,
            down_max: 0.0,
        }
    }

    /// Number of observations consumed since the last reset.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feeds one observation; returns `true` when drift is detected.
    /// Non-finite observations are ignored (they are measurement faults,
    /// not workload changes).
    pub fn observe(&mut self, x: f64) -> bool {
        if !x.is_finite() {
            return false;
        }
        self.count += 1;
        self.mean += (x - self.mean) / self.count as f64;
        self.up += x - self.mean - self.config.delta;
        self.up_min = self.up_min.min(self.up);
        self.down += x - self.mean + self.config.delta;
        self.down_max = self.down_max.max(self.down);
        self.count > self.config.warmup
            && (self.up - self.up_min > self.config.lambda
                || self.down_max - self.down > self.config.lambda)
    }

    /// Resets all state (after the controller has acted on a detection).
    pub fn reset(&mut self) {
        self.count = 0;
        self.mean = 0.0;
        self.up = 0.0;
        self.up_min = 0.0;
        self.down = 0.0;
        self.down_max = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> PageHinkley {
        PageHinkley::new(DriftConfig {
            delta: 0.02,
            lambda: 0.3,
            warmup: 4,
        })
    }

    #[test]
    fn stationary_stream_never_fires() {
        let mut d = detector();
        for i in 0..500 {
            // Deterministic small wobble around 1.0.
            let x = 1.0 + 0.01 * ((i % 7) as f64 - 3.0);
            assert!(!d.observe(x), "false positive at observation {i}");
        }
    }

    #[test]
    fn upward_shift_is_detected() {
        let mut d = detector();
        for _ in 0..20 {
            assert!(!d.observe(1.0));
        }
        let mut fired = false;
        for _ in 0..20 {
            if d.observe(1.5) {
                fired = true;
                break;
            }
        }
        assert!(fired, "a +0.5 level shift must fire");
    }

    #[test]
    fn downward_shift_is_detected() {
        let mut d = detector();
        for _ in 0..20 {
            assert!(!d.observe(1.0));
        }
        let mut fired = false;
        for _ in 0..20 {
            if d.observe(0.5) {
                fired = true;
                break;
            }
        }
        assert!(fired, "a -0.5 level shift must fire");
    }

    #[test]
    fn warmup_suppresses_early_detection() {
        let mut d = PageHinkley::new(DriftConfig {
            delta: 0.0,
            lambda: 0.001,
            warmup: 10,
        });
        // A huge shift inside the warmup window must not fire.
        for i in 0..10 {
            let x = if i < 5 { 0.0 } else { 100.0 };
            assert!(!d.observe(x));
        }
    }

    #[test]
    fn reset_clears_accumulated_excursions() {
        let mut d = detector();
        for _ in 0..20 {
            d.observe(1.0);
        }
        for _ in 0..20 {
            d.observe(2.0);
        }
        d.reset();
        assert_eq!(d.count(), 0);
        for i in 0..50 {
            assert!(!d.observe(2.0), "false positive after reset at {i}");
        }
    }

    #[test]
    fn non_finite_observations_are_ignored() {
        let mut d = detector();
        for _ in 0..10 {
            d.observe(1.0);
        }
        let n = d.count();
        assert!(!d.observe(f64::NAN));
        assert!(!d.observe(f64::INFINITY));
        assert_eq!(d.count(), n);
    }

    #[test]
    fn constant_stream_never_fires() {
        // Exactly constant input: both excursions decay by delta per step,
        // so neither side can ever reach lambda.
        let mut d = detector();
        for i in 0..10_000 {
            assert!(!d.observe(3.25), "false positive on constant stream at {i}");
        }
    }

    #[test]
    fn single_observation_cannot_fire() {
        // After one observation the running mean equals the observation,
        // so both excursions are at their extrema and neither gap can
        // exceed lambda — a single sample can never fire, at any warmup.
        for x in [0.0, -1e9, 1e9] {
            let mut d = detector();
            assert!(!d.observe(x));
            assert_eq!(d.count(), 1);
        }
    }

    #[test]
    fn alternating_signs_around_the_mean_never_fire() {
        // A zero-mean square wave is noise, not drift: the excursions keep
        // crossing back over the running mean and never accumulate.
        let mut d = PageHinkley::new(DriftConfig {
            delta: 0.05,
            lambda: 0.6,
            warmup: 8,
        });
        for i in 0..2_000 {
            let x = if i % 2 == 0 { 0.04 } else { -0.04 };
            assert!(!d.observe(x), "false positive on alternating stream at {i}");
        }
    }

    #[test]
    fn only_non_finite_input_never_advances_past_warmup() {
        // A sensor emitting pure garbage must never push the detector
        // through its warmup, let alone fire it.
        let mut d = detector();
        for _ in 0..100 {
            assert!(!d.observe(f64::NAN));
            assert!(!d.observe(f64::NEG_INFINITY));
        }
        assert_eq!(d.count(), 0);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(DriftConfig {
            delta: -0.1,
            ..DriftConfig::default()
        }
        .validate()
        .is_err());
        assert!(DriftConfig {
            lambda: 0.0,
            ..DriftConfig::default()
        }
        .validate()
        .is_err());
        assert!(DriftConfig {
            lambda: f64::NAN,
            ..DriftConfig::default()
        }
        .validate()
        .is_err());
        assert!(DriftConfig::default().validate().is_ok());
    }
}
