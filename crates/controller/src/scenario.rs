//! Scenario driver: deterministic workload streams for the controller.
//!
//! A [`Scenario`] is a phased ground truth: each phase fixes one
//! [`WorkloadProfile`] per VM for a number of control epochs. The driver
//! materializes each epoch twice over:
//!
//! * the **jobs** the simulator actually runs — always clean, derived from
//!   the true profile and the buffer pool each VM currently holds;
//! * the **observations** the controller sees — optionally perturbed by a
//!   [`FaultInjector`], so chaos testing degrades the controller's beliefs
//!   without ever destabilizing the simulated ground truth.
//!
//! Everything is keyed off the scenario seed with a splitmix64 stream, so
//! identical `(scenario, seed)` pairs replay bit-identically.

use crate::profile::WorkloadProfile;
use crate::stats::QueryObservation;
use crate::ControllerError;
use dbvirt_vmm::fault::{FaultInjector, ProbeFault};
use dbvirt_vmm::sched::VmJob;
use dbvirt_vmm::{MachineSpec, ResourceDemand};

/// One phase: a fixed per-VM profile vector held for `epochs` epochs.
#[derive(Debug, Clone)]
pub struct ScenarioPhase {
    /// True profile of each VM during the phase.
    pub profiles: Vec<WorkloadProfile>,
    /// How many control epochs the phase lasts.
    pub epochs: usize,
}

/// A deterministic phased workload stream.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display name (also used in reports).
    pub name: String,
    /// The physical machine the VMs share.
    pub machine: MachineSpec,
    /// The phases, in time order.
    pub phases: Vec<ScenarioPhase>,
    /// Seed for per-query size variability (and the noise stream context).
    pub seed: u64,
    /// Per-query size wobble: each query's demand is scaled by a
    /// deterministic factor in `[1 - variability, 1 + variability]`.
    pub variability: f64,
    /// Optional observation noise. Applies to what the controller *sees*,
    /// never to what the simulator *runs*.
    pub noise: Option<FaultInjector>,
}

/// One VM's materialized epoch: the job for the simulator plus the
/// per-query observations for the controller (`None` = the measurement
/// faulted and was lost).
#[derive(Debug, Clone)]
pub struct VmEpoch {
    /// Clean ground-truth job.
    pub job: VmJob,
    /// What the controller observes for each query, in order.
    pub observations: Vec<Option<QueryObservation>>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Scenario {
    /// Creates a scenario with no size variability and no noise.
    pub fn new(
        name: impl Into<String>,
        machine: MachineSpec,
        phases: Vec<ScenarioPhase>,
        seed: u64,
    ) -> Scenario {
        Scenario {
            name: name.into(),
            machine,
            phases,
            seed,
            variability: 0.0,
            noise: None,
        }
    }

    /// A single-phase (stationary) stream.
    pub fn stationary(
        name: impl Into<String>,
        machine: MachineSpec,
        profiles: Vec<WorkloadProfile>,
        epochs: usize,
        seed: u64,
    ) -> Scenario {
        Scenario::new(name, machine, vec![ScenarioPhase { profiles, epochs }], seed)
    }

    /// A two-phase drift: `a` for `epochs_a`, then `b` for `epochs_b`.
    pub fn drifting(
        name: impl Into<String>,
        machine: MachineSpec,
        a: Vec<WorkloadProfile>,
        epochs_a: usize,
        b: Vec<WorkloadProfile>,
        epochs_b: usize,
        seed: u64,
    ) -> Scenario {
        Scenario::new(
            name,
            machine,
            vec![
                ScenarioPhase {
                    profiles: a,
                    epochs: epochs_a,
                },
                ScenarioPhase {
                    profiles: b,
                    epochs: epochs_b,
                },
            ],
            seed,
        )
    }

    /// A bursty stream: a long baseline phase interrupted by `bursts`
    /// short excursions to `burst` profiles, returning to baseline after
    /// each.
    pub fn bursty(
        name: impl Into<String>,
        machine: MachineSpec,
        baseline: Vec<WorkloadProfile>,
        burst: Vec<WorkloadProfile>,
        calm_epochs: usize,
        burst_epochs: usize,
        bursts: usize,
        seed: u64,
    ) -> Scenario {
        let mut phases = Vec::with_capacity(2 * bursts + 1);
        for _ in 0..bursts {
            phases.push(ScenarioPhase {
                profiles: baseline.clone(),
                epochs: calm_epochs,
            });
            phases.push(ScenarioPhase {
                profiles: burst.clone(),
                epochs: burst_epochs,
            });
        }
        phases.push(ScenarioPhase {
            profiles: baseline,
            epochs: calm_epochs,
        });
        Scenario::new(name, machine, phases, seed)
    }

    /// An adversarial stream: `a` and `b` alternate every `period` epochs,
    /// `cycles` times — fast enough to tempt a naive controller into
    /// thrashing, where switch costs eat any allocation gain.
    pub fn adversarial(
        name: impl Into<String>,
        machine: MachineSpec,
        a: Vec<WorkloadProfile>,
        b: Vec<WorkloadProfile>,
        period: usize,
        cycles: usize,
        seed: u64,
    ) -> Scenario {
        let mut phases = Vec::with_capacity(2 * cycles);
        for _ in 0..cycles {
            phases.push(ScenarioPhase {
                profiles: a.clone(),
                epochs: period,
            });
            phases.push(ScenarioPhase {
                profiles: b.clone(),
                epochs: period,
            });
        }
        Scenario::new(name, machine, phases, seed)
    }

    /// Adds per-query size variability.
    pub fn with_variability(mut self, variability: f64) -> Scenario {
        self.variability = variability;
        self
    }

    /// Adds observation noise.
    pub fn with_noise(mut self, noise: FaultInjector) -> Scenario {
        self.noise = Some(noise);
        self
    }

    /// Validates structure and parameters.
    pub fn validate(&self) -> Result<(), ControllerError> {
        self.machine.validate()?;
        let Some(first) = self.phases.first() else {
            return Err(ControllerError::BadScenario {
                reason: "a scenario needs at least one phase".to_string(),
            });
        };
        let n = first.profiles.len();
        if n == 0 {
            return Err(ControllerError::BadScenario {
                reason: "a scenario needs at least one VM".to_string(),
            });
        }
        for (i, phase) in self.phases.iter().enumerate() {
            if phase.profiles.len() != n {
                return Err(ControllerError::BadScenario {
                    reason: format!(
                        "phase {i} has {} VMs, expected {n}",
                        phase.profiles.len()
                    ),
                });
            }
            if phase.epochs == 0 {
                return Err(ControllerError::BadScenario {
                    reason: format!("phase {i} has zero epochs"),
                });
            }
            for profile in &phase.profiles {
                profile.validate()?;
            }
        }
        if !(self.variability.is_finite() && (0.0..1.0).contains(&self.variability)) {
            return Err(ControllerError::BadScenario {
                reason: format!("variability must be in [0, 1), got {}", self.variability),
            });
        }
        Ok(())
    }

    /// Number of VMs.
    pub fn num_vms(&self) -> usize {
        self.phases.first().map_or(0, |p| p.profiles.len())
    }

    /// Total epochs across all phases.
    pub fn total_epochs(&self) -> usize {
        self.phases.iter().map(|p| p.epochs).sum()
    }

    /// The phase index an epoch falls into.
    pub fn phase_of_epoch(&self, epoch: usize) -> usize {
        let mut remaining = epoch;
        for (i, phase) in self.phases.iter().enumerate() {
            if remaining < phase.epochs {
                return i;
            }
            remaining -= phase.epochs;
        }
        self.phases.len().saturating_sub(1)
    }

    /// The true profile of `vm` during `epoch`.
    pub fn profile(&self, vm: usize, epoch: usize) -> &WorkloadProfile {
        &self.phases[self.phase_of_epoch(epoch)].profiles[vm]
    }

    /// Per-phase profile ordinals: the first phase presenting a given
    /// profile vector defines its ordinal, and later identical phases
    /// reuse it. The regret oracle encodes these ordinals into its phase
    /// problems so recurring phases share warm cost caches (see
    /// [`crate::profile::ProblemTemplate::phase_problem`]).
    pub fn phase_ordinals(&self) -> Vec<usize> {
        let mut seen: Vec<&Vec<WorkloadProfile>> = Vec::new();
        self.phases
            .iter()
            .map(|phase| {
                if let Some(k) = seen.iter().position(|p| **p == phase.profiles) {
                    k
                } else {
                    seen.push(&phase.profiles);
                    seen.len() - 1
                }
            })
            .collect()
    }

    /// Number of queries `vm` completes in `epoch`.
    pub fn query_count(&self, vm: usize, epoch: usize) -> usize {
        (self.profile(vm, epoch).queries_per_epoch.round() as usize).max(1)
    }

    /// Deterministic per-query size factor in
    /// `[1 - variability, 1 + variability]`.
    pub fn query_scale(&self, vm: usize, epoch: usize, q: usize) -> f64 {
        if self.variability <= 0.0 {
            return 1.0;
        }
        let key = splitmix64(
            self.seed
                ^ splitmix64(vm as u64)
                ^ splitmix64((epoch as u64) << 20)
                ^ splitmix64((q as u64) << 40),
        );
        let u = (key >> 11) as f64 / (1u64 << 53) as f64;
        1.0 - self.variability + 2.0 * self.variability * u
    }

    /// The clean ground-truth jobs for `epoch`, one per VM, given the
    /// buffer pool (in pages) each VM currently holds. Pool sizes matter
    /// because physical demand depends on how much of the working set the
    /// pool covers — the regret replay passes the pools of whatever
    /// allocation it is replaying.
    pub fn epoch_jobs(
        &self,
        epoch: usize,
        pool_pages: &[usize],
    ) -> Result<Vec<VmJob>, ControllerError> {
        if pool_pages.len() != self.num_vms() {
            return Err(ControllerError::BadScenario {
                reason: format!(
                    "{} pool sizes for {} VMs",
                    pool_pages.len(),
                    self.num_vms()
                ),
            });
        }
        Ok((0..self.num_vms())
            .map(|vm| {
                let profile = self.profile(vm, epoch);
                let queries = (0..self.query_count(vm, epoch))
                    .map(|q| profile.demand_at(pool_pages[vm], self.query_scale(vm, epoch, q)))
                    .collect();
                VmJob::new(queries)
            })
            .collect())
    }

    /// Materializes `epoch`: clean jobs plus (possibly noisy) per-query
    /// observations.
    pub fn epoch_batch(
        &self,
        epoch: usize,
        pool_pages: &[usize],
    ) -> Result<Vec<VmEpoch>, ControllerError> {
        let jobs = self.epoch_jobs(epoch, pool_pages)?;
        Ok(jobs
            .into_iter()
            .enumerate()
            .map(|(vm, job)| {
                let profile = self.profile(vm, epoch);
                let hit = profile.hit_fraction(pool_pages[vm]);
                let observations = job
                    .queries
                    .iter()
                    .enumerate()
                    .map(|(q, demand)| {
                        let scale = self.query_scale(vm, epoch, q);
                        let clean = QueryObservation {
                            demand: *demand,
                            seq_hits: profile.reread_seq * hit * scale,
                            random_hits: profile.reread_random * hit * scale,
                            touched_pages: profile.working_set_pages,
                        };
                        self.observe(vm, epoch, q, clean)
                    })
                    .collect();
                VmEpoch { job, observations }
            })
            .collect())
    }

    /// Runs one clean observation through the noise model (identity when
    /// no injector is configured). A measurement fault loses the whole
    /// observation.
    fn observe(
        &self,
        vm: usize,
        epoch: usize,
        q: usize,
        clean: QueryObservation,
    ) -> Option<QueryObservation> {
        let Some(injector) = &self.noise else {
            return Some(clean);
        };
        // Each observation component is drawn independently through the
        // injector's deterministic stream; `attempt` indexes the component
        // and the breakdown slot selects which jitter knob applies (CPU,
        // sequential-I/O, random-I/O, or write jitter).
        let noisy = |idx: usize, slot: usize, value: f64| -> Result<f64, ProbeFault> {
            let mut breakdown = (0.0, 0.0, 0.0, 0.0);
            match slot {
                0 => breakdown.0 = value,
                1 => breakdown.1 = value,
                2 => breakdown.2 = value,
                _ => breakdown.3 = value,
            }
            injector.measure(vm as u64, epoch, q, idx, breakdown)
        };
        let result: Result<QueryObservation, ProbeFault> = (|| {
            Ok(QueryObservation {
                demand: ResourceDemand {
                    cpu_cycles: noisy(0, 0, clean.demand.cpu_cycles)?,
                    seq_page_reads: noisy(1, 1, clean.demand.seq_page_reads as f64)?
                        .round()
                        .max(0.0) as u64,
                    random_page_reads: noisy(2, 2, clean.demand.random_page_reads as f64)?
                        .round()
                        .max(0.0) as u64,
                    page_writes: noisy(3, 3, clean.demand.page_writes as f64)?
                        .round()
                        .max(0.0) as u64,
                },
                seq_hits: noisy(4, 1, clean.seq_hits)?,
                random_hits: noisy(5, 2, clean.random_hits)?,
                touched_pages: noisy(6, 1, clean.touched_pages)?,
            })
        })();
        result.ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{cpu_heavy, io_heavy};
    use dbvirt_vmm::fault::NoiseModel;

    fn two_vm_drift() -> Scenario {
        Scenario::drifting(
            "test-drift",
            MachineSpec::tiny(),
            vec![cpu_heavy(), io_heavy()],
            5,
            vec![io_heavy(), cpu_heavy()],
            7,
            42,
        )
    }

    #[test]
    fn phase_arithmetic_is_consistent() {
        let s = two_vm_drift();
        assert!(s.validate().is_ok());
        assert_eq!(s.num_vms(), 2);
        assert_eq!(s.total_epochs(), 12);
        assert_eq!(s.phase_of_epoch(0), 0);
        assert_eq!(s.phase_of_epoch(4), 0);
        assert_eq!(s.phase_of_epoch(5), 1);
        assert_eq!(s.phase_of_epoch(11), 1);
        assert_eq!(s.phase_ordinals(), vec![0, 1]);
    }

    #[test]
    fn recurring_phases_reuse_ordinals() {
        let s = Scenario::bursty(
            "bursty",
            MachineSpec::tiny(),
            vec![cpu_heavy()],
            vec![io_heavy()],
            4,
            2,
            2,
            7,
        );
        // baseline, burst, baseline, burst, baseline.
        assert_eq!(s.phase_ordinals(), vec![0, 1, 0, 1, 0]);
    }

    #[test]
    fn epoch_generation_is_deterministic() {
        let s = two_vm_drift().with_variability(0.2);
        let pools = [1000usize, 1000];
        let a = s.epoch_batch(3, &pools).unwrap();
        let b = s.epoch_batch(3, &pools).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.job.queries, y.job.queries);
            assert_eq!(x.observations, y.observations);
        }
        // A different seed produces a different stream.
        let mut other = two_vm_drift().with_variability(0.2);
        other.seed = 43;
        let c = other.epoch_batch(3, &pools).unwrap();
        assert_ne!(a[0].job.queries, c[0].job.queries);
    }

    #[test]
    fn variability_stays_in_range() {
        let s = two_vm_drift().with_variability(0.3);
        for epoch in 0..12 {
            for q in 0..8 {
                let scale = s.query_scale(0, epoch, q);
                assert!((0.7..=1.3).contains(&scale), "scale {scale} out of range");
            }
        }
    }

    #[test]
    fn noise_perturbs_observations_but_never_jobs() {
        let clean = two_vm_drift();
        let noisy = two_vm_drift().with_noise(FaultInjector::new(
            NoiseModel::realistic(0.3),
            99,
        ));
        let pools = [1000usize, 1000];
        for epoch in 0..12 {
            let a = clean.epoch_batch(epoch, &pools).unwrap();
            let b = noisy.epoch_batch(epoch, &pools).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.job.queries, y.job.queries, "ground truth must be clean");
            }
            // The observation streams differ (jitter or dropped probes).
            let differs = a.iter().zip(&b).any(|(x, y)| x.observations != y.observations);
            assert!(differs, "realistic noise should perturb epoch {epoch}");
        }
    }

    #[test]
    fn malformed_scenarios_are_rejected() {
        let mut s = two_vm_drift();
        s.phases[1].profiles.pop();
        assert!(s.validate().is_err());

        let mut s = two_vm_drift();
        s.phases[0].epochs = 0;
        assert!(s.validate().is_err());

        let s = Scenario::new("empty", MachineSpec::tiny(), vec![], 0);
        assert!(s.validate().is_err());

        let s = two_vm_drift().with_variability(1.5);
        assert!(s.validate().is_err());

        // Pool-count mismatch surfaces as a typed error.
        let s = two_vm_drift();
        assert!(s.epoch_jobs(0, &[1000]).is_err());
    }
}
