//! Scenario driver: deterministic workload streams for the controller.
//!
//! A [`Scenario`] is a phased ground truth: each phase fixes one
//! [`WorkloadProfile`] per VM for a number of control epochs. The driver
//! materializes each epoch twice over:
//!
//! * the **jobs** the simulator actually runs — always clean, derived from
//!   the true profile and the buffer pool each VM currently holds;
//! * the **observations** the controller sees — optionally perturbed by a
//!   [`FaultInjector`], so chaos testing degrades the controller's beliefs
//!   without ever destabilizing the simulated ground truth.
//!
//! Everything is keyed off the scenario seed with a splitmix64 stream, so
//! identical `(scenario, seed)` pairs replay bit-identically.

use crate::profile::WorkloadProfile;
use crate::stats::QueryObservation;
use crate::ControllerError;
use dbvirt_vmm::fault::{FaultInjector, ProbeFault, SensorFault};
use dbvirt_vmm::sched::VmJob;
use dbvirt_vmm::{MachineSpec, ResourceDemand};

/// One phase: a fixed per-VM profile vector held for `epochs` epochs.
#[derive(Debug, Clone)]
pub struct ScenarioPhase {
    /// True profile of each VM during the phase.
    pub profiles: Vec<WorkloadProfile>,
    /// How many control epochs the phase lasts.
    pub epochs: usize,
}

/// A deterministic phased workload stream.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display name (also used in reports).
    pub name: String,
    /// The physical machine the VMs share.
    pub machine: MachineSpec,
    /// The phases, in time order.
    pub phases: Vec<ScenarioPhase>,
    /// Seed for per-query size variability (and the noise stream context).
    pub seed: u64,
    /// Per-query size wobble: each query's demand is scaled by a
    /// deterministic factor in `[1 - variability, 1 + variability]`.
    pub variability: f64,
    /// Optional observation noise. Applies to what the controller *sees*,
    /// never to what the simulator *runs*.
    pub noise: Option<FaultInjector>,
}

/// One VM's materialized epoch: the job for the simulator plus the
/// per-query observations for the controller (`None` = the measurement
/// faulted and was lost).
#[derive(Debug, Clone)]
pub struct VmEpoch {
    /// Clean ground-truth job.
    pub job: VmJob,
    /// What the controller observes for each query, in order.
    pub observations: Vec<Option<QueryObservation>>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Scenario {
    /// Creates a scenario with no size variability and no noise.
    pub fn new(
        name: impl Into<String>,
        machine: MachineSpec,
        phases: Vec<ScenarioPhase>,
        seed: u64,
    ) -> Scenario {
        Scenario {
            name: name.into(),
            machine,
            phases,
            seed,
            variability: 0.0,
            noise: None,
        }
    }

    /// A single-phase (stationary) stream.
    pub fn stationary(
        name: impl Into<String>,
        machine: MachineSpec,
        profiles: Vec<WorkloadProfile>,
        epochs: usize,
        seed: u64,
    ) -> Scenario {
        Scenario::new(name, machine, vec![ScenarioPhase { profiles, epochs }], seed)
    }

    /// A two-phase drift: `a` for `epochs_a`, then `b` for `epochs_b`.
    pub fn drifting(
        name: impl Into<String>,
        machine: MachineSpec,
        a: Vec<WorkloadProfile>,
        epochs_a: usize,
        b: Vec<WorkloadProfile>,
        epochs_b: usize,
        seed: u64,
    ) -> Scenario {
        Scenario::new(
            name,
            machine,
            vec![
                ScenarioPhase {
                    profiles: a,
                    epochs: epochs_a,
                },
                ScenarioPhase {
                    profiles: b,
                    epochs: epochs_b,
                },
            ],
            seed,
        )
    }

    /// A bursty stream: a long baseline phase interrupted by `bursts`
    /// short excursions to `burst` profiles, returning to baseline after
    /// each.
    pub fn bursty(
        name: impl Into<String>,
        machine: MachineSpec,
        baseline: Vec<WorkloadProfile>,
        burst: Vec<WorkloadProfile>,
        calm_epochs: usize,
        burst_epochs: usize,
        bursts: usize,
        seed: u64,
    ) -> Scenario {
        let mut phases = Vec::with_capacity(2 * bursts + 1);
        for _ in 0..bursts {
            phases.push(ScenarioPhase {
                profiles: baseline.clone(),
                epochs: calm_epochs,
            });
            phases.push(ScenarioPhase {
                profiles: burst.clone(),
                epochs: burst_epochs,
            });
        }
        phases.push(ScenarioPhase {
            profiles: baseline,
            epochs: calm_epochs,
        });
        Scenario::new(name, machine, phases, seed)
    }

    /// An adversarial stream: `a` and `b` alternate every `period` epochs,
    /// `cycles` times — fast enough to tempt a naive controller into
    /// thrashing, where switch costs eat any allocation gain.
    pub fn adversarial(
        name: impl Into<String>,
        machine: MachineSpec,
        a: Vec<WorkloadProfile>,
        b: Vec<WorkloadProfile>,
        period: usize,
        cycles: usize,
        seed: u64,
    ) -> Scenario {
        let mut phases = Vec::with_capacity(2 * cycles);
        for _ in 0..cycles {
            phases.push(ScenarioPhase {
                profiles: a.clone(),
                epochs: period,
            });
            phases.push(ScenarioPhase {
                profiles: b.clone(),
                epochs: period,
            });
        }
        Scenario::new(name, machine, phases, seed)
    }

    /// A diurnal cycle: `day` and `night` profile vectors alternate every
    /// `period` epochs for `cycles` full days. Structurally the same
    /// alternation as [`Scenario::adversarial`], but with periods long
    /// enough that reconfiguring each time is worthwhile — the case the
    /// switch governor should learn to pre-provision, not suppress.
    pub fn diurnal(
        name: impl Into<String>,
        machine: MachineSpec,
        day: Vec<WorkloadProfile>,
        night: Vec<WorkloadProfile>,
        period: usize,
        cycles: usize,
        seed: u64,
    ) -> Scenario {
        Scenario::adversarial(name, machine, day, night, period, cycles, seed)
    }

    /// A flash crowd: a steady baseline, then VM `crowd_vm`'s arrival rate
    /// spikes by `spike`×, decays stepwise back over `decay_steps` phases,
    /// and returns to baseline.
    pub fn flash_crowd(
        name: impl Into<String>,
        machine: MachineSpec,
        baseline: Vec<WorkloadProfile>,
        crowd_vm: usize,
        spike: f64,
        calm_epochs: usize,
        spike_epochs: usize,
        decay_steps: usize,
        decay_epochs: usize,
        seed: u64,
    ) -> Scenario {
        let crowded = |factor: f64| -> Vec<WorkloadProfile> {
            baseline
                .iter()
                .enumerate()
                .map(|(vm, p)| {
                    if vm == crowd_vm {
                        p.rate_scaled(factor)
                    } else {
                        *p
                    }
                })
                .collect()
        };
        let mut phases = vec![
            ScenarioPhase {
                profiles: baseline.clone(),
                epochs: calm_epochs,
            },
            ScenarioPhase {
                profiles: crowded(spike),
                epochs: spike_epochs,
            },
        ];
        for step in 1..=decay_steps {
            let factor =
                1.0 + (spike - 1.0) * (decay_steps + 1 - step) as f64 / (decay_steps + 1) as f64;
            phases.push(ScenarioPhase {
                profiles: crowded(factor),
                epochs: decay_epochs,
            });
        }
        phases.push(ScenarioPhase {
            profiles: baseline,
            epochs: calm_epochs,
        });
        Scenario::new(name, machine, phases, seed)
    }

    /// A multi-tenant noisy-neighbor stream: tenants 0 and 1 swap a
    /// `loud`/`quiet` profile pair in antiphase every `period` epochs
    /// while the remaining `victims` VMs run steady — so drift always
    /// fires on exactly that tenant pair and a localizing controller can
    /// re-solve the pair with the victims' shares pinned.
    pub fn noisy_neighbor(
        name: impl Into<String>,
        machine: MachineSpec,
        loud: WorkloadProfile,
        quiet: WorkloadProfile,
        victims: Vec<WorkloadProfile>,
        period: usize,
        cycles: usize,
        seed: u64,
    ) -> Scenario {
        let with_tenants = |a: WorkloadProfile, b: WorkloadProfile| -> Vec<WorkloadProfile> {
            let mut profiles = vec![a, b];
            profiles.extend(victims.iter().copied());
            profiles
        };
        let mut phases = Vec::with_capacity(2 * cycles);
        for _ in 0..cycles {
            phases.push(ScenarioPhase {
                profiles: with_tenants(loud, quiet),
                epochs: period,
            });
            phases.push(ScenarioPhase {
                profiles: with_tenants(quiet, loud),
                epochs: period,
            });
        }
        Scenario::new(name, machine, phases, seed)
    }

    /// Correlated cross-VM drift: every VM shifts from its `before`
    /// profile to its `after` profile at the same instant, and back again
    /// — the all-VMs-drifted case where localized re-solving degenerates
    /// to a full solve.
    pub fn correlated_drift(
        name: impl Into<String>,
        machine: MachineSpec,
        before: Vec<WorkloadProfile>,
        after: Vec<WorkloadProfile>,
        epochs_each: usize,
        seed: u64,
    ) -> Scenario {
        Scenario::new(
            name,
            machine,
            vec![
                ScenarioPhase {
                    profiles: before.clone(),
                    epochs: epochs_each,
                },
                ScenarioPhase {
                    profiles: after,
                    epochs: epochs_each,
                },
                ScenarioPhase {
                    profiles: before,
                    epochs: epochs_each,
                },
            ],
            seed,
        )
    }

    /// A slow ramp: componentwise interpolation from `from` to `to` over
    /// `steps` phases of `epochs_per_step` epochs each — drift that never
    /// announces itself with a step change.
    pub fn slow_ramp(
        name: impl Into<String>,
        machine: MachineSpec,
        from: Vec<WorkloadProfile>,
        to: Vec<WorkloadProfile>,
        steps: usize,
        epochs_per_step: usize,
        seed: u64,
    ) -> Scenario {
        let steps = steps.max(2);
        let phases = (0..steps)
            .map(|step| {
                let t = step as f64 / (steps - 1) as f64;
                ScenarioPhase {
                    profiles: from
                        .iter()
                        .zip(&to)
                        .map(|(a, b)| a.lerp(b, t))
                        .collect(),
                    epochs: epochs_per_step,
                }
            })
            .collect();
        Scenario::new(name, machine, phases, seed)
    }

    /// Adds per-query size variability.
    pub fn with_variability(mut self, variability: f64) -> Scenario {
        self.variability = variability;
        self
    }

    /// Adds observation noise.
    pub fn with_noise(mut self, noise: FaultInjector) -> Scenario {
        self.noise = Some(noise);
        self
    }

    /// Validates structure and parameters.
    pub fn validate(&self) -> Result<(), ControllerError> {
        self.machine.validate()?;
        let Some(first) = self.phases.first() else {
            return Err(ControllerError::BadScenario {
                reason: "a scenario needs at least one phase".to_string(),
            });
        };
        let n = first.profiles.len();
        if n == 0 {
            return Err(ControllerError::BadScenario {
                reason: "a scenario needs at least one VM".to_string(),
            });
        }
        for (i, phase) in self.phases.iter().enumerate() {
            if phase.profiles.len() != n {
                return Err(ControllerError::BadScenario {
                    reason: format!(
                        "phase {i} has {} VMs, expected {n}",
                        phase.profiles.len()
                    ),
                });
            }
            if phase.epochs == 0 {
                return Err(ControllerError::BadScenario {
                    reason: format!("phase {i} has zero epochs"),
                });
            }
            for profile in &phase.profiles {
                profile.validate()?;
            }
        }
        if !(self.variability.is_finite() && (0.0..1.0).contains(&self.variability)) {
            return Err(ControllerError::BadScenario {
                reason: format!("variability must be in [0, 1), got {}", self.variability),
            });
        }
        Ok(())
    }

    /// Number of VMs.
    pub fn num_vms(&self) -> usize {
        self.phases.first().map_or(0, |p| p.profiles.len())
    }

    /// Total epochs across all phases.
    pub fn total_epochs(&self) -> usize {
        self.phases.iter().map(|p| p.epochs).sum()
    }

    /// The phase index an epoch falls into.
    pub fn phase_of_epoch(&self, epoch: usize) -> usize {
        let mut remaining = epoch;
        for (i, phase) in self.phases.iter().enumerate() {
            if remaining < phase.epochs {
                return i;
            }
            remaining -= phase.epochs;
        }
        self.phases.len().saturating_sub(1)
    }

    /// The true profile of `vm` during `epoch`.
    pub fn profile(&self, vm: usize, epoch: usize) -> &WorkloadProfile {
        &self.phases[self.phase_of_epoch(epoch)].profiles[vm]
    }

    /// Per-phase profile ordinals: the first phase presenting a given
    /// profile vector defines its ordinal, and later identical phases
    /// reuse it. The regret oracle encodes these ordinals into its phase
    /// problems so recurring phases share warm cost caches (see
    /// [`crate::profile::ProblemTemplate::phase_problem`]).
    pub fn phase_ordinals(&self) -> Vec<usize> {
        let mut seen: Vec<&Vec<WorkloadProfile>> = Vec::new();
        self.phases
            .iter()
            .map(|phase| {
                if let Some(k) = seen.iter().position(|p| **p == phase.profiles) {
                    k
                } else {
                    seen.push(&phase.profiles);
                    seen.len() - 1
                }
            })
            .collect()
    }

    /// Number of queries `vm` completes in `epoch`.
    pub fn query_count(&self, vm: usize, epoch: usize) -> usize {
        (self.profile(vm, epoch).queries_per_epoch.round() as usize).max(1)
    }

    /// Deterministic per-query size factor in
    /// `[1 - variability, 1 + variability]`.
    pub fn query_scale(&self, vm: usize, epoch: usize, q: usize) -> f64 {
        if self.variability <= 0.0 {
            return 1.0;
        }
        let key = splitmix64(
            self.seed
                ^ splitmix64(vm as u64)
                ^ splitmix64((epoch as u64) << 20)
                ^ splitmix64((q as u64) << 40),
        );
        let u = (key >> 11) as f64 / (1u64 << 53) as f64;
        1.0 - self.variability + 2.0 * self.variability * u
    }

    /// The clean ground-truth jobs for `epoch`, one per VM, given the
    /// buffer pool (in pages) each VM currently holds. Pool sizes matter
    /// because physical demand depends on how much of the working set the
    /// pool covers — the regret replay passes the pools of whatever
    /// allocation it is replaying.
    pub fn epoch_jobs(
        &self,
        epoch: usize,
        pool_pages: &[usize],
    ) -> Result<Vec<VmJob>, ControllerError> {
        if pool_pages.len() != self.num_vms() {
            return Err(ControllerError::BadScenario {
                reason: format!(
                    "{} pool sizes for {} VMs",
                    pool_pages.len(),
                    self.num_vms()
                ),
            });
        }
        Ok((0..self.num_vms())
            .map(|vm| {
                let profile = self.profile(vm, epoch);
                let queries = (0..self.query_count(vm, epoch))
                    .map(|q| profile.demand_at(pool_pages[vm], self.query_scale(vm, epoch, q)))
                    .collect();
                VmJob::new(queries)
            })
            .collect())
    }

    /// Materializes `epoch`: clean jobs plus (possibly noisy) per-query
    /// observations.
    pub fn epoch_batch(
        &self,
        epoch: usize,
        pool_pages: &[usize],
    ) -> Result<Vec<VmEpoch>, ControllerError> {
        let jobs = self.epoch_jobs(epoch, pool_pages)?;
        Ok(jobs
            .into_iter()
            .enumerate()
            .map(|(vm, job)| {
                let observations = (0..job.queries.len())
                    .map(|q| {
                        let clean = self.clean_observation(vm, epoch, q, pool_pages[vm]);
                        self.observe(vm, epoch, q, clean, pool_pages[vm])
                    })
                    .collect();
                VmEpoch { job, observations }
            })
            .collect())
    }

    /// The noiseless observation of query `q` of `vm` in `epoch`, as run
    /// under a pool of `pool` pages.
    fn clean_observation(&self, vm: usize, epoch: usize, q: usize, pool: usize) -> QueryObservation {
        let profile = self.profile(vm, epoch);
        let scale = self.query_scale(vm, epoch, q);
        let hit = profile.hit_fraction(pool);
        QueryObservation {
            demand: profile.demand_at(pool, scale),
            seq_hits: profile.reread_seq * hit * scale,
            random_hits: profile.reread_random * hit * scale,
            touched_pages: profile.working_set_pages,
        }
    }

    /// Runs one clean observation through the noise model (identity when
    /// no injector is configured). The whole-reading sensor fate is drawn
    /// first: a dropout loses the observation, a stale reading replays the
    /// measurement of an earlier epoch (with its own jitter, exactly as it
    /// would have been reported then), and a corruption poisons one
    /// floating-point component with NaN — which the statistics layer
    /// drops, so a corrupted sensor can never feed the drift detector.
    /// Per-component jitter and measurement faults then apply as before.
    fn observe(
        &self,
        vm: usize,
        epoch: usize,
        q: usize,
        clean: QueryObservation,
        pool: usize,
    ) -> Option<QueryObservation> {
        let Some(injector) = &self.noise else {
            return Some(clean);
        };
        match injector.sensor_fault(vm as u64, epoch, q, 4) {
            SensorFault::Dropout => None,
            SensorFault::Stale { age } => {
                let old = epoch.saturating_sub(age);
                let stale = self.clean_observation(vm, old, q, pool);
                Self::jittered(injector, vm, old, q, stale)
            }
            SensorFault::Corrupt { component } => {
                let mut obs = Self::jittered(injector, vm, epoch, q, clean)?;
                match component {
                    0 => obs.demand.cpu_cycles = f64::NAN,
                    1 => obs.seq_hits = f64::NAN,
                    2 => obs.random_hits = f64::NAN,
                    _ => obs.touched_pages = f64::NAN,
                }
                Some(obs)
            }
            SensorFault::Clean => Self::jittered(injector, vm, epoch, q, clean),
        }
    }

    /// Applies per-component jitter and measurement faults to one reading.
    /// A measurement fault loses the whole observation.
    fn jittered(
        injector: &FaultInjector,
        vm: usize,
        epoch: usize,
        q: usize,
        clean: QueryObservation,
    ) -> Option<QueryObservation> {
        // Each observation component is drawn independently through the
        // injector's deterministic stream; `attempt` indexes the component
        // and the breakdown slot selects which jitter knob applies (CPU,
        // sequential-I/O, random-I/O, or write jitter).
        let noisy = |idx: usize, slot: usize, value: f64| -> Result<f64, ProbeFault> {
            let mut breakdown = (0.0, 0.0, 0.0, 0.0);
            match slot {
                0 => breakdown.0 = value,
                1 => breakdown.1 = value,
                2 => breakdown.2 = value,
                _ => breakdown.3 = value,
            }
            injector.measure(vm as u64, epoch, q, idx, breakdown)
        };
        let result: Result<QueryObservation, ProbeFault> = (|| {
            Ok(QueryObservation {
                demand: ResourceDemand {
                    cpu_cycles: noisy(0, 0, clean.demand.cpu_cycles)?,
                    seq_page_reads: noisy(1, 1, clean.demand.seq_page_reads as f64)?
                        .round()
                        .max(0.0) as u64,
                    random_page_reads: noisy(2, 2, clean.demand.random_page_reads as f64)?
                        .round()
                        .max(0.0) as u64,
                    page_writes: noisy(3, 3, clean.demand.page_writes as f64)?
                        .round()
                        .max(0.0) as u64,
                },
                seq_hits: noisy(4, 1, clean.seq_hits)?,
                random_hits: noisy(5, 2, clean.random_hits)?,
                touched_pages: noisy(6, 1, clean.touched_pages)?,
            })
        })();
        result.ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{cpu_heavy, io_heavy};
    use dbvirt_vmm::fault::NoiseModel;

    fn two_vm_drift() -> Scenario {
        Scenario::drifting(
            "test-drift",
            MachineSpec::tiny(),
            vec![cpu_heavy(), io_heavy()],
            5,
            vec![io_heavy(), cpu_heavy()],
            7,
            42,
        )
    }

    #[test]
    fn phase_arithmetic_is_consistent() {
        let s = two_vm_drift();
        assert!(s.validate().is_ok());
        assert_eq!(s.num_vms(), 2);
        assert_eq!(s.total_epochs(), 12);
        assert_eq!(s.phase_of_epoch(0), 0);
        assert_eq!(s.phase_of_epoch(4), 0);
        assert_eq!(s.phase_of_epoch(5), 1);
        assert_eq!(s.phase_of_epoch(11), 1);
        assert_eq!(s.phase_ordinals(), vec![0, 1]);
    }

    #[test]
    fn recurring_phases_reuse_ordinals() {
        let s = Scenario::bursty(
            "bursty",
            MachineSpec::tiny(),
            vec![cpu_heavy()],
            vec![io_heavy()],
            4,
            2,
            2,
            7,
        );
        // baseline, burst, baseline, burst, baseline.
        assert_eq!(s.phase_ordinals(), vec![0, 1, 0, 1, 0]);
    }

    #[test]
    fn epoch_generation_is_deterministic() {
        let s = two_vm_drift().with_variability(0.2);
        let pools = [1000usize, 1000];
        let a = s.epoch_batch(3, &pools).unwrap();
        let b = s.epoch_batch(3, &pools).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.job.queries, y.job.queries);
            assert_eq!(x.observations, y.observations);
        }
        // A different seed produces a different stream.
        let mut other = two_vm_drift().with_variability(0.2);
        other.seed = 43;
        let c = other.epoch_batch(3, &pools).unwrap();
        assert_ne!(a[0].job.queries, c[0].job.queries);
    }

    #[test]
    fn variability_stays_in_range() {
        let s = two_vm_drift().with_variability(0.3);
        for epoch in 0..12 {
            for q in 0..8 {
                let scale = s.query_scale(0, epoch, q);
                assert!((0.7..=1.3).contains(&scale), "scale {scale} out of range");
            }
        }
    }

    #[test]
    fn noise_perturbs_observations_but_never_jobs() {
        let clean = two_vm_drift();
        let noisy = two_vm_drift().with_noise(FaultInjector::new(
            NoiseModel::realistic(0.3),
            99,
        ));
        let pools = [1000usize, 1000];
        for epoch in 0..12 {
            let a = clean.epoch_batch(epoch, &pools).unwrap();
            let b = noisy.epoch_batch(epoch, &pools).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.job.queries, y.job.queries, "ground truth must be clean");
            }
            // The observation streams differ (jitter or dropped probes).
            let differs = a.iter().zip(&b).any(|(x, y)| x.observations != y.observations);
            assert!(differs, "realistic noise should perturb epoch {epoch}");
        }
    }

    #[test]
    fn zoo_scenarios_validate_and_have_the_expected_shape() {
        let machine = MachineSpec::tiny();
        let diurnal = Scenario::diurnal(
            "diurnal",
            machine,
            vec![cpu_heavy(), io_heavy()],
            vec![io_heavy(), cpu_heavy()],
            6,
            2,
            7,
        );
        assert!(diurnal.validate().is_ok());
        assert_eq!(diurnal.total_epochs(), 24);
        assert_eq!(diurnal.phase_ordinals(), vec![0, 1, 0, 1]);

        let crowd = Scenario::flash_crowd(
            "flash",
            machine,
            vec![cpu_heavy(), io_heavy()],
            1,
            4.0,
            4,
            3,
            2,
            2,
            7,
        );
        assert!(crowd.validate().is_ok());
        // calm, spike, 2 decay steps, calm.
        assert_eq!(crowd.phases.len(), 5);
        assert_eq!(crowd.total_epochs(), 4 + 3 + 2 * 2 + 4);
        // The spike quadruples only the crowd VM's arrival rate.
        assert_eq!(
            crowd.phases[1].profiles[1].queries_per_epoch,
            4.0 * io_heavy().queries_per_epoch
        );
        assert_eq!(crowd.phases[1].profiles[0], cpu_heavy());
        // Decay is monotone back toward baseline.
        let rates: Vec<f64> = crowd
            .phases
            .iter()
            .map(|p| p.profiles[1].queries_per_epoch)
            .collect();
        assert!(rates[1] > rates[2] && rates[2] > rates[3] && rates[3] > rates[4]);
        assert_eq!(rates[4], rates[0]);

        let tenants = Scenario::noisy_neighbor(
            "tenants",
            machine,
            io_heavy(),
            cpu_heavy(),
            vec![cpu_heavy(), cpu_heavy()],
            5,
            2,
            7,
        );
        assert!(tenants.validate().is_ok());
        assert_eq!(tenants.num_vms(), 4);
        assert_eq!(tenants.phase_ordinals(), vec![0, 1, 0, 1]);
        // Only the tenant pair changes between phases.
        assert_eq!(tenants.phases[0].profiles[0], tenants.phases[1].profiles[1]);
        assert_eq!(tenants.phases[0].profiles[2], tenants.phases[1].profiles[2]);
        assert_eq!(tenants.phases[0].profiles[3], tenants.phases[1].profiles[3]);

        let correlated = Scenario::correlated_drift(
            "correlated",
            machine,
            vec![cpu_heavy(), cpu_heavy(), io_heavy()],
            vec![io_heavy(), io_heavy(), cpu_heavy()],
            6,
            7,
        );
        assert!(correlated.validate().is_ok());
        assert_eq!(correlated.phase_ordinals(), vec![0, 1, 0]);

        let ramp = Scenario::slow_ramp(
            "ramp",
            machine,
            vec![cpu_heavy(), io_heavy()],
            vec![io_heavy(), cpu_heavy()],
            8,
            2,
            7,
        );
        assert!(ramp.validate().is_ok());
        assert_eq!(ramp.phases.len(), 8);
        assert_eq!(ramp.total_epochs(), 16);
        // Endpoints are exact, the middle is strictly between.
        assert_eq!(ramp.phases[0].profiles[0], cpu_heavy());
        assert_eq!(ramp.phases[7].profiles[0], io_heavy());
        let mid = ramp.phases[4].profiles[0];
        assert!(mid.cpu_cycles < cpu_heavy().cpu_cycles);
        assert!(mid.cpu_cycles > io_heavy().cpu_cycles);
    }

    #[test]
    fn sensor_faults_drop_stale_or_poison_observations_deterministically() {
        let degraded = two_vm_drift().with_noise(FaultInjector::new(
            NoiseModel::sensor_degraded(0.2, 0.2, 3, 0.2),
            99,
        ));
        let pools = [1000usize, 1000];
        let mut dropouts = 0usize;
        let mut poisoned = 0usize;
        let mut stale = 0usize;
        for epoch in 0..12 {
            let noisy = degraded.epoch_batch(epoch, &pools).unwrap();
            let clean = two_vm_drift().epoch_batch(epoch, &pools).unwrap();
            for (vm, (n, c)) in noisy.iter().zip(&clean).enumerate() {
                assert_eq!(n.job.queries, c.job.queries, "ground truth must stay clean");
                for (q, obs) in n.observations.iter().enumerate() {
                    match obs {
                        None => dropouts += 1,
                        Some(o) if [o.demand.cpu_cycles, o.seq_hits, o.random_hits, o.touched_pages]
                            .iter()
                            .any(|v| v.is_nan()) =>
                        {
                            poisoned += 1
                        }
                        Some(o) => {
                            // Sensor-only model: surviving readings are either
                            // bit-exact (clean) or an earlier epoch's reading
                            // (stale).
                            if *o != c.observations[q].unwrap() {
                                let replayed = (1..=3.min(epoch)).any(|age| {
                                    degraded.clean_observation(vm, epoch - age, q, pools[vm]) == *o
                                });
                                assert!(
                                    replayed,
                                    "epoch {epoch} vm {vm} q {q}: reading is neither \
                                     current nor a replay of a recent epoch"
                                );
                                stale += 1;
                            }
                        }
                    }
                }
            }
        }
        assert!(dropouts > 0, "20% dropout must show up across 12 epochs");
        assert!(poisoned > 0, "20% corruption must show up");
        assert!(stale > 0, "20% staleness must show up");
        // Determinism: the same scenario replays bit-identically.
        let again = degraded.epoch_batch(5, &pools).unwrap();
        let first = degraded.epoch_batch(5, &pools).unwrap();
        for (a, b) in again.iter().zip(&first) {
            // NaN-poisoned readings defeat PartialEq; compare the rendered
            // streams instead.
            assert_eq!(format!("{:?}", a.observations), format!("{:?}", b.observations));
        }
    }

    #[test]
    fn malformed_scenarios_are_rejected() {
        let mut s = two_vm_drift();
        s.phases[1].profiles.pop();
        assert!(s.validate().is_err());

        let mut s = two_vm_drift();
        s.phases[0].epochs = 0;
        assert!(s.validate().is_err());

        let s = Scenario::new("empty", MachineSpec::tiny(), vec![], 0);
        assert!(s.validate().is_err());

        let s = two_vm_drift().with_variability(1.5);
        assert!(s.validate().is_err());

        // Pool-count mismatch surfaces as a typed error.
        let s = two_vm_drift();
        assert!(s.epoch_jobs(0, &[1000]).is_err());
    }
}
