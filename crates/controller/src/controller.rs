//! The online control loop.
//!
//! [`run_controller`] drives the `dbvirt-vmm` credit scheduler over the
//! virtual clock, one control epoch at a time:
//!
//! 1. materialize the epoch's jobs from the scenario and run them under
//!    the current allocation ([`co_schedule`], capped mode — the paper's
//!    experimental configuration; since the event-driven rewrite this is
//!    the incremental scheduler, so an epoch costs O(events · log V)
//!    rather than O(events · V));
//! 2. feed each completed query's observation into the per-VM streaming
//!    statistics, which maintain an EWMA profile estimate and a
//!    Page–Hinkley drift detector on an allocation-invariant reference
//!    stream;
//! 3. when drift is detected (and the cooldown has elapsed), re-solve the
//!    design problem from the estimated profiles via a warm-started
//!    [`run_search_cached`] — caches are keyed by the quantized profile
//!    vector, so a recurring workload mix re-solves against cells it
//!    already paid for;
//! 4. apply the recommended allocation only if its predicted benefit over
//!    the decision horizon clears the modeled reconfiguration cost (memory
//!    resize = cache flush, charged in virtual time) plus a hysteresis
//!    margin.
//!
//! The loop is fully deterministic: identical `(scenario, config)` pairs
//! produce bit-identical decision traces at every search parallelism
//! setting, which [`ControllerOutcome::trace_fingerprint`] pins.

use crate::profile::{ProblemTemplate, ProfileCostModel, ProfileKey};
use crate::scenario::Scenario;
use crate::stats::VmStats;
use crate::{ControllerError, DriftConfig};
use dbvirt_core::search::{run_search_cached, CostCache, SearchAlgorithm, SearchConfig};
use dbvirt_core::CostModel;
use dbvirt_telemetry as telemetry;
use dbvirt_vmm::sched::{co_schedule, SchedMode, VmJob};
use dbvirt_vmm::{
    AllocationMatrix, MachineSpec, ResourceVector, SimDuration, SimTime, VirtualMachine,
};
use std::collections::BTreeMap;
use std::sync::Arc;

static TM_EPOCHS: telemetry::Counter = telemetry::Counter::new("controller.epochs");
static TM_DRIFTS: telemetry::Counter = telemetry::Counter::new("controller.drift_detections");
static TM_DECISIONS: telemetry::Counter = telemetry::Counter::new("controller.decisions");
static TM_SWITCHES: telemetry::Counter = telemetry::Counter::new("controller.switches");
static TM_DROPPED: telemetry::Counter =
    telemetry::Counter::new("controller.dropped_observations");

/// Controller tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// Search algorithm used at each decision.
    pub algorithm: SearchAlgorithm,
    /// Share discretization and parallelism for the search.
    pub search: SearchConfig,
    /// Drift-detector parameters (per VM).
    pub drift: DriftConfig,
    /// EWMA factor for the streaming statistics (weight of the newest
    /// observation).
    pub ewma_alpha: f64,
    /// Relative width of the profile-quantization buckets that key warm
    /// cost caches (see [`crate::WorkloadProfile::quantize`]).
    pub quantization_rel: f64,
    /// Hysteresis: the predicted gain must additionally exceed this
    /// fraction of the keep-cost over the horizon before switching.
    pub hysteresis: f64,
    /// Fixed part of the reconfiguration cost (seconds of virtual time);
    /// the variable part is the refill time of every resized buffer pool.
    pub switch_base_seconds: f64,
    /// How many epochs a new allocation is assumed to stay in force when
    /// amortizing the switch cost.
    pub horizon_epochs: usize,
    /// Epochs of pure observation before the first (unconditional,
    /// uncharged) informed placement.
    pub warmup_epochs: usize,
    /// Minimum epochs between consecutive decisions.
    pub cooldown_epochs: usize,
}

impl ControllerConfig {
    /// Defaults tuned for epoch-scale drift: DP search, 25% EWMA, 20%
    /// quantization, 5% hysteresis, 8-epoch horizon.
    pub fn new(search: SearchConfig) -> ControllerConfig {
        ControllerConfig {
            algorithm: SearchAlgorithm::DynamicProgramming,
            search,
            drift: DriftConfig::default(),
            ewma_alpha: 0.25,
            quantization_rel: 0.2,
            hysteresis: 0.05,
            switch_base_seconds: 0.25,
            horizon_epochs: 8,
            warmup_epochs: 2,
            cooldown_epochs: 2,
        }
    }

    /// Validates the knobs.
    pub fn validate(&self) -> Result<(), ControllerError> {
        self.drift.validate()?;
        if !(self.ewma_alpha.is_finite() && self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0) {
            return Err(ControllerError::BadConfig {
                reason: format!("ewma_alpha must be in (0, 1], got {}", self.ewma_alpha),
            });
        }
        if !(self.quantization_rel.is_finite() && self.quantization_rel > 0.0) {
            return Err(ControllerError::BadConfig {
                reason: format!(
                    "quantization_rel must be finite and > 0, got {}",
                    self.quantization_rel
                ),
            });
        }
        if !(self.hysteresis.is_finite() && self.hysteresis >= 0.0) {
            return Err(ControllerError::BadConfig {
                reason: format!("hysteresis must be finite and >= 0, got {}", self.hysteresis),
            });
        }
        if !(self.switch_base_seconds.is_finite() && self.switch_base_seconds >= 0.0) {
            return Err(ControllerError::BadConfig {
                reason: format!(
                    "switch_base_seconds must be finite and >= 0, got {}",
                    self.switch_base_seconds
                ),
            });
        }
        if self.horizon_epochs == 0 {
            return Err(ControllerError::BadConfig {
                reason: "horizon_epochs must be at least 1".to_string(),
            });
        }
        if self.warmup_epochs == 0 {
            return Err(ControllerError::BadConfig {
                reason: "warmup_epochs must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

/// One applied reconfiguration.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchEvent {
    /// Epoch at whose end the switch was applied.
    pub epoch: usize,
    /// Virtual instant after charging the reconfiguration.
    pub time: SimTime,
    /// Modeled reconfiguration cost charged (seconds).
    pub cost_seconds: f64,
    /// The allocation switched to.
    pub allocation: AllocationMatrix,
}

/// The controller's full run record.
#[derive(Debug, Clone)]
pub struct ControllerOutcome {
    /// Allocation in force during each epoch.
    pub allocations: Vec<AllocationMatrix>,
    /// Simulated cost of each epoch (sum of VM makespans, seconds).
    pub epoch_costs: Vec<f64>,
    /// Total cost: epoch costs plus all reconfiguration charges.
    pub total_cost: f64,
    /// Virtual clock at the end of the run.
    pub final_time: SimTime,
    /// Decisions taken (searches run), including the initial placement.
    pub decisions: usize,
    /// Applied reconfigurations (the initial placement is not counted).
    pub switches: Vec<SwitchEvent>,
    /// Drift-detector firings observed.
    pub drift_detections: usize,
    /// Observations lost to measurement faults or degeneracy.
    pub dropped_observations: usize,
    /// The uninformed equal split the run started under.
    pub initial_allocation: AllocationMatrix,
    /// The first informed placement (applied uncharged after warmup), when
    /// the run got far enough to make one.
    pub placement: Option<AllocationMatrix>,
}

impl ControllerOutcome {
    /// FNV-1a fingerprint of the decision trace: switch epochs, times, and
    /// costs, every epoch's allocation shares (bit-exact), and the total.
    /// Two runs with identical scenario and config must produce identical
    /// fingerprints at every search parallelism setting.
    pub fn trace_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(&self.total_cost.to_bits().to_le_bytes());
        eat(&self.final_time.as_micros().to_le_bytes());
        eat(&(self.decisions as u64).to_le_bytes());
        for s in &self.switches {
            eat(&(s.epoch as u64).to_le_bytes());
            eat(&s.time.as_micros().to_le_bytes());
            eat(&s.cost_seconds.to_bits().to_le_bytes());
        }
        for allocation in &self.allocations {
            for row in allocation.rows() {
                for share in row.as_array() {
                    eat(&share.fraction().to_bits().to_le_bytes());
                }
            }
        }
        h
    }
}

/// Modeled cost (in seconds of virtual time) of reconfiguring from `from`
/// to `to`: a fixed base charge plus, for every VM whose memory share
/// changes, the sequential refill time of its *new* buffer pool — resizing
/// a VM's memory flushes its cache, and the re-warm is paid at disk speed.
pub fn switch_cost_seconds(
    machine: MachineSpec,
    from: &AllocationMatrix,
    to: &AllocationMatrix,
    base_seconds: f64,
) -> Result<f64, ControllerError> {
    let mut cost = base_seconds;
    for i in 0..to.num_workloads() {
        if from.row(i).memory() != to.row(i).memory() {
            let vm = VirtualMachine::new(machine, to.row(i))?;
            cost += vm.buffer_pool_pages() as f64 * machine.seq_page_seconds();
        }
    }
    Ok(cost)
}

pub(crate) fn pool_pages(
    machine: MachineSpec,
    allocation: &AllocationMatrix,
) -> Result<Vec<usize>, ControllerError> {
    (0..allocation.num_workloads())
        .map(|i| {
            Ok(VirtualMachine::new(machine, allocation.row(i))?.buffer_pool_pages())
        })
        .collect()
}

/// Runs the control loop over a scenario. `template` supplies the design
/// problem's catalog/plan skeleton (one entry per scenario VM).
pub fn run_controller(
    scenario: &Scenario,
    template: &ProblemTemplate<'_>,
    config: &ControllerConfig,
) -> Result<ControllerOutcome, ControllerError> {
    scenario.validate()?;
    config.validate()?;
    let n = scenario.num_vms();
    if template.vms.len() != n {
        return Err(ControllerError::BadScenario {
            reason: format!("template has {} VMs, scenario has {n}", template.vms.len()),
        });
    }
    let machine = scenario.machine;
    let mut run_span = telemetry::span("controller.run");
    run_span.set_attr("scenario", scenario.name.clone());
    run_span.set_attr("epochs", scenario.total_epochs());

    let initial = AllocationMatrix::new(
        (0..n)
            .map(|_| {
                ResourceVector::from_fractions(
                    1.0 / n as f64,
                    1.0 / n as f64,
                    config.search.disk_share,
                )
            })
            .collect::<Result<Vec<_>, _>>()?,
    )?;
    let mut current = initial.clone();

    let mut stats: Vec<VmStats> = (0..n)
        .map(|_| VmStats::new(config.ewma_alpha, machine, config.drift))
        .collect();
    // Warm what-if caches, one per quantized profile vector: a recurring
    // workload mix maps to the same key and re-solves against cells an
    // earlier decision already evaluated.
    let mut caches: BTreeMap<Vec<ProfileKey>, Arc<CostCache>> = BTreeMap::new();
    let problem = template.problem()?;

    let mut clock = SimTime::ZERO;
    let mut allocations = Vec::with_capacity(scenario.total_epochs());
    let mut epoch_costs = Vec::with_capacity(scenario.total_epochs());
    let mut total_cost = 0.0;
    let mut decisions = 0usize;
    let mut switches = Vec::new();
    let mut drift_detections = 0usize;
    let mut dropped = 0usize;
    let mut placement: Option<AllocationMatrix> = None;
    let mut last_decision_epoch: Option<usize> = None;

    for epoch in 0..scenario.total_epochs() {
        let mut epoch_span = telemetry::span("controller.epoch");
        epoch_span.set_attr("epoch", epoch);
        TM_EPOCHS.add(1);

        // Run the epoch's ground truth under the allocation in force.
        let pools = pool_pages(machine, &current)?;
        let batch = scenario.epoch_batch(epoch, &pools)?;
        let jobs: Vec<VmJob> = batch.iter().map(|b| b.job.clone()).collect();
        let outcomes = co_schedule(machine, &current, &jobs, SchedMode::Capped)?;
        let epoch_cost: f64 = outcomes.iter().map(|o| o.makespan().as_secs_f64()).sum();
        let advance = outcomes
            .iter()
            .map(|o| o.makespan())
            .max()
            .unwrap_or(SimDuration::ZERO);
        clock = clock
            .checked_add(advance)
            .ok_or_else(|| ControllerError::BadScenario {
                reason: "virtual clock overflowed".to_string(),
            })?;
        telemetry::advance_virtual_micros(advance.as_micros());
        allocations.push(current.clone());
        epoch_costs.push(epoch_cost);
        total_cost += epoch_cost;

        // Absorb the epoch's observations.
        let mut drifted = false;
        for (vm, vm_epoch) in batch.iter().enumerate() {
            for obs in &vm_epoch.observations {
                match obs {
                    Some(o) => match stats[vm].observe(o, pools[vm]) {
                        Ok(fired) => {
                            if fired {
                                drifted = true;
                            }
                        }
                        Err(()) => dropped += 1,
                    },
                    None => dropped += 1,
                }
            }
            stats[vm].end_epoch();
        }
        if drifted {
            drift_detections += 1;
            TM_DRIFTS.add(1);
        }

        // Decide: first informed placement once warmup completes, then
        // drift-triggered (and cooled-down) re-decisions.
        let warmed = epoch + 1 >= config.warmup_epochs;
        let cooled = last_decision_epoch.map_or(true, |d| epoch - d >= config.cooldown_epochs);
        let should_decide = warmed && (placement.is_none() || (drifted && cooled));
        let profiles: Option<Vec<_>> = stats.iter().map(|s| s.profile()).collect();
        if let (true, Some(profiles)) = (should_decide, profiles) {
            let mut decide_span = telemetry::span("controller.decide");
            decide_span.set_attr("epoch", epoch);
            decisions += 1;
            TM_DECISIONS.add(1);

            let key: Vec<ProfileKey> = profiles
                .iter()
                .map(|p| p.quantize(config.quantization_rel))
                .collect();
            let cache = caches
                .entry(key)
                .or_insert_with(|| Arc::new(CostCache::new()));
            let model = ProfileCostModel {
                machine,
                profiles: profiles.clone(),
            };
            let rec =
                run_search_cached(config.algorithm, &problem, &model, config.search, cache)?;

            if placement.is_none() {
                // Initial informed placement: unconditional and uncharged
                // (the run starts with VM creation either way, mirroring
                // run_dynamic's phase 0 and keeping regret accounting
                // apples-to-apples with the oracle's free placement).
                placement = Some(rec.allocation.clone());
                current = rec.allocation.clone();
            } else if rec.allocation != current {
                let keep_cost: f64 = (0..n)
                    .map(|w| model.cost(&problem, w, current.row(w)))
                    .sum::<Result<f64, _>>()?;
                let horizon = config.horizon_epochs as f64;
                let switch_cost = switch_cost_seconds(
                    machine,
                    &current,
                    &rec.allocation,
                    config.switch_base_seconds,
                )?;
                let gain = (keep_cost - rec.objective) * horizon;
                if gain > switch_cost + config.hysteresis * keep_cost * horizon {
                    let charge =
                        SimDuration::try_from_secs_f64(switch_cost).map_err(|_| {
                            ControllerError::BadConfig {
                                reason: format!(
                                    "switch cost {switch_cost} seconds is not representable"
                                ),
                            }
                        })?;
                    clock = clock.checked_add(charge).ok_or_else(|| {
                        ControllerError::BadScenario {
                            reason: "virtual clock overflowed".to_string(),
                        }
                    })?;
                    telemetry::advance_virtual_micros(charge.as_micros());
                    total_cost += switch_cost;
                    current = rec.allocation.clone();
                    switches.push(SwitchEvent {
                        epoch,
                        time: clock,
                        cost_seconds: switch_cost,
                        allocation: rec.allocation.clone(),
                    });
                    TM_SWITCHES.add(1);
                }
            }
            last_decision_epoch = Some(epoch);
            // One detection, one decision: start fresh either way so the
            // same change is not acted on twice.
            for s in &mut stats {
                s.reset_detector();
            }
        }
    }

    TM_DROPPED.add(dropped as u64);
    run_span.set_attr("switches", switches.len());
    run_span.set_attr("total_cost_seconds", total_cost);

    Ok(ControllerOutcome {
        allocations,
        epoch_costs,
        total_cost,
        final_time: clock,
        decisions,
        switches,
        drift_detections,
        dropped_observations: dropped,
        initial_allocation: initial,
        placement,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{cpu_heavy, io_heavy};
    use crate::testkit::{template, tiny_db};

    fn config(parallelism: usize) -> ControllerConfig {
        ControllerConfig::new(SearchConfig::for_workloads(8, 2).with_parallelism(parallelism))
    }

    fn stationary() -> Scenario {
        Scenario::stationary(
            "stationary",
            MachineSpec::tiny(),
            vec![cpu_heavy(), io_heavy()],
            16,
            11,
        )
    }

    fn drifting() -> Scenario {
        Scenario::drifting(
            "drifting",
            MachineSpec::tiny(),
            vec![cpu_heavy(), io_heavy()],
            12,
            vec![io_heavy(), cpu_heavy()],
            12,
            11,
        )
    }

    #[test]
    fn stationary_scenario_places_once_and_never_switches() {
        let db = tiny_db();
        let template = template(&db, 2, MachineSpec::tiny());
        let out = run_controller(&stationary(), &template, &config(1)).unwrap();
        assert_eq!(out.allocations.len(), 16);
        assert!(out.placement.is_some(), "warmup must end in a placement");
        assert!(out.switches.is_empty(), "no drift, no reconfiguration");
        assert_eq!(out.decisions, 1, "exactly the placement decision");
        // The informed placement skews resources toward the I/O-heavy VM.
        let placed = out.placement.unwrap();
        assert!(placed.row(1).memory().fraction() > placed.row(0).memory().fraction());
    }

    #[test]
    fn drifting_scenario_triggers_a_reallocation_after_the_flip() {
        let db = tiny_db();
        let template = template(&db, 2, MachineSpec::tiny());
        let out = run_controller(&drifting(), &template, &config(1)).unwrap();
        assert!(
            !out.switches.is_empty(),
            "the phase flip must trigger a switch (drift detections: {})",
            out.drift_detections
        );
        assert!(out.drift_detections >= 1);
        // Every switch happens after the flip at epoch 12, and the last
        // one mirrors the placement (resources follow the I/O load).
        for s in &out.switches {
            assert!(s.epoch >= 12, "spurious switch at epoch {}", s.epoch);
            assert!(s.cost_seconds > 0.0);
        }
        let last = &out.switches.last().unwrap().allocation;
        assert!(last.row(0).memory().fraction() > last.row(1).memory().fraction());
    }

    #[test]
    fn decision_trace_is_bit_identical_at_every_parallelism() {
        let db = tiny_db();
        let template = template(&db, 2, MachineSpec::tiny());
        let base = run_controller(&drifting(), &template, &config(1)).unwrap();
        for parallelism in [2, 4, 0] {
            let out = run_controller(&drifting(), &template, &config(parallelism)).unwrap();
            assert_eq!(
                out.trace_fingerprint(),
                base.trace_fingerprint(),
                "trace diverged at parallelism {parallelism}"
            );
            assert_eq!(out.total_cost.to_bits(), base.total_cost.to_bits());
            assert_eq!(out.final_time, base.final_time);
        }
    }

    #[test]
    fn switch_cost_charges_only_resized_pools() {
        let machine = MachineSpec::tiny();
        let a = AllocationMatrix::equal_split(2).unwrap();
        // Same memory, different CPU: only the base charge applies.
        let cpu_only = AllocationMatrix::new(vec![
            ResourceVector::from_fractions(0.75, 0.5, 0.5).unwrap(),
            ResourceVector::from_fractions(0.25, 0.5, 0.5).unwrap(),
        ])
        .unwrap();
        let base = 0.25;
        let cost = switch_cost_seconds(machine, &a, &cpu_only, base).unwrap();
        assert_eq!(cost, base);
        // A memory move pays the refill of every resized pool.
        let mem_move = AllocationMatrix::new(vec![
            ResourceVector::from_fractions(0.5, 0.75, 0.5).unwrap(),
            ResourceVector::from_fractions(0.5, 0.25, 0.5).unwrap(),
        ])
        .unwrap();
        let cost = switch_cost_seconds(machine, &a, &mem_move, base).unwrap();
        let refill: f64 = (0..2)
            .map(|i| {
                VirtualMachine::new(machine, mem_move.row(i))
                    .unwrap()
                    .buffer_pool_pages() as f64
                    * machine.seq_page_seconds()
            })
            .sum();
        assert!((cost - (base + refill)).abs() < 1e-12);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let db = tiny_db();
        let template = template(&db, 2, MachineSpec::tiny());
        let mut bad = config(1);
        bad.ewma_alpha = 0.0;
        assert!(run_controller(&stationary(), &template, &bad).is_err());
        let mut bad = config(1);
        bad.hysteresis = f64::NAN;
        assert!(run_controller(&stationary(), &template, &bad).is_err());
        let mut bad = config(1);
        bad.horizon_epochs = 0;
        assert!(run_controller(&stationary(), &template, &bad).is_err());
        // Template/scenario VM-count mismatch.
        let template1 = template_of_one(&db);
        assert!(run_controller(&stationary(), &template1, &config(1)).is_err());
    }

    fn template_of_one(db: &dbvirt_engine::Database) -> ProblemTemplate<'_> {
        template(db, 1, MachineSpec::tiny())
    }
}
