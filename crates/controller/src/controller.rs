//! The online control loop.
//!
//! [`run_controller`] drives the `dbvirt-vmm` credit scheduler over the
//! virtual clock, one control epoch at a time:
//!
//! 1. materialize the epoch's jobs from the scenario and run them under
//!    the current allocation ([`co_schedule`], capped mode — the paper's
//!    experimental configuration; since the event-driven rewrite this is
//!    the incremental scheduler, so an epoch costs O(events · log V)
//!    rather than O(events · V));
//! 2. feed each completed query's observation into the per-VM streaming
//!    statistics, which maintain an EWMA profile estimate and a
//!    Page–Hinkley drift detector on an allocation-invariant reference
//!    stream;
//! 3. when drift is detected (and the cooldown has elapsed), re-solve the
//!    design problem from the estimated profiles via a warm-started
//!    [`run_search_cached`] — caches are keyed by the quantized profile
//!    vector, so a recurring workload mix re-solves against cells it
//!    already paid for;
//! 4. apply the recommended allocation only if its predicted benefit over
//!    the decision horizon clears the modeled reconfiguration cost (memory
//!    resize = cache flush, charged in virtual time) plus a hysteresis
//!    margin.
//!
//! The loop is fully deterministic: identical `(scenario, config)` pairs
//! produce bit-identical decision traces at every search parallelism
//! setting, which [`ControllerOutcome::trace_fingerprint`] pins.

use crate::governor::SwitchGovernor;
use crate::health::ControllerHealth;
use crate::profile::{ProblemTemplate, ProfileCostModel, ProfileKey, WorkloadProfile};
use crate::scenario::Scenario;
use crate::stats::VmStats;
use crate::{ControllerError, DriftConfig};
use dbvirt_core::search::{run_search_cached, CostCache, SearchAlgorithm, SearchConfig};
use dbvirt_core::{CoreError, CostModel, DesignProblem};
use dbvirt_telemetry as telemetry;
use dbvirt_vmm::sched::{co_schedule, SchedMode, VmJob};
use dbvirt_vmm::{
    AllocationMatrix, MachineSpec, ResourceVector, SimDuration, SimTime, VirtualMachine,
};
use std::collections::BTreeMap;
use std::sync::Arc;

static TM_EPOCHS: telemetry::Counter = telemetry::Counter::new("controller.epochs");
static TM_DRIFTS: telemetry::Counter = telemetry::Counter::new("controller.drift_detections");
static TM_DECISIONS: telemetry::Counter = telemetry::Counter::new("controller.decisions");
static TM_SWITCHES: telemetry::Counter = telemetry::Counter::new("controller.switches");
static TM_DROPPED: telemetry::Counter =
    telemetry::Counter::new("controller.dropped_observations");
static TM_VETOES: telemetry::Counter = telemetry::Counter::new("controller.governor_vetoes");
static TM_PRESWITCHES: telemetry::Counter =
    telemetry::Counter::new("controller.prescheduled_switches");
static TM_LOCALIZED: telemetry::Counter = telemetry::Counter::new("controller.localized_solves");
static TM_HILL_CLIMBS: telemetry::Counter =
    telemetry::Counter::new("controller.hill_climb_moves");

/// Controller tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// Search algorithm used at each decision.
    pub algorithm: SearchAlgorithm,
    /// Share discretization and parallelism for the search.
    pub search: SearchConfig,
    /// Drift-detector parameters (per VM).
    pub drift: DriftConfig,
    /// EWMA factor for the streaming statistics (weight of the newest
    /// observation).
    pub ewma_alpha: f64,
    /// Relative width of the profile-quantization buckets that key warm
    /// cost caches (see [`crate::WorkloadProfile::quantize`]).
    pub quantization_rel: f64,
    /// Hysteresis: the predicted gain must additionally exceed this
    /// fraction of the keep-cost over the horizon before switching.
    pub hysteresis: f64,
    /// Fixed part of the reconfiguration cost (seconds of virtual time);
    /// the variable part is the refill time of every resized buffer pool.
    pub switch_base_seconds: f64,
    /// How many epochs a new allocation is assumed to stay in force when
    /// amortizing the switch cost.
    pub horizon_epochs: usize,
    /// Epochs of pure observation before the first (unconditional,
    /// uncharged) informed placement.
    pub warmup_epochs: usize,
    /// Minimum epochs between consecutive decisions.
    pub cooldown_epochs: usize,
}

impl ControllerConfig {
    /// Defaults tuned for epoch-scale drift: DP search, 25% EWMA, 20%
    /// quantization, 5% hysteresis, 8-epoch horizon.
    pub fn new(search: SearchConfig) -> ControllerConfig {
        ControllerConfig {
            algorithm: SearchAlgorithm::DynamicProgramming,
            search,
            drift: DriftConfig::default(),
            ewma_alpha: 0.25,
            quantization_rel: 0.2,
            hysteresis: 0.05,
            switch_base_seconds: 0.25,
            horizon_epochs: 8,
            warmup_epochs: 2,
            cooldown_epochs: 2,
        }
    }

    /// Validates the knobs.
    pub fn validate(&self) -> Result<(), ControllerError> {
        self.drift.validate()?;
        if !(self.ewma_alpha.is_finite() && self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0) {
            return Err(ControllerError::BadConfig {
                reason: format!("ewma_alpha must be in (0, 1], got {}", self.ewma_alpha),
            });
        }
        if !(self.quantization_rel.is_finite() && self.quantization_rel > 0.0) {
            return Err(ControllerError::BadConfig {
                reason: format!(
                    "quantization_rel must be finite and > 0, got {}",
                    self.quantization_rel
                ),
            });
        }
        if !(self.hysteresis.is_finite() && self.hysteresis >= 0.0) {
            return Err(ControllerError::BadConfig {
                reason: format!("hysteresis must be finite and >= 0, got {}", self.hysteresis),
            });
        }
        if !(self.switch_base_seconds.is_finite() && self.switch_base_seconds >= 0.0) {
            return Err(ControllerError::BadConfig {
                reason: format!(
                    "switch_base_seconds must be finite and >= 0, got {}",
                    self.switch_base_seconds
                ),
            });
        }
        if self.horizon_epochs == 0 {
            return Err(ControllerError::BadConfig {
                reason: "horizon_epochs must be at least 1".to_string(),
            });
        }
        if self.warmup_epochs == 0 {
            return Err(ControllerError::BadConfig {
                reason: "warmup_epochs must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

/// One applied reconfiguration.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchEvent {
    /// Epoch at whose end the switch was applied.
    pub epoch: usize,
    /// Virtual instant after charging the reconfiguration.
    pub time: SimTime,
    /// Modeled reconfiguration cost charged (seconds).
    pub cost_seconds: f64,
    /// The allocation switched to.
    pub allocation: AllocationMatrix,
}

/// The controller's full run record.
#[derive(Debug, Clone)]
pub struct ControllerOutcome {
    /// Allocation in force during each epoch.
    pub allocations: Vec<AllocationMatrix>,
    /// Simulated cost of each epoch (sum of VM makespans, seconds).
    pub epoch_costs: Vec<f64>,
    /// Total cost: epoch costs plus all reconfiguration charges.
    pub total_cost: f64,
    /// Virtual clock at the end of the run.
    pub final_time: SimTime,
    /// Decisions taken (searches run), including the initial placement.
    pub decisions: usize,
    /// Applied reconfigurations (the initial placement is not counted).
    pub switches: Vec<SwitchEvent>,
    /// Drift-detector firings observed.
    pub drift_detections: usize,
    /// Observations lost to measurement faults or degeneracy.
    pub dropped_observations: usize,
    /// The uninformed equal split the run started under.
    pub initial_allocation: AllocationMatrix,
    /// The first informed placement (applied uncharged after warmup), when
    /// the run got far enough to make one.
    pub placement: Option<AllocationMatrix>,
    /// Diagnostic health report: sensor trouble absorbed, governor
    /// activity, localization and hill-climb counts. Deliberately **not**
    /// part of [`ControllerOutcome::trace_fingerprint`] — it describes the
    /// run, it is not the decision trace.
    pub health: ControllerHealth,
}

impl ControllerOutcome {
    /// FNV-1a fingerprint of the decision trace: switch epochs, times, and
    /// costs, every epoch's allocation shares (bit-exact), and the total.
    /// Two runs with identical scenario and config must produce identical
    /// fingerprints at every search parallelism setting.
    pub fn trace_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(&self.total_cost.to_bits().to_le_bytes());
        eat(&self.final_time.as_micros().to_le_bytes());
        eat(&(self.decisions as u64).to_le_bytes());
        for s in &self.switches {
            eat(&(s.epoch as u64).to_le_bytes());
            eat(&s.time.as_micros().to_le_bytes());
            eat(&s.cost_seconds.to_bits().to_le_bytes());
        }
        for allocation in &self.allocations {
            for row in allocation.rows() {
                for share in row.as_array() {
                    eat(&share.fraction().to_bits().to_le_bytes());
                }
            }
        }
        h
    }
}

/// Sequential refill time of the buffer pool a VM would run with at
/// `shares` on `machine`: every page of the (new) pool re-read at full-disk
/// sequential speed. This is the variable part of every reconfiguration
/// charge — resizing a VM's memory flushes its cache, and the re-warm is
/// paid at disk speed. `dbvirt-fleet` reuses this same pricing for
/// cross-machine migrations, so fleet placement churn is charged exactly
/// like the controller charges in-place resizes.
pub fn pool_refill_seconds(
    machine: MachineSpec,
    shares: ResourceVector,
) -> Result<f64, ControllerError> {
    let vm = VirtualMachine::new(machine, shares)?;
    Ok(vm.buffer_pool_pages() as f64 * machine.seq_page_seconds())
}

/// Modeled cost (in seconds of virtual time) of reconfiguring from `from`
/// to `to`: a fixed base charge plus, for every VM whose memory share
/// changes, the sequential refill time of its *new* buffer pool (see
/// [`pool_refill_seconds`]).
pub fn switch_cost_seconds(
    machine: MachineSpec,
    from: &AllocationMatrix,
    to: &AllocationMatrix,
    base_seconds: f64,
) -> Result<f64, ControllerError> {
    let mut cost = base_seconds;
    for i in 0..to.num_workloads() {
        if from.row(i).memory() != to.row(i).memory() {
            cost += pool_refill_seconds(machine, to.row(i))?;
        }
    }
    Ok(cost)
}

pub(crate) fn pool_pages(
    machine: MachineSpec,
    allocation: &AllocationMatrix,
) -> Result<Vec<usize>, ControllerError> {
    (0..allocation.num_workloads())
        .map(|i| {
            Ok(VirtualMachine::new(machine, allocation.row(i))?.buffer_pool_pages())
        })
        .collect()
}

/// Charges a reconfiguration to the virtual clock and the cost total.
fn charge_switch(
    clock: &mut SimTime,
    total_cost: &mut f64,
    switch_cost: f64,
) -> Result<(), ControllerError> {
    let charge =
        SimDuration::try_from_secs_f64(switch_cost).map_err(|_| ControllerError::BadConfig {
            reason: format!("switch cost {switch_cost} seconds is not representable"),
        })?;
    *clock = clock
        .checked_add(charge)
        .ok_or_else(|| ControllerError::BadScenario {
            reason: "virtual clock overflowed".to_string(),
        })?;
    telemetry::advance_virtual_micros(charge.as_micros());
    *total_cost += switch_cost;
    Ok(())
}

/// The whole-machine units a share corresponds to, if it sits exactly on
/// the search grid.
fn share_units(fraction: f64, units: u32) -> Option<u32> {
    let u = fraction * units as f64;
    if (u - u.round()).abs() < 1e-9 {
        Some(u.round() as u32)
    } else {
        None
    }
}

/// Attempts a localized re-solve: search only the drifted VMs' shares,
/// with every other VM pinned at its current allocation and the search
/// budgets reduced to what the pinned VMs leave free. Returns the
/// assembled full allocation plus the subset's keep-cost and solved
/// objective, or `None` when the sub-problem is infeasible (pinned shares
/// off the unit grid, or budgets below the per-VM minimum) and the caller
/// must fall back to a full solve.
fn localized_solve<'a>(
    template: &ProblemTemplate<'a>,
    config: &ControllerConfig,
    current: &AllocationMatrix,
    profiles: &[WorkloadProfile],
    drifted: &[usize],
    caches: &mut BTreeMap<Vec<ProfileKey>, Arc<CostCache>>,
) -> Result<Option<(AllocationMatrix, f64, f64)>, ControllerError> {
    let machine = template.machine;
    let units = config.search.units;
    let n = current.num_workloads();
    let mut pinned_cpu = 0u32;
    let mut pinned_mem = 0u32;
    for i in (0..n).filter(|i| !drifted.contains(i)) {
        let (Some(cpu), Some(mem)) = (
            share_units(current.row(i).cpu().fraction(), units),
            share_units(current.row(i).memory().fraction(), units),
        ) else {
            return Ok(None);
        };
        pinned_cpu += cpu;
        pinned_mem += mem;
    }
    let (Some(cpu_budget), Some(mem_budget)) =
        (units.checked_sub(pinned_cpu), units.checked_sub(pinned_mem))
    else {
        return Ok(None);
    };
    let k = drifted.len() as u32;
    if cpu_budget < config.search.min_units * k || mem_budget < config.search.min_units * k {
        return Ok(None);
    }

    let sub_problem = template.subset_problem(drifted)?;
    let sub_profiles: Vec<WorkloadProfile> = drifted.iter().map(|&i| profiles[i]).collect();
    // Subset cache keys never collide with full-problem keys: the key is
    // the quantized profile vector and a subset is strictly shorter. Two
    // different subsets with the same quantized profiles soundly share a
    // cache — cell costs depend only on the profile and the shares, never
    // on the budgets.
    let key: Vec<ProfileKey> = sub_profiles
        .iter()
        .map(|p| p.quantize(config.quantization_rel))
        .collect();
    let cache = caches
        .entry(key)
        .or_insert_with(|| Arc::new(CostCache::new()));
    let model = ProfileCostModel {
        machine,
        profiles: sub_profiles,
    };
    let sub_config = config.search.with_budgets(cpu_budget, mem_budget);
    let rec = run_search_cached(config.algorithm, &sub_problem, &model, sub_config, cache)?;

    let keep: f64 = drifted
        .iter()
        .enumerate()
        .map(|(j, &i)| model.cost(&sub_problem, j, current.row(i)))
        .sum::<Result<f64, _>>()?;
    let mut rows: Vec<ResourceVector> = (0..n).map(|i| current.row(i)).collect();
    for (j, &i) in drifted.iter().enumerate() {
        rows[i] = rec.allocation.row(j);
    }
    Ok(Some((AllocationMatrix::new(rows)?, keep, rec.objective)))
}

/// Looks for the best single-unit share transfer that improves the modeled
/// cost of the current profiles enough to clear the switch gate — the
/// quiet-epoch hill climb. Returns the candidate allocation and its
/// reconfiguration cost, or `None` when no transfer passes (including when
/// the current allocation is off the unit grid).
fn hill_climb_move(
    problem: &dbvirt_core::DesignProblem<'_>,
    config: &ControllerConfig,
    machine: MachineSpec,
    current: &AllocationMatrix,
    profiles: &[WorkloadProfile],
    horizon: f64,
) -> Result<Option<(AllocationMatrix, f64)>, ControllerError> {
    let units = config.search.units;
    let min = config.search.min_units;
    let n = current.num_workloads();
    let mut cpu = Vec::with_capacity(n);
    let mut mem = Vec::with_capacity(n);
    for i in 0..n {
        let (Some(c), Some(m)) = (
            share_units(current.row(i).cpu().fraction(), units),
            share_units(current.row(i).memory().fraction(), units),
        ) else {
            return Ok(None);
        };
        cpu.push(c);
        mem.push(m);
    }
    let model = ProfileCostModel {
        machine,
        profiles: profiles.to_vec(),
    };
    let row = |c: u32, m: u32, disk: f64| -> Result<ResourceVector, ControllerError> {
        Ok(ResourceVector::from_fractions(
            c as f64 / units as f64,
            m as f64 / units as f64,
            disk,
        )?)
    };
    let cost_of = |rows: &[ResourceVector]| -> Result<f64, ControllerError> {
        let mut total = 0.0;
        for (w, r) in rows.iter().enumerate() {
            total += model.cost(problem, w, *r)?;
        }
        Ok(total)
    };
    let current_rows: Vec<ResourceVector> = (0..n).map(|i| current.row(i)).collect();
    let current_cost = cost_of(&current_rows)?;

    let mut best: Option<(f64, Vec<ResourceVector>)> = None;
    for donor in 0..n {
        for recipient in 0..n {
            if donor == recipient {
                continue;
            }
            for resource in 0..2usize {
                let pool = if resource == 0 { &cpu } else { &mem };
                if pool[donor] <= min {
                    continue;
                }
                let mut c = cpu.clone();
                let mut m = mem.clone();
                if resource == 0 {
                    c[donor] -= 1;
                    c[recipient] += 1;
                } else {
                    m[donor] -= 1;
                    m[recipient] += 1;
                }
                let mut rows = Vec::with_capacity(n);
                for i in 0..n {
                    rows.push(row(c[i], m[i], current.row(i).disk().fraction())?);
                }
                let cost = cost_of(&rows)?;
                // Strict improvement with a deterministic first-best
                // tie-break (lowest donor, recipient, CPU before memory).
                if cost < current_cost - 1e-12
                    && best.as_ref().is_none_or(|(b, _)| cost < *b)
                {
                    best = Some((cost, rows));
                }
            }
        }
    }
    let Some((best_cost, rows)) = best else {
        return Ok(None);
    };
    let candidate = AllocationMatrix::new(rows)?;
    let switch_cost =
        switch_cost_seconds(machine, current, &candidate, config.switch_base_seconds)?;
    let gain = (current_cost - best_cost) * horizon;
    if gain > switch_cost + config.hysteresis * current_cost * horizon {
        Ok(Some((candidate, switch_cost)))
    } else {
        Ok(None)
    }
}

/// Prices an allocation under both sides of a predicted regime boundary:
/// the sum of the outgoing and incoming regime-pure snapshot models. Over
/// one alternation cycle a fixed allocation serves both phases, so the
/// pair optimum is the allocation minimizing the cycle's total cost — for
/// genuinely conflicting phases that is a compromise no single-phase
/// solve would pick, and the one allocation that never needs switching
/// away from while the alternation holds.
struct PairCostModel {
    outgoing: ProfileCostModel,
    incoming: ProfileCostModel,
}

impl CostModel for PairCostModel {
    fn cost(
        &self,
        problem: &DesignProblem<'_>,
        w_idx: usize,
        shares: ResourceVector,
    ) -> Result<f64, CoreError> {
        Ok(self.outgoing.cost(problem, w_idx, shares)?
            + self.incoming.cost(problem, w_idx, shares)?)
    }
}

/// Runs the control loop over a scenario. `template` supplies the design
/// problem's catalog/plan skeleton (one entry per scenario VM).
pub fn run_controller(
    scenario: &Scenario,
    template: &ProblemTemplate<'_>,
    config: &ControllerConfig,
) -> Result<ControllerOutcome, ControllerError> {
    scenario.validate()?;
    config.validate()?;
    let n = scenario.num_vms();
    if template.vms.len() != n {
        return Err(ControllerError::BadScenario {
            reason: format!("template has {} VMs, scenario has {n}", template.vms.len()),
        });
    }
    let machine = scenario.machine;
    let mut run_span = telemetry::span("controller.run");
    run_span.set_attr("scenario", scenario.name.clone());
    run_span.set_attr("epochs", scenario.total_epochs());

    let initial = AllocationMatrix::new(
        (0..n)
            .map(|_| {
                ResourceVector::from_fractions(
                    1.0 / n as f64,
                    1.0 / n as f64,
                    config.search.disk_share,
                )
            })
            .collect::<Result<Vec<_>, _>>()?,
    )?;
    let mut current = initial.clone();

    let mut stats: Vec<VmStats> = (0..n)
        .map(|_| VmStats::new(config.ewma_alpha, machine, config.drift))
        .collect();
    // Warm what-if caches, one per quantized profile vector: a recurring
    // workload mix maps to the same key and re-solves against cells an
    // earlier decision already evaluated.
    let mut caches: BTreeMap<Vec<ProfileKey>, Arc<CostCache>> = BTreeMap::new();
    // Pre-switch solves price pairs of regime-pure snapshot profiles, not
    // the blended EWMA estimate. Cached cell costs carry no model
    // identity, so the two families must never share a cache — the pair
    // keys are twice the length of the reactive keys, which makes
    // collision impossible by construction.
    let mut snapshot_caches: BTreeMap<Vec<ProfileKey>, Arc<CostCache>> = BTreeMap::new();
    let problem = template.problem()?;

    let mut clock = SimTime::ZERO;
    let mut allocations = Vec::with_capacity(scenario.total_epochs());
    let mut epoch_costs = Vec::with_capacity(scenario.total_epochs());
    let mut total_cost = 0.0;
    let mut decisions = 0usize;
    let mut switches = Vec::new();
    let mut drift_detections = 0usize;
    let mut dropped = 0usize;
    let mut placement: Option<AllocationMatrix> = None;
    let mut last_decision_epoch: Option<usize> = None;
    let mut governor = SwitchGovernor::new();
    let mut governor_vetoes = 0usize;
    let mut prescheduled = 0usize;
    let mut localized_solves = 0usize;
    let mut hill_climb_moves = 0usize;

    for epoch in 0..scenario.total_epochs() {
        let mut epoch_span = telemetry::span("controller.epoch");
        epoch_span.set_attr("epoch", epoch);
        TM_EPOCHS.add(1);

        // Run the epoch's ground truth under the allocation in force.
        let pools = pool_pages(machine, &current)?;
        let batch = scenario.epoch_batch(epoch, &pools)?;
        let jobs: Vec<VmJob> = batch.iter().map(|b| b.job.clone()).collect();
        let outcomes = co_schedule(machine, &current, &jobs, SchedMode::Capped)?;
        let epoch_cost: f64 = outcomes.iter().map(|o| o.makespan().as_secs_f64()).sum();
        let advance = outcomes
            .iter()
            .map(|o| o.makespan())
            .max()
            .unwrap_or(SimDuration::ZERO);
        clock = clock
            .checked_add(advance)
            .ok_or_else(|| ControllerError::BadScenario {
                reason: "virtual clock overflowed".to_string(),
            })?;
        telemetry::advance_virtual_micros(advance.as_micros());
        allocations.push(current.clone());
        epoch_costs.push(epoch_cost);
        total_cost += epoch_cost;

        // Absorb the epoch's observations, tracking which VMs drifted.
        let mut fired_vms = vec![false; n];
        for (vm, vm_epoch) in batch.iter().enumerate() {
            for obs in &vm_epoch.observations {
                match obs {
                    Some(o) => match stats[vm].observe(o, pools[vm]) {
                        Ok(fired) => {
                            if fired {
                                fired_vms[vm] = true;
                            }
                        }
                        Err(()) => dropped += 1,
                    },
                    None => dropped += 1,
                }
            }
        }
        let snapshots: Vec<Option<WorkloadProfile>> =
            stats.iter_mut().map(|s| s.end_epoch()).collect();
        let drifted = fired_vms.iter().any(|&f| f);
        if drifted {
            drift_detections += 1;
            TM_DRIFTS.add(1);
        }

        // Feed the governor this epoch's regime snapshot. `None` when any
        // VM closed the epoch without a usable observation — sensor
        // silence is not evidence of a regime change.
        let regime_snapshot: Option<(Vec<ProfileKey>, Vec<WorkloadProfile>)> = snapshots
            .iter()
            .map(|s| {
                s.as_ref()
                    .map(|p| (p.quantize(config.quantization_rel), *p))
            })
            .collect::<Option<Vec<_>>>()
            .map(|pairs| pairs.into_iter().unzip());
        let verdict = governor.observe_epoch(epoch, regime_snapshot);

        let warmed = epoch + 1 >= config.warmup_epochs;
        let cooled = last_decision_epoch.map_or(true, |d| epoch - d >= config.cooldown_epochs);

        // A confirmed pre-switch prediction explains this epoch's drift:
        // the controller already holds the successor regime's allocation,
        // so the governor refuses the redundant re-solve and the detectors
        // restart for the new regime.
        let veto_hit = drifted && verdict.prediction_hit;
        if veto_hit {
            governor_vetoes += 1;
            TM_VETOES.add(1);
            for s in &mut stats {
                s.reset_detector();
            }
        }

        // Decide: first informed placement once warmup completes, then
        // drift-triggered (and cooled-down) re-decisions; a refuted
        // pre-switch prediction forces a corrective decision even without
        // drift (the controller holds a speculative allocation with no
        // justification).
        let should_decide = warmed
            && (placement.is_none()
                || verdict.prediction_missed
                || (drifted && cooled && !veto_hit));
        let profiles: Option<Vec<WorkloadProfile>> =
            stats.iter().map(|s| s.profile()).collect();
        if let (true, Some(profiles)) = (should_decide, &profiles) {
            let mut decide_span = telemetry::span("controller.decide");
            decide_span.set_attr("epoch", epoch);
            decisions += 1;
            TM_DECISIONS.add(1);
            let horizon = governor.governed_horizon(epoch, config.horizon_epochs);

            // When drift fired on a strict subset of (at least two) VMs,
            // re-solve only that subset with everyone else pinned.
            let drifted_set: Vec<usize> = (0..n).filter(|&vm| fired_vms[vm]).collect();
            let localized = if placement.is_some()
                && drifted_set.len() >= 2
                && drifted_set.len() < n
            {
                localized_solve(template, config, &current, profiles, &drifted_set, &mut caches)?
            } else {
                None
            };
            let (candidate, keep_cost, objective) = match localized {
                Some(result) => {
                    localized_solves += 1;
                    TM_LOCALIZED.add(1);
                    decide_span.set_attr("localized", true);
                    result
                }
                None => {
                    let key: Vec<ProfileKey> = profiles
                        .iter()
                        .map(|p| p.quantize(config.quantization_rel))
                        .collect();
                    let cache = caches
                        .entry(key)
                        .or_insert_with(|| Arc::new(CostCache::new()));
                    let model = ProfileCostModel {
                        machine,
                        profiles: profiles.clone(),
                    };
                    let rec = run_search_cached(
                        config.algorithm,
                        &problem,
                        &model,
                        config.search,
                        cache,
                    )?;
                    let keep: f64 = (0..n)
                        .map(|w| model.cost(&problem, w, current.row(w)))
                        .sum::<Result<f64, _>>()?;
                    (rec.allocation, keep, rec.objective)
                }
            };
            if placement.is_none() {
                // Initial informed placement: unconditional and uncharged
                // (the run starts with VM creation either way, mirroring
                // run_dynamic's phase 0 and keeping regret accounting
                // apples-to-apples with the oracle's free placement).
                placement = Some(candidate.clone());
                current = candidate;
            } else if candidate != current {
                let switch_cost = switch_cost_seconds(
                    machine,
                    &current,
                    &candidate,
                    config.switch_base_seconds,
                )?;
                let gain = (keep_cost - objective) * horizon;
                if gain > switch_cost + config.hysteresis * keep_cost * horizon {
                    charge_switch(&mut clock, &mut total_cost, switch_cost)?;
                    current = candidate.clone();
                    switches.push(SwitchEvent {
                        epoch,
                        time: clock,
                        cost_seconds: switch_cost,
                        allocation: candidate,
                    });
                    TM_SWITCHES.add(1);
                } else if horizon < config.horizon_epochs as f64 {
                    // The governor's shortened amortization window is what
                    // refused this switch.
                    governor_vetoes += 1;
                    TM_VETOES.add(1);
                }
            }
            last_decision_epoch = Some(epoch);
            // One detection, one decision: start fresh either way so the
            // same change is not acted on twice.
            for s in &mut stats {
                s.reset_detector();
            }
        } else if warmed && placement.is_some() && !drifted && cooled {
            // Quiet epoch: hill-climb one share step against the live
            // profile estimates. The full switch gate applies, so only
            // transfers that genuinely pay for their reconfiguration land.
            // Reserved for genuinely stationary stretches: every VM's
            // fresh per-epoch mean must quantize into the same bucket as
            // the long-run estimate the move would be priced against — a
            // disagreement means the estimate is mid-transient, and
            // transients are the drift machinery's jurisdiction, not the
            // hill-climber's.
            let quiescent = profiles.as_ref().is_some_and(|profiles| {
                snapshots.iter().zip(profiles).all(|(s, p)| {
                    s.as_ref().is_some_and(|snap| {
                        snap.quantize(config.quantization_rel)
                            == p.quantize(config.quantization_rel)
                    })
                })
            });
            if let (true, Some(profiles)) = (quiescent, &profiles) {
                let horizon = governor.governed_horizon(epoch, config.horizon_epochs);
                if let Some((candidate, switch_cost)) =
                    hill_climb_move(&problem, config, machine, &current, profiles, horizon)?
                {
                    charge_switch(&mut clock, &mut total_cost, switch_cost)?;
                    current = candidate.clone();
                    switches.push(SwitchEvent {
                        epoch,
                        time: clock,
                        cost_seconds: switch_cost,
                        allocation: candidate,
                    });
                    hill_climb_moves += 1;
                    TM_HILL_CLIMBS.add(1);
                    TM_SWITCHES.add(1);
                    last_decision_epoch = Some(epoch);
                }
            }
        }

        // Predictive pre-switch: when the governor has learned that the
        // current regime flips next epoch and trusts the successor, solve
        // for the whole alternation at once — candidates priced under the
        // sum of the outgoing and incoming regime-pure snapshots — and
        // apply the cycle optimum now, so the next phase starts already
        // provisioned instead of paying detection lag, and the allocation
        // keeps serving when the phase flips back.
        if placement.is_some() {
            if let Some(p) =
                governor.predicted_switch(epoch, scenario.total_epochs(), config.horizon_epochs)
            {
                let cache = snapshot_caches
                    .entry(p.pair_key.clone())
                    .or_insert_with(|| Arc::new(CostCache::new()));
                let model = PairCostModel {
                    outgoing: ProfileCostModel {
                        machine,
                        profiles: p.outgoing_profiles.clone(),
                    },
                    incoming: ProfileCostModel {
                        machine,
                        profiles: p.incoming_profiles.clone(),
                    },
                };
                let rec =
                    run_search_cached(config.algorithm, &problem, &model, config.search, cache)?;
                if rec.allocation == current {
                    // Already provisioned; just arm the prediction so the
                    // anticipated drift does not trigger a re-solve.
                    governor.note_preswitch(p.key);
                } else {
                    // Pair costs cover one epoch of *each* regime; halve
                    // them so the gate compares per-epoch quantities over
                    // the cycle horizon. Both sides are priced directly
                    // under the live pair model — the search's objective
                    // may rest on cached cells from a within-bucket
                    // neighbor, and a gate must never compare costs from
                    // two different pricings.
                    let keep: f64 = (0..n)
                        .map(|w| model.cost(&problem, w, current.row(w)))
                        .sum::<Result<f64, _>>()?
                        / 2.0;
                    let objective: f64 = (0..n)
                        .map(|w| model.cost(&problem, w, rec.allocation.row(w)))
                        .sum::<Result<f64, _>>()?
                        / 2.0;
                    let switch_cost = switch_cost_seconds(
                        machine,
                        &current,
                        &rec.allocation,
                        config.switch_base_seconds,
                    )?;
                    let gain = (keep - objective) * p.horizon_epochs;
                    if gain > switch_cost + config.hysteresis * keep * p.horizon_epochs {
                        charge_switch(&mut clock, &mut total_cost, switch_cost)?;
                        current = rec.allocation.clone();
                        switches.push(SwitchEvent {
                            epoch,
                            time: clock,
                            cost_seconds: switch_cost,
                            allocation: rec.allocation,
                        });
                        prescheduled += 1;
                        TM_PRESWITCHES.add(1);
                        TM_SWITCHES.add(1);
                        governor.note_preswitch(p.key);
                        last_decision_epoch = Some(epoch);
                    }
                }
            }
        }
    }

    TM_DROPPED.add(dropped as u64);
    run_span.set_attr("switches", switches.len());
    run_span.set_attr("total_cost_seconds", total_cost);

    let health = ControllerHealth {
        epochs: scenario.total_epochs(),
        observations: stats.iter().map(|s| s.observations()).sum(),
        dropped_observations: dropped,
        dropout_vm_epochs: stats.iter().map(|s| s.stale_epochs()).sum(),
        max_staleness: stats.iter().map(|s| s.max_staleness()).max().unwrap_or(0),
        drift_detections,
        decisions,
        switches: switches.len(),
        governor_vetoes,
        prescheduled_switches: prescheduled,
        prediction_hits: governor.prediction_hits(),
        prediction_misses: governor.prediction_misses(),
        localized_solves,
        hill_climb_moves,
    };

    Ok(ControllerOutcome {
        allocations,
        epoch_costs,
        total_cost,
        final_time: clock,
        decisions,
        switches,
        drift_detections,
        dropped_observations: dropped,
        initial_allocation: initial,
        placement,
        health,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{cpu_heavy, io_heavy};
    use crate::testkit::{template, tiny_db};

    fn config(parallelism: usize) -> ControllerConfig {
        ControllerConfig::new(SearchConfig::for_workloads(8, 2).with_parallelism(parallelism))
    }

    fn stationary() -> Scenario {
        Scenario::stationary(
            "stationary",
            MachineSpec::tiny(),
            vec![cpu_heavy(), io_heavy()],
            16,
            11,
        )
    }

    fn drifting() -> Scenario {
        Scenario::drifting(
            "drifting",
            MachineSpec::tiny(),
            vec![cpu_heavy(), io_heavy()],
            12,
            vec![io_heavy(), cpu_heavy()],
            12,
            11,
        )
    }

    #[test]
    fn stationary_scenario_places_once_and_never_switches() {
        let db = tiny_db();
        let template = template(&db, 2, MachineSpec::tiny());
        let out = run_controller(&stationary(), &template, &config(1)).unwrap();
        assert_eq!(out.allocations.len(), 16);
        assert!(out.placement.is_some(), "warmup must end in a placement");
        assert!(out.switches.is_empty(), "no drift, no reconfiguration");
        assert_eq!(out.decisions, 1, "exactly the placement decision");
        // The informed placement skews resources toward the I/O-heavy VM.
        let placed = out.placement.unwrap();
        assert!(placed.row(1).memory().fraction() > placed.row(0).memory().fraction());
    }

    #[test]
    fn drifting_scenario_triggers_a_reallocation_after_the_flip() {
        let db = tiny_db();
        let template = template(&db, 2, MachineSpec::tiny());
        let out = run_controller(&drifting(), &template, &config(1)).unwrap();
        assert!(
            !out.switches.is_empty(),
            "the phase flip must trigger a switch (drift detections: {})",
            out.drift_detections
        );
        assert!(out.drift_detections >= 1);
        // Every switch happens after the flip at epoch 12, and the last
        // one mirrors the placement (resources follow the I/O load).
        for s in &out.switches {
            assert!(s.epoch >= 12, "spurious switch at epoch {}", s.epoch);
            assert!(s.cost_seconds > 0.0);
        }
        let last = &out.switches.last().unwrap().allocation;
        assert!(last.row(0).memory().fraction() > last.row(1).memory().fraction());
    }

    #[test]
    fn decision_trace_is_bit_identical_at_every_parallelism() {
        let db = tiny_db();
        let template = template(&db, 2, MachineSpec::tiny());
        let base = run_controller(&drifting(), &template, &config(1)).unwrap();
        for parallelism in [2, 4, 0] {
            let out = run_controller(&drifting(), &template, &config(parallelism)).unwrap();
            assert_eq!(
                out.trace_fingerprint(),
                base.trace_fingerprint(),
                "trace diverged at parallelism {parallelism}"
            );
            assert_eq!(out.total_cost.to_bits(), base.total_cost.to_bits());
            assert_eq!(out.final_time, base.final_time);
        }
    }

    #[test]
    fn switch_cost_charges_only_resized_pools() {
        let machine = MachineSpec::tiny();
        let a = AllocationMatrix::equal_split(2).unwrap();
        // Same memory, different CPU: only the base charge applies.
        let cpu_only = AllocationMatrix::new(vec![
            ResourceVector::from_fractions(0.75, 0.5, 0.5).unwrap(),
            ResourceVector::from_fractions(0.25, 0.5, 0.5).unwrap(),
        ])
        .unwrap();
        let base = 0.25;
        let cost = switch_cost_seconds(machine, &a, &cpu_only, base).unwrap();
        assert_eq!(cost, base);
        // A memory move pays the refill of every resized pool.
        let mem_move = AllocationMatrix::new(vec![
            ResourceVector::from_fractions(0.5, 0.75, 0.5).unwrap(),
            ResourceVector::from_fractions(0.5, 0.25, 0.5).unwrap(),
        ])
        .unwrap();
        let cost = switch_cost_seconds(machine, &a, &mem_move, base).unwrap();
        let refill: f64 = (0..2)
            .map(|i| {
                VirtualMachine::new(machine, mem_move.row(i))
                    .unwrap()
                    .buffer_pool_pages() as f64
                    * machine.seq_page_seconds()
            })
            .sum();
        assert!((cost - (base + refill)).abs() < 1e-12);
    }

    #[test]
    fn empty_and_zero_epoch_scenarios_are_typed_errors() {
        let db = tiny_db();
        let template = template(&db, 2, MachineSpec::tiny());
        let machine = MachineSpec::tiny();
        // No phases at all.
        let empty = Scenario::new("empty", machine, vec![], 1);
        assert!(matches!(
            run_controller(&empty, &template, &config(1)),
            Err(ControllerError::BadScenario { .. })
        ));
        // A phase that contributes zero epochs.
        let zero = Scenario::new(
            "zero-epochs",
            machine,
            vec![crate::ScenarioPhase {
                profiles: vec![cpu_heavy(), io_heavy()],
                epochs: 0,
            }],
            1,
        );
        assert!(matches!(
            run_controller(&zero, &template, &config(1)),
            Err(ControllerError::BadScenario { .. })
        ));
        // A phase with no VMs.
        let no_vms = Scenario::new(
            "no-vms",
            machine,
            vec![crate::ScenarioPhase {
                profiles: vec![],
                epochs: 4,
            }],
            1,
        );
        assert!(matches!(
            run_controller(&no_vms, &template, &config(1)),
            Err(ControllerError::BadScenario { .. })
        ));
    }

    #[test]
    fn total_sensor_blackout_degrades_to_health_flags_not_errors() {
        use dbvirt_vmm::fault::{FaultInjector, NoiseModel};
        // Every observation is dropped. The loop must run to completion,
        // never form an informed placement (no estimate ever exists), and
        // report the blackout through its health counters — missing data
        // is a reporting problem, not a control error.
        let db = tiny_db();
        let template = template(&db, 2, MachineSpec::tiny());
        let scenario = drifting().with_noise(FaultInjector::new(
            NoiseModel::sensor_degraded(1.0, 0.0, 0, 0.0),
            3,
        ));
        let out = run_controller(&scenario, &template, &config(1)).unwrap();
        assert_eq!(out.allocations.len(), scenario.total_epochs());
        assert!(
            out.placement.is_none(),
            "no observations must mean no informed placement"
        );
        assert!(out.switches.is_empty());
        assert_eq!(
            out.drift_detections, 0,
            "the detector must never self-trigger on missing data"
        );
        assert!(out.health.dropped_observations > 0);
        assert!(out.health.dropout_vm_epochs > 0);
        assert!(!out.health.is_clean());
        assert!(out.total_cost.is_finite());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let db = tiny_db();
        let template = template(&db, 2, MachineSpec::tiny());
        let mut bad = config(1);
        bad.ewma_alpha = 0.0;
        assert!(run_controller(&stationary(), &template, &bad).is_err());
        let mut bad = config(1);
        bad.hysteresis = f64::NAN;
        assert!(run_controller(&stationary(), &template, &bad).is_err());
        let mut bad = config(1);
        bad.horizon_epochs = 0;
        assert!(run_controller(&stationary(), &template, &bad).is_err());
        // Template/scenario VM-count mismatch.
        let template1 = template_of_one(&db);
        assert!(run_controller(&stationary(), &template1, &config(1)).is_err());
    }

    fn template_of_one(db: &dbvirt_engine::Database) -> ProblemTemplate<'_> {
        template(db, 1, MachineSpec::tiny())
    }

    #[test]
    fn a_noisy_neighbor_swap_is_resolved_locally() {
        // Four VMs: tenants 0/1 swap loud/quiet roles while the two
        // victims hold still — drift fires on a strict subset, and the
        // controller re-solves only that subset with the victims pinned.
        let db = tiny_db();
        let template = template(&db, 4, MachineSpec::tiny());
        let scenario = Scenario::noisy_neighbor(
            "noisy-neighbor",
            MachineSpec::tiny(),
            io_heavy(),
            cpu_heavy(),
            vec![cpu_heavy(), cpu_heavy()],
            10,
            2,
            11,
        );
        let cfg = ControllerConfig::new(SearchConfig::for_workloads(8, 4));
        let out = run_controller(&scenario, &template, &cfg).unwrap();
        assert!(
            out.health.localized_solves >= 1,
            "a two-tenant swap must take the localized path, health: {}",
            out.health
        );
        // Localized decisions never move the victims: across every switch
        // the non-drifted VMs' shares are preserved.
        for s in &out.switches {
            let before = &out.allocations[s.epoch];
            for vm in 2..4 {
                assert_eq!(
                    s.allocation.row(vm),
                    before.row(vm),
                    "victim vm{vm} moved at epoch {}",
                    s.epoch
                );
            }
        }
        assert!(!out.switches.is_empty(), "the swap must be acted on");
    }

    #[test]
    fn fast_alternation_engages_the_governor() {
        // Two VMs swap a CPU-hot and a CPU-cold mix every 2 epochs — far
        // below the 8-epoch amortization horizon. The governor must learn
        // the recurrence, veto reactive churn, and provision ahead of the
        // predicted flips; because the pre-switch prices candidates under
        // *both* sides of the boundary, the single allocation it lands
        // serves the whole alternation and switching stops entirely.
        // (CPU-bound mixes keep the estimated profiles allocation-
        // invariant, so the regime keys recur cleanly.)
        fn cpu_profile(cycles: f64) -> WorkloadProfile {
            WorkloadProfile {
                cpu_cycles: cycles,
                cold_seq_reads: 5.0,
                cold_random_reads: 0.0,
                page_writes: 0.0,
                reread_seq: 10.0,
                reread_random: 0.0,
                working_set_pages: 50.0,
                queries_per_epoch: 4.0,
            }
        }
        let db = tiny_db();
        let template = template(&db, 2, MachineSpec::tiny());
        let hot = cpu_profile(4.0e8);
        let cold = cpu_profile(5.0e7);
        let scenario = Scenario::adversarial(
            "adversarial",
            MachineSpec::tiny(),
            vec![hot, cold],
            vec![cold, hot],
            2,
            6,
            11,
        );
        let out = run_controller(&scenario, &template, &config(1)).unwrap();
        let h = &out.health;
        assert_eq!(h.prediction_misses, 0, "a clean alternation never refutes");
        assert!(
            h.prescheduled_switches >= 1,
            "at least one flip must be provisioned ahead, health: {h}"
        );
        assert!(
            h.prediction_hits >= 2,
            "recurrences must be anticipated, health: {h}"
        );
        assert!(
            h.governor_vetoes >= 1,
            "reactive churn must be vetoed, health: {h}"
        );
        assert!(
            out.switches.len() <= 2,
            "the governor must prevent thrashing, got switches at {:?}",
            out.switches.iter().map(|s| s.epoch).collect::<Vec<_>>()
        );
    }
}
