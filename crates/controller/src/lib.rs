//! `dbvirt-controller` — online drift-detecting re-allocation control.
//!
//! The paper's Section 7 names the dynamic case — "reconfigure the virtual
//! machines on the fly in response to changes in the workload" — as the
//! next step beyond static virtualization design. `dbvirt-core`'s
//! [`dbvirt_core::dynamic::run_dynamic`] covers the *clairvoyant offline*
//! version, where the phase sequence is known ahead of time. This crate
//! closes the loop for live traffic:
//!
//! * [`Scenario`] — deterministic phased workload streams
//!   (stationary / drifting / bursty / adversarial), with optional
//!   observation noise from `dbvirt_vmm::fault` that perturbs only what
//!   the controller *sees*, never the simulated ground truth;
//! * [`VmStats`] — streaming per-VM statistics: an EWMA estimate of the
//!   allocation-independent base demand (recovered by inverting the linear
//!   working-set cache model) plus a two-sided [`PageHinkley`] drift
//!   detector on a whole-machine reference cost stream;
//! * [`run_controller`] — the discrete-event control loop: simulate each
//!   epoch under the allocation in force, absorb observations, and on
//!   detected drift re-solve via warm-started
//!   [`dbvirt_core::search::run_search_cached`], applying the new
//!   allocation only when the predicted benefit clears hysteresis plus a
//!   modeled reconfiguration cost charged in virtual time;
//! * [`account_regret`] — replays the identical stream under the
//!   clairvoyant per-phase optimum and a never-reconfigure baseline, and
//!   reports cumulative-cost regret, switch counts, and
//!   time-in-suboptimal-allocation.
//!
//! Everything is deterministic: identical `(scenario, config)` pairs
//! produce bit-identical decision traces at every search `parallelism`
//! setting.

mod controller;
mod drift;
mod error;
mod governor;
mod health;
mod profile;
mod regret;
mod scenario;
mod stats;

pub use controller::{
    pool_refill_seconds, run_controller, switch_cost_seconds, ControllerConfig,
    ControllerOutcome, SwitchEvent,
};
pub use drift::{DriftConfig, PageHinkley};
pub use error::ControllerError;
pub use governor::{EpochVerdict, PredictedSwitch, SwitchGovernor, TRUST_CLOSINGS};
pub use health::ControllerHealth;
pub use profile::{
    profile_from_queries, PhasedProfileModel, ProblemTemplate, ProfileCostModel, ProfileKey,
    VmTemplate, WorkloadProfile,
};
pub use regret::{account_regret, RegretReport};
pub use scenario::{Scenario, ScenarioPhase, VmEpoch};
pub use stats::{QueryObservation, VmStats};

#[cfg(test)]
pub(crate) mod testkit {
    //! A minimal catalog skeleton for end-to-end tests. The profile cost
    //! models never plan or execute these queries; the template only has
    //! to satisfy the design problem's shape requirements.

    use crate::{ProblemTemplate, VmTemplate};
    use dbvirt_engine::Database;
    use dbvirt_optimizer::LogicalPlan;
    use dbvirt_storage::{DataType, Datum, Field, Schema, Tuple};
    use dbvirt_vmm::MachineSpec;

    pub fn tiny_db() -> Database {
        let mut db = Database::new();
        let t = db.create_table("t", Schema::new(vec![Field::new("a", DataType::Int)]));
        db.insert_rows(t, (0..10).map(|i| Tuple::new(vec![Datum::Int(i)])))
            .unwrap();
        db.analyze_all().unwrap();
        db
    }

    pub fn template(db: &Database, n: usize, machine: MachineSpec) -> ProblemTemplate<'_> {
        let t = db.table_id("t").unwrap();
        ProblemTemplate {
            machine,
            vms: (0..n)
                .map(|i| VmTemplate {
                    name: format!("vm{i}"),
                    db,
                    base_query: LogicalPlan::scan(t),
                })
                .collect(),
        }
    }
}
