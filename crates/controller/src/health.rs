//! Aggregate controller health, mirroring `dbvirt-calibrate`'s
//! `GridHealth`: one line answering "did the control loop see clean
//! telemetry and behave as designed, and if not, what degraded?".
//!
//! The report is diagnostic metadata *about* a run, not part of the run's
//! decision trace: it is deliberately excluded from
//! [`crate::ControllerOutcome::trace_fingerprint`], so enriching it never
//! breaks replay determinism pins.

use std::fmt;

/// Aggregate health of one controller run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ControllerHealth {
    /// Control epochs executed.
    pub epochs: usize,
    /// Usable observations absorbed across all VMs.
    pub observations: u64,
    /// Observations lost to sensor faults or degeneracy.
    pub dropped_observations: usize,
    /// VM-epochs that closed with zero usable observations (the estimate
    /// was carried over on staleness).
    pub dropout_vm_epochs: usize,
    /// Worst consecutive run of observation-free epochs on any single VM.
    pub max_staleness: usize,
    /// Epochs in which at least one VM's drift detector fired.
    pub drift_detections: usize,
    /// Decisions taken (searches run), including the initial placement.
    pub decisions: usize,
    /// Reconfigurations applied (reactive and predictive).
    pub switches: usize,
    /// Re-solved switches refused by the governor's shortened
    /// amortization horizon.
    pub governor_vetoes: usize,
    /// Anticipatory switches applied at predicted phase boundaries.
    pub prescheduled_switches: usize,
    /// Pre-switch predictions confirmed by the following epoch.
    pub prediction_hits: usize,
    /// Pre-switch predictions refuted by the following epoch.
    pub prediction_misses: usize,
    /// Drift re-solves restricted to the drifted VM subset.
    pub localized_solves: usize,
    /// Quiet-epoch hill-climb share transfers applied.
    pub hill_climb_moves: usize,
}

impl ControllerHealth {
    /// True when every observation arrived and every prediction held: no
    /// sensor dropouts, no dropped measurements, no refuted pre-switches.
    /// Drift detections, vetoes, and hill-climb moves are normal operation
    /// and do not count against cleanliness.
    pub fn is_clean(&self) -> bool {
        self.dropped_observations == 0
            && self.dropout_vm_epochs == 0
            && self.prediction_misses == 0
    }
}

impl fmt::Display for ControllerHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "controller health: {} epochs, {} observations ({} dropped, \
             {} dropout vm-epochs, max staleness {}); {} drift detections, \
             {} decisions, {} switches ({} prescheduled, {} vetoed); \
             predictions {}/{} hit; {} localized solves, {} hill-climb moves",
            self.epochs,
            self.observations,
            self.dropped_observations,
            self.dropout_vm_epochs,
            self.max_staleness,
            self.drift_detections,
            self.decisions,
            self.switches,
            self.prescheduled_switches,
            self.governor_vetoes,
            self.prediction_hits,
            self.prediction_hits + self.prediction_misses,
            self.localized_solves,
            self.hill_climb_moves,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleanliness_tracks_sensor_and_prediction_trouble_only() {
        let mut h = ControllerHealth {
            epochs: 16,
            observations: 96,
            drift_detections: 3,
            decisions: 4,
            switches: 2,
            governor_vetoes: 1,
            hill_climb_moves: 2,
            ..ControllerHealth::default()
        };
        assert!(h.is_clean(), "normal operation is clean");
        h.dropped_observations = 1;
        assert!(!h.is_clean());
        h.dropped_observations = 0;
        h.dropout_vm_epochs = 2;
        assert!(!h.is_clean());
        h.dropout_vm_epochs = 0;
        h.prediction_misses = 1;
        assert!(!h.is_clean());
    }

    #[test]
    fn display_is_one_line() {
        let h = ControllerHealth::default();
        let line = h.to_string();
        assert!(line.starts_with("controller health:"));
        assert!(!line.contains('\n'));
    }
}
