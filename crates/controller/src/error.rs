//! Error type for the online controller.

use dbvirt_core::CoreError;
use dbvirt_vmm::VmmError;
use std::error::Error;
use std::fmt;

/// Errors raised by the controller, its scenario driver, or the layers
/// underneath it.
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerError {
    /// A controller configuration parameter was out of range.
    BadConfig {
        /// Description of the invalid parameter.
        reason: String,
    },
    /// A scenario definition was malformed.
    BadScenario {
        /// Description of the problem.
        reason: String,
    },
    /// A search or cost-model call failed.
    Core(CoreError),
    /// A simulator call failed.
    Vmm(VmmError),
}

impl fmt::Display for ControllerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControllerError::BadConfig { reason } => {
                write!(f, "invalid controller config: {reason}")
            }
            ControllerError::BadScenario { reason } => write!(f, "invalid scenario: {reason}"),
            ControllerError::Core(e) => write!(f, "core: {e}"),
            ControllerError::Vmm(e) => write!(f, "vmm: {e}"),
        }
    }
}

impl Error for ControllerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ControllerError::Core(e) => Some(e),
            ControllerError::Vmm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ControllerError {
    fn from(e: CoreError) -> ControllerError {
        ControllerError::Core(e)
    }
}

impl From<VmmError> for ControllerError {
    fn from(e: VmmError) -> ControllerError {
        ControllerError::Vmm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ControllerError::BadConfig {
            reason: "hysteresis must be non-negative".to_string(),
        };
        assert!(e.to_string().contains("hysteresis"));
        let e = ControllerError::Vmm(VmmError::EmptyAllocation);
        assert!(e.to_string().contains("vmm"));
        assert!(Error::source(&e).is_some());
    }
}
