//! In-tree shim for the `rand` crate (offline build environment).
//!
//! Provides a deterministic xoshiro256**-based [`rngs::StdRng`] plus the
//! [`Rng`]/[`SeedableRng`] trait subset dbvirt uses (`gen_range` over
//! integer and float ranges, `gen_bool`). Sequences are deterministic per
//! seed but are not the real StdRng streams; all in-repo consumers treat
//! the generator as an arbitrary fixed pseudo-random source.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps 64 random bits to a float in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A type that can be drawn uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_range<G: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut G)
        -> Self;
}

/// A range that can be sampled uniformly. The single generic impl per
/// range shape (rather than one impl per element type) lets type
/// inference unify an unsuffixed literal in `gen_range(0..n)` with the
/// type the result is used at, matching the real crate.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_range(*self.start(), *self.end(), true, rng)
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<G: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut G,
            ) -> $t {
                let (lo, hi) = (lo as i128, hi as i128);
                let span = if inclusive {
                    assert!(lo <= hi, "empty gen_range");
                    (hi - lo) as u128 + 1
                } else {
                    assert!(lo < hi, "empty gen_range");
                    (hi - lo) as u128
                };
                let v = (rng.next_u64() as u128) % span;
                (lo + v as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_range<G: RngCore + ?Sized>(lo: f64, hi: f64, inclusive: bool, rng: &mut G) -> f64 {
        if inclusive {
            assert!(lo <= hi, "empty gen_range");
        } else {
            assert!(lo < hi, "empty gen_range");
        }
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256** seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 to spread the seed over the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let v = rng.gen_range(3u32..=9);
            assert!((3..=9).contains(&v));
            let f = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "observed {frac}");
    }
}
