//! # dbvirt-calibrate — optimizer calibration (the paper's Section 5)
//!
//! To use the query optimizer as a virtualization-aware cost model, its
//! environment-parameter vector `P` must reflect the virtual machine's
//! resource allocation `R`. The paper obtains `P(R)` experimentally: run
//! carefully designed synthetic queries inside a VM configured with `R`,
//! measure their actual execution times, equate those measurements with the
//! optimizer's cost formulas (which are linear in the unknown parameters),
//! and solve the resulting system.
//!
//! This crate implements that pipeline end to end:
//!
//! * [`probedb`] — a deterministic synthetic calibration database (a narrow
//!   table, a wide table with few rows per page, and an indexed column);
//! * [`probes`] — the designed probe queries, each carrying both a fixed
//!   physical plan to *execute* and the coefficient row its predicted time
//!   contributes to the linear system (the paper's worked example —
//!   `select max(R.a) from R` pinning `cpu_tuple_cost` +
//!   `cpu_operator_cost` — is probe number one);
//! * [`solver`] — dense linear least squares via normal equations and
//!   Gaussian elimination with partial pivoting;
//! * [`runner`] — [`runner::calibrate`]: probes → measurements → solve →
//!   [`dbvirt_optimizer::OptimizerParams`];
//! * [`grid`] — [`grid::CalibrationGrid`]: `P(R)` over a share grid with
//!   bilinear interpolation for off-grid allocations and a JSON cache, the
//!   paper's "calibrate once per machine, reuse everywhere" and its
//!   "reduce the number of calibration experiments" next step;
//! * [`vmdb`] — the deployment policy mapping a VM to database memory
//!   settings (buffer pool, `work_mem`, `effective_cache_size`), shared by
//!   the measuring side and the modeling side.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod grid;
pub mod json;
pub mod probedb;
pub mod probes;
pub mod report;
pub mod runner;
pub mod solver;
pub mod vmdb;

pub use error::CalError;
pub use grid::{CalibrationGrid, GridHealth};
pub use probedb::ProbeDb;
pub use report::{CalibrationReport, ProbeStat};
pub use runner::{calibrate, Aggregation, Calibration, CalibrationConfig};
pub use vmdb::DbVmConfig;
