//! The designed probe queries.
//!
//! Each probe pairs a **fixed physical plan** (so the measured execution is
//! exactly the plan the equation describes — the paper ensures this by
//! designing queries whose plan choice is forced) with the **coefficient
//! row** its predicted runtime contributes to the linear system
//!
//! ```text
//! measured_seconds ≈ a·x,
//! x = [seq_page_s, random_page_s, cpu_tuple_s, cpu_index_tuple_s, cpu_operator_s]
//! ```
//!
//! Coefficients are computed from catalog statistics only — page counts,
//! row counts, operator counts, Yao's formula for distinct heap pages —
//! never from the engine's hidden cycle constants. Probe #1 is the paper's
//! worked example: `select max(a) from cal_narrow` with no index on `a`,
//! whose time is a weighted sum of per-page, per-tuple, and per-operator
//! costs.

use crate::ProbeDb;
use dbvirt_engine::{AggExpr, AggFunc, Expr, PhysicalPlan};
use dbvirt_optimizer::cost::yao_pages;
use dbvirt_storage::Datum;
use std::ops::Bound;

/// Number of unknown parameters in the calibration system.
pub const NUM_UNKNOWNS: usize = 5;

/// Cache regime a probe is measured under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheState {
    /// Fresh buffer pool: first-touch physical reads are part of the
    /// measurement.
    Cold,
    /// The plan is executed once unmeasured to populate the cache, then
    /// measured: the measurement is pure CPU (isolating per-tuple and
    /// per-index-entry CPU parameters from I/O noise).
    Warm,
}

/// One calibration probe.
#[derive(Debug, Clone)]
pub struct Probe {
    /// Diagnostic name.
    pub name: &'static str,
    /// The fixed plan to execute and time.
    pub plan: PhysicalPlan,
    /// Coefficient row: predicted seconds = `coeffs · x`.
    pub coeffs: [f64; NUM_UNKNOWNS],
    /// Cold or warm measurement.
    pub cache: CacheState,
}

/// Wraps a scan in a global aggregate so that result-return overhead is
/// nil, as the paper prescribes ("the aggregation eliminates any overhead
/// for returning the result").
fn global_agg(input: PhysicalPlan, agg: AggExpr) -> PhysicalPlan {
    PhysicalPlan::HashAgg {
        input: Box::new(input),
        group_by: vec![],
        aggs: vec![agg],
    }
}

/// A filter of `n` always-true comparisons on `cal_narrow.a` joined by
/// ANDs (so its total operator count is `2n - 1`).
fn n_op_filter(n: usize) -> Expr {
    Expr::and_all(
        (0..n)
            .map(|k| Expr::ge(Expr::col(0), Expr::int(-(k as i64) - 1)))
            .collect(),
    )
}

/// Builds the probe suite for a calibration database.
///
/// The suite is overdetermined (six equations, five unknowns) and spans two
/// very different pages-per-row ratios plus two index-range sizes, which is
/// what makes every parameter identifiable.
pub fn build_probes(pdb: &ProbeDb) -> Vec<Probe> {
    let narrow_stats = pdb
        .db
        .table(pdb.narrow)
        .stats
        .as_ref()
        .expect("probe db is analyzed");
    let wide_stats = pdb
        .db
        .table(pdb.wide)
        .stats
        .as_ref()
        .expect("probe db is analyzed");
    let (n_pages, n_rows) = (narrow_stats.n_pages as f64, narrow_stats.n_rows as f64);
    let (w_pages, w_rows) = (wide_stats.n_pages as f64, wide_stats.n_rows as f64);

    let tree = pdb.db.index_tree(pdb.b_index);
    let (height, index_pages, entries) = (
        tree.height() as f64,
        tree.num_pages() as f64,
        tree.len() as f64,
    );

    let mut probes = Vec::new();

    // 1. The paper's example: select max(a) from cal_narrow (forced seq
    //    scan — no index on `a`). One aggregate transition per tuple.
    probes.push(Probe {
        name: "max_scan",
        plan: global_agg(
            PhysicalPlan::SeqScan {
                table: pdb.narrow,
                filter: None,
            },
            AggExpr::new(AggFunc::Max, Expr::col(0), "m"),
        ),
        coeffs: [n_pages, 0.0, n_rows, 0.0, n_rows],
        cache: CacheState::Cold,
    });

    // 2./3. Scans with 2 and 8 filter operators + count(*): the spread in
    //    operator count per tuple separates cpu_operator from cpu_tuple.
    for (name, n_cmps) in [("filter_scan_light", 2usize), ("filter_scan_heavy", 8)] {
        let filter = n_op_filter(n_cmps);
        let filter_ops = filter.num_operators() as f64;
        probes.push(Probe {
            name,
            plan: global_agg(
                PhysicalPlan::SeqScan {
                    table: pdb.narrow,
                    filter: Some(filter),
                },
                AggExpr::count_star("n"),
            ),
            coeffs: [n_pages, 0.0, n_rows, 0.0, n_rows * (filter_ops + 1.0)],
            cache: CacheState::Cold,
        });
    }

    // 4. Wide-table scan: ~7 rows per page instead of ~240, pinning the
    //    per-page term against the per-tuple term.
    probes.push(Probe {
        name: "wide_scan",
        plan: global_agg(
            PhysicalPlan::SeqScan {
                table: pdb.wide,
                filter: None,
            },
            AggExpr::count_star("n"),
        ),
        coeffs: [w_pages, 0.0, w_rows, 0.0, w_rows],
        cache: CacheState::Cold,
    });

    // 5./6. Cold index-range probes on cal_narrow.b at two range sizes:
    //    random index-node and heap-page fetches pin random_page_s, index
    //    entries pin cpu_index_tuple_s.
    for (name, tuples) in [("index_small", 300.0f64), ("index_large", 3000.0)] {
        let sel = tuples / entries;
        let rand_pages = height + sel * index_pages + yao_pages(n_pages, n_rows, tuples);
        probes.push(Probe {
            name,
            plan: global_agg(
                PhysicalPlan::IndexScan {
                    table: pdb.narrow,
                    index: pdb.b_index,
                    lo: Bound::Included(Datum::Int(0)),
                    hi: Bound::Excluded(Datum::Int(tuples as i64)),
                    filter: None,
                },
                AggExpr::count_star("n"),
            ),
            coeffs: [0.0, rand_pages, tuples, tuples, tuples],
            cache: CacheState::Cold,
        });
    }

    // 7./8. Warm index-range probes: the cache is pre-populated, so the
    //    measurement is pure CPU — this is what makes cpu_index_tuple_s
    //    identifiable (in the cold probes it is drowned by random I/O).
    for (name, tuples) in [("index_warm_small", 300.0f64), ("index_warm_large", 3000.0)] {
        probes.push(Probe {
            name,
            plan: global_agg(
                PhysicalPlan::IndexScan {
                    table: pdb.narrow,
                    index: pdb.b_index,
                    lo: Bound::Included(Datum::Int(0)),
                    hi: Bound::Excluded(Datum::Int(tuples as i64)),
                    filter: None,
                },
                AggExpr::count_star("n"),
            ),
            coeffs: [0.0, 0.0, tuples, tuples, tuples],
            cache: CacheState::Warm,
        });
    }

    probes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n_op_filter_counts_operators() {
        for n in [1usize, 2, 5, 8] {
            let f = n_op_filter(n);
            // n comparisons + (n - 1) ANDs.
            assert_eq!(f.num_operators(), (2 * n - 1) as u32, "n = {n}");
        }
    }

    #[test]
    fn suite_is_overdetermined_and_spans_all_unknowns() {
        let pdb = ProbeDb::build().unwrap();
        let probes = build_probes(&pdb);
        assert!(probes.len() > NUM_UNKNOWNS);
        for j in 0..NUM_UNKNOWNS {
            assert!(
                probes.iter().any(|p| p.coeffs[j] > 0.0),
                "unknown {j} never appears"
            );
        }
        // The two pages/rows regimes really differ.
        let ratio = |p: &Probe| p.coeffs[0] / p.coeffs[2].max(1.0);
        let narrow = probes.iter().find(|p| p.name == "max_scan").unwrap();
        let wide = probes.iter().find(|p| p.name == "wide_scan").unwrap();
        assert!(ratio(wide) > 10.0 * ratio(narrow));
    }

    #[test]
    fn filter_coefficient_counts_match_plan_filters() {
        let pdb = ProbeDb::build().unwrap();
        let probes = build_probes(&pdb);
        let light = probes
            .iter()
            .find(|p| p.name == "filter_scan_light")
            .unwrap();
        let heavy = probes
            .iter()
            .find(|p| p.name == "filter_scan_heavy")
            .unwrap();
        assert!(heavy.coeffs[4] > light.coeffs[4]);
    }
}
