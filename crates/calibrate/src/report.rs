//! Structured calibration health reporting.
//!
//! A calibration under noise is no longer a single number: probes are
//! retried, trials aggregated, outlier equations rejected, the system may
//! need ridge regularization, and individual parameters can come back
//! unidentifiable. [`CalibrationReport`] records all of it so the grid
//! sweep, the JSON cache, and the advisor can tell a pristine fit from a
//! degraded one instead of silently trusting every number.

use std::fmt;

/// Per-probe measurement accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeStat {
    /// The probe's diagnostic name.
    pub name: String,
    /// Successful trial measurements aggregated into the probe's value.
    pub trials: usize,
    /// Extra attempts spent recovering from transient faults/timeouts.
    pub retries: usize,
    /// How many of those faults were timeouts.
    pub timeouts: usize,
    /// True if the probe contributed no equation (every trial failed, or
    /// its aggregated measurement was non-positive).
    pub dropped: bool,
    /// The aggregated measurement in seconds (`NaN` when dropped).
    pub seconds: f64,
}

/// Health diagnostics for one calibration run.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    /// Per-probe trial/retry accounting, in probe order.
    pub probes: Vec<ProbeStat>,
    /// Probes that contributed no equation to the fit.
    pub dropped_probes: usize,
    /// Probe names whose equations were rejected as outliers by the
    /// robust refit.
    pub rejected_outliers: Vec<String>,
    /// 1-norm condition number of the (weighted) normal matrix.
    pub condition_number: f64,
    /// Whether the Tikhonov-ridge fallback was needed.
    pub used_ridge: bool,
    /// Parameters clamped at the numerical floor — recovered as
    /// non-positive, i.e. unidentifiable from the surviving probes.
    pub clamped_params: Vec<String>,
    /// Parameters whose values were interpolated from calibrated grid
    /// neighbors instead of fitted (set by the grid's degradation path).
    pub degraded_params: Vec<String>,
    /// True if the entire cell failed to calibrate and every parameter
    /// was interpolated from grid neighbors.
    pub degraded: bool,
    /// The error that forced a degraded cell onto the interpolation path
    /// (`None` for cells that fit on their own).
    pub failure: Option<String>,
}

impl CalibrationReport {
    /// An all-healthy report for `probes` probe measurements (the shape
    /// the single-shot, no-noise path produces).
    pub fn pristine(probes: Vec<ProbeStat>) -> CalibrationReport {
        CalibrationReport {
            probes,
            dropped_probes: 0,
            rejected_outliers: Vec::new(),
            condition_number: f64::NAN,
            used_ridge: false,
            clamped_params: Vec::new(),
            degraded_params: Vec::new(),
            degraded: false,
            failure: None,
        }
    }

    /// Total retries across all probes.
    pub fn total_retries(&self) -> usize {
        self.probes.iter().map(|p| p.retries).sum()
    }

    /// Total timeout faults across all probes.
    pub fn total_timeouts(&self) -> usize {
        self.probes.iter().map(|p| p.timeouts).sum()
    }

    /// True if nothing about this calibration needed a fallback: no
    /// drops, no rejected outliers, no ridge, no clamped or degraded
    /// parameters. Retries alone do not make a calibration unclean —
    /// recovered-by-retry is the expected steady state under faults.
    pub fn is_clean(&self) -> bool {
        self.dropped_probes == 0
            && self.rejected_outliers.is_empty()
            && !self.used_ridge
            && self.clamped_params.is_empty()
            && self.degraded_params.is_empty()
            && !self.degraded
    }
}

impl fmt::Display for CalibrationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "calibration: {} probes ({} dropped), {} retries ({} timeouts), \
             {} outliers rejected, cond {:.3e}{}{}{}",
            self.probes.len(),
            self.dropped_probes,
            self.total_retries(),
            self.total_timeouts(),
            self.rejected_outliers.len(),
            self.condition_number,
            if self.used_ridge { ", ridge" } else { "" },
            if self.clamped_params.is_empty() {
                String::new()
            } else {
                format!(", clamped: {}", self.clamped_params.join("+"))
            },
            if self.degraded {
                format!(
                    ", DEGRADED (all params from neighbors{})",
                    self.failure
                        .as_deref()
                        .map(|e| format!("; {e}"))
                        .unwrap_or_default()
                )
            } else if !self.degraded_params.is_empty() {
                format!(", degraded params: {}", self.degraded_params.join("+"))
            } else {
                String::new()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(retries: usize, timeouts: usize, dropped: bool) -> ProbeStat {
        ProbeStat {
            name: "p".to_string(),
            trials: 3,
            retries,
            timeouts,
            dropped,
            seconds: if dropped { f64::NAN } else { 1.0 },
        }
    }

    #[test]
    fn totals_and_cleanliness() {
        let mut r = CalibrationReport::pristine(vec![stat(2, 1, false), stat(1, 0, false)]);
        assert_eq!(r.total_retries(), 3);
        assert_eq!(r.total_timeouts(), 1);
        assert!(r.is_clean(), "retries alone are clean");
        r.used_ridge = true;
        assert!(!r.is_clean());
        r.used_ridge = false;
        r.clamped_params.push("cpu_index_tuple_cost".to_string());
        assert!(!r.is_clean());
    }

    #[test]
    fn display_mentions_the_interesting_bits() {
        let mut r = CalibrationReport::pristine(vec![stat(1, 0, false)]);
        r.rejected_outliers.push("wide_scan".to_string());
        r.used_ridge = true;
        r.degraded_params.push("random_page_cost".to_string());
        let s = r.to_string();
        assert!(s.contains("1 outliers rejected"), "{s}");
        assert!(s.contains("ridge"), "{s}");
        assert!(s.contains("random_page_cost"), "{s}");
    }
}
