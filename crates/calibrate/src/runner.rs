//! Running a calibration: probes → measurements → least squares → `P(R)`.
//!
//! `calibrate` is the paper's "experimental calibration process, performed
//! once for each `R`": it configures a simulated VM with the requested
//! shares, runs each probe on a cold buffer pool sized from the VM's
//! memory, converts the measured [`dbvirt_vmm::ResourceDemand`]s into
//! simulated seconds, and solves the overdetermined linear system for the
//! five time-domain parameters. Memory-derived settings
//! (`effective_cache_size`, `work_mem`) come from the deployment policy in
//! [`crate::vmdb`] — they are configured, not measured, just as a DBA sets
//! them from the machine's known RAM.
//!
//! Real probe timings are noisy, so the runner also supports a robust
//! mode ([`CalibrationConfig::robust`]) designed to survive the faults a
//! [`FaultInjector`] (or a real VM) produces:
//!
//! 1. **multi-trial probes** — each probe is measured several times and
//!    the trials aggregated by median or trimmed mean;
//! 2. **bounded retries** — transient failures and timeouts are retried
//!    up to `max_retries` times per trial before the trial is lost;
//! 3. **condition diagnostics + ridge** — the weighted normal matrix's
//!    1-norm condition number is checked, and a Tikhonov-ridge fallback
//!    solves near-singular systems;
//! 4. **outlier rejection** — equations whose relative residual exceeds a
//!    MAD-based threshold are dropped (worst first, bounded) and the
//!    system refit.
//!
//! Every fallback taken is recorded in the returned
//! [`CalibrationReport`]. With no injector and the default single-shot
//! config, the pipeline is bit-identical to the historical noise-free
//! implementation.

use crate::probes::{build_probes, NUM_UNKNOWNS};
use crate::report::{CalibrationReport, ProbeStat};
use crate::{solver, CalError, DbVmConfig, ProbeDb};
use dbvirt_engine::{run_plan, CpuCosts};
use dbvirt_optimizer::OptimizerParams;
use dbvirt_storage::BufferPool;
use dbvirt_telemetry as telemetry;
use dbvirt_vmm::{FaultInjector, MachineSpec, ProbeFault, ResourceVector, VirtualMachine};

// Calibration telemetry (no-ops until `dbvirt_telemetry::enable()`).
static TM_PROBE_RUNS: telemetry::Counter = telemetry::Counter::new("calibrate.probe_runs");
static TM_RETRIES: telemetry::Counter = telemetry::Counter::new("calibrate.retries");
static TM_TIMEOUTS: telemetry::Counter = telemetry::Counter::new("calibrate.timeouts");
static TM_OUTLIER_DROPS: telemetry::Counter =
    telemetry::Counter::new("calibrate.outliers_dropped");
static TM_PROBE_VIRT_US: telemetry::Histogram =
    telemetry::Histogram::new("calibrate.probe_virtual_us");

/// Floor applied to recovered cost ratios so noise can never produce a
/// non-positive parameter. A parameter stuck at this floor is
/// unidentifiable and is reported in
/// [`CalibrationReport::clamped_params`].
pub const RATIO_FLOOR: f64 = 1e-6;

/// How multiple trial measurements of one probe are combined.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Aggregation {
    /// The median (even counts average the middle two).
    Median,
    /// The mean after trimming `trim` of the samples from each end.
    TrimmedMean {
        /// Fraction trimmed from each end, in `[0, 0.5)`.
        trim: f64,
    },
}

/// Knobs for the robust calibration loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationConfig {
    /// Fault injection on the measurement path (`None` = clean
    /// measurements).
    pub injector: Option<FaultInjector>,
    /// Trial measurements per probe.
    pub trials: usize,
    /// Trial aggregation.
    pub aggregation: Aggregation,
    /// Retries per trial on a transient fault or timeout.
    pub max_retries: usize,
    /// Maximum outlier equations the robust refit may reject.
    pub max_outlier_drops: usize,
    /// An equation is an outlier if its relative residual exceeds
    /// `outlier_sigmas × 1.4826 × MAD` of all residuals…
    pub outlier_sigmas: f64,
    /// …and also this absolute floor (so tight clean fits never reject).
    pub min_outlier_residual: f64,
    /// Condition-number limit above which the ridge fallback is used.
    pub condition_limit: f64,
    /// Relative Tikhonov ridge strength (`λ = ridge_lambda ×
    /// mean(diag(aᵀa))`).
    pub ridge_lambda: f64,
}

impl CalibrationConfig {
    /// The historical single-shot path: one clean measurement per probe,
    /// no retries, no outlier rejection, ridge only if the plain normal
    /// equations are numerically singular. This is the default.
    pub fn fast() -> CalibrationConfig {
        CalibrationConfig {
            injector: None,
            trials: 1,
            aggregation: Aggregation::Median,
            max_retries: 0,
            max_outlier_drops: 0,
            outlier_sigmas: 4.0,
            min_outlier_residual: 0.25,
            condition_limit: f64::INFINITY,
            ridge_lambda: 1e-8,
        }
    }

    /// The noise-hardened loop: five trials with median aggregation,
    /// three retries per trial, up to three outlier rejections, and a
    /// ridge fallback past a condition number of `1e12`.
    pub fn robust() -> CalibrationConfig {
        CalibrationConfig {
            trials: 5,
            max_retries: 3,
            max_outlier_drops: 3,
            condition_limit: 1e12,
            ..CalibrationConfig::fast()
        }
    }

    /// Returns the config with the fault injector installed.
    pub fn with_injector(mut self, injector: FaultInjector) -> CalibrationConfig {
        self.injector = Some(injector);
        self
    }

    /// Returns the config with `trials` trial measurements per probe.
    pub fn with_trials(mut self, trials: usize) -> CalibrationConfig {
        self.trials = trials.max(1);
        self
    }
}

impl Default for CalibrationConfig {
    fn default() -> CalibrationConfig {
        CalibrationConfig::fast()
    }
}

/// Calibration result with diagnostics.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// The recovered parameter vector.
    pub params: OptimizerParams,
    /// Root-mean-square residual of the fit, in seconds.
    pub rms_residual_seconds: f64,
    /// Per-probe measured (aggregated) seconds for probes that
    /// contributed an equation (diagnostic).
    pub measured_seconds: Vec<f64>,
    /// Health diagnostics: trials, retries, rejected outliers, condition
    /// number, clamped/degraded parameters.
    pub report: CalibrationReport,
}

/// Mixes a share vector into a fault-injection context key, so each
/// allocation's measurement campaign draws an independent noise stream.
fn share_context(shares: &ResourceVector) -> u64 {
    let mut h = shares.cpu().fraction().to_bits();
    h ^= shares.memory().fraction().to_bits().rotate_left(21);
    h ^= shares.disk().fraction().to_bits().rotate_left(42);
    h
}

/// Aggregates trial samples. `samples` must be non-empty.
fn aggregate(samples: &mut [f64], how: Aggregation) -> f64 {
    debug_assert!(!samples.is_empty());
    samples.sort_by(f64::total_cmp);
    let n = samples.len();
    match how {
        Aggregation::Median => {
            if n % 2 == 1 {
                samples[n / 2]
            } else {
                (samples[n / 2 - 1] + samples[n / 2]) / 2.0
            }
        }
        Aggregation::TrimmedMean { trim } => {
            let cut = ((n as f64) * trim.clamp(0.0, 0.499)) as usize;
            let kept = &samples[cut..n - cut];
            kept.iter().sum::<f64>() / kept.len() as f64
        }
    }
}

/// Median of a non-empty slice (copies; used for the MAD outlier scale).
fn median(values: &[f64]) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Measures one probe: executes the plan once (the simulator is
/// deterministic, so the true demand is a constant) and draws `trials`
/// noisy measurements from the injector, retrying transient faults.
/// Returns the aggregated seconds, or `None` if every trial was lost.
fn measure_probe(
    pdb: &mut ProbeDb,
    vm: &VirtualMachine,
    cfg: &DbVmConfig,
    probe: &crate::probes::Probe,
    probe_idx: usize,
    context: u64,
    rcfg: &CalibrationConfig,
    stat: &mut ProbeStat,
) -> Result<Option<f64>, CalError> {
    let mut probe_span = telemetry::span("calibrate.probe");
    probe_span.set_attr("probe", probe.name);
    TM_PROBE_RUNS.add(1);
    // Cold cache per probe, as in the paper's controlled measurements;
    // warm probes run once unmeasured first to populate the cache.
    let mut pool = BufferPool::new(cfg.buffer_pool_pages);
    if probe.cache == crate::probes::CacheState::Warm {
        run_plan(
            &mut pdb.db,
            &mut pool,
            &probe.plan,
            cfg.work_mem_bytes,
            CpuCosts::default(),
        )
        .map_err(|e| CalError::ProbeFailed {
            probe: probe.name.to_string(),
            reason: format!("warm-up failed: {e}"),
        })?;
    }
    let out = run_plan(
        &mut pdb.db,
        &mut pool,
        &probe.plan,
        cfg.work_mem_bytes,
        CpuCosts::default(),
    )
    .map_err(|e| CalError::ProbeFailed {
        probe: probe.name.to_string(),
        reason: e.to_string(),
    })?;
    let (cpu, seq, rand, writes) = vm.demand_seconds_breakdown(&out.demand);

    let Some(injector) = &rcfg.injector else {
        // Clean path: the component sum matches
        // `VirtualMachine::demand_seconds` bit for bit, and aggregation
        // over identical trials is the identity.
        stat.trials = 1;
        let seconds = cpu + seq + rand + writes;
        telemetry::advance_virtual_secs(seconds);
        TM_PROBE_VIRT_US.record_micros((seconds * 1e6) as u64);
        return Ok(Some(seconds));
    };

    let mut samples = Vec::with_capacity(rcfg.trials);
    for trial in 0..rcfg.trials.max(1) {
        for attempt in 0..=rcfg.max_retries {
            match injector.measure(context, probe_idx, trial, attempt, (cpu, seq, rand, writes)) {
                Ok(seconds) => {
                    samples.push(seconds);
                    break;
                }
                Err(fault) => {
                    if matches!(fault, ProbeFault::Timeout { .. }) {
                        stat.timeouts += 1;
                    }
                    if attempt < rcfg.max_retries {
                        stat.retries += 1;
                    }
                }
            }
        }
    }
    stat.trials = samples.len();
    TM_RETRIES.add(stat.retries as u64);
    TM_TIMEOUTS.add(stat.timeouts as u64);
    probe_span.set_attr("retries", stat.retries);
    if samples.is_empty() {
        probe_span.set_attr("dropped", true);
        return Ok(None);
    }
    let seconds = aggregate(&mut samples, rcfg.aggregation);
    telemetry::advance_virtual_secs(seconds);
    TM_PROBE_VIRT_US.record_micros(if seconds.is_finite() && seconds > 0.0 {
        (seconds * 1e6) as u64
    } else {
        0
    });
    Ok(Some(seconds))
}

/// The robust fit: solve with condition diagnostics and ridge fallback,
/// then iteratively reject the worst outlier equation (bounded) and
/// refit.
fn robust_fit(
    mut rows: Vec<Vec<f64>>,
    mut names: Vec<String>,
    rcfg: &CalibrationConfig,
    report: &mut CalibrationReport,
) -> Result<Vec<f64>, CalError> {
    let targets = |n: usize| vec![1.0; n];
    let mut fit =
        solver::least_squares_diagnosed(&rows, &targets(rows.len()), rcfg.condition_limit, rcfg.ridge_lambda)?;
    for _ in 0..rcfg.max_outlier_drops {
        if rows.len() <= NUM_UNKNOWNS {
            break;
        }
        // Relative residuals: rows are normalized to a target of 1, so a
        // residual of 0.3 means the equation misses by 30%.
        let resid: Vec<f64> = rows
            .iter()
            .map(|row| {
                row.iter().zip(&fit.x).map(|(a, x)| a * x).sum::<f64>() - 1.0
            })
            .collect();
        let abs: Vec<f64> = resid.iter().map(|r| r.abs()).collect();
        let scale = 1.4826 * median(&abs);
        let threshold = (rcfg.outlier_sigmas * scale).max(rcfg.min_outlier_residual);
        let worst = abs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty residuals");
        if abs[worst] <= threshold {
            break;
        }
        TM_OUTLIER_DROPS.add(1);
        report.rejected_outliers.push(names.remove(worst));
        rows.remove(worst);
        fit = solver::least_squares_diagnosed(
            &rows,
            &targets(rows.len()),
            rcfg.condition_limit,
            rcfg.ridge_lambda,
        )?;
    }
    report.condition_number = fit.condition;
    report.used_ridge = fit.used_ridge;
    Ok(fit.x)
}

/// Calibrates `P` for one allocation with explicit robustness knobs,
/// reusing an existing probe database.
pub fn calibrate_with_config(
    pdb: &mut ProbeDb,
    spec: MachineSpec,
    shares: ResourceVector,
    rcfg: &CalibrationConfig,
) -> Result<Calibration, CalError> {
    let mut cell_span = telemetry::span("calibrate.cell");
    cell_span.set_attr("cpu_share", shares.cpu().fraction());
    cell_span.set_attr("mem_share", shares.memory().fraction());
    cell_span.set_attr("disk_share", shares.disk().fraction());
    let vm = VirtualMachine::new(spec, shares).map_err(|e| CalError::ProbeFailed {
        probe: "<setup>".to_string(),
        reason: e.to_string(),
    })?;
    let cfg = DbVmConfig::for_vm(&vm);
    let probes = build_probes(pdb);
    let context = share_context(&shares);

    let mut design: Vec<Vec<f64>> = Vec::with_capacity(probes.len());
    let mut measured: Vec<f64> = Vec::with_capacity(probes.len());
    let mut stats: Vec<ProbeStat> = Vec::with_capacity(probes.len());
    for (pi, probe) in probes.iter().enumerate() {
        let mut stat = ProbeStat {
            name: probe.name.to_string(),
            trials: 0,
            retries: 0,
            timeouts: 0,
            dropped: false,
            seconds: f64::NAN,
        };
        match measure_probe(pdb, &vm, &cfg, probe, pi, context, rcfg, &mut stat)? {
            Some(seconds) => {
                stat.seconds = seconds;
                design.push(probe.coeffs.to_vec());
                measured.push(seconds);
            }
            None => stat.dropped = true,
        }
        stats.push(stat);
    }
    let mut report = CalibrationReport::pristine(stats);

    // Weight each equation by 1/measured so the fit minimizes *relative*
    // error: probes span four orders of magnitude (a warm 300-tuple index
    // probe vs. a cold full scan), and unweighted least squares would let
    // the big cold probes' model error swamp the parameters that only the
    // small warm probes can identify. Non-positive measurements carry no
    // usable signal and are dropped (and accounted for).
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(design.len());
    let mut row_names: Vec<String> = Vec::with_capacity(design.len());
    for ((row, &b), stat) in design
        .iter()
        .zip(&measured)
        .zip(report.probes.iter_mut().filter(|s| !s.dropped))
    {
        if b > 0.0 {
            rows.push(row.iter().map(|a| a / b).collect());
            row_names.push(stat.name.clone());
        } else {
            stat.dropped = true;
        }
    }
    report.dropped_probes = report.probes.iter().filter(|s| s.dropped).count();
    if rows.len() < NUM_UNKNOWNS {
        return Err(CalError::InsufficientProbes {
            kept: rows.len(),
            needed: NUM_UNKNOWNS,
        });
    }

    let x = {
        let _fit_span = telemetry::span("calibrate.fit");
        robust_fit(rows, row_names, rcfg, &mut report)?
    };
    debug_assert_eq!(x.len(), NUM_UNKNOWNS);
    let rms = solver::rms_residual(&design, &measured, &x);

    let seq_page_s = x[0];
    if !(seq_page_s.is_finite() && seq_page_s > 0.0) {
        return Err(CalError::BadParameter {
            name: "unit_seconds",
            value: seq_page_s,
        });
    }
    let mut clamped: Vec<String> = Vec::new();
    let mut ratio = |name: &'static str, v: f64| {
        let r = v / seq_page_s;
        if r < RATIO_FLOOR {
            clamped.push(name.to_string());
            RATIO_FLOOR
        } else {
            r
        }
    };
    let params = OptimizerParams {
        unit_seconds: seq_page_s,
        seq_page_cost: 1.0,
        random_page_cost: ratio("random_page_cost", x[1]),
        cpu_tuple_cost: ratio("cpu_tuple_cost", x[2]),
        cpu_index_tuple_cost: ratio("cpu_index_tuple_cost", x[3]),
        cpu_operator_cost: ratio("cpu_operator_cost", x[4]),
        effective_cache_size_pages: cfg.effective_cache_pages as f64,
        work_mem_bytes: cfg.work_mem_bytes as f64,
    };
    report.clamped_params = clamped;
    params.validate().map_err(|_| CalError::BadParameter {
        name: "params",
        value: f64::NAN,
    })?;
    Ok(Calibration {
        params,
        rms_residual_seconds: rms,
        measured_seconds: measured,
        report,
    })
}

/// Calibrates `P` for one allocation, reusing an existing probe database
/// (the cheap path when sweeping a grid). Single-shot clean measurements —
/// see [`calibrate_with_config`] for the noise-robust loop.
pub fn calibrate_with(
    pdb: &mut ProbeDb,
    spec: MachineSpec,
    shares: ResourceVector,
) -> Result<Calibration, CalError> {
    calibrate_with_config(pdb, spec, shares, &CalibrationConfig::default())
}

/// Calibrates `P` for one allocation, building a fresh probe database.
pub fn calibrate(spec: MachineSpec, shares: ResourceVector) -> Result<OptimizerParams, CalError> {
    let mut pdb = ProbeDb::build().map_err(|e| CalError::ProbeFailed {
        probe: "<probe-db>".to_string(),
        reason: e.to_string(),
    })?;
    pdb.validate().map_err(|reason| CalError::ProbeFailed {
        probe: "<probe-db>".to_string(),
        reason,
    })?;
    Ok(calibrate_with(&mut pdb, spec, shares)?.params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbvirt_vmm::{NoiseModel, Share};

    fn shares(cpu: f64, mem: f64, disk: f64) -> ResourceVector {
        ResourceVector::from_fractions(cpu, mem, disk).unwrap()
    }

    #[test]
    fn calibration_fits_the_measurements_tightly() {
        let mut pdb = ProbeDb::build().unwrap();
        let cal = calibrate_with(
            &mut pdb,
            MachineSpec::paper_testbed(),
            ResourceVector::uniform(Share::HALF),
        )
        .unwrap();
        // The engine's cost structure is genuinely linear in the probe
        // coefficients, so the fit should be essentially exact relative to
        // the measured magnitudes.
        let scale = cal.measured_seconds.iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(
            cal.rms_residual_seconds < 0.05 * scale,
            "rms {} vs scale {scale}",
            cal.rms_residual_seconds
        );
        // And the clean path reports a clean bill of health.
        assert!(cal.report.is_clean(), "{}", cal.report);
        assert_eq!(cal.report.total_retries(), 0);
    }

    #[test]
    fn recovered_parameters_reflect_the_machine() {
        let spec = MachineSpec::paper_testbed();
        let mut pdb = ProbeDb::build().unwrap();
        let cal = calibrate_with(&mut pdb, spec, ResourceVector::uniform(Share::FULL)).unwrap();
        let p = cal.params;
        // Sequential page time ≈ page_size / seq bandwidth (plus a little
        // per-page CPU) at full allocation.
        let pure_io = spec.seq_page_seconds();
        assert!(
            p.unit_seconds > pure_io * 0.9 && p.unit_seconds < pure_io * 2.0,
            "unit_seconds {} vs pure I/O {pure_io}",
            p.unit_seconds
        );
        // A random page is much costlier than a sequential one.
        assert!(p.random_page_cost > 10.0, "random {}", p.random_page_cost);
        // CPU per tuple is far below a page fetch.
        assert!(p.cpu_tuple_cost < 0.2, "tuple {}", p.cpu_tuple_cost);
        assert!(p.cpu_operator_cost < p.cpu_tuple_cost);
        // The warm index probes make the index-entry CPU cost identifiable:
        // it must come out well above the numerical floor and below the
        // per-tuple cost.
        assert!(
            p.cpu_index_tuple_cost > 10.0 * RATIO_FLOOR,
            "index tuple cost stuck at floor: {}",
            p.cpu_index_tuple_cost
        );
        assert!(p.cpu_index_tuple_cost < p.cpu_tuple_cost);
    }

    #[test]
    fn cpu_share_moves_cpu_parameters_not_io() {
        // The heart of Figure 3: cpu_tuple_cost (a ratio to the seq-page
        // fetch) falls as the CPU share grows, while unit_seconds (pure
        // I/O-dominated) stays put when only CPU changes.
        let spec = MachineSpec::paper_testbed();
        let mut pdb = ProbeDb::build().unwrap();
        let lo = calibrate_with(&mut pdb, spec, shares(0.25, 0.5, 0.5))
            .unwrap()
            .params;
        let hi = calibrate_with(&mut pdb, spec, shares(0.75, 0.5, 0.5))
            .unwrap()
            .params;
        assert!(
            lo.cpu_tuple_cost > 2.0 * hi.cpu_tuple_cost,
            "cpu_tuple_cost must fall ~3x from 25% to 75% CPU: {} vs {}",
            lo.cpu_tuple_cost,
            hi.cpu_tuple_cost
        );
        assert!(
            lo.cpu_operator_cost > 2.0 * hi.cpu_operator_cost,
            "cpu_operator_cost must fall too"
        );
        let drift = (lo.unit_seconds - hi.unit_seconds).abs() / hi.unit_seconds;
        assert!(drift < 0.25, "unit_seconds drift {drift}");
    }

    #[test]
    fn disk_share_moves_unit_seconds() {
        let spec = MachineSpec::paper_testbed();
        let mut pdb = ProbeDb::build().unwrap();
        let lo = calibrate_with(&mut pdb, spec, shares(0.5, 0.5, 0.25))
            .unwrap()
            .params;
        let hi = calibrate_with(&mut pdb, spec, shares(0.5, 0.5, 0.75))
            .unwrap()
            .params;
        assert!(
            lo.unit_seconds > 2.0 * hi.unit_seconds,
            "seq page time must fall ~3x with disk share: {} vs {}",
            lo.unit_seconds,
            hi.unit_seconds
        );
    }

    #[test]
    fn memory_share_moves_cache_settings() {
        let spec = MachineSpec::paper_testbed();
        let mut pdb = ProbeDb::build().unwrap();
        let lo = calibrate_with(&mut pdb, spec, shares(0.5, 0.25, 0.5))
            .unwrap()
            .params;
        let hi = calibrate_with(&mut pdb, spec, shares(0.5, 0.75, 0.5))
            .unwrap()
            .params;
        assert!(hi.effective_cache_size_pages > 2.0 * lo.effective_cache_size_pages);
        assert!(hi.work_mem_bytes > lo.work_mem_bytes);
    }

    #[test]
    fn convenience_entry_point_works() {
        let p = calibrate(
            MachineSpec::paper_testbed(),
            ResourceVector::uniform(Share::HALF),
        )
        .unwrap();
        p.validate().unwrap();
    }

    #[test]
    fn robust_config_without_injector_is_bit_identical_to_fast() {
        // The acceptance bar for the whole robustness layer: with the
        // fault injector disabled, every robust-mode mechanism (trials,
        // aggregation, outlier screening, condition diagnostics) must
        // reduce to the historical single-shot answer, to the bit.
        let spec = MachineSpec::paper_testbed();
        let mut pdb = ProbeDb::build().unwrap();
        for s in [shares(0.5, 0.5, 0.5), shares(0.25, 0.75, 0.5)] {
            let fast = calibrate_with(&mut pdb, spec, s).unwrap();
            let robust =
                calibrate_with_config(&mut pdb, spec, s, &CalibrationConfig::robust()).unwrap();
            let f = fast.params;
            let r = robust.params;
            for (name, a, b) in [
                ("unit_seconds", f.unit_seconds, r.unit_seconds),
                ("random_page_cost", f.random_page_cost, r.random_page_cost),
                ("cpu_tuple_cost", f.cpu_tuple_cost, r.cpu_tuple_cost),
                (
                    "cpu_index_tuple_cost",
                    f.cpu_index_tuple_cost,
                    r.cpu_index_tuple_cost,
                ),
                ("cpu_operator_cost", f.cpu_operator_cost, r.cpu_operator_cost),
            ] {
                assert_eq!(a.to_bits(), b.to_bits(), "{name}: {a} vs {b}");
            }
            assert!(robust.report.is_clean(), "{}", robust.report);
            assert!(robust.report.rejected_outliers.is_empty());
        }
    }

    #[test]
    fn aggregation_median_and_trimmed_mean() {
        let mut v = [5.0, 1.0, 3.0];
        assert_eq!(aggregate(&mut v, Aggregation::Median), 3.0);
        let mut v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(aggregate(&mut v, Aggregation::Median), 2.5);
        // Trimmed mean drops the 100.0 outlier.
        let mut v = [1.0, 2.0, 3.0, 4.0, 100.0];
        let t = aggregate(&mut v, Aggregation::TrimmedMean { trim: 0.2 });
        assert_eq!(t, 3.0);
        // trim = 0 is the plain mean.
        let mut v = [1.0, 3.0];
        assert_eq!(aggregate(&mut v, Aggregation::TrimmedMean { trim: 0.0 }), 2.0);
    }

    #[test]
    fn jittered_measurements_still_recover_parameters() {
        let spec = MachineSpec::paper_testbed();
        let mut pdb = ProbeDb::build().unwrap();
        let clean = calibrate_with(&mut pdb, spec, shares(0.5, 0.5, 0.5)).unwrap();
        let injector = FaultInjector::new(NoiseModel::uniform_jitter(0.10), 17);
        let cfg = CalibrationConfig::robust().with_injector(injector);
        let noisy = calibrate_with_config(&mut pdb, spec, shares(0.5, 0.5, 0.5), &cfg).unwrap();
        let within = |a: f64, b: f64, tol: f64| a / b < 1.0 + tol && b / a < 1.0 + tol;
        assert!(
            within(noisy.params.unit_seconds, clean.params.unit_seconds, 0.15),
            "unit_seconds {} vs {}",
            noisy.params.unit_seconds,
            clean.params.unit_seconds
        );
        assert!(
            within(
                noisy.params.random_page_cost,
                clean.params.random_page_cost,
                0.30
            ),
            "random_page_cost {} vs {}",
            noisy.params.random_page_cost,
            clean.params.random_page_cost
        );
        assert!(
            within(noisy.params.cpu_tuple_cost, clean.params.cpu_tuple_cost, 0.50),
            "cpu_tuple_cost {} vs {}",
            noisy.params.cpu_tuple_cost,
            clean.params.cpu_tuple_cost
        );
    }

    #[test]
    fn transient_failures_are_retried_to_success() {
        let spec = MachineSpec::paper_testbed();
        let mut pdb = ProbeDb::build().unwrap();
        let injector = FaultInjector::new(NoiseModel::none().with_failures(0.3), 23);
        let cfg = CalibrationConfig::robust().with_injector(injector);
        let cal = calibrate_with_config(&mut pdb, spec, shares(0.5, 0.5, 0.5), &cfg).unwrap();
        // p(fail) = 0.3 over 8 probes × 5 trials: retries are essentially
        // certain, and with 3 retries per trial every trial recovers with
        // overwhelming probability for this seed.
        assert!(cal.report.total_retries() > 0, "{}", cal.report);
        assert_eq!(cal.report.dropped_probes, 0, "{}", cal.report);
        // The measurements themselves are clean (failures only), so the
        // parameters match the noise-free fit bit for bit.
        let clean = calibrate_with(&mut pdb, spec, shares(0.5, 0.5, 0.5)).unwrap();
        assert_eq!(
            cal.params.unit_seconds.to_bits(),
            clean.params.unit_seconds.to_bits()
        );
    }

    #[test]
    fn forced_ridge_path_stays_close_and_is_reported() {
        let spec = MachineSpec::paper_testbed();
        let mut pdb = ProbeDb::build().unwrap();
        let clean = calibrate_with(&mut pdb, spec, shares(0.5, 0.5, 0.5)).unwrap();
        // A condition limit of 0 forces the Tikhonov path on a perfectly
        // solvable system: it must not panic, must flag used_ridge, and
        // with a tiny λ must land near the plain solution.
        let cfg = CalibrationConfig {
            condition_limit: 0.0,
            ..CalibrationConfig::robust()
        };
        let ridged = calibrate_with_config(&mut pdb, spec, shares(0.5, 0.5, 0.5), &cfg).unwrap();
        assert!(ridged.report.used_ridge);
        assert!(ridged.report.condition_number.is_finite());
        let rel = (ridged.params.unit_seconds - clean.params.unit_seconds).abs()
            / clean.params.unit_seconds;
        assert!(rel < 1e-3, "ridge drifted {rel}");
    }

    #[test]
    fn total_loss_of_probes_is_a_typed_error() {
        let spec = MachineSpec::paper_testbed();
        let mut pdb = ProbeDb::build().unwrap();
        // Every measurement fails and there are no retries: all probes
        // drop, and the runner must return InsufficientProbes, not die on
        // an underdetermined-system assert.
        let injector = FaultInjector::new(NoiseModel::none().with_failures(1.0), 1);
        let cfg = CalibrationConfig {
            max_retries: 0,
            trials: 1,
            ..CalibrationConfig::robust()
        }
        .with_injector(injector);
        let err = calibrate_with_config(&mut pdb, spec, shares(0.5, 0.5, 0.5), &cfg).unwrap_err();
        assert_eq!(
            err,
            CalError::InsufficientProbes {
                kept: 0,
                needed: NUM_UNKNOWNS
            }
        );
    }

    #[test]
    fn outlier_spikes_are_rejected_and_reported() {
        let spec = MachineSpec::paper_testbed();
        let mut pdb = ProbeDb::build().unwrap();
        let clean = calibrate_with(&mut pdb, spec, shares(0.5, 0.5, 0.5)).unwrap();
        // Single-trial measurements with occasional ≥10x spikes and no
        // timeout protection: the only defense is the robust refit. Seed
        // 1 spikes two of the eight probes.
        let injector = FaultInjector::new(NoiseModel::none().with_outliers(0.25, 10.0), 1);
        let cfg = CalibrationConfig {
            trials: 1,
            ..CalibrationConfig::robust()
        }
        .with_injector(injector);
        let cal = calibrate_with_config(&mut pdb, spec, shares(0.5, 0.5, 0.5), &cfg).unwrap();
        assert_eq!(
            cal.report.rejected_outliers.len(),
            2,
            "seed 1 spikes 2 of 8 probes; report: {}",
            cal.report
        );
        // With the spiked equations rejected, the fit is the clean one.
        let rel = (cal.params.unit_seconds - clean.params.unit_seconds).abs()
            / clean.params.unit_seconds;
        assert!(rel < 1e-6, "unit_seconds drifted {rel} despite rejection");
    }

    #[test]
    fn median_trials_suppress_spikes_the_refit_alone_cannot() {
        // Seed 2 at a single trial spikes five of eight probes — more
        // than `max_outlier_drops` can reject, and a barely
        // overdetermined system cannot identify them all from residuals.
        // The first rung of the degradation ladder (multi-trial median)
        // handles it: a probe's median only spikes if ≥3 of 5 trials
        // spike (p ≈ 0.1 at p_spike = 0.25).
        let spec = MachineSpec::paper_testbed();
        let mut pdb = ProbeDb::build().unwrap();
        let clean = calibrate_with(&mut pdb, spec, shares(0.5, 0.5, 0.5)).unwrap();
        let injector = FaultInjector::new(NoiseModel::none().with_outliers(0.25, 10.0), 2);
        let cfg = CalibrationConfig::robust().with_injector(injector);
        let cal = calibrate_with_config(&mut pdb, spec, shares(0.5, 0.5, 0.5), &cfg).unwrap();
        let rel = (cal.params.unit_seconds - clean.params.unit_seconds).abs()
            / clean.params.unit_seconds;
        assert!(rel < 0.05, "median trials should defuse the spikes: {rel}");
    }
}
