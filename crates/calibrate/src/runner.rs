//! Running a calibration: probes → measurements → least squares → `P(R)`.
//!
//! `calibrate` is the paper's "experimental calibration process, performed
//! once for each `R`": it configures a simulated VM with the requested
//! shares, runs each probe on a cold buffer pool sized from the VM's
//! memory, converts the measured [`dbvirt_vmm::ResourceDemand`]s into
//! simulated seconds, and solves the overdetermined linear system for the
//! five time-domain parameters. Memory-derived settings
//! (`effective_cache_size`, `work_mem`) come from the deployment policy in
//! [`crate::vmdb`] — they are configured, not measured, just as a DBA sets
//! them from the machine's known RAM.

use crate::probes::{build_probes, NUM_UNKNOWNS};
use crate::{solver, CalError, DbVmConfig, ProbeDb};
use dbvirt_engine::{run_plan, CpuCosts};
use dbvirt_optimizer::OptimizerParams;
use dbvirt_storage::BufferPool;
use dbvirt_vmm::{MachineSpec, ResourceVector, VirtualMachine};

/// Floor applied to recovered cost ratios so noise can never produce a
/// non-positive parameter.
const RATIO_FLOOR: f64 = 1e-6;

/// Calibration result with diagnostics.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// The recovered parameter vector.
    pub params: OptimizerParams,
    /// Root-mean-square residual of the fit, in seconds.
    pub rms_residual_seconds: f64,
    /// Per-probe measured seconds (diagnostic).
    pub measured_seconds: Vec<f64>,
}

/// Calibrates `P` for one allocation, reusing an existing probe database
/// (the cheap path when sweeping a grid).
pub fn calibrate_with(
    pdb: &mut ProbeDb,
    spec: MachineSpec,
    shares: ResourceVector,
) -> Result<Calibration, CalError> {
    let vm = VirtualMachine::new(spec, shares).map_err(|e| CalError::ProbeFailed {
        probe: "<setup>".to_string(),
        reason: e.to_string(),
    })?;
    let cfg = DbVmConfig::for_vm(&vm);
    let probes = build_probes(pdb);

    let mut design: Vec<Vec<f64>> = Vec::with_capacity(probes.len());
    let mut measured: Vec<f64> = Vec::with_capacity(probes.len());
    for probe in &probes {
        // Cold cache per probe, as in the paper's controlled measurements;
        // warm probes run once unmeasured first to populate the cache.
        let mut pool = BufferPool::new(cfg.buffer_pool_pages);
        if probe.cache == crate::probes::CacheState::Warm {
            run_plan(
                &mut pdb.db,
                &mut pool,
                &probe.plan,
                cfg.work_mem_bytes,
                CpuCosts::default(),
            )
            .map_err(|e| CalError::ProbeFailed {
                probe: probe.name.to_string(),
                reason: format!("warm-up failed: {e}"),
            })?;
        }
        let out = run_plan(
            &mut pdb.db,
            &mut pool,
            &probe.plan,
            cfg.work_mem_bytes,
            CpuCosts::default(),
        )
        .map_err(|e| CalError::ProbeFailed {
            probe: probe.name.to_string(),
            reason: e.to_string(),
        })?;
        design.push(probe.coeffs.to_vec());
        measured.push(vm.demand_seconds(&out.demand));
    }

    // Weight each equation by 1/measured so the fit minimizes *relative*
    // error: probes span four orders of magnitude (a warm 300-tuple index
    // probe vs. a cold full scan), and unweighted least squares would let
    // the big cold probes' model error swamp the parameters that only the
    // small warm probes can identify.
    let weighted: Vec<(Vec<f64>, f64)> = design
        .iter()
        .zip(&measured)
        .filter(|(_, &b)| b > 0.0)
        .map(|(row, &b)| (row.iter().map(|a| a / b).collect(), 1.0))
        .collect();
    let (w_design, w_b): (Vec<Vec<f64>>, Vec<f64>) = weighted.into_iter().unzip();
    let x = solver::least_squares(&w_design, &w_b)?;
    debug_assert_eq!(x.len(), NUM_UNKNOWNS);
    let rms = solver::rms_residual(&design, &measured, &x);

    let seq_page_s = x[0];
    if !(seq_page_s.is_finite() && seq_page_s > 0.0) {
        return Err(CalError::BadParameter {
            name: "unit_seconds",
            value: seq_page_s,
        });
    }
    let ratio = |v: f64| (v / seq_page_s).max(RATIO_FLOOR);
    let params = OptimizerParams {
        unit_seconds: seq_page_s,
        seq_page_cost: 1.0,
        random_page_cost: ratio(x[1]),
        cpu_tuple_cost: ratio(x[2]),
        cpu_index_tuple_cost: ratio(x[3]),
        cpu_operator_cost: ratio(x[4]),
        effective_cache_size_pages: cfg.effective_cache_pages as f64,
        work_mem_bytes: cfg.work_mem_bytes as f64,
    };
    params.validate().map_err(|_| CalError::BadParameter {
        name: "params",
        value: f64::NAN,
    })?;
    Ok(Calibration {
        params,
        rms_residual_seconds: rms,
        measured_seconds: measured,
    })
}

/// Calibrates `P` for one allocation, building a fresh probe database.
pub fn calibrate(spec: MachineSpec, shares: ResourceVector) -> Result<OptimizerParams, CalError> {
    let mut pdb = ProbeDb::build().map_err(|e| CalError::ProbeFailed {
        probe: "<probe-db>".to_string(),
        reason: e.to_string(),
    })?;
    Ok(calibrate_with(&mut pdb, spec, shares)?.params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbvirt_vmm::Share;

    fn shares(cpu: f64, mem: f64, disk: f64) -> ResourceVector {
        ResourceVector::from_fractions(cpu, mem, disk).unwrap()
    }

    #[test]
    fn calibration_fits_the_measurements_tightly() {
        let mut pdb = ProbeDb::build().unwrap();
        let cal = calibrate_with(
            &mut pdb,
            MachineSpec::paper_testbed(),
            ResourceVector::uniform(Share::HALF),
        )
        .unwrap();
        // The engine's cost structure is genuinely linear in the probe
        // coefficients, so the fit should be essentially exact relative to
        // the measured magnitudes.
        let scale = cal.measured_seconds.iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(
            cal.rms_residual_seconds < 0.05 * scale,
            "rms {} vs scale {scale}",
            cal.rms_residual_seconds
        );
    }

    #[test]
    fn recovered_parameters_reflect_the_machine() {
        let spec = MachineSpec::paper_testbed();
        let mut pdb = ProbeDb::build().unwrap();
        let cal = calibrate_with(&mut pdb, spec, ResourceVector::uniform(Share::FULL)).unwrap();
        let p = cal.params;
        // Sequential page time ≈ page_size / seq bandwidth (plus a little
        // per-page CPU) at full allocation.
        let pure_io = spec.seq_page_seconds();
        assert!(
            p.unit_seconds > pure_io * 0.9 && p.unit_seconds < pure_io * 2.0,
            "unit_seconds {} vs pure I/O {pure_io}",
            p.unit_seconds
        );
        // A random page is much costlier than a sequential one.
        assert!(p.random_page_cost > 10.0, "random {}", p.random_page_cost);
        // CPU per tuple is far below a page fetch.
        assert!(p.cpu_tuple_cost < 0.2, "tuple {}", p.cpu_tuple_cost);
        assert!(p.cpu_operator_cost < p.cpu_tuple_cost);
        // The warm index probes make the index-entry CPU cost identifiable:
        // it must come out well above the numerical floor and below the
        // per-tuple cost.
        assert!(
            p.cpu_index_tuple_cost > 10.0 * RATIO_FLOOR,
            "index tuple cost stuck at floor: {}",
            p.cpu_index_tuple_cost
        );
        assert!(p.cpu_index_tuple_cost < p.cpu_tuple_cost);
    }

    #[test]
    fn cpu_share_moves_cpu_parameters_not_io() {
        // The heart of Figure 3: cpu_tuple_cost (a ratio to the seq-page
        // fetch) falls as the CPU share grows, while unit_seconds (pure
        // I/O-dominated) stays put when only CPU changes.
        let spec = MachineSpec::paper_testbed();
        let mut pdb = ProbeDb::build().unwrap();
        let lo = calibrate_with(&mut pdb, spec, shares(0.25, 0.5, 0.5))
            .unwrap()
            .params;
        let hi = calibrate_with(&mut pdb, spec, shares(0.75, 0.5, 0.5))
            .unwrap()
            .params;
        assert!(
            lo.cpu_tuple_cost > 2.0 * hi.cpu_tuple_cost,
            "cpu_tuple_cost must fall ~3x from 25% to 75% CPU: {} vs {}",
            lo.cpu_tuple_cost,
            hi.cpu_tuple_cost
        );
        assert!(
            lo.cpu_operator_cost > 2.0 * hi.cpu_operator_cost,
            "cpu_operator_cost must fall too"
        );
        let drift = (lo.unit_seconds - hi.unit_seconds).abs() / hi.unit_seconds;
        assert!(drift < 0.25, "unit_seconds drift {drift}");
    }

    #[test]
    fn disk_share_moves_unit_seconds() {
        let spec = MachineSpec::paper_testbed();
        let mut pdb = ProbeDb::build().unwrap();
        let lo = calibrate_with(&mut pdb, spec, shares(0.5, 0.5, 0.25))
            .unwrap()
            .params;
        let hi = calibrate_with(&mut pdb, spec, shares(0.5, 0.5, 0.75))
            .unwrap()
            .params;
        assert!(
            lo.unit_seconds > 2.0 * hi.unit_seconds,
            "seq page time must fall ~3x with disk share: {} vs {}",
            lo.unit_seconds,
            hi.unit_seconds
        );
    }

    #[test]
    fn memory_share_moves_cache_settings() {
        let spec = MachineSpec::paper_testbed();
        let mut pdb = ProbeDb::build().unwrap();
        let lo = calibrate_with(&mut pdb, spec, shares(0.5, 0.25, 0.5))
            .unwrap()
            .params;
        let hi = calibrate_with(&mut pdb, spec, shares(0.5, 0.75, 0.5))
            .unwrap()
            .params;
        assert!(hi.effective_cache_size_pages > 2.0 * lo.effective_cache_size_pages);
        assert!(hi.work_mem_bytes > lo.work_mem_bytes);
    }

    #[test]
    fn convenience_entry_point_works() {
        let p = calibrate(
            MachineSpec::paper_testbed(),
            ResourceVector::uniform(Share::HALF),
        )
        .unwrap();
        p.validate().unwrap();
    }
}
