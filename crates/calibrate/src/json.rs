//! A minimal JSON value model, parser, and pretty printer.
//!
//! The build environment has no network access, so the grid cache cannot
//! use serde/serde_json; this module is the small, dependency-free subset
//! the calibration cache needs. Numbers round-trip exactly: floats are
//! printed with Rust's shortest-roundtrip formatting and parsed with the
//! standard library's `f64` parser.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; integral values print without `.0`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap) so output is canonical.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional degradation.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{:?}` is Rust's shortest representation that round-trips.
        let _ = write!(out, "{n:?}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Json::obj([
            ("name", Json::Str("grid \"x\"\n".to_string())),
            ("points", Json::Arr(vec![Json::Num(0.25), Json::Num(0.5)])),
            ("count", Json::Num(6.0)),
            ("unit", Json::Num(9.765625e-5)),
            ("nested", Json::obj([("ok", Json::Bool(true)), ("none", Json::Null)])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(Default::default())),
        ]);
        let text = doc.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn floats_roundtrip_bitwise() {
        for v in [0.1, 1.0 / 3.0, 9.765625e-5, 1e300, -2.5e-9, 4.0] {
            let text = Json::Num(v).pretty();
            let back = Json::parse(&text).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), v.to_bits(), "{text}");
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }
}
