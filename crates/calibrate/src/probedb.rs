//! The synthetic calibration database.
//!
//! Calibration needs tables whose physical layout is fully known so that
//! measured runtimes can be expressed in terms of page and tuple counts:
//!
//! * `cal_narrow(a, b, c)` — many integer rows per page; column `a` is
//!   unindexed (forcing the sequential-scan plans the paper's probes rely
//!   on), column `b` carries a B+tree index for the random-I/O probes;
//! * `cal_wide(a, pad)` — long string padding so few rows fit per page,
//!   giving a very different pages-to-rows ratio (this is what separates
//!   per-page costs from per-tuple costs in the linear system).

use dbvirt_engine::{Database, IndexId, TableId};
use dbvirt_storage::{DataType, Datum, Field, Schema, StorageError, Tuple};

/// Rows in the narrow calibration table.
pub const NARROW_ROWS: i64 = 40_000;
/// Rows in the wide calibration table.
pub const WIDE_ROWS: i64 = 2_000;
/// Padding bytes per wide row (few rows per 8 KiB page).
pub const WIDE_PAD: usize = 1000;

/// The calibration database plus the catalog ids probes need.
#[derive(Debug)]
pub struct ProbeDb {
    /// The database holding the calibration tables.
    pub db: Database,
    /// `cal_narrow(a INT, b INT, c INT)`.
    pub narrow: TableId,
    /// `cal_wide(a INT, pad STR)`.
    pub wide: TableId,
    /// Index on `cal_narrow.b`.
    pub b_index: IndexId,
}

impl ProbeDb {
    /// Builds the calibration database deterministically and analyzes it.
    pub fn build() -> Result<ProbeDb, StorageError> {
        let mut db = Database::new();

        let narrow = db.create_table(
            "cal_narrow",
            Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Int),
                Field::new("c", DataType::Int),
            ]),
        );
        // `b` is a deterministic permutation-ish scatter so that an index
        // range on `b` touches heap pages randomly, as a real secondary
        // index does.
        db.insert_rows(
            narrow,
            (0..NARROW_ROWS).map(|i| {
                let b = (i * 48_271) % NARROW_ROWS; // Lehmer-style scatter
                Tuple::new(vec![Datum::Int(i), Datum::Int(b), Datum::Int(i % 97)])
            }),
        )?;
        let b_index = db.create_index("cal_narrow_b", narrow, 1)?;

        let wide = db.create_table(
            "cal_wide",
            Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("pad", DataType::Str),
            ]),
        );
        let pad: String = "x".repeat(WIDE_PAD);
        db.insert_rows(
            wide,
            (0..WIDE_ROWS).map(|i| Tuple::new(vec![Datum::Int(i), Datum::str(pad.clone())])),
        )?;

        db.analyze_all()?;
        Ok(ProbeDb {
            db,
            narrow,
            wide,
            b_index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_expected_shape() {
        let p = ProbeDb::build().unwrap();
        let narrow = p.db.table(p.narrow).stats.as_ref().unwrap();
        let wide = p.db.table(p.wide).stats.as_ref().unwrap();
        assert_eq!(narrow.n_rows, NARROW_ROWS as u64);
        assert_eq!(wide.n_rows, WIDE_ROWS as u64);
        // The wide table must have far fewer rows per page.
        assert!(wide.rows_per_page() < narrow.rows_per_page() / 10.0);
        // Index covers all rows.
        assert_eq!(p.db.index_tree(p.b_index).len(), NARROW_ROWS as usize);
        // b values are a scatter: ndv == rows (48271 is coprime with 40000).
        assert_eq!(narrow.columns[1].n_distinct, NARROW_ROWS as u64);
    }

    #[test]
    fn build_is_deterministic() {
        let a = ProbeDb::build().unwrap();
        let b = ProbeDb::build().unwrap();
        let sa = a.db.table(a.narrow).stats.as_ref().unwrap();
        let sb = b.db.table(b.narrow).stats.as_ref().unwrap();
        assert_eq!(sa, sb);
    }
}
