//! The synthetic calibration database.
//!
//! Calibration needs tables whose physical layout is fully known so that
//! measured runtimes can be expressed in terms of page and tuple counts:
//!
//! * `cal_narrow(a, b, c)` — many integer rows per page; column `a` is
//!   unindexed (forcing the sequential-scan plans the paper's probes rely
//!   on), column `b` carries a B+tree index for the random-I/O probes;
//! * `cal_wide(a, pad)` — long string padding so few rows fit per page,
//!   giving a very different pages-to-rows ratio (this is what separates
//!   per-page costs from per-tuple costs in the linear system).

use dbvirt_engine::{Database, IndexId, TableId};
use dbvirt_storage::{DataType, Datum, Field, Schema, StorageError, Tuple};

/// Rows in the narrow calibration table.
pub const NARROW_ROWS: i64 = 40_000;
/// Rows in the wide calibration table.
pub const WIDE_ROWS: i64 = 2_000;
/// Padding bytes per wide row (few rows per 8 KiB page).
pub const WIDE_PAD: usize = 1000;

/// The calibration database plus the catalog ids probes need.
#[derive(Debug)]
pub struct ProbeDb {
    /// The database holding the calibration tables.
    pub db: Database,
    /// `cal_narrow(a INT, b INT, c INT)`.
    pub narrow: TableId,
    /// `cal_wide(a INT, pad STR)`.
    pub wide: TableId,
    /// Index on `cal_narrow.b`.
    pub b_index: IndexId,
}

impl ProbeDb {
    /// Builds the calibration database deterministically and analyzes it.
    pub fn build() -> Result<ProbeDb, StorageError> {
        let mut db = Database::new();

        let narrow = db.create_table(
            "cal_narrow",
            Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Int),
                Field::new("c", DataType::Int),
            ]),
        );
        // `b` is a deterministic permutation-ish scatter so that an index
        // range on `b` touches heap pages randomly, as a real secondary
        // index does.
        db.insert_rows(
            narrow,
            (0..NARROW_ROWS).map(|i| {
                let b = (i * 48_271) % NARROW_ROWS; // Lehmer-style scatter
                Tuple::new(vec![Datum::Int(i), Datum::Int(b), Datum::Int(i % 97)])
            }),
        )?;
        let b_index = db.create_index("cal_narrow_b", narrow, 1)?;

        let wide = db.create_table(
            "cal_wide",
            Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("pad", DataType::Str),
            ]),
        );
        let pad: String = "x".repeat(WIDE_PAD);
        db.insert_rows(
            wide,
            (0..WIDE_ROWS).map(|i| Tuple::new(vec![Datum::Int(i), Datum::str(pad.clone())])),
        )?;

        db.analyze_all()?;
        Ok(ProbeDb {
            db,
            narrow,
            wide,
            b_index,
        })
    }

    /// Checks the physical-layout assumptions the probe design and its
    /// linear system rely on. The calibration runner refuses to fit
    /// against a database that violates them — a misbuilt probe database
    /// would not crash the solver, it would silently produce garbage
    /// parameters, which is worse.
    pub fn validate(&self) -> Result<(), String> {
        let narrow = self
            .db
            .table(self.narrow)
            .stats
            .as_ref()
            .ok_or("cal_narrow has no statistics")?;
        let wide = self
            .db
            .table(self.wide)
            .stats
            .as_ref()
            .ok_or("cal_wide has no statistics")?;
        if narrow.n_rows != NARROW_ROWS as u64 || wide.n_rows != WIDE_ROWS as u64 {
            return Err(format!(
                "calibration tables have {} / {} rows, expected {NARROW_ROWS} / {WIDE_ROWS}",
                narrow.n_rows, wide.n_rows
            ));
        }
        // The wide table's job is separating per-page from per-tuple
        // costs; without a large rows-per-page gap the columns of the
        // linear system become near-collinear.
        if wide.rows_per_page() * 10.0 > narrow.rows_per_page() {
            return Err(format!(
                "wide table packs {:.1} rows/page vs narrow {:.1}; \
                 per-page and per-tuple costs are not separable",
                wide.rows_per_page(),
                narrow.rows_per_page()
            ));
        }
        // The random-I/O probes assume the index covers every row.
        let indexed = self.db.index_tree(self.b_index).len();
        if indexed != NARROW_ROWS as usize {
            return Err(format!(
                "index cal_narrow_b covers {indexed} of {NARROW_ROWS} rows"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_expected_shape() {
        let p = ProbeDb::build().unwrap();
        let narrow = p.db.table(p.narrow).stats.as_ref().unwrap();
        let wide = p.db.table(p.wide).stats.as_ref().unwrap();
        assert_eq!(narrow.n_rows, NARROW_ROWS as u64);
        assert_eq!(wide.n_rows, WIDE_ROWS as u64);
        // The wide table must have far fewer rows per page.
        assert!(wide.rows_per_page() < narrow.rows_per_page() / 10.0);
        // Index covers all rows.
        assert_eq!(p.db.index_tree(p.b_index).len(), NARROW_ROWS as usize);
        // b values are a scatter: ndv == rows (48271 is coprime with 40000).
        assert_eq!(narrow.columns[1].n_distinct, NARROW_ROWS as u64);
    }

    #[test]
    fn a_fresh_build_validates() {
        ProbeDb::build().unwrap().validate().unwrap();
    }

    #[test]
    fn validation_catches_a_misbuilt_database() {
        // Point the wide handle at the narrow table: rows-per-page
        // separation vanishes and validation must refuse.
        let mut p = ProbeDb::build().unwrap();
        p.wide = p.narrow;
        let err = p.validate().unwrap_err();
        assert!(err.contains("rows"), "{err}");
    }

    #[test]
    fn build_is_deterministic() {
        let a = ProbeDb::build().unwrap();
        let b = ProbeDb::build().unwrap();
        let sa = a.db.table(a.narrow).stats.as_ref().unwrap();
        let sb = b.db.table(b.narrow).stats.as_ref().unwrap();
        assert_eq!(sa, sb);
    }
}
