//! Calibration error type.

use std::error::Error;
use std::fmt;

/// Errors raised by the calibration pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CalError {
    /// The linear system was singular or ill-conditioned.
    SingularSystem,
    /// A probe execution failed.
    ProbeFailed {
        /// The probe's name.
        probe: String,
        /// The underlying failure.
        reason: String,
    },
    /// A recovered parameter was non-physical (non-positive).
    BadParameter {
        /// The parameter's name.
        name: &'static str,
        /// The recovered value.
        value: f64,
    },
    /// The grid cache failed to (de)serialize.
    CacheIo {
        /// Description of the failure.
        reason: String,
    },
    /// An interpolation query fell outside the calibrated grid.
    OutOfGrid {
        /// The requested share.
        value: f64,
        /// Axis name.
        axis: &'static str,
    },
    /// Too few usable probe measurements survived to identify the
    /// parameters (dropped probes, filtered rows, or an empty system).
    InsufficientProbes {
        /// Equations kept after drops and filters.
        kept: usize,
        /// Minimum equations needed (the number of unknowns).
        needed: usize,
    },
    /// A linear system had inconsistent dimensions (ragged rows or a
    /// row-count mismatch between the matrix and the right-hand side).
    ShapeMismatch {
        /// What was malformed.
        reason: String,
    },
}

impl fmt::Display for CalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalError::SingularSystem => {
                write!(
                    f,
                    "calibration system is singular; probes are not independent"
                )
            }
            CalError::ProbeFailed { probe, reason } => {
                write!(f, "probe {probe:?} failed: {reason}")
            }
            CalError::BadParameter { name, value } => {
                write!(f, "calibrated {name} = {value} is non-physical")
            }
            CalError::CacheIo { reason } => write!(f, "grid cache I/O failed: {reason}"),
            CalError::OutOfGrid { value, axis } => {
                write!(
                    f,
                    "share {value} on axis {axis} is outside the calibrated grid"
                )
            }
            CalError::InsufficientProbes { kept, needed } => {
                write!(
                    f,
                    "only {kept} usable probe equations for {needed} unknowns"
                )
            }
            CalError::ShapeMismatch { reason } => {
                write!(f, "malformed linear system: {reason}")
            }
        }
    }
}

impl Error for CalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(CalError::SingularSystem.to_string().contains("singular"));
        let e = CalError::OutOfGrid {
            value: 0.9,
            axis: "cpu",
        };
        assert!(e.to_string().contains("0.9"));
    }
}
