//! Dense linear algebra for calibration: Gaussian elimination and linear
//! least squares via normal equations.
//!
//! The systems here are tiny (five to six unknowns, a dozen probes), so a
//! straightforward partial-pivoting implementation is both sufficient and
//! dependency-free.

use crate::CalError;

/// Solves the square system `a · x = b` in place (Gaussian elimination with
/// partial pivoting). `a` is row-major `n × n`.
pub fn solve_square(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>, CalError> {
    let n = b.len();
    assert!(
        a.len() == n && a.iter().all(|row| row.len() == n),
        "shape mismatch"
    );

    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty range");
        if a[pivot_row][col].abs() < 1e-12 {
            return Err(CalError::SingularSystem);
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);

        // Eliminate below.
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            // Split the borrow: the pivot row is read-only here.
            let (pivot_row_slice, target) = {
                let (head, tail) = a.split_at_mut(row);
                (&head[col], &mut tail[0])
            };
            for (t, p) in target[col..n].iter_mut().zip(&pivot_row_slice[col..n]) {
                *t -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Ok(x)
}

/// Solves the overdetermined system `a · x ≈ b` in the least-squares sense
/// via the normal equations `aᵀa · x = aᵀb`. `a` is row-major `m × n` with
/// `m ≥ n`.
pub fn least_squares(a: &[Vec<f64>], b: &[f64]) -> Result<Vec<f64>, CalError> {
    let m = a.len();
    assert_eq!(m, b.len(), "row count mismatch");
    assert!(m > 0, "empty system");
    let n = a[0].len();
    assert!(a.iter().all(|row| row.len() == n), "ragged matrix");
    assert!(m >= n, "underdetermined system ({m} rows, {n} unknowns)");

    let mut ata = vec![vec![0.0; n]; n];
    let mut atb = vec![0.0; n];
    for row in 0..m {
        for i in 0..n {
            atb[i] += a[row][i] * b[row];
            for j in 0..n {
                ata[i][j] += a[row][i] * a[row][j];
            }
        }
    }
    solve_square(ata, atb)
}

/// Root-mean-square residual of a candidate solution (used in tests and
/// calibration diagnostics).
pub fn rms_residual(a: &[Vec<f64>], b: &[f64], x: &[f64]) -> f64 {
    let m = a.len() as f64;
    let ss: f64 = a
        .iter()
        .zip(b)
        .map(|(row, &bi)| {
            let pred: f64 = row.iter().zip(x).map(|(aij, xj)| aij * xj).sum();
            (pred - bi).powi(2)
        })
        .sum();
    (ss / m).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_square_system() {
        // x + 2y = 5; 3x - y = 1  => x = 1, y = 2.
        let a = vec![vec![1.0, 2.0], vec![3.0, -1.0]];
        let b = vec![5.0, 1.0];
        let x = solve_square(a, b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = vec![vec![0.0, 1.0], vec![2.0, 0.0]];
        let b = vec![3.0, 4.0];
        let x = solve_square(a, b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn singular_system_is_detected() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let b = vec![3.0, 6.0];
        assert_eq!(solve_square(a, b), Err(CalError::SingularSystem));
    }

    #[test]
    fn least_squares_recovers_exact_solution() {
        // Overdetermined but consistent.
        let a = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 1.0],
        ];
        let x_true = [3.0, -2.0];
        let b: Vec<f64> = a
            .iter()
            .map(|r| r[0] * x_true[0] + r[1] * x_true[1])
            .collect();
        let x = least_squares(&a, &b).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-10);
        assert!((x[1] + 2.0).abs() < 1e-10);
        assert!(rms_residual(&a, &b, &x) < 1e-10);
    }

    #[test]
    fn least_squares_minimizes_noisy_residual() {
        // y = 2t + 1 with noise; fit [t, 1] -> [slope, intercept].
        let ts = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let noise = [0.05, -0.04, 0.03, -0.02, 0.04, -0.05];
        let a: Vec<Vec<f64>> = ts.iter().map(|&t| vec![t, 1.0]).collect();
        let b: Vec<f64> = ts
            .iter()
            .zip(noise)
            .map(|(&t, n)| 2.0 * t + 1.0 + n)
            .collect();
        let x = least_squares(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 0.05, "slope {x:?}");
        assert!((x[1] - 1.0).abs() < 0.1, "intercept {x:?}");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        #[test]
        fn prop_roundtrip_random_well_conditioned(seed in 0u64..1000) {
            // Build a diagonally dominant 4x4 system (guaranteed solvable)
            // from a cheap deterministic generator.
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 100.0 - 5.0
            };
            let n = 4;
            let mut a = vec![vec![0.0; n]; n];
            for (i, row) in a.iter_mut().enumerate() {
                for (j, cell) in row.iter_mut().enumerate() {
                    *cell = if i == j { 50.0 + next().abs() } else { next() };
                }
            }
            let x_true: Vec<f64> = (0..n).map(|_| next()).collect();
            let b: Vec<f64> = a
                .iter()
                .map(|row| row.iter().zip(&x_true).map(|(aij, xj)| aij * xj).sum())
                .collect();
            let x = solve_square(a, b).unwrap();
            for (got, want) in x.iter().zip(&x_true) {
                proptest::prop_assert!((got - want).abs() < 1e-6);
            }
        }
    }
}
