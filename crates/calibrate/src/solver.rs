//! Dense linear algebra for calibration: Gaussian elimination, linear
//! least squares via normal equations, condition diagnostics, and a
//! Tikhonov-ridge fallback for near-singular systems.
//!
//! The systems here are tiny (five to six unknowns, a dozen probes), so a
//! straightforward partial-pivoting implementation is both sufficient and
//! dependency-free. Malformed or unsolvable inputs surface as
//! [`CalError`]s rather than panics: a noisy calibration run that drops
//! probes must degrade gracefully, not die on an assert.

use crate::CalError;

/// Relative pivot threshold: a pivot below `PIVOT_RTOL ×` the largest
/// entry of the input matrix is treated as zero. Relative (not absolute)
/// so uniformly scaled systems are judged consistently — `A` and `1e-9·A`
/// are equally (non-)singular.
const PIVOT_RTOL: f64 = 1e-12;

/// Solves the square system `a · x = b` in place (Gaussian elimination with
/// partial pivoting). `a` is row-major `n × n`.
pub fn solve_square(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>, CalError> {
    let n = b.len();
    if a.len() != n || a.iter().any(|row| row.len() != n) {
        return Err(CalError::ShapeMismatch {
            reason: format!("expected {n}×{n} matrix for a length-{n} right-hand side"),
        });
    }

    // The scale of the input matrix anchors the singularity test; it must
    // be captured before elimination rewrites the entries.
    let scale = a
        .iter()
        .flatten()
        .fold(0.0f64, |acc, &v| acc.max(v.abs()));
    if n > 0 && !(scale > 0.0 && scale.is_finite()) {
        return Err(CalError::SingularSystem);
    }

    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty range");
        if a[pivot_row][col].abs() < PIVOT_RTOL * scale {
            return Err(CalError::SingularSystem);
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);

        // Eliminate below.
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            // Split the borrow: the pivot row is read-only here.
            let (pivot_row_slice, target) = {
                let (head, tail) = a.split_at_mut(row);
                (&head[col], &mut tail[0])
            };
            for (t, p) in target[col..n].iter_mut().zip(&pivot_row_slice[col..n]) {
                *t -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Ok(x)
}

/// Validates the shape of an `m × n` least-squares system and returns
/// `(m, n)`.
fn check_shape(a: &[Vec<f64>], b: &[f64]) -> Result<(usize, usize), CalError> {
    let m = a.len();
    if m != b.len() {
        return Err(CalError::ShapeMismatch {
            reason: format!("{m} matrix rows but {} right-hand-side entries", b.len()),
        });
    }
    if m == 0 {
        return Err(CalError::InsufficientProbes { kept: 0, needed: 1 });
    }
    let n = a[0].len();
    if a.iter().any(|row| row.len() != n) {
        return Err(CalError::ShapeMismatch {
            reason: "ragged matrix rows".to_string(),
        });
    }
    if m < n {
        return Err(CalError::InsufficientProbes { kept: m, needed: n });
    }
    Ok((m, n))
}

/// Forms the normal equations `(aᵀa, aᵀb)` of an `m × n` system.
fn normal_equations(a: &[Vec<f64>], b: &[f64], n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut ata = vec![vec![0.0; n]; n];
    let mut atb = vec![0.0; n];
    for (row, &bi) in a.iter().zip(b) {
        for i in 0..n {
            atb[i] += row[i] * bi;
            for j in 0..n {
                ata[i][j] += row[i] * row[j];
            }
        }
    }
    (ata, atb)
}

/// 1-norm condition number `κ₁(A) = ‖A‖₁ · ‖A⁻¹‖₁` of a square matrix,
/// computed by solving for the inverse column by column. Returns
/// `INFINITY` for singular (or numerically singular) matrices.
pub fn condition_1norm(a: &[Vec<f64>]) -> f64 {
    let n = a.len();
    if n == 0 {
        return 1.0;
    }
    let col_sum = |m: &[Vec<f64>], j: usize| m.iter().map(|row| row[j].abs()).sum::<f64>();
    let norm_a = (0..n).map(|j| col_sum(a, j)).fold(0.0f64, f64::max);
    let mut norm_inv = 0.0f64;
    for j in 0..n {
        let mut e = vec![0.0; n];
        e[j] = 1.0;
        match solve_square(a.to_vec(), e) {
            Ok(col) => norm_inv = norm_inv.max(col.iter().map(|v| v.abs()).sum()),
            Err(_) => return f64::INFINITY,
        }
    }
    norm_a * norm_inv
}

/// A diagnosed least-squares fit.
#[derive(Debug, Clone, PartialEq)]
pub struct LsFit {
    /// The solution vector.
    pub x: Vec<f64>,
    /// 1-norm condition number of the normal matrix `aᵀa` (`INFINITY` if
    /// singular).
    pub condition: f64,
    /// Whether the Tikhonov-ridge fallback was used because the plain
    /// normal equations were singular or worse-conditioned than the limit.
    pub used_ridge: bool,
}

/// Solves `a · x ≈ b` in the least-squares sense with condition
/// diagnostics and a Tikhonov-ridge fallback.
///
/// If `κ₁(aᵀa)` exceeds `condition_limit` (or the normal equations are
/// outright singular), the system is re-solved with a scale-equivariant
/// Tikhonov ridge: each diagonal entry is inflated by `ridge_lambda`
/// relative to itself (`ata[i][i] *= 1 + λ`), so columns of wildly
/// different scales — this system mixes per-page and per-operator
/// coefficients spanning several orders of magnitude — are shrunk
/// proportionally rather than the small ones being crushed by a uniform
/// λ. A column that vanished entirely (all-zero after probe drops) gets
/// `λ × mean(diag)` instead, which pins its unidentifiable parameter to
/// zero in a bounded way; the caller's parameter floor then flags it as
/// clamped.
pub fn least_squares_diagnosed(
    a: &[Vec<f64>],
    b: &[f64],
    condition_limit: f64,
    ridge_lambda: f64,
) -> Result<LsFit, CalError> {
    let (_, n) = check_shape(a, b)?;
    let (ata, atb) = normal_equations(a, b, n);
    let condition = condition_1norm(&ata);
    if condition <= condition_limit {
        if let Ok(x) = solve_square(ata.clone(), atb.clone()) {
            return Ok(LsFit {
                x,
                condition,
                used_ridge: false,
            });
        }
    }
    let mean_diag = (0..n).map(|i| ata[i][i]).sum::<f64>() / n.max(1) as f64;
    if !(ridge_lambda > 0.0 && mean_diag > 0.0 && mean_diag.is_finite()) {
        return Err(CalError::SingularSystem);
    }
    let mut ridged = ata;
    for (i, row) in ridged.iter_mut().enumerate() {
        row[i] += ridge_lambda * if row[i] > 0.0 { row[i] } else { mean_diag };
    }
    let x = solve_square(ridged, atb)?;
    Ok(LsFit {
        x,
        condition,
        used_ridge: true,
    })
}

/// Solves the overdetermined system `a · x ≈ b` in the least-squares sense
/// via the normal equations `aᵀa · x = aᵀb`. `a` is row-major `m × n` with
/// `m ≥ n`. Shape problems and underdetermined systems are [`CalError`]s.
pub fn least_squares(a: &[Vec<f64>], b: &[f64]) -> Result<Vec<f64>, CalError> {
    let (_, n) = check_shape(a, b)?;
    let (ata, atb) = normal_equations(a, b, n);
    solve_square(ata, atb)
}

/// Root-mean-square residual of a candidate solution (used in tests and
/// calibration diagnostics).
pub fn rms_residual(a: &[Vec<f64>], b: &[f64], x: &[f64]) -> f64 {
    let m = a.len() as f64;
    let ss: f64 = a
        .iter()
        .zip(b)
        .map(|(row, &bi)| {
            let pred: f64 = row.iter().zip(x).map(|(aij, xj)| aij * xj).sum();
            (pred - bi).powi(2)
        })
        .sum();
    (ss / m).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_square_system() {
        // x + 2y = 5; 3x - y = 1  => x = 1, y = 2.
        let a = vec![vec![1.0, 2.0], vec![3.0, -1.0]];
        let b = vec![5.0, 1.0];
        let x = solve_square(a, b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = vec![vec![0.0, 1.0], vec![2.0, 0.0]];
        let b = vec![3.0, 4.0];
        let x = solve_square(a, b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn singular_system_is_detected() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let b = vec![3.0, 6.0];
        assert_eq!(solve_square(a, b), Err(CalError::SingularSystem));
    }

    #[test]
    fn pivot_threshold_is_relative_to_matrix_scale() {
        // A perfectly well-conditioned system scaled down to ~1e-14: an
        // absolute 1e-12 threshold would call it singular, the relative
        // test must not.
        let s = 1e-14;
        let a = vec![vec![s, 2.0 * s], vec![3.0 * s, -s]];
        let b = vec![5.0 * s, s];
        let x = solve_square(a, b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9, "{x:?}");
        assert!((x[1] - 2.0).abs() < 1e-9, "{x:?}");
        // And the same singular system stays singular at any scale.
        for s in [1e-14, 1.0, 1e14] {
            let a = vec![vec![s, 2.0 * s], vec![2.0 * s, 4.0 * s]];
            let b = vec![3.0 * s, 6.0 * s];
            assert_eq!(solve_square(a, b), Err(CalError::SingularSystem));
        }
    }

    #[test]
    fn shape_problems_are_errors_not_panics() {
        // solve_square: non-square.
        let e = solve_square(vec![vec![1.0, 2.0]], vec![1.0]).unwrap_err();
        assert!(matches!(e, CalError::ShapeMismatch { .. }));
        // least_squares: empty.
        let e = least_squares(&[], &[]).unwrap_err();
        assert_eq!(e, CalError::InsufficientProbes { kept: 0, needed: 1 });
        // least_squares: row-count mismatch.
        let e = least_squares(&[vec![1.0]], &[1.0, 2.0]).unwrap_err();
        assert!(matches!(e, CalError::ShapeMismatch { .. }));
        // least_squares: ragged.
        let e = least_squares(&[vec![1.0, 2.0], vec![1.0]], &[1.0, 2.0]).unwrap_err();
        assert!(matches!(e, CalError::ShapeMismatch { .. }));
        // least_squares: underdetermined.
        let e = least_squares(&[vec![1.0, 2.0]], &[1.0]).unwrap_err();
        assert_eq!(e, CalError::InsufficientProbes { kept: 1, needed: 2 });
    }

    #[test]
    fn all_zero_matrix_is_singular() {
        let a = vec![vec![0.0, 0.0], vec![0.0, 0.0]];
        assert_eq!(solve_square(a, vec![0.0, 0.0]), Err(CalError::SingularSystem));
    }

    #[test]
    fn least_squares_recovers_exact_solution() {
        // Overdetermined but consistent.
        let a = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 1.0],
        ];
        let x_true = [3.0, -2.0];
        let b: Vec<f64> = a
            .iter()
            .map(|r| r[0] * x_true[0] + r[1] * x_true[1])
            .collect();
        let x = least_squares(&a, &b).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-10);
        assert!((x[1] + 2.0).abs() < 1e-10);
        assert!(rms_residual(&a, &b, &x) < 1e-10);
    }

    #[test]
    fn least_squares_minimizes_noisy_residual() {
        // y = 2t + 1 with noise; fit [t, 1] -> [slope, intercept].
        let ts = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let noise = [0.05, -0.04, 0.03, -0.02, 0.04, -0.05];
        let a: Vec<Vec<f64>> = ts.iter().map(|&t| vec![t, 1.0]).collect();
        let b: Vec<f64> = ts
            .iter()
            .zip(noise)
            .map(|(&t, n)| 2.0 * t + 1.0 + n)
            .collect();
        let x = least_squares(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 0.05, "slope {x:?}");
        assert!((x[1] - 1.0).abs() < 0.1, "intercept {x:?}");
    }

    #[test]
    fn condition_number_tracks_conditioning() {
        // Identity: κ = 1.
        let id = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert!((condition_1norm(&id) - 1.0).abs() < 1e-12);
        // Diagonal [1, 1e-8]: κ ≈ 1e8.
        let skew = vec![vec![1.0, 0.0], vec![0.0, 1e-8]];
        let k = condition_1norm(&skew);
        assert!((k / 1e8 - 1.0).abs() < 1e-6, "κ = {k}");
        // Singular: κ = ∞.
        let sing = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(condition_1norm(&sing).is_infinite());
    }

    #[test]
    fn diagnosed_fit_matches_plain_fit_when_well_conditioned() {
        let a = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 1.0],
        ];
        let b = vec![3.0, -2.0, 1.0, 4.0];
        let plain = least_squares(&a, &b).unwrap();
        let fit = least_squares_diagnosed(&a, &b, 1e12, 1e-8).unwrap();
        assert!(!fit.used_ridge);
        assert!(fit.condition.is_finite() && fit.condition >= 1.0);
        for (p, d) in plain.iter().zip(&fit.x) {
            assert_eq!(p.to_bits(), d.to_bits(), "ridge-free path must be identical");
        }
    }

    #[test]
    fn ridge_rescues_a_singular_system() {
        // Two identical columns: the normal equations are exactly
        // singular, plain least squares errors, the ridge path returns a
        // finite symmetric split.
        let a = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]];
        let b = vec![2.0, 4.0, 6.0];
        assert_eq!(least_squares(&a, &b), Err(CalError::SingularSystem));
        let fit = least_squares_diagnosed(&a, &b, 1e12, 1e-8).unwrap();
        assert!(fit.used_ridge);
        assert!(fit.condition.is_infinite());
        assert!(fit.x.iter().all(|v| v.is_finite()));
        // The ridge solution splits the (true) coefficient sum of 2
        // symmetrically: x ≈ [1, 1].
        assert!((fit.x[0] - 1.0).abs() < 1e-3 && (fit.x[1] - 1.0).abs() < 1e-3);
        let rms = rms_residual(&a, &b, &fit.x);
        assert!(rms < 1e-3, "ridge fit should still fit well: rms {rms}");
    }

    #[test]
    fn tight_condition_limit_forces_the_ridge_path() {
        let a = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ];
        let b = vec![1.0, 2.0, 3.0];
        let fit = least_squares_diagnosed(&a, &b, 0.5, 1e-10).unwrap();
        assert!(fit.used_ridge);
        // λ is tiny relative to the diagonal, so the answer is close to
        // the plain one.
        let plain = least_squares(&a, &b).unwrap();
        for (p, r) in plain.iter().zip(&fit.x) {
            assert!((p - r).abs() < 1e-6);
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        #[test]
        fn prop_roundtrip_random_well_conditioned(seed in 0u64..1000) {
            // Build a diagonally dominant 4x4 system (guaranteed solvable)
            // from a cheap deterministic generator.
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 100.0 - 5.0
            };
            let n = 4;
            let mut a = vec![vec![0.0; n]; n];
            for (i, row) in a.iter_mut().enumerate() {
                for (j, cell) in row.iter_mut().enumerate() {
                    *cell = if i == j { 50.0 + next().abs() } else { next() };
                }
            }
            let x_true: Vec<f64> = (0..n).map(|_| next()).collect();
            let b: Vec<f64> = a
                .iter()
                .map(|row| row.iter().zip(&x_true).map(|(aij, xj)| aij * xj).sum())
                .collect();
            let x = solve_square(a, b).unwrap();
            for (got, want) in x.iter().zip(&x_true) {
                proptest::prop_assert!((got - want).abs() < 1e-6);
            }
        }
    }
}
