//! The deployment policy: how a database instance is configured inside a
//! virtual machine.
//!
//! Both sides of the paper's methodology need the *same* mapping from a
//! VM's resources to database memory settings: the measuring side (which
//! buffer pool does the executor run with?) and the modeling side (what
//! `effective_cache_size` and `work_mem` should the optimizer assume?).
//! Centralizing the mapping here keeps them consistent by construction,
//! the way a DBA would configure `shared_buffers`/`work_mem` from the VM's
//! memory size.

use dbvirt_vmm::VirtualMachine;

/// Fraction of VM memory granted to `work_mem` (per sort/hash).
const WORK_MEM_FRACTION: f64 = 0.05;

/// Minimum `work_mem`, in bytes. PostgreSQL installations of the paper's
/// era ran with a few megabytes of sort/hash memory regardless of machine
/// size; a 4 MiB floor keeps small simulated VMs from thrashing every
/// hash join through spill files.
const MIN_WORK_MEM: usize = 4 * 1024 * 1024;

/// Database configuration derived from a VM's resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbVmConfig {
    /// Buffer-pool capacity in pages.
    pub buffer_pool_pages: usize,
    /// `work_mem` in bytes.
    pub work_mem_bytes: usize,
    /// `effective_cache_size` in pages (equal to the buffer pool here,
    /// since the simulator folds the OS cache into one tier).
    pub effective_cache_pages: usize,
}

impl DbVmConfig {
    /// Derives the database configuration for a VM.
    pub fn for_vm(vm: &VirtualMachine) -> DbVmConfig {
        let buffer_pool_pages = vm.buffer_pool_pages();
        let work_mem_bytes =
            ((vm.memory_bytes() as f64 * WORK_MEM_FRACTION) as usize).max(MIN_WORK_MEM);
        DbVmConfig {
            buffer_pool_pages,
            work_mem_bytes,
            effective_cache_pages: buffer_pool_pages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbvirt_vmm::{MachineSpec, ResourceVector};

    fn vm(mem: f64) -> VirtualMachine {
        VirtualMachine::new(
            MachineSpec::paper_testbed(),
            ResourceVector::from_fractions(0.5, mem, 0.5).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn config_scales_with_memory_share() {
        let small = DbVmConfig::for_vm(&vm(0.25));
        let large = DbVmConfig::for_vm(&vm(0.75));
        assert!(small.buffer_pool_pages < large.buffer_pool_pages);
        assert!(small.work_mem_bytes < large.work_mem_bytes);
        assert_eq!(small.effective_cache_pages, small.buffer_pool_pages);
    }

    #[test]
    fn work_mem_has_floor() {
        let tiny_vm = VirtualMachine::new(
            MachineSpec::tiny(),
            ResourceVector::from_fractions(0.5, 0.01, 0.5).unwrap(),
        )
        .unwrap();
        let cfg = DbVmConfig::for_vm(&tiny_vm);
        assert!(cfg.work_mem_bytes >= MIN_WORK_MEM);
    }
}
