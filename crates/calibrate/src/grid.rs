//! The calibration grid: `P(R)` precomputed over allocation space.
//!
//! The paper notes that `P` depends only on the machine and `R`, so it can
//! be calibrated off-line over a grid of allocations and reused for every
//! database and workload. This module implements that grid, its bilinear
//! interpolation for off-grid allocations (the paper's "reduce the number
//! of calibration experiments" next step), and a JSON cache so a machine
//! is calibrated once.
//!
//! Axes are CPU share × memory share, matching the knobs the paper's
//! experiments vary; the disk share is a fixed policy per grid (the 2007
//! Xen testbed could not throttle disk independently).
//!
//! ## Graceful degradation
//!
//! Under fault injection (or on a real, flaky VM) individual grid cells
//! can fail to calibrate: too many probes dropped, a singular system, or
//! a non-physical fit. [`CalibrationGrid::calibrate_with_config`] does not
//! fail the whole sweep for one bad cell. Instead it applies the last rung
//! of the degradation ladder:
//!
//! * a cell whose own fit *succeeded* but left parameters clamped at the
//!   numerical floor gets those parameters re-filled by averaging the
//!   nearest cells that identified them, and the parameter names move to
//!   [`CalibrationReport::degraded_params`];
//! * a cell whose fit *failed* outright gets every measured parameter
//!   averaged from the nearest healthy cells, its memory-derived settings
//!   recomputed from the deployment policy (those never need measurement),
//!   and its report marked [`CalibrationReport::degraded`] with the
//!   original error preserved in [`CalibrationReport::failure`].
//!
//! Only if *every* cell fails does the sweep return an error. Per-cell
//! health is kept alongside the parameters, serialized in the JSON cache,
//! and summarized by [`CalibrationGrid::health`].

use crate::json::Json;
use crate::report::CalibrationReport;
use crate::runner::{calibrate_with_config, CalibrationConfig};
use crate::vmdb::DbVmConfig;
use crate::{CalError, ProbeDb};
use dbvirt_optimizer::OptimizerParams;
use dbvirt_vmm::{MachineSpec, ResourceVector, VirtualMachine, VmmError};
use std::fmt;

/// The parameters the probe system actually measures (everything else in
/// [`OptimizerParams`] is policy-derived from the memory share).
const MEASURED_PARAMS: [&str; 5] = [
    "unit_seconds",
    "random_page_cost",
    "cpu_tuple_cost",
    "cpu_index_tuple_cost",
    "cpu_operator_cost",
];

fn get_param(p: &OptimizerParams, name: &str) -> f64 {
    match name {
        "unit_seconds" => p.unit_seconds,
        "random_page_cost" => p.random_page_cost,
        "cpu_tuple_cost" => p.cpu_tuple_cost,
        "cpu_index_tuple_cost" => p.cpu_index_tuple_cost,
        "cpu_operator_cost" => p.cpu_operator_cost,
        other => unreachable!("unknown measured parameter {other}"),
    }
}

fn set_param(p: &mut OptimizerParams, name: &str, v: f64) {
    match name {
        "unit_seconds" => p.unit_seconds = v,
        "random_page_cost" => p.random_page_cost = v,
        "cpu_tuple_cost" => p.cpu_tuple_cost = v,
        "cpu_index_tuple_cost" => p.cpu_index_tuple_cost = v,
        "cpu_operator_cost" => p.cpu_operator_cost = v,
        other => unreachable!("unknown measured parameter {other}"),
    }
}

/// Errors a single cell may recover from by neighbor interpolation;
/// anything else (engine failures, bad axes) aborts the sweep.
fn degradable(e: &CalError) -> bool {
    matches!(
        e,
        CalError::InsufficientProbes { .. }
            | CalError::SingularSystem
            | CalError::BadParameter { .. }
    )
}

/// Aggregate health of a calibrated grid, for callers who want one line
/// instead of a per-cell report matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct GridHealth {
    /// Total grid cells.
    pub cells: usize,
    /// Cells whose calibration needed no fallback at all.
    pub clean_cells: usize,
    /// Cells that failed outright and were fully interpolated from
    /// neighbors.
    pub degraded_cells: usize,
    /// Cells with at least one neighbor-interpolated parameter (includes
    /// the fully degraded ones).
    pub cells_with_degraded_params: usize,
    /// Cells whose fit needed the Tikhonov-ridge fallback.
    pub ridge_cells: usize,
    /// Retries spent recovering transient probe faults, summed over cells.
    pub total_retries: usize,
    /// Probe timeouts observed, summed over cells.
    pub total_timeouts: usize,
    /// Outlier equations rejected by the robust refit, summed over cells.
    pub total_rejected_outliers: usize,
    /// Probes that contributed no equation, summed over cells.
    pub total_dropped_probes: usize,
}

impl GridHealth {
    /// True if every cell calibrated without any fallback.
    pub fn is_clean(&self) -> bool {
        self.clean_cells == self.cells
    }
}

impl fmt::Display for GridHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "grid health: {}/{} cells clean, {} degraded, {} with interpolated params, \
             {} ridge; {} retries, {} timeouts, {} outliers rejected, {} probes dropped",
            self.clean_cells,
            self.cells,
            self.degraded_cells,
            self.cells_with_degraded_params,
            self.ridge_cells,
            self.total_retries,
            self.total_timeouts,
            self.total_rejected_outliers,
            self.total_dropped_probes,
        )
    }
}

/// A calibrated `P(R)` surface over CPU × memory shares.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationGrid {
    machine: MachineSpec,
    cpu_points: Vec<f64>,
    mem_points: Vec<f64>,
    disk_share: f64,
    /// `entries[ci][mi]` is the calibration at `(cpu_points[ci],
    /// mem_points[mi])`.
    entries: Vec<Vec<OptimizerParams>>,
    /// `reports[ci][mi]` is the health report for the same cell.
    reports: Vec<Vec<CalibrationReport>>,
}

fn validate_axis(points: &[f64], axis: &'static str) -> Result<(), CalError> {
    if points.is_empty() {
        return Err(CalError::CacheIo {
            reason: format!("{axis} axis is empty"),
        });
    }
    let sorted = points.windows(2).all(|w| w[0] < w[1]);
    let in_range = points.iter().all(|&p| p > 0.0 && p <= 1.0);
    if !sorted || !in_range {
        return Err(CalError::CacheIo {
            reason: format!("{axis} axis must be strictly increasing within (0, 1]"),
        });
    }
    Ok(())
}

/// Locates `v` on an axis: returns `(lower index, interpolation weight)`.
fn bracket(points: &[f64], v: f64, axis: &'static str) -> Result<(usize, f64), CalError> {
    let eps = 1e-9;
    if v < points[0] - eps || v > points[points.len() - 1] + eps {
        return Err(CalError::OutOfGrid { value: v, axis });
    }
    if points.len() == 1 {
        return Ok((0, 0.0));
    }
    let hi = points
        .partition_point(|&p| p < v)
        .min(points.len() - 1)
        .max(1);
    let lo = hi - 1;
    let t = ((v - points[lo]) / (points[hi] - points[lo])).clamp(0.0, 1.0);
    Ok((lo, t))
}

fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

fn lerp_params(a: &OptimizerParams, b: &OptimizerParams, t: f64) -> OptimizerParams {
    OptimizerParams {
        unit_seconds: lerp(a.unit_seconds, b.unit_seconds, t),
        // `seq_page_cost` is pinned to 1 by the calibration solver, but the
        // grid must not assume that: a cache file or hand-built grid can
        // carry rescaled endpoints, and resetting the interpolant to 1.0
        // would silently break `cost * unit_seconds` consistency.
        seq_page_cost: lerp(a.seq_page_cost, b.seq_page_cost, t),
        random_page_cost: lerp(a.random_page_cost, b.random_page_cost, t),
        cpu_tuple_cost: lerp(a.cpu_tuple_cost, b.cpu_tuple_cost, t),
        cpu_index_tuple_cost: lerp(a.cpu_index_tuple_cost, b.cpu_index_tuple_cost, t),
        cpu_operator_cost: lerp(a.cpu_operator_cost, b.cpu_operator_cost, t),
        effective_cache_size_pages: lerp(
            a.effective_cache_size_pages,
            b.effective_cache_size_pages,
            t,
        ),
        work_mem_bytes: lerp(a.work_mem_bytes, b.work_mem_bytes, t),
    }
}

/// The donors nearest to `(c, m)` in index space (Manhattan distance; all
/// donors at the minimum distance, so corners and edges average
/// symmetrically). Empty if `donors` is empty.
fn nearest_donors(donors: &[(usize, usize)], c: usize, m: usize) -> Vec<(usize, usize)> {
    let dist = |&(x, y): &(usize, usize)| x.abs_diff(c) + y.abs_diff(m);
    let Some(min) = donors.iter().map(dist).min() else {
        return Vec::new();
    };
    donors.iter().filter(|d| dist(d) == min).copied().collect()
}

impl CalibrationGrid {
    /// Calibrates a grid with clean single-shot measurements, running the
    /// grid points in parallel (each worker builds its own probe
    /// database).
    pub fn calibrate(
        machine: MachineSpec,
        cpu_points: Vec<f64>,
        mem_points: Vec<f64>,
        disk_share: f64,
    ) -> Result<CalibrationGrid, CalError> {
        CalibrationGrid::calibrate_with_config(
            machine,
            cpu_points,
            mem_points,
            disk_share,
            &CalibrationConfig::default(),
        )
    }

    /// Calibrates a grid under an explicit robustness/fault configuration,
    /// with per-cell graceful degradation (see the module docs).
    pub fn calibrate_with_config(
        machine: MachineSpec,
        cpu_points: Vec<f64>,
        mem_points: Vec<f64>,
        disk_share: f64,
        rcfg: &CalibrationConfig,
    ) -> Result<CalibrationGrid, CalError> {
        validate_axis(&cpu_points, "cpu")?;
        validate_axis(&mem_points, "memory")?;
        if !(disk_share > 0.0 && disk_share <= 1.0) {
            return Err(CalError::CacheIo {
                reason: format!("disk share {disk_share} out of range"),
            });
        }

        let combos: Vec<(usize, usize)> = (0..cpu_points.len())
            .flat_map(|c| (0..mem_points.len()).map(move |m| (c, m)))
            .collect();

        let mut sweep_span = dbvirt_telemetry::span("calibrate.grid_sweep");
        sweep_span.set_attr("cells", combos.len());
        let sweep_parent = sweep_span.id();

        type CellOutcome = (usize, usize, Result<crate::runner::Calibration, CalError>);
        let n_workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .min(combos.len())
            .max(1);
        let results: Vec<Result<CellOutcome, CalError>> = std::thread::scope(|scope| {
            let chunks: Vec<Vec<(usize, usize)>> = combos
                .chunks(combos.len().div_ceil(n_workers))
                .map(<[(usize, usize)]>::to_vec)
                .collect();
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    let cpu_points = &cpu_points;
                    let mem_points = &mem_points;
                    let rcfg = *rcfg;
                    scope.spawn(move || {
                        // Adopt the sweep span as parent so per-cell spans
                        // from this worker thread nest under the sweep.
                        let _worker_span = dbvirt_telemetry::span_with_parent(
                            "calibrate.grid_worker",
                            sweep_parent,
                        );
                        let mut pdb = ProbeDb::build().map_err(|e| CalError::ProbeFailed {
                            probe: "<probe-db>".to_string(),
                            reason: e.to_string(),
                        })?;
                        pdb.validate().map_err(|reason| CalError::ProbeFailed {
                            probe: "<probe-db>".to_string(),
                            reason,
                        })?;
                        let mut out: Vec<CellOutcome> = Vec::new();
                        for (c, m) in chunk {
                            let shares = ResourceVector::from_fractions(
                                cpu_points[c],
                                mem_points[m],
                                disk_share,
                            )
                            .map_err(|e: VmmError| CalError::ProbeFailed {
                                probe: "<shares>".to_string(),
                                reason: e.to_string(),
                            })?;
                            match calibrate_with_config(&mut pdb, machine, shares, &rcfg) {
                                Ok(cal) => out.push((c, m, Ok(cal))),
                                // Degradable failures are per-cell data, not
                                // sweep-enders; anything else aborts.
                                Err(e) if degradable(&e) => out.push((c, m, Err(e))),
                                Err(e) => return Err(e),
                            }
                        }
                        Ok(out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| match h.join().expect("worker panicked") {
                    Ok(v) => v.into_iter().map(Ok).collect::<Vec<_>>(),
                    Err(e) => vec![Err(e)],
                })
                .collect()
        });

        let default = OptimizerParams::postgres_defaults();
        let mut entries = vec![vec![default; mem_points.len()]; cpu_points.len()];
        let mut reports =
            vec![vec![CalibrationReport::pristine(Vec::new()); mem_points.len()]; cpu_points.len()];
        let mut healthy: Vec<(usize, usize)> = Vec::new();
        let mut failed: Vec<(usize, usize, CalError)> = Vec::new();
        for r in results {
            let (c, m, outcome) = r?;
            match outcome {
                Ok(cal) => {
                    entries[c][m] = cal.params;
                    reports[c][m] = cal.report;
                    healthy.push((c, m));
                }
                Err(e) => failed.push((c, m, e)),
            }
        }
        if healthy.is_empty() {
            // No rung of the ladder left: every cell failed, so report the
            // first failure (row-major order) as the sweep's error.
            let (_, _, e) = failed
                .into_iter()
                .min_by_key(|&(c, m, _)| (c, m))
                .expect("a non-empty grid has at least one cell");
            return Err(e);
        }
        healthy.sort_unstable();

        // Rung 4a: parameters a healthy cell could not identify (clamped at
        // the floor) are re-filled from the nearest cells that did identify
        // them.
        for &(c, m) in &healthy {
            let clamped = reports[c][m].clamped_params.clone();
            for name in clamped {
                let donors: Vec<(usize, usize)> = healthy
                    .iter()
                    .filter(|&&(dc, dm)| {
                        (dc, dm) != (c, m) && !reports[dc][dm].clamped_params.contains(&name)
                    })
                    .copied()
                    .collect();
                let nearest = nearest_donors(&donors, c, m);
                if nearest.is_empty() {
                    continue; // nobody identified it; the floor stands
                }
                let mean = nearest
                    .iter()
                    .map(|&(dc, dm)| get_param(&entries[dc][dm], &name))
                    .sum::<f64>()
                    / nearest.len() as f64;
                set_param(&mut entries[c][m], &name, mean);
                reports[c][m].degraded_params.push(name);
            }
        }

        // Rung 4b: cells that failed outright get every measured parameter
        // from their nearest healthy neighbors; memory-derived settings are
        // recomputed from the deployment policy, which needs no
        // measurement.
        for (c, m, err) in failed {
            let nearest = nearest_donors(&healthy, c, m);
            let mut p = OptimizerParams::postgres_defaults();
            for name in MEASURED_PARAMS {
                let mean = nearest
                    .iter()
                    .map(|&(dc, dm)| get_param(&entries[dc][dm], name))
                    .sum::<f64>()
                    / nearest.len() as f64;
                set_param(&mut p, name, mean);
            }
            p.seq_page_cost = 1.0;
            let shares = ResourceVector::from_fractions(cpu_points[c], mem_points[m], disk_share)
                .map_err(|e| CalError::ProbeFailed {
                probe: "<shares>".to_string(),
                reason: e.to_string(),
            })?;
            let vm =
                VirtualMachine::new(machine, shares).map_err(|e| CalError::ProbeFailed {
                    probe: "<setup>".to_string(),
                    reason: e.to_string(),
                })?;
            let cfg = DbVmConfig::for_vm(&vm);
            p.effective_cache_size_pages = cfg.effective_cache_pages as f64;
            p.work_mem_bytes = cfg.work_mem_bytes as f64;
            entries[c][m] = p;
            reports[c][m] = CalibrationReport {
                probes: Vec::new(),
                dropped_probes: 0,
                rejected_outliers: Vec::new(),
                condition_number: f64::INFINITY,
                used_ridge: false,
                clamped_params: Vec::new(),
                degraded_params: MEASURED_PARAMS.iter().map(|s| s.to_string()).collect(),
                degraded: true,
                failure: Some(err.to_string()),
            };
        }

        Ok(CalibrationGrid {
            machine,
            cpu_points,
            mem_points,
            disk_share,
            entries,
            reports,
        })
    }

    /// The machine this grid was calibrated on.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// The fixed disk share used for calibration.
    pub fn disk_share(&self) -> f64 {
        self.disk_share
    }

    /// Grid axes.
    pub fn axes(&self) -> (&[f64], &[f64]) {
        (&self.cpu_points, &self.mem_points)
    }

    /// Number of calibrated grid points.
    pub fn num_points(&self) -> usize {
        self.cpu_points.len() * self.mem_points.len()
    }

    /// The calibrated `P` for allocation `shares`, with bilinear
    /// interpolation between grid points. The disk share of `shares` is
    /// accepted if it matches the grid's policy (within 1e-6); otherwise
    /// an [`CalError::OutOfGrid`] is returned.
    pub fn params_for(&self, shares: ResourceVector) -> Result<OptimizerParams, CalError> {
        if (shares.disk().fraction() - self.disk_share).abs() > 1e-6 {
            return Err(CalError::OutOfGrid {
                value: shares.disk().fraction(),
                axis: "disk",
            });
        }
        let (ci, ct) = bracket(&self.cpu_points, shares.cpu().fraction(), "cpu")?;
        let (mi, mt) = bracket(&self.mem_points, shares.memory().fraction(), "memory")?;
        let ci2 = (ci + 1).min(self.cpu_points.len() - 1);
        let mi2 = (mi + 1).min(self.mem_points.len() - 1);
        let low = lerp_params(&self.entries[ci][mi], &self.entries[ci][mi2], mt);
        let high = lerp_params(&self.entries[ci2][mi], &self.entries[ci2][mi2], mt);
        Ok(lerp_params(&low, &high, ct))
    }

    /// The exact calibrated parameters at a grid point (no interpolation).
    pub fn at_point(&self, cpu_idx: usize, mem_idx: usize) -> &OptimizerParams {
        &self.entries[cpu_idx][mem_idx]
    }

    /// The health report at a grid point.
    pub fn report_at(&self, cpu_idx: usize, mem_idx: usize) -> &CalibrationReport {
        &self.reports[cpu_idx][mem_idx]
    }

    /// Aggregate health over every cell.
    pub fn health(&self) -> GridHealth {
        let all = self.reports.iter().flatten();
        let mut h = GridHealth {
            cells: self.num_points(),
            clean_cells: 0,
            degraded_cells: 0,
            cells_with_degraded_params: 0,
            ridge_cells: 0,
            total_retries: 0,
            total_timeouts: 0,
            total_rejected_outliers: 0,
            total_dropped_probes: 0,
        };
        for r in all {
            h.clean_cells += usize::from(r.is_clean());
            h.degraded_cells += usize::from(r.degraded);
            h.cells_with_degraded_params += usize::from(!r.degraded_params.is_empty());
            h.ridge_cells += usize::from(r.used_ridge);
            h.total_retries += r.total_retries();
            h.total_timeouts += r.total_timeouts();
            h.total_rejected_outliers += r.rejected_outliers.len();
            h.total_dropped_probes += r.dropped_probes;
        }
        h
    }

    /// Serializes the grid (parameters and per-cell health) to JSON.
    pub fn to_json(&self) -> Result<String, CalError> {
        let doc = Json::obj([
            ("machine", machine_to_json(&self.machine)),
            ("cpu_points", f64s_to_json(&self.cpu_points)),
            ("mem_points", f64s_to_json(&self.mem_points)),
            ("disk_share", Json::Num(self.disk_share)),
            (
                "entries",
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|row| Json::Arr(row.iter().map(params_to_json).collect()))
                        .collect(),
                ),
            ),
            (
                "reports",
                Json::Arr(
                    self.reports
                        .iter()
                        .map(|row| Json::Arr(row.iter().map(report_to_json).collect()))
                        .collect(),
                ),
            ),
        ]);
        Ok(doc.pretty())
    }

    /// Deserializes a grid from JSON. Caches written before health
    /// reporting existed (no `"reports"` key) load with empty pristine
    /// reports.
    pub fn from_json(json: &str) -> Result<CalibrationGrid, CalError> {
        let bad = |reason: String| CalError::CacheIo { reason };
        let doc = Json::parse(json).map_err(bad)?;
        let entries = doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing entries".to_string()))?
            .iter()
            .map(|row| {
                row.as_arr()
                    .ok_or_else(|| bad("entries row is not an array".to_string()))?
                    .iter()
                    .map(params_from_json)
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<Vec<_>>, _>>()?;
        let reports = match doc.get("reports") {
            None | Some(Json::Null) => entries
                .iter()
                .map(|row| vec![CalibrationReport::pristine(Vec::new()); row.len()])
                .collect(),
            Some(v) => {
                let rows = v
                    .as_arr()
                    .ok_or_else(|| bad("reports is not an array".to_string()))?;
                let parsed = rows
                    .iter()
                    .map(|row| {
                        row.as_arr()
                            .ok_or_else(|| bad("reports row is not an array".to_string()))?
                            .iter()
                            .map(report_from_json)
                            .collect::<Result<Vec<_>, _>>()
                    })
                    .collect::<Result<Vec<Vec<_>>, _>>()?;
                let shape_ok = parsed.len() == entries.len()
                    && parsed.iter().zip(&entries).all(|(r, e)| r.len() == e.len());
                if !shape_ok {
                    return Err(bad("reports shape does not match entries".to_string()));
                }
                parsed
            }
        };
        Ok(CalibrationGrid {
            machine: machine_from_json(
                doc.get("machine")
                    .ok_or_else(|| bad("missing machine".to_string()))?,
            )?,
            cpu_points: f64s_from_json(&doc, "cpu_points")?,
            mem_points: f64s_from_json(&doc, "mem_points")?,
            disk_share: get_num(&doc, "disk_share")?,
            entries,
            reports,
        })
    }

    /// Saves the grid to a file.
    pub fn save(&self, path: &std::path::Path) -> Result<(), CalError> {
        std::fs::write(path, self.to_json()?).map_err(|e| CalError::CacheIo {
            reason: e.to_string(),
        })
    }

    /// Loads a grid from a file.
    pub fn load(path: &std::path::Path) -> Result<CalibrationGrid, CalError> {
        let json = std::fs::read_to_string(path).map_err(|e| CalError::CacheIo {
            reason: e.to_string(),
        })?;
        CalibrationGrid::from_json(&json)
    }
}

fn get_num(obj: &Json, key: &str) -> Result<f64, CalError> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| CalError::CacheIo {
            reason: format!("missing or non-numeric field {key:?}"),
        })
}

fn f64s_to_json(values: &[f64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::Num(v)).collect())
}

fn f64s_from_json(obj: &Json, key: &str) -> Result<Vec<f64>, CalError> {
    obj.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| CalError::CacheIo {
            reason: format!("missing array field {key:?}"),
        })?
        .iter()
        .map(|v| {
            v.as_f64().ok_or_else(|| CalError::CacheIo {
                reason: format!("non-numeric element in {key:?}"),
            })
        })
        .collect()
}

/// Serializes an `f64` that may legitimately be non-finite (condition
/// numbers, dropped-probe seconds). JSON has no NaN/Inf, so those are
/// tagged strings; plain numbers stay numbers.
fn special_num_to_json(v: f64) -> Json {
    if v.is_finite() {
        Json::Num(v)
    } else if v.is_nan() {
        Json::Str("nan".to_string())
    } else if v > 0.0 {
        Json::Str("inf".to_string())
    } else {
        Json::Str("-inf".to_string())
    }
}

fn special_num_from_json(v: &Json) -> Option<f64> {
    match v {
        Json::Num(n) => Some(*n),
        Json::Str(s) => match s.as_str() {
            "nan" => Some(f64::NAN),
            "inf" => Some(f64::INFINITY),
            "-inf" => Some(f64::NEG_INFINITY),
            _ => None,
        },
        _ => None,
    }
}

fn strings_to_json(values: &[String]) -> Json {
    Json::Arr(values.iter().map(|s| Json::Str(s.clone())).collect())
}

fn strings_from_json(obj: &Json, key: &str) -> Result<Vec<String>, CalError> {
    obj.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| CalError::CacheIo {
            reason: format!("missing array field {key:?}"),
        })?
        .iter()
        .map(|v| {
            v.as_str().map(str::to_string).ok_or_else(|| CalError::CacheIo {
                reason: format!("non-string element in {key:?}"),
            })
        })
        .collect()
}

fn get_bool(obj: &Json, key: &str) -> Result<bool, CalError> {
    obj.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| CalError::CacheIo {
            reason: format!("missing or non-boolean field {key:?}"),
        })
}

fn report_to_json(r: &CalibrationReport) -> Json {
    Json::obj([
        (
            "probes",
            Json::Arr(
                r.probes
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("name", Json::Str(p.name.clone())),
                            ("trials", Json::Num(p.trials as f64)),
                            ("retries", Json::Num(p.retries as f64)),
                            ("timeouts", Json::Num(p.timeouts as f64)),
                            ("dropped", Json::Bool(p.dropped)),
                            ("seconds", special_num_to_json(p.seconds)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("dropped_probes", Json::Num(r.dropped_probes as f64)),
        ("rejected_outliers", strings_to_json(&r.rejected_outliers)),
        ("condition_number", special_num_to_json(r.condition_number)),
        ("used_ridge", Json::Bool(r.used_ridge)),
        ("clamped_params", strings_to_json(&r.clamped_params)),
        ("degraded_params", strings_to_json(&r.degraded_params)),
        ("degraded", Json::Bool(r.degraded)),
        (
            "failure",
            match &r.failure {
                Some(e) => Json::Str(e.clone()),
                None => Json::Null,
            },
        ),
    ])
}

fn report_from_json(doc: &Json) -> Result<CalibrationReport, CalError> {
    let bad = |reason: String| CalError::CacheIo { reason };
    let probes = doc
        .get("probes")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("report missing probes".to_string()))?
        .iter()
        .map(|p| {
            Ok(crate::report::ProbeStat {
                name: p
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("probe stat missing name".to_string()))?
                    .to_string(),
                trials: get_num(p, "trials")? as usize,
                retries: get_num(p, "retries")? as usize,
                timeouts: get_num(p, "timeouts")? as usize,
                dropped: get_bool(p, "dropped")?,
                seconds: p
                    .get("seconds")
                    .and_then(special_num_from_json)
                    .ok_or_else(|| bad("probe stat missing seconds".to_string()))?,
            })
        })
        .collect::<Result<Vec<_>, CalError>>()?;
    Ok(CalibrationReport {
        probes,
        dropped_probes: get_num(doc, "dropped_probes")? as usize,
        rejected_outliers: strings_from_json(doc, "rejected_outliers")?,
        condition_number: doc
            .get("condition_number")
            .and_then(special_num_from_json)
            .ok_or_else(|| bad("report missing condition_number".to_string()))?,
        used_ridge: get_bool(doc, "used_ridge")?,
        clamped_params: strings_from_json(doc, "clamped_params")?,
        degraded_params: strings_from_json(doc, "degraded_params")?,
        degraded: get_bool(doc, "degraded")?,
        failure: match doc.get("failure") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| bad("failure is not a string".to_string()))?
                    .to_string(),
            ),
        },
    })
}

fn machine_to_json(m: &MachineSpec) -> Json {
    Json::obj([
        ("cores", Json::Num(m.cores as f64)),
        ("cycles_per_sec", Json::Num(m.cycles_per_sec)),
        ("memory_bytes", Json::Num(m.memory_bytes as f64)),
        ("disk_seq_bytes_per_sec", Json::Num(m.disk_seq_bytes_per_sec)),
        ("disk_random_iops", Json::Num(m.disk_random_iops)),
        ("page_size", Json::Num(m.page_size as f64)),
    ])
}

fn machine_from_json(doc: &Json) -> Result<MachineSpec, CalError> {
    Ok(MachineSpec {
        cores: get_num(doc, "cores")? as u32,
        cycles_per_sec: get_num(doc, "cycles_per_sec")?,
        memory_bytes: get_num(doc, "memory_bytes")? as u64,
        disk_seq_bytes_per_sec: get_num(doc, "disk_seq_bytes_per_sec")?,
        disk_random_iops: get_num(doc, "disk_random_iops")?,
        page_size: get_num(doc, "page_size")? as u32,
    })
}

fn params_to_json(p: &OptimizerParams) -> Json {
    Json::obj([
        ("unit_seconds", Json::Num(p.unit_seconds)),
        ("seq_page_cost", Json::Num(p.seq_page_cost)),
        ("random_page_cost", Json::Num(p.random_page_cost)),
        ("cpu_tuple_cost", Json::Num(p.cpu_tuple_cost)),
        ("cpu_index_tuple_cost", Json::Num(p.cpu_index_tuple_cost)),
        ("cpu_operator_cost", Json::Num(p.cpu_operator_cost)),
        (
            "effective_cache_size_pages",
            Json::Num(p.effective_cache_size_pages),
        ),
        ("work_mem_bytes", Json::Num(p.work_mem_bytes)),
    ])
}

fn params_from_json(doc: &Json) -> Result<OptimizerParams, CalError> {
    Ok(OptimizerParams {
        unit_seconds: get_num(doc, "unit_seconds")?,
        seq_page_cost: get_num(doc, "seq_page_cost")?,
        random_page_cost: get_num(doc, "random_page_cost")?,
        cpu_tuple_cost: get_num(doc, "cpu_tuple_cost")?,
        cpu_index_tuple_cost: get_num(doc, "cpu_index_tuple_cost")?,
        cpu_operator_cost: get_num(doc, "cpu_operator_cost")?,
        effective_cache_size_pages: get_num(doc, "effective_cache_size_pages")?,
        work_mem_bytes: get_num(doc, "work_mem_bytes")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbvirt_vmm::{FaultInjector, NoiseModel};

    fn small_grid() -> CalibrationGrid {
        CalibrationGrid::calibrate(
            MachineSpec::paper_testbed(),
            vec![0.25, 0.5, 0.75],
            vec![0.25, 0.75],
            0.5,
        )
        .unwrap()
    }

    #[test]
    fn grid_points_and_interpolation() {
        let grid = small_grid();
        assert_eq!(grid.num_points(), 6);
        // Exact at a grid point.
        let at = grid
            .params_for(ResourceVector::from_fractions(0.5, 0.25, 0.5).unwrap())
            .unwrap();
        assert!((at.cpu_tuple_cost - grid.at_point(1, 0).cpu_tuple_cost).abs() < 1e-12);
        // Between points: bounded by the corners, monotone in CPU.
        let mid = grid
            .params_for(ResourceVector::from_fractions(0.375, 0.25, 0.5).unwrap())
            .unwrap();
        let lo = grid.at_point(0, 0).cpu_tuple_cost;
        let hi = grid.at_point(1, 0).cpu_tuple_cost;
        assert!(mid.cpu_tuple_cost <= lo.max(hi) && mid.cpu_tuple_cost >= lo.min(hi));
    }

    #[test]
    fn cpu_tuple_cost_decreases_with_cpu_share() {
        let grid = small_grid();
        let c25 = grid.at_point(0, 0).cpu_tuple_cost;
        let c50 = grid.at_point(1, 0).cpu_tuple_cost;
        let c75 = grid.at_point(2, 0).cpu_tuple_cost;
        assert!(c25 > c50 && c50 > c75, "{c25} > {c50} > {c75} expected");
    }

    #[test]
    fn clean_sweep_reports_clean_health() {
        let grid = small_grid();
        let h = grid.health();
        assert!(h.is_clean(), "{h}");
        assert_eq!(h.cells, 6);
        assert_eq!(h.degraded_cells, 0);
        assert_eq!(h.total_retries, 0);
        for c in 0..3 {
            for m in 0..2 {
                assert!(grid.report_at(c, m).is_clean());
            }
        }
    }

    #[test]
    fn out_of_grid_is_an_error() {
        let grid = small_grid();
        let err = grid
            .params_for(ResourceVector::from_fractions(0.9, 0.5, 0.5).unwrap())
            .unwrap_err();
        assert!(matches!(err, CalError::OutOfGrid { axis: "cpu", .. }));
        let err = grid
            .params_for(ResourceVector::from_fractions(0.5, 0.5, 0.9).unwrap())
            .unwrap_err();
        assert!(matches!(err, CalError::OutOfGrid { axis: "disk", .. }));
    }

    #[test]
    fn lerp_interpolates_every_parameter() {
        // Regression: `lerp_params` used to hard-reset `seq_page_cost` to
        // 1.0, silently discarding rescaled endpoints.
        let mut a = OptimizerParams::postgres_defaults();
        let mut b = OptimizerParams::postgres_defaults();
        a.seq_page_cost = 0.8;
        b.seq_page_cost = 1.6;
        a.random_page_cost = 2.0;
        b.random_page_cost = 6.0;
        let mid = lerp_params(&a, &b, 0.25);
        assert!((mid.seq_page_cost - 1.0).abs() < 1e-12);
        assert!((mid.random_page_cost - 3.0).abs() < 1e-12);
        // t = 0 and t = 1 reproduce the endpoints exactly.
        assert_eq!(lerp_params(&a, &b, 0.0), a);
        assert_eq!(lerp_params(&a, &b, 1.0), b);
        // A midpoint of 0.25 would have been the *wrong* answer under the
        // old behavior only by luck; check an asymmetric case too.
        let q = lerp_params(&a, &b, 0.75);
        assert!((q.seq_page_cost - 1.4).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip() {
        let grid = small_grid();
        let json = grid.to_json().unwrap();
        let back = CalibrationGrid::from_json(&json).unwrap();
        assert_eq!(grid, back);
    }

    #[test]
    fn old_cache_without_reports_still_loads() {
        let grid = small_grid();
        let json = grid.to_json().unwrap();
        // Simulate a pre-health cache by deleting the reports field from
        // the parsed document.
        let mut doc = Json::parse(&json).unwrap();
        if let Json::Obj(m) = &mut doc {
            m.remove("reports");
        }
        let back = CalibrationGrid::from_json(&doc.pretty()).unwrap();
        assert_eq!(back.at_point(1, 1), grid.at_point(1, 1));
        // Loaded reports are pristine placeholders.
        assert!(back.report_at(0, 0).probes.is_empty());
        assert!(!back.report_at(0, 0).degraded);
    }

    #[test]
    fn invalid_axes_are_rejected() {
        let m = MachineSpec::tiny();
        assert!(CalibrationGrid::calibrate(m, vec![], vec![0.5], 0.5).is_err());
        assert!(CalibrationGrid::calibrate(m, vec![0.5, 0.25], vec![0.5], 0.5).is_err());
        assert!(CalibrationGrid::calibrate(m, vec![0.5], vec![0.5], 0.0).is_err());
    }

    #[test]
    fn nearest_donor_selection_is_symmetric() {
        let donors = vec![(0, 0), (0, 2), (2, 0), (2, 2)];
        // Center of a square: all four corners tie.
        assert_eq!(nearest_donors(&donors, 1, 1).len(), 4);
        // On top of a donor: just that donor.
        assert_eq!(nearest_donors(&donors, 0, 0), vec![(0, 0)]);
        assert!(nearest_donors(&[], 1, 1).is_empty());
    }

    #[test]
    fn clamped_parameter_is_refilled_from_neighbors() {
        // Single-trial measurements under ±30% jitter with the outlier
        // refit disabled: at seed 14 exactly one cell recovers a
        // non-positive parameter (clamped at the floor), which the grid
        // must re-fill from the nearest cells that identified it.
        let injector = FaultInjector::new(NoiseModel::uniform_jitter(0.3), 14);
        let rcfg = CalibrationConfig {
            trials: 1,
            max_outlier_drops: 0,
            ..CalibrationConfig::robust()
        }
        .with_injector(injector);
        let grid = CalibrationGrid::calibrate_with_config(
            MachineSpec::paper_testbed(),
            vec![0.25, 0.5, 0.75],
            vec![0.25, 0.75],
            0.5,
            &rcfg,
        )
        .unwrap();
        let h = grid.health();
        assert_eq!(h.degraded_cells, 0, "{h}");
        assert_eq!(h.cells_with_degraded_params, 1, "{h}");

        let (c, m) = (0..3)
            .flat_map(|c| (0..2).map(move |m| (c, m)))
            .find(|&(c, m)| !grid.report_at(c, m).clamped_params.is_empty())
            .expect("one cell with a clamped parameter");
        let report = grid.report_at(c, m);
        // The clamp is recorded AND the parameter was interpolated.
        assert_eq!(report.clamped_params, report.degraded_params);
        assert!(!report.degraded, "a partial fill is not a degraded cell");
        let name = report.clamped_params[0].clone();
        let v = get_param(grid.at_point(c, m), &name);
        assert!(
            v > crate::runner::RATIO_FLOOR * 10.0,
            "{name} should be neighbor-filled, not stuck at the floor: {v}"
        );
    }

    #[test]
    fn failed_cell_degrades_to_neighbor_interpolation() {
        // Seed 0 at p(fail) = 0.5, one trial, no retries: exactly one of
        // the six cells loses too many probes to fit and must be filled
        // from its neighbors (verified fixed by the injector's
        // determinism contract).
        let injector = FaultInjector::new(NoiseModel::none().with_failures(0.5), 0);
        let rcfg = CalibrationConfig {
            trials: 1,
            max_retries: 0,
            ..CalibrationConfig::robust()
        }
        .with_injector(injector);
        let grid = CalibrationGrid::calibrate_with_config(
            MachineSpec::paper_testbed(),
            vec![0.25, 0.5, 0.75],
            vec![0.25, 0.75],
            0.5,
            &rcfg,
        )
        .unwrap();
        let h = grid.health();
        assert_eq!(h.degraded_cells, 1, "{h}");
        assert!(!h.is_clean());

        let (c, m) = (0..3)
            .flat_map(|c| (0..2).map(move |m| (c, m)))
            .find(|&(c, m)| grid.report_at(c, m).degraded)
            .expect("one degraded cell");
        let report = grid.report_at(c, m);
        assert!(report.failure.is_some(), "{report}");
        assert_eq!(report.degraded_params.len(), MEASURED_PARAMS.len());
        // The interpolated cell carries physical, validated parameters.
        let p = grid.at_point(c, m);
        p.validate().unwrap();
        // And they lie within the envelope of the healthy cells they were
        // averaged from.
        let healthy: Vec<&OptimizerParams> = (0..3)
            .flat_map(|hc| (0..2).map(move |hm| (hc, hm)))
            .filter(|&(hc, hm)| !grid.report_at(hc, hm).degraded)
            .map(|(hc, hm)| grid.at_point(hc, hm))
            .collect();
        for name in MEASURED_PARAMS {
            let v = get_param(p, name);
            let lo = healthy.iter().map(|q| get_param(q, name)).fold(f64::MAX, f64::min);
            let hi = healthy.iter().map(|q| get_param(q, name)).fold(f64::MIN, f64::max);
            assert!(v >= lo && v <= hi, "{name}: {v} outside [{lo}, {hi}]");
        }
        // Every allocation still resolves — the sweep degraded instead of
        // failing.
        grid.params_for(ResourceVector::from_fractions(0.4, 0.6, 0.5).unwrap())
            .unwrap();

        // A degraded grid's health survives the JSON cache. (Compared via
        // re-serialization: dropped probes carry NaN seconds, which are
        // unequal to themselves under PartialEq.)
        let json = grid.to_json().unwrap();
        let back = CalibrationGrid::from_json(&json).unwrap();
        assert_eq!(json, back.to_json().unwrap());
        assert_eq!(back.health(), h);
        assert!(back.report_at(c, m).degraded);
    }

    #[test]
    fn all_cells_failing_is_an_error_not_a_panic() {
        // Every measurement fails with no retries: every cell drops all
        // probes, no donor exists, and the sweep must surface
        // InsufficientProbes.
        let injector = FaultInjector::new(NoiseModel::none().with_failures(1.0), 7);
        let rcfg = CalibrationConfig {
            trials: 1,
            max_retries: 0,
            ..CalibrationConfig::robust()
        }
        .with_injector(injector);
        let err = CalibrationGrid::calibrate_with_config(
            MachineSpec::paper_testbed(),
            vec![0.25, 0.75],
            vec![0.5],
            0.5,
            &rcfg,
        )
        .unwrap_err();
        assert!(matches!(err, CalError::InsufficientProbes { .. }), "{err}");
    }

    #[test]
    fn special_numbers_roundtrip_through_json() {
        for v in [1.5, 0.0, f64::INFINITY, f64::NEG_INFINITY] {
            let back = special_num_from_json(&special_num_to_json(v)).unwrap();
            assert_eq!(v.to_bits(), back.to_bits());
        }
        assert!(special_num_from_json(&special_num_to_json(f64::NAN))
            .unwrap()
            .is_nan());
    }
}
