//! The calibration grid: `P(R)` precomputed over allocation space.
//!
//! The paper notes that `P` depends only on the machine and `R`, so it can
//! be calibrated off-line over a grid of allocations and reused for every
//! database and workload. This module implements that grid, its bilinear
//! interpolation for off-grid allocations (the paper's "reduce the number
//! of calibration experiments" next step), and a JSON cache so a machine
//! is calibrated once.
//!
//! Axes are CPU share × memory share, matching the knobs the paper's
//! experiments vary; the disk share is a fixed policy per grid (the 2007
//! Xen testbed could not throttle disk independently).

use crate::json::Json;
use crate::runner::calibrate_with;
use crate::{CalError, ProbeDb};
use dbvirt_optimizer::OptimizerParams;
use dbvirt_vmm::{MachineSpec, ResourceVector, VmmError};

/// A calibrated `P(R)` surface over CPU × memory shares.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationGrid {
    machine: MachineSpec,
    cpu_points: Vec<f64>,
    mem_points: Vec<f64>,
    disk_share: f64,
    /// `entries[ci][mi]` is the calibration at `(cpu_points[ci],
    /// mem_points[mi])`.
    entries: Vec<Vec<OptimizerParams>>,
}

fn validate_axis(points: &[f64], axis: &'static str) -> Result<(), CalError> {
    if points.is_empty() {
        return Err(CalError::CacheIo {
            reason: format!("{axis} axis is empty"),
        });
    }
    let sorted = points.windows(2).all(|w| w[0] < w[1]);
    let in_range = points.iter().all(|&p| p > 0.0 && p <= 1.0);
    if !sorted || !in_range {
        return Err(CalError::CacheIo {
            reason: format!("{axis} axis must be strictly increasing within (0, 1]"),
        });
    }
    Ok(())
}

/// Locates `v` on an axis: returns `(lower index, interpolation weight)`.
fn bracket(points: &[f64], v: f64, axis: &'static str) -> Result<(usize, f64), CalError> {
    let eps = 1e-9;
    if v < points[0] - eps || v > points[points.len() - 1] + eps {
        return Err(CalError::OutOfGrid { value: v, axis });
    }
    if points.len() == 1 {
        return Ok((0, 0.0));
    }
    let hi = points
        .partition_point(|&p| p < v)
        .min(points.len() - 1)
        .max(1);
    let lo = hi - 1;
    let t = ((v - points[lo]) / (points[hi] - points[lo])).clamp(0.0, 1.0);
    Ok((lo, t))
}

fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

fn lerp_params(a: &OptimizerParams, b: &OptimizerParams, t: f64) -> OptimizerParams {
    OptimizerParams {
        unit_seconds: lerp(a.unit_seconds, b.unit_seconds, t),
        // `seq_page_cost` is pinned to 1 by the calibration solver, but the
        // grid must not assume that: a cache file or hand-built grid can
        // carry rescaled endpoints, and resetting the interpolant to 1.0
        // would silently break `cost * unit_seconds` consistency.
        seq_page_cost: lerp(a.seq_page_cost, b.seq_page_cost, t),
        random_page_cost: lerp(a.random_page_cost, b.random_page_cost, t),
        cpu_tuple_cost: lerp(a.cpu_tuple_cost, b.cpu_tuple_cost, t),
        cpu_index_tuple_cost: lerp(a.cpu_index_tuple_cost, b.cpu_index_tuple_cost, t),
        cpu_operator_cost: lerp(a.cpu_operator_cost, b.cpu_operator_cost, t),
        effective_cache_size_pages: lerp(
            a.effective_cache_size_pages,
            b.effective_cache_size_pages,
            t,
        ),
        work_mem_bytes: lerp(a.work_mem_bytes, b.work_mem_bytes, t),
    }
}

impl CalibrationGrid {
    /// Calibrates a grid, running the grid points in parallel (each worker
    /// builds its own probe database).
    pub fn calibrate(
        machine: MachineSpec,
        cpu_points: Vec<f64>,
        mem_points: Vec<f64>,
        disk_share: f64,
    ) -> Result<CalibrationGrid, CalError> {
        validate_axis(&cpu_points, "cpu")?;
        validate_axis(&mem_points, "memory")?;
        if !(disk_share > 0.0 && disk_share <= 1.0) {
            return Err(CalError::CacheIo {
                reason: format!("disk share {disk_share} out of range"),
            });
        }

        let combos: Vec<(usize, usize)> = (0..cpu_points.len())
            .flat_map(|c| (0..mem_points.len()).map(move |m| (c, m)))
            .collect();

        let n_workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .min(combos.len())
            .max(1);
        let results: Vec<Result<(usize, usize, OptimizerParams), CalError>> =
            std::thread::scope(|scope| {
                let chunks: Vec<Vec<(usize, usize)>> = combos
                    .chunks(combos.len().div_ceil(n_workers))
                    .map(<[(usize, usize)]>::to_vec)
                    .collect();
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|chunk| {
                        let cpu_points = &cpu_points;
                        let mem_points = &mem_points;
                        scope.spawn(move || {
                            let mut pdb = ProbeDb::build().map_err(|e| CalError::ProbeFailed {
                                probe: "<probe-db>".to_string(),
                                reason: e.to_string(),
                            })?;
                            let mut out = Vec::new();
                            for (c, m) in chunk {
                                let shares = ResourceVector::from_fractions(
                                    cpu_points[c],
                                    mem_points[m],
                                    disk_share,
                                )
                                .map_err(|e: VmmError| CalError::ProbeFailed {
                                    probe: "<shares>".to_string(),
                                    reason: e.to_string(),
                                })?;
                                let cal = calibrate_with(&mut pdb, machine, shares)?;
                                out.push((c, m, cal.params));
                            }
                            Ok(out)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| match h.join().expect("worker panicked") {
                        Ok(v) => v.into_iter().map(Ok).collect::<Vec<_>>(),
                        Err(e) => vec![Err(e)],
                    })
                    .collect()
            });

        let default = OptimizerParams::postgres_defaults();
        let mut entries = vec![vec![default; mem_points.len()]; cpu_points.len()];
        for r in results {
            let (c, m, p) = r?;
            entries[c][m] = p;
        }
        Ok(CalibrationGrid {
            machine,
            cpu_points,
            mem_points,
            disk_share,
            entries,
        })
    }

    /// The machine this grid was calibrated on.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// The fixed disk share used for calibration.
    pub fn disk_share(&self) -> f64 {
        self.disk_share
    }

    /// Grid axes.
    pub fn axes(&self) -> (&[f64], &[f64]) {
        (&self.cpu_points, &self.mem_points)
    }

    /// Number of calibrated grid points.
    pub fn num_points(&self) -> usize {
        self.cpu_points.len() * self.mem_points.len()
    }

    /// The calibrated `P` for allocation `shares`, with bilinear
    /// interpolation between grid points. The disk share of `shares` is
    /// accepted if it matches the grid's policy (within 1e-6); otherwise
    /// an [`CalError::OutOfGrid`] is returned.
    pub fn params_for(&self, shares: ResourceVector) -> Result<OptimizerParams, CalError> {
        if (shares.disk().fraction() - self.disk_share).abs() > 1e-6 {
            return Err(CalError::OutOfGrid {
                value: shares.disk().fraction(),
                axis: "disk",
            });
        }
        let (ci, ct) = bracket(&self.cpu_points, shares.cpu().fraction(), "cpu")?;
        let (mi, mt) = bracket(&self.mem_points, shares.memory().fraction(), "memory")?;
        let ci2 = (ci + 1).min(self.cpu_points.len() - 1);
        let mi2 = (mi + 1).min(self.mem_points.len() - 1);
        let low = lerp_params(&self.entries[ci][mi], &self.entries[ci][mi2], mt);
        let high = lerp_params(&self.entries[ci2][mi], &self.entries[ci2][mi2], mt);
        Ok(lerp_params(&low, &high, ct))
    }

    /// The exact calibrated parameters at a grid point (no interpolation).
    pub fn at_point(&self, cpu_idx: usize, mem_idx: usize) -> &OptimizerParams {
        &self.entries[cpu_idx][mem_idx]
    }

    /// Serializes the grid to JSON.
    pub fn to_json(&self) -> Result<String, CalError> {
        let doc = Json::obj([
            ("machine", machine_to_json(&self.machine)),
            ("cpu_points", f64s_to_json(&self.cpu_points)),
            ("mem_points", f64s_to_json(&self.mem_points)),
            ("disk_share", Json::Num(self.disk_share)),
            (
                "entries",
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|row| Json::Arr(row.iter().map(params_to_json).collect()))
                        .collect(),
                ),
            ),
        ]);
        Ok(doc.pretty())
    }

    /// Deserializes a grid from JSON.
    pub fn from_json(json: &str) -> Result<CalibrationGrid, CalError> {
        let bad = |reason: String| CalError::CacheIo { reason };
        let doc = Json::parse(json).map_err(bad)?;
        let entries = doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing entries".to_string()))?
            .iter()
            .map(|row| {
                row.as_arr()
                    .ok_or_else(|| bad("entries row is not an array".to_string()))?
                    .iter()
                    .map(params_from_json)
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CalibrationGrid {
            machine: machine_from_json(
                doc.get("machine")
                    .ok_or_else(|| bad("missing machine".to_string()))?,
            )?,
            cpu_points: f64s_from_json(&doc, "cpu_points")?,
            mem_points: f64s_from_json(&doc, "mem_points")?,
            disk_share: get_num(&doc, "disk_share")?,
            entries,
        })
    }

    /// Saves the grid to a file.
    pub fn save(&self, path: &std::path::Path) -> Result<(), CalError> {
        std::fs::write(path, self.to_json()?).map_err(|e| CalError::CacheIo {
            reason: e.to_string(),
        })
    }

    /// Loads a grid from a file.
    pub fn load(path: &std::path::Path) -> Result<CalibrationGrid, CalError> {
        let json = std::fs::read_to_string(path).map_err(|e| CalError::CacheIo {
            reason: e.to_string(),
        })?;
        CalibrationGrid::from_json(&json)
    }
}

fn get_num(obj: &Json, key: &str) -> Result<f64, CalError> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| CalError::CacheIo {
            reason: format!("missing or non-numeric field {key:?}"),
        })
}

fn f64s_to_json(values: &[f64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::Num(v)).collect())
}

fn f64s_from_json(obj: &Json, key: &str) -> Result<Vec<f64>, CalError> {
    obj.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| CalError::CacheIo {
            reason: format!("missing array field {key:?}"),
        })?
        .iter()
        .map(|v| {
            v.as_f64().ok_or_else(|| CalError::CacheIo {
                reason: format!("non-numeric element in {key:?}"),
            })
        })
        .collect()
}

fn machine_to_json(m: &MachineSpec) -> Json {
    Json::obj([
        ("cores", Json::Num(m.cores as f64)),
        ("cycles_per_sec", Json::Num(m.cycles_per_sec)),
        ("memory_bytes", Json::Num(m.memory_bytes as f64)),
        ("disk_seq_bytes_per_sec", Json::Num(m.disk_seq_bytes_per_sec)),
        ("disk_random_iops", Json::Num(m.disk_random_iops)),
        ("page_size", Json::Num(m.page_size as f64)),
    ])
}

fn machine_from_json(doc: &Json) -> Result<MachineSpec, CalError> {
    Ok(MachineSpec {
        cores: get_num(doc, "cores")? as u32,
        cycles_per_sec: get_num(doc, "cycles_per_sec")?,
        memory_bytes: get_num(doc, "memory_bytes")? as u64,
        disk_seq_bytes_per_sec: get_num(doc, "disk_seq_bytes_per_sec")?,
        disk_random_iops: get_num(doc, "disk_random_iops")?,
        page_size: get_num(doc, "page_size")? as u32,
    })
}

fn params_to_json(p: &OptimizerParams) -> Json {
    Json::obj([
        ("unit_seconds", Json::Num(p.unit_seconds)),
        ("seq_page_cost", Json::Num(p.seq_page_cost)),
        ("random_page_cost", Json::Num(p.random_page_cost)),
        ("cpu_tuple_cost", Json::Num(p.cpu_tuple_cost)),
        ("cpu_index_tuple_cost", Json::Num(p.cpu_index_tuple_cost)),
        ("cpu_operator_cost", Json::Num(p.cpu_operator_cost)),
        (
            "effective_cache_size_pages",
            Json::Num(p.effective_cache_size_pages),
        ),
        ("work_mem_bytes", Json::Num(p.work_mem_bytes)),
    ])
}

fn params_from_json(doc: &Json) -> Result<OptimizerParams, CalError> {
    Ok(OptimizerParams {
        unit_seconds: get_num(doc, "unit_seconds")?,
        seq_page_cost: get_num(doc, "seq_page_cost")?,
        random_page_cost: get_num(doc, "random_page_cost")?,
        cpu_tuple_cost: get_num(doc, "cpu_tuple_cost")?,
        cpu_index_tuple_cost: get_num(doc, "cpu_index_tuple_cost")?,
        cpu_operator_cost: get_num(doc, "cpu_operator_cost")?,
        effective_cache_size_pages: get_num(doc, "effective_cache_size_pages")?,
        work_mem_bytes: get_num(doc, "work_mem_bytes")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> CalibrationGrid {
        CalibrationGrid::calibrate(
            MachineSpec::paper_testbed(),
            vec![0.25, 0.5, 0.75],
            vec![0.25, 0.75],
            0.5,
        )
        .unwrap()
    }

    #[test]
    fn grid_points_and_interpolation() {
        let grid = small_grid();
        assert_eq!(grid.num_points(), 6);
        // Exact at a grid point.
        let at = grid
            .params_for(ResourceVector::from_fractions(0.5, 0.25, 0.5).unwrap())
            .unwrap();
        assert!((at.cpu_tuple_cost - grid.at_point(1, 0).cpu_tuple_cost).abs() < 1e-12);
        // Between points: bounded by the corners, monotone in CPU.
        let mid = grid
            .params_for(ResourceVector::from_fractions(0.375, 0.25, 0.5).unwrap())
            .unwrap();
        let lo = grid.at_point(0, 0).cpu_tuple_cost;
        let hi = grid.at_point(1, 0).cpu_tuple_cost;
        assert!(mid.cpu_tuple_cost <= lo.max(hi) && mid.cpu_tuple_cost >= lo.min(hi));
    }

    #[test]
    fn cpu_tuple_cost_decreases_with_cpu_share() {
        let grid = small_grid();
        let c25 = grid.at_point(0, 0).cpu_tuple_cost;
        let c50 = grid.at_point(1, 0).cpu_tuple_cost;
        let c75 = grid.at_point(2, 0).cpu_tuple_cost;
        assert!(c25 > c50 && c50 > c75, "{c25} > {c50} > {c75} expected");
    }

    #[test]
    fn out_of_grid_is_an_error() {
        let grid = small_grid();
        let err = grid
            .params_for(ResourceVector::from_fractions(0.9, 0.5, 0.5).unwrap())
            .unwrap_err();
        assert!(matches!(err, CalError::OutOfGrid { axis: "cpu", .. }));
        let err = grid
            .params_for(ResourceVector::from_fractions(0.5, 0.5, 0.9).unwrap())
            .unwrap_err();
        assert!(matches!(err, CalError::OutOfGrid { axis: "disk", .. }));
    }

    #[test]
    fn lerp_interpolates_every_parameter() {
        // Regression: `lerp_params` used to hard-reset `seq_page_cost` to
        // 1.0, silently discarding rescaled endpoints.
        let mut a = OptimizerParams::postgres_defaults();
        let mut b = OptimizerParams::postgres_defaults();
        a.seq_page_cost = 0.8;
        b.seq_page_cost = 1.6;
        a.random_page_cost = 2.0;
        b.random_page_cost = 6.0;
        let mid = lerp_params(&a, &b, 0.25);
        assert!((mid.seq_page_cost - 1.0).abs() < 1e-12);
        assert!((mid.random_page_cost - 3.0).abs() < 1e-12);
        // t = 0 and t = 1 reproduce the endpoints exactly.
        assert_eq!(lerp_params(&a, &b, 0.0), a);
        assert_eq!(lerp_params(&a, &b, 1.0), b);
        // A midpoint of 0.25 would have been the *wrong* answer under the
        // old behavior only by luck; check an asymmetric case too.
        let q = lerp_params(&a, &b, 0.75);
        assert!((q.seq_page_cost - 1.4).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip() {
        let grid = small_grid();
        let json = grid.to_json().unwrap();
        let back = CalibrationGrid::from_json(&json).unwrap();
        assert_eq!(grid, back);
    }

    #[test]
    fn invalid_axes_are_rejected() {
        let m = MachineSpec::tiny();
        assert!(CalibrationGrid::calibrate(m, vec![], vec![0.5], 0.5).is_err());
        assert!(CalibrationGrid::calibrate(m, vec![0.5, 0.25], vec![0.5], 0.5).is_err());
        assert!(CalibrationGrid::calibrate(m, vec![0.5], vec![0.5], 0.0).is_err());
    }
}
