//! Dynamic reconfiguration — the paper's Section 7 next step:
//!
//! > "An important next step in the area of tuning and virtualization,
//! > beyond the static virtualization design problem, is to consider the
//! > dynamic case and reconfigure the virtual machines on the fly in
//! > response to changes in the workload."
//!
//! A [`DynamicTimeline`] is a sequence of phases, each a full
//! [`DesignProblem`] over the same set of virtual machines (the workload
//! mix changes; the VMs persist). The controller re-solves the design
//! problem at every phase boundary and switches allocations only when the
//! predicted gain clears a hysteresis threshold plus the reconfiguration
//! overhead (resizing a VM's memory flushes caches and costs wall-clock
//! time — switching is not free, so a sensible controller doesn't chase
//! noise).

use crate::search::{run_search_cached, CostCache, SearchAlgorithm, SearchConfig};
use crate::{CoreError, CostModel, DesignProblem};
use dbvirt_vmm::AllocationMatrix;
use std::sync::Arc;

/// A sequence of workload phases over the same `N` virtual machines.
#[derive(Debug)]
pub struct DynamicTimeline<'a> {
    /// The phases, in time order. Every phase must have the same number of
    /// workloads (one per persistent VM).
    pub phases: Vec<DesignProblem<'a>>,
}

impl<'a> DynamicTimeline<'a> {
    /// Creates a timeline, validating phase alignment.
    pub fn new(phases: Vec<DesignProblem<'a>>) -> Result<DynamicTimeline<'a>, CoreError> {
        let Some(first) = phases.first() else {
            return Err(CoreError::BadProblem {
                reason: "a timeline needs at least one phase".to_string(),
            });
        };
        let n = first.num_workloads();
        if phases.iter().any(|p| p.num_workloads() != n) {
            return Err(CoreError::BadProblem {
                reason: "every phase must have the same number of workloads".to_string(),
            });
        }
        Ok(DynamicTimeline { phases })
    }

    /// Number of persistent VMs.
    pub fn num_workloads(&self) -> usize {
        self.phases[0].num_workloads()
    }
}

/// Controller policy.
#[derive(Debug, Clone, Copy)]
pub struct ReconfigPolicy {
    /// Search algorithm used at each phase boundary.
    pub algorithm: SearchAlgorithm,
    /// Share discretization (as in the static search).
    pub config: SearchConfig,
    /// Wall-clock seconds one reconfiguration costs (VM resize + cache
    /// refill), charged whenever the controller switches.
    pub switch_overhead_seconds: f64,
    /// Minimum relative improvement (e.g. `0.05` = 5%) the new allocation
    /// must promise over keeping the current one, beyond the overhead,
    /// before the controller switches.
    pub min_relative_gain: f64,
}

impl ReconfigPolicy {
    /// A reasonable default: DP search, 5% hysteresis, 1 s overhead.
    pub fn new(config: SearchConfig) -> ReconfigPolicy {
        ReconfigPolicy {
            algorithm: SearchAlgorithm::DynamicProgramming,
            config,
            switch_overhead_seconds: 1.0,
            min_relative_gain: 0.05,
        }
    }
}

/// What happened at one phase.
#[derive(Debug, Clone)]
pub struct PhaseOutcome {
    /// The allocation in force during the phase.
    pub allocation: AllocationMatrix,
    /// Predicted phase cost under that allocation (seconds).
    pub cost: f64,
    /// True if the controller reconfigured at this phase's start.
    pub reconfigured: bool,
}

/// The full run: per-phase outcomes plus baselines.
#[derive(Debug, Clone)]
pub struct DynamicOutcome {
    /// Per-phase decisions and costs.
    pub phases: Vec<PhaseOutcome>,
    /// Total dynamic cost, including reconfiguration overheads.
    pub total_cost: f64,
    /// Number of reconfigurations performed (phase 0's initial setup is
    /// not counted).
    pub reconfigurations: usize,
    /// Baseline: the equal split held for the whole timeline.
    pub static_equal_cost: f64,
    /// Baseline: phase 0's optimal allocation held for the whole timeline.
    pub static_first_phase_cost: f64,
}

/// True if two phases describe the same what-if inputs per VM — same
/// machine, same database instances, same query plans — differing at most
/// in workload weights. Cached cell costs are unweighted, so such phases
/// can share one [`CostCache`] and re-solve against warm entries.
fn phases_share_model_inputs(a: &DesignProblem<'_>, b: &DesignProblem<'_>) -> bool {
    a.machine == b.machine
        && a.workloads.len() == b.workloads.len()
        && a.workloads.iter().zip(&b.workloads).all(|(x, y)| {
            std::ptr::eq(x.db, y.db) && x.queries == y.queries
        })
}

/// Cost of running `problem` under a fixed `allocation` (weighted, like
/// the search objective).
fn phase_cost(
    problem: &DesignProblem<'_>,
    model: &dyn CostModel,
    allocation: &AllocationMatrix,
) -> Result<f64, CoreError> {
    (0..problem.num_workloads())
        .map(|w| Ok(model.cost(problem, w, allocation.row(w))? * problem.workloads[w].weight))
        .sum()
}

/// Runs the reconfiguration controller over a timeline.
pub fn run_dynamic(
    timeline: &DynamicTimeline<'_>,
    model: &dyn CostModel,
    policy: ReconfigPolicy,
) -> Result<DynamicOutcome, CoreError> {
    let n = timeline.num_workloads();

    // Baseline allocations.
    let equal = AllocationMatrix::new(
        (0..n)
            .map(|_| {
                dbvirt_vmm::ResourceVector::from_fractions(
                    1.0 / n as f64,
                    1.0 / n as f64,
                    policy.config.disk_share,
                )
            })
            .collect::<Result<Vec<_>, _>>()?,
    )?;

    // One warm what-if cache for the whole timeline: consecutive phases
    // usually re-price the same databases and queries (only the mix of
    // weights shifts), so later re-solves mostly hit cells phase 0
    // already paid for. Phases with genuinely different inputs get a
    // fresh cache.
    let base_cache = Arc::new(CostCache::new());

    // Phase 0: initial placement (not counted as a reconfiguration).
    let first_rec = run_search_cached(
        policy.algorithm,
        &timeline.phases[0],
        model,
        policy.config,
        &base_cache,
    )?;
    let mut current = first_rec.allocation.clone();

    let mut phases = Vec::with_capacity(timeline.phases.len());
    let mut total = 0.0;
    let mut reconfigurations = 0usize;
    let mut static_equal = 0.0;
    let mut static_first = 0.0;

    for (i, problem) in timeline.phases.iter().enumerate() {
        static_equal += phase_cost(problem, model, &equal)?;
        static_first += phase_cost(problem, model, &first_rec.allocation)?;

        let keep_cost = phase_cost(problem, model, &current)?;
        let (allocation, cost, reconfigured) = if i == 0 {
            (current.clone(), keep_cost, false)
        } else {
            let cache = if phases_share_model_inputs(problem, &timeline.phases[0]) {
                Arc::clone(&base_cache)
            } else {
                Arc::new(CostCache::new())
            };
            let rec = run_search_cached(policy.algorithm, problem, model, policy.config, &cache)?;
            let gain = keep_cost - rec.objective - policy.switch_overhead_seconds;
            if gain > policy.min_relative_gain * keep_cost {
                reconfigurations += 1;
                (
                    rec.allocation.clone(),
                    rec.objective + policy.switch_overhead_seconds,
                    true,
                )
            } else {
                (current.clone(), keep_cost, false)
            }
        };
        current = allocation.clone();
        total += cost;
        phases.push(PhaseOutcome {
            allocation,
            cost,
            reconfigured,
        });
    }

    Ok(DynamicOutcome {
        phases,
        total_cost: total,
        reconfigurations,
        static_equal_cost: static_equal,
        static_first_phase_cost: static_first,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::run_search;
    use crate::search::tests_support::{dummy_db, dummy_problem, SyntheticModel};
    use dbvirt_vmm::ResourceVector;

    /// A model whose weights can be swapped per phase is simulated by
    /// giving each phase its own SyntheticModel via a closure-dispatching
    /// wrapper keyed on the problem pointer. Simpler: phases share one
    /// model but differ in workload *weights* (SLO), which the objective
    /// already folds in.
    #[test]
    fn controller_reconfigures_when_the_mix_flips() {
        let db = dummy_db();
        // Phase A: workload 0 is hot (weight 10); phase B: workload 1 is.
        let mut phase_a = dummy_problem(&db, 2);
        phase_a.workloads[0].weight = 10.0;
        let mut phase_b = dummy_problem(&db, 2);
        phase_b.workloads[1].weight = 10.0;
        let mut phase_b2 = dummy_problem(&db, 2);
        phase_b2.workloads[1].weight = 10.0;

        let timeline = DynamicTimeline::new(vec![phase_a, phase_b, phase_b2]).unwrap();
        let model = SyntheticModel {
            weights: vec![(2.0, 2.0), (2.0, 2.0)],
        };
        let policy = ReconfigPolicy {
            switch_overhead_seconds: 0.5,
            min_relative_gain: 0.02,
            ..ReconfigPolicy::new(SearchConfig::for_workloads(8, 2))
        };
        let out = run_dynamic(&timeline, &model, policy).unwrap();

        assert_eq!(out.phases.len(), 3);
        assert!(!out.phases[0].reconfigured);
        assert!(
            out.phases[1].reconfigured,
            "the flip should trigger a switch"
        );
        assert!(
            !out.phases[2].reconfigured,
            "an unchanged mix should not re-switch"
        );
        assert_eq!(out.reconfigurations, 1);
        // Phase 0 favors workload 0; phase 1 favors workload 1.
        assert!(out.phases[0].allocation.row(0).cpu() > out.phases[0].allocation.row(1).cpu());
        assert!(out.phases[1].allocation.row(1).cpu() > out.phases[1].allocation.row(0).cpu());
        // Dynamic beats both static baselines on this flipping timeline.
        assert!(out.total_cost < out.static_first_phase_cost);
        assert!(out.total_cost < out.static_equal_cost);
    }

    #[test]
    fn hysteresis_prevents_switching_for_marginal_gains() {
        let db = dummy_db();
        let phases = vec![dummy_problem(&db, 2), dummy_problem(&db, 2)];
        let timeline = DynamicTimeline::new(phases).unwrap();
        // Symmetric workloads: the optimum never moves.
        let model = SyntheticModel {
            weights: vec![(1.0, 1.0), (1.0, 1.0)],
        };
        let policy = ReconfigPolicy::new(SearchConfig::for_workloads(8, 2));
        let out = run_dynamic(&timeline, &model, policy).unwrap();
        assert_eq!(out.reconfigurations, 0);
        // Equal-split baseline equals the dynamic cost here (the optimum
        // *is* the equal split for symmetric convex costs).
        assert!((out.total_cost - out.static_equal_cost).abs() < 1e-9);
    }

    #[test]
    fn overhead_is_charged_on_switch() {
        let db = dummy_db();
        let mut phase_a = dummy_problem(&db, 2);
        phase_a.workloads[0].weight = 10.0;
        let mut phase_b = dummy_problem(&db, 2);
        phase_b.workloads[1].weight = 10.0;
        let timeline = DynamicTimeline::new(vec![phase_a, phase_b]).unwrap();
        let model = SyntheticModel {
            weights: vec![(2.0, 2.0), (2.0, 2.0)],
        };
        let mut policy = ReconfigPolicy::new(SearchConfig::for_workloads(8, 2));
        policy.switch_overhead_seconds = 0.25;
        policy.min_relative_gain = 0.0;
        let out = run_dynamic(&timeline, &model, policy).unwrap();
        assert_eq!(out.reconfigurations, 1);
        // The switched phase's booked cost includes the overhead: it
        // exceeds the pure allocation cost by exactly 0.25 s.
        let pure = phase_cost(&timeline.phases[1], &model, &out.phases[1].allocation).unwrap();
        assert!((out.phases[1].cost - (pure + 0.25)).abs() < 1e-9);
    }

    #[test]
    fn misaligned_timelines_are_rejected() {
        let db = dummy_db();
        let phases = vec![dummy_problem(&db, 2), dummy_problem(&db, 3)];
        assert!(DynamicTimeline::new(phases).is_err());
        assert!(DynamicTimeline::new(vec![]).is_err());
    }

    #[test]
    fn huge_overhead_pins_the_first_allocation() {
        let db = dummy_db();
        let mut phase_a = dummy_problem(&db, 2);
        phase_a.workloads[0].weight = 10.0;
        let mut phase_b = dummy_problem(&db, 2);
        phase_b.workloads[1].weight = 10.0;
        let timeline = DynamicTimeline::new(vec![phase_a, phase_b]).unwrap();
        let model = SyntheticModel {
            weights: vec![(2.0, 2.0), (2.0, 2.0)],
        };
        let mut policy = ReconfigPolicy::new(SearchConfig::for_workloads(8, 2));
        policy.switch_overhead_seconds = 1e9;
        let out = run_dynamic(&timeline, &model, policy).unwrap();
        assert_eq!(out.reconfigurations, 0);
        // Dynamic then equals the static-first-phase baseline.
        assert!((out.total_cost - out.static_first_phase_cost).abs() < 1e-9);
    }

    #[test]
    fn single_phase_timeline_is_pure_placement() {
        let db = dummy_db();
        let mut phase = dummy_problem(&db, 2);
        phase.workloads[0].weight = 10.0;
        let timeline = DynamicTimeline::new(vec![phase]).unwrap();
        let model = SyntheticModel {
            weights: vec![(2.0, 2.0), (2.0, 2.0)],
        };
        let out = run_dynamic(&timeline, &model, ReconfigPolicy::new(SearchConfig::for_workloads(8, 2))).unwrap();
        assert_eq!(out.phases.len(), 1);
        assert_eq!(out.reconfigurations, 0);
        assert!(!out.phases[0].reconfigured);
        // With one phase the dynamic run *is* the static-first baseline.
        assert!((out.total_cost - out.static_first_phase_cost).abs() < 1e-12);
    }

    #[test]
    fn identical_consecutive_phases_never_switch() {
        let db = dummy_db();
        // Asymmetric weights so the optimum is NOT the equal split — a
        // buggy controller that re-derives the allocation from scratch
        // each phase would still land on the same answer, but one that
        // compares against a stale baseline could oscillate. Four
        // identical phases must yield zero switches and 4x the phase cost.
        let mut phases = Vec::new();
        for _ in 0..4 {
            let mut p = dummy_problem(&db, 2);
            p.workloads[0].weight = 7.0;
            phases.push(p);
        }
        let timeline = DynamicTimeline::new(phases).unwrap();
        let model = SyntheticModel {
            weights: vec![(3.0, 1.0), (1.0, 3.0)],
        };
        let out = run_dynamic(&timeline, &model, ReconfigPolicy::new(SearchConfig::for_workloads(8, 2))).unwrap();
        assert_eq!(out.reconfigurations, 0);
        assert!(out.phases.iter().all(|p| !p.reconfigured));
        let per_phase = out.phases[0].cost;
        assert!((out.total_cost - 4.0 * per_phase).abs() < 1e-9);
        // The held allocation is the informed (non-equal) placement.
        assert_ne!(
            out.phases[0].allocation,
            AllocationMatrix::equal_split(2).unwrap()
        );
    }

    #[test]
    fn hysteresis_boundary_is_pinned_exactly() {
        // Pin the switch rule `gain > min_relative_gain * keep_cost` at
        // the boundary. With min_relative_gain = 0 the rule degenerates to
        // `keep - objective - overhead > 0`, so setting the overhead to
        // exactly `keep - objective` makes the gain exactly 0.0 — the
        // strict inequality must NOT switch — while one ULP less overhead
        // must switch.
        let db = dummy_db();
        let mut phase_a = dummy_problem(&db, 2);
        phase_a.workloads[0].weight = 10.0;
        let mut phase_b = dummy_problem(&db, 2);
        phase_b.workloads[1].weight = 10.0;
        let model = SyntheticModel {
            weights: vec![(2.0, 2.0), (2.0, 2.0)],
        };
        let config = SearchConfig::for_workloads(8, 2);

        // Reproduce the controller's own arithmetic for phase 1.
        let first = run_search(SearchAlgorithm::DynamicProgramming, &phase_a, &model, config).unwrap();
        let keep = phase_cost(&phase_b, &model, &first.allocation).unwrap();
        let rec = run_search(SearchAlgorithm::DynamicProgramming, &phase_b, &model, config).unwrap();
        let boundary_overhead = keep - rec.objective;
        assert!(boundary_overhead > 0.0, "the flip must promise a gain");

        let run = |overhead: f64, gain: f64| {
            let phases = vec![dummy_problem(&db, 2), dummy_problem(&db, 2)];
            let mut timeline_phases = phases;
            timeline_phases[0].workloads[0].weight = 10.0;
            timeline_phases[1].workloads[1].weight = 10.0;
            let timeline = DynamicTimeline::new(timeline_phases).unwrap();
            let policy = ReconfigPolicy {
                algorithm: SearchAlgorithm::DynamicProgramming,
                config,
                switch_overhead_seconds: overhead,
                min_relative_gain: gain,
            };
            run_dynamic(&timeline, &model, policy).unwrap().reconfigurations
        };

        // gain == 0.0 exactly: strict `>` must hold the allocation.
        assert_eq!(run(boundary_overhead, 0.0), 0, "gain of exactly zero must not switch");
        // One ULP below the boundary: gain becomes positive, must switch.
        assert_eq!(run(boundary_overhead.next_down(), 0.0), 1);

        // With 5% hysteresis the boundary moves by 0.05 * keep; pin it
        // from both sides with a margin far above float error.
        let hysteresis_boundary = keep - rec.objective - 0.05 * keep;
        assert_eq!(run(hysteresis_boundary + 1e-6, 0.05), 0);
        assert_eq!(run(hysteresis_boundary - 1e-6, 0.05), 1);
    }

    #[test]
    fn equal_baseline_uses_policy_disk_share() {
        let db = dummy_db();
        let problem = dummy_problem(&db, 2);
        let timeline = DynamicTimeline::new(vec![problem]).unwrap();
        let model = SyntheticModel {
            weights: vec![(1.0, 1.0), (1.0, 1.0)],
        };
        let policy = ReconfigPolicy::new(SearchConfig::for_workloads(4, 2));
        let out = run_dynamic(&timeline, &model, policy).unwrap();
        let row: ResourceVector = out.phases[0].allocation.row(0);
        assert!((row.disk().fraction() - 0.5).abs() < 1e-12);
    }
}
