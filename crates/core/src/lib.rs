//! # dbvirt-core — the virtualization design problem
//!
//! This crate is the paper's primary contribution, assembled from the
//! substrates below it:
//!
//! > *Given `N` database workloads that will run on `N` database systems
//! > inside virtual machines, how should we allocate the available
//! > resources to the `N` virtual machines to get the best overall
//! > performance?*
//!
//! Formally (paper, Section 3): find `argmin_R Σᵢ Cost(Wᵢ, Rᵢ)` subject to
//! `r_ij ≥ 0` and `Σᵢ r_ij = 1` for every resource `j`.
//!
//! The pieces, mirroring the paper's Figure 2 framework:
//!
//! * [`DesignProblem`] — the `N` workloads, their databases, and the
//!   physical machine;
//! * [`CostModel`] / [`CalibratedCostModel`] — `Cost(Wᵢ, Rᵢ)` via the
//!   calibrated what-if optimizer (`dbvirt-calibrate` + the what-if mode
//!   in `dbvirt-optimizer`);
//! * [`measure`] — the *measured* oracle: actually execute a workload in a
//!   simulated VM at allocation `R` (used only to validate the model,
//!   exactly like the paper's estimated-vs-actual figures);
//! * [`search`] — the combinatorial search over candidate allocations:
//!   exhaustive enumeration, greedy share reallocation, and the dynamic
//!   programming the paper suggests as "a standard technique";
//! * [`VirtualizationAdvisor`] — the end-to-end recommender: calibrate
//!   once, then search with what-if cost evaluations;
//! * [`dynamic`] — the paper's dynamic-reconfiguration next step: a
//!   controller that re-solves the design problem when the workload mix
//!   changes, with switch-overhead hysteresis;
//! * [`metrics`] — equal-split baselines and speedup summaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod advisor;
mod cost_model;
pub mod dynamic;
mod error;
pub mod measure;
pub mod metrics;
mod problem;
pub mod search;

pub use advisor::{TelemetrySummary, VirtualizationAdvisor};
pub use cost_model::{CalibratedCostModel, CostModel};
pub use error::CoreError;
pub use problem::{DesignProblem, WorkloadSpec};
pub use search::{
    CostCache, ParallelEvaluator, Recommendation, SearchAlgorithm, SearchConfig,
};
