//! `Cost(Wᵢ, Rᵢ)`: the calibrated what-if cost model.

use crate::{CoreError, DesignProblem};
use dbvirt_calibrate::CalibrationGrid;
use dbvirt_optimizer::whatif::estimate_workload_seconds;
use dbvirt_vmm::ResourceVector;

/// Anything that can price a workload under a candidate allocation.
///
/// The production implementation is [`CalibratedCostModel`]; tests swap in
/// synthetic models to exercise the search algorithms in isolation.
///
/// Implementations must be `Sync`: the search's parallel what-if
/// evaluator prices allocation cells from several threads against one
/// shared model. They must also be pure functions of
/// `(workload databases and queries, machine, shares)` — in particular
/// independent of workload *weights*, which the evaluator applies on top —
/// so cached cell costs can be reused across searches.
pub trait CostModel: Sync {
    /// Estimated cost (seconds) of workload `w_idx` under `shares`.
    fn cost(
        &self,
        problem: &DesignProblem<'_>,
        w_idx: usize,
        shares: ResourceVector,
    ) -> Result<f64, CoreError>;
}

/// The paper's cost model: look up (or interpolate) the calibrated `P(R)`
/// and re-optimize the workload under it, summing estimated execution
/// times. Nothing is executed.
#[derive(Debug)]
pub struct CalibratedCostModel<'g> {
    grid: &'g CalibrationGrid,
}

impl<'g> CalibratedCostModel<'g> {
    /// Wraps a calibrated grid.
    pub fn new(grid: &'g CalibrationGrid) -> CalibratedCostModel<'g> {
        CalibratedCostModel { grid }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &CalibrationGrid {
        self.grid
    }
}

impl CostModel for CalibratedCostModel<'_> {
    fn cost(
        &self,
        problem: &DesignProblem<'_>,
        w_idx: usize,
        shares: ResourceVector,
    ) -> Result<f64, CoreError> {
        let params = self.grid.params_for(shares)?;
        let w = &problem.workloads[w_idx];
        Ok(estimate_workload_seconds(w.db, &w.queries, &params)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadSpec;
    use dbvirt_engine::{Database, Expr};
    use dbvirt_optimizer::LogicalPlan;
    use dbvirt_storage::{DataType, Datum, Field, Schema, Tuple};
    use dbvirt_vmm::MachineSpec;

    fn test_db() -> Database {
        let mut db = Database::new();
        let t = db.create_table("t", Schema::new(vec![Field::new("a", DataType::Int)]));
        db.insert_rows(t, (0..5_000).map(|i| Tuple::new(vec![Datum::Int(i)])))
            .unwrap();
        db.analyze_all().unwrap();
        db
    }

    #[test]
    fn calibrated_model_prices_workloads() {
        let grid = CalibrationGrid::calibrate(
            MachineSpec::paper_testbed(),
            vec![0.25, 0.75],
            vec![0.5],
            0.5,
        )
        .unwrap();
        let db = test_db();
        let t = db.table_id("t").unwrap();
        // A CPU-leaning query (filter over every row).
        let q = LogicalPlan::scan_filtered(t, Expr::ge(Expr::col(0), Expr::int(0)));
        let problem = DesignProblem::new(
            MachineSpec::paper_testbed(),
            vec![WorkloadSpec::new("w", &db, vec![q])],
        )
        .unwrap();
        let model = CalibratedCostModel::new(&grid);
        let starved = model
            .cost(
                &problem,
                0,
                ResourceVector::from_fractions(0.25, 0.5, 0.5).unwrap(),
            )
            .unwrap();
        let rich = model
            .cost(
                &problem,
                0,
                ResourceVector::from_fractions(0.75, 0.5, 0.5).unwrap(),
            )
            .unwrap();
        assert!(
            starved > rich,
            "less CPU must cost more: {starved} vs {rich}"
        );
    }
}
