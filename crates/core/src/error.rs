//! Error type for the virtualization design layer.

use dbvirt_calibrate::CalError;
use dbvirt_engine::EngineError;
use dbvirt_optimizer::OptError;
use dbvirt_vmm::VmmError;
use std::error::Error;
use std::fmt;

/// Errors raised while modeling costs or searching for allocations.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Calibration failed or an allocation fell outside the grid.
    Calibration(CalError),
    /// What-if optimization failed.
    Optimizer(OptError),
    /// A measured-oracle execution failed.
    Engine(EngineError),
    /// An allocation was infeasible.
    Vmm(VmmError),
    /// The problem definition was malformed.
    BadProblem {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Calibration(e) => write!(f, "calibration: {e}"),
            CoreError::Optimizer(e) => write!(f, "optimizer: {e}"),
            CoreError::Engine(e) => write!(f, "engine: {e}"),
            CoreError::Vmm(e) => write!(f, "vmm: {e}"),
            CoreError::BadProblem { reason } => write!(f, "bad problem: {reason}"),
        }
    }
}

impl Error for CoreError {}

impl From<CalError> for CoreError {
    fn from(e: CalError) -> CoreError {
        CoreError::Calibration(e)
    }
}

impl From<OptError> for CoreError {
    fn from(e: OptError) -> CoreError {
        CoreError::Optimizer(e)
    }
}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> CoreError {
        CoreError::Engine(e)
    }
}

impl From<VmmError> for CoreError {
    fn from(e: VmmError) -> CoreError {
        CoreError::Vmm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = CalError::SingularSystem.into();
        assert!(e.to_string().contains("singular"));
        let e: CoreError = OptError::BadPlan { reason: "x".into() }.into();
        assert!(e.to_string().contains("optimizer"));
        let e = CoreError::BadProblem {
            reason: "no workloads".into(),
        };
        assert!(e.to_string().contains("no workloads"));
    }
}
