//! The end-to-end virtualization advisor.
//!
//! Ties the paper's framework together: calibrate `P(R)` over a grid
//! matched to the search discretization (once per machine — the grid is
//! reusable across problems and databases), then search the allocation
//! space with what-if cost evaluations.

use crate::search::{run_search, SearchAlgorithm, SearchConfig};
use crate::{CalibratedCostModel, CoreError, DesignProblem, Recommendation};
use dbvirt_calibrate::{CalibrationConfig, CalibrationGrid, GridHealth};
use dbvirt_telemetry as telemetry;
use dbvirt_vmm::MachineSpec;
use std::fmt;

/// A condensed, human-readable view of the global telemetry after advisor
/// activity — the headline numbers without walking the raw [`Snapshot`]
/// (`dbvirt_telemetry::Snapshot`).
///
/// All fields are zero / `None` while telemetry is disabled.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySummary {
    /// Whether global telemetry collection was on when the summary was
    /// taken.
    pub enabled: bool,
    /// Wall-clock milliseconds of the most recent `advisor.recommend`
    /// span, if any completed.
    pub recommend_wall_ms: Option<f64>,
    /// What-if evaluations answered from the cost cache.
    pub cache_hits: u64,
    /// What-if evaluations that called the cost model.
    pub cache_misses: u64,
    /// `hits / (hits + misses)`, or `None` before any evaluation.
    pub cache_hit_rate: Option<f64>,
    /// Cost-model calls with a measured latency (the `search.eval_us`
    /// histogram's count).
    pub evaluations_measured: u64,
    /// Spans opened but not yet closed at snapshot time (should be 0
    /// between recommendations).
    pub open_spans: u64,
}

impl TelemetrySummary {
    /// Builds the summary from the current global telemetry snapshot.
    pub fn capture() -> TelemetrySummary {
        let enabled = telemetry::is_enabled();
        let snap = telemetry::snapshot();
        let cache_hits = snap.counter("search.cache.hits").unwrap_or(0);
        let cache_misses = snap.counter("search.cache.misses").unwrap_or(0);
        let total = cache_hits + cache_misses;
        TelemetrySummary {
            enabled,
            recommend_wall_ms: snap
                .last_span("advisor.recommend")
                .map(|s| s.duration_ns() as f64 / 1e6),
            cache_hits,
            cache_misses,
            cache_hit_rate: (total > 0).then(|| cache_hits as f64 / total as f64),
            evaluations_measured: snap.histogram("search.eval_us").map_or(0, |h| h.count),
            open_spans: snap.open_spans,
        }
    }
}

impl fmt::Display for TelemetrySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "telemetry[enabled={} recommend_ms={:?} cache={}h/{}m rate={:?} measured={} open={}]",
            self.enabled,
            self.recommend_wall_ms,
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate,
            self.evaluations_measured,
            self.open_spans,
        )
    }
}

/// A configured advisor: a machine plus its calibration grid.
#[derive(Debug)]
pub struct VirtualizationAdvisor {
    machine: MachineSpec,
    grid: CalibrationGrid,
    config: SearchConfig,
}

impl VirtualizationAdvisor {
    /// Calibrates an advisor for `machine`, consolidating `n_workloads`
    /// VMs, with shares discretized into `units` steps.
    ///
    /// Grid points are placed exactly at the share values the search can
    /// produce (`min_units/units ..= (units - (n-1)·min_units)/units`), so
    /// search-time lookups are exact and interpolation is only needed for
    /// off-grid queries.
    pub fn calibrate(
        machine: MachineSpec,
        n_workloads: usize,
        units: u32,
    ) -> Result<VirtualizationAdvisor, CoreError> {
        VirtualizationAdvisor::calibrate_with_config(
            machine,
            n_workloads,
            units,
            &CalibrationConfig::default(),
        )
    }

    /// Like [`VirtualizationAdvisor::calibrate`], but with explicit
    /// measurement-robustness knobs (multi-trial probes, retries, outlier
    /// rejection, fault injection). Cells that cannot be calibrated are
    /// interpolated from neighbors rather than failing the advisor; check
    /// [`VirtualizationAdvisor::calibration_health`] before trusting
    /// recommendations from a noisy calibration.
    pub fn calibrate_with_config(
        machine: MachineSpec,
        n_workloads: usize,
        units: u32,
        rcfg: &CalibrationConfig,
    ) -> Result<VirtualizationAdvisor, CoreError> {
        let config = SearchConfig::for_workloads(units, n_workloads);
        let lo = config.min_units;
        let hi = units - config.min_units * (n_workloads as u32 - 1);
        let points: Vec<f64> = (lo..=hi).map(|u| u as f64 / units as f64).collect();
        let grid = CalibrationGrid::calibrate_with_config(
            machine,
            points.clone(),
            points,
            config.disk_share,
            rcfg,
        )?;
        Ok(VirtualizationAdvisor {
            machine,
            grid,
            config,
        })
    }

    /// Builds an advisor from a pre-calibrated grid (e.g. loaded from the
    /// serialized cache).
    pub fn from_grid(
        machine: MachineSpec,
        grid: CalibrationGrid,
        config: SearchConfig,
    ) -> VirtualizationAdvisor {
        VirtualizationAdvisor {
            machine,
            grid,
            config,
        }
    }

    /// Returns the advisor with the search's parallelism knob set (`1` =
    /// serial, `0` = one evaluation worker per available core). The
    /// recommendation is identical at every setting; only wall-clock
    /// changes.
    pub fn with_parallelism(mut self, parallelism: usize) -> VirtualizationAdvisor {
        self.config.parallelism = parallelism;
        self
    }

    /// The machine this advisor serves.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// The calibration grid (serializable for reuse).
    pub fn grid(&self) -> &CalibrationGrid {
        &self.grid
    }

    /// Aggregate health of the underlying calibration: retries, rejected
    /// outliers, ridge fallbacks, degraded cells. A clean health means
    /// every parameter the advisor searches over was fitted directly from
    /// probe measurements; degraded cells were interpolated from
    /// neighbors and their costs carry extra model error.
    pub fn calibration_health(&self) -> GridHealth {
        self.grid.health()
    }

    /// The search configuration.
    pub fn config(&self) -> SearchConfig {
        self.config
    }

    /// Recommends an allocation for `problem` using `algorithm`.
    pub fn recommend(
        &self,
        problem: &DesignProblem<'_>,
        algorithm: SearchAlgorithm,
    ) -> Result<Recommendation, CoreError> {
        let mut root_span = telemetry::span("advisor.recommend");
        root_span.set_attr("algorithm", algorithm.name());
        root_span.set_attr("workloads", problem.num_workloads());
        root_span.set_attr("units", self.config.units);
        if problem.num_workloads() as u32 * self.config.min_units > self.config.units {
            return Err(CoreError::BadProblem {
                reason: format!(
                    "advisor calibrated for up to {} workloads, got {}",
                    self.config.units / self.config.min_units,
                    problem.num_workloads()
                ),
            });
        }
        let model = CalibratedCostModel::new(&self.grid);
        let rec = run_search(algorithm, problem, &model, self.config)?;
        root_span.set_attr("evaluations", rec.evaluations);
        root_span.set_attr("objective", rec.objective);
        Ok(rec)
    }

    /// A condensed view of the global telemetry (cache hit rates, last
    /// recommendation wall clock). See [`TelemetrySummary`].
    pub fn telemetry_summary(&self) -> TelemetrySummary {
        TelemetrySummary::capture()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadSpec;
    use dbvirt_engine::{Database, Expr};
    use dbvirt_optimizer::LogicalPlan;
    use dbvirt_storage::{DataType, Datum, Field, Schema, Tuple};

    /// A database with a big table; one CPU-bound workload (heavy
    /// predicate, all rows) and one I/O-bound workload (bare scan).
    fn fixture() -> Database {
        let mut db = Database::new();
        let t = db.create_table(
            "t",
            Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("pad", DataType::Str),
            ]),
        );
        db.insert_rows(
            t,
            (0..30_000)
                .map(|i| Tuple::new(vec![Datum::Int(i), Datum::str("xxxxxxxxxxxxxxxxxxxxxxxx")])),
        )
        .unwrap();
        db.analyze_all().unwrap();
        db
    }

    #[test]
    fn advisor_shifts_cpu_to_the_cpu_bound_workload() {
        let db = fixture();
        let t = db.table_id("t").unwrap();
        let heavy_pred = Expr::and_all(
            (0..12)
                .map(|i| Expr::ge(Expr::add(Expr::col(0), Expr::int(i)), Expr::int(-1)))
                .collect(),
        );
        let cpu_bound = vec![LogicalPlan::scan_filtered(t, heavy_pred); 3];
        let io_bound = vec![LogicalPlan::scan(t)];
        let problem = DesignProblem::new(
            MachineSpec::paper_testbed(),
            vec![
                WorkloadSpec::new("io", &db, io_bound),
                WorkloadSpec::new("cpu", &db, cpu_bound),
            ],
        )
        .unwrap();

        let advisor = VirtualizationAdvisor::calibrate(MachineSpec::paper_testbed(), 2, 4).unwrap();
        let rec = advisor
            .recommend(&problem, SearchAlgorithm::DynamicProgramming)
            .unwrap();
        let io_cpu = rec.allocation.row(0).cpu().fraction();
        let cpu_cpu = rec.allocation.row(1).cpu().fraction();
        assert!(
            cpu_cpu > io_cpu,
            "CPU-bound workload should receive more CPU: {cpu_cpu} vs {io_cpu}"
        );
        // And the recommendation beats the equal split under the model.
        let model = CalibratedCostModel::new(advisor.grid());
        let eq: f64 = crate::metrics::equal_split_costs(&problem, &model)
            .unwrap()
            .iter()
            .sum();
        assert!(rec.total_cost <= eq + 1e-9);
    }

    #[test]
    fn noisy_calibration_still_recommends_and_reports_health() {
        use dbvirt_calibrate::CalibrationConfig;
        use dbvirt_vmm::{FaultInjector, NoiseModel};

        let db = fixture();
        let t = db.table_id("t").unwrap();
        let problem = DesignProblem::new(
            MachineSpec::paper_testbed(),
            vec![
                WorkloadSpec::new("a", &db, vec![LogicalPlan::scan(t)]),
                WorkloadSpec::new("b", &db, vec![LogicalPlan::scan(t); 2]),
            ],
        )
        .unwrap();

        let clean = VirtualizationAdvisor::calibrate(MachineSpec::paper_testbed(), 2, 4).unwrap();
        assert!(clean.calibration_health().is_clean());

        // Transient failures only: measurements that survive retry are
        // exact, so the noisy advisor must reach the identical
        // recommendation while its health records the recovery work.
        let injector = FaultInjector::new(NoiseModel::none().with_failures(0.3), 23);
        let rcfg = CalibrationConfig::robust().with_injector(injector);
        let noisy =
            VirtualizationAdvisor::calibrate_with_config(MachineSpec::paper_testbed(), 2, 4, &rcfg)
                .unwrap();
        let health = noisy.calibration_health();
        assert!(health.total_retries > 0, "{health}");
        assert_eq!(health.degraded_cells, 0, "{health}");

        let want = clean
            .recommend(&problem, SearchAlgorithm::DynamicProgramming)
            .unwrap();
        let got = noisy
            .recommend(&problem, SearchAlgorithm::DynamicProgramming)
            .unwrap();
        assert_eq!(want.allocation, got.allocation);
    }

    #[test]
    fn too_many_workloads_is_an_error() {
        let db = fixture();
        let t = db.table_id("t").unwrap();
        let advisor = VirtualizationAdvisor::calibrate(MachineSpec::paper_testbed(), 2, 4).unwrap();
        let workloads = (0..5)
            .map(|i| WorkloadSpec::new(format!("w{i}"), &db, vec![LogicalPlan::scan(t)]))
            .collect();
        let problem = DesignProblem::new(MachineSpec::paper_testbed(), workloads).unwrap();
        assert!(advisor
            .recommend(&problem, SearchAlgorithm::Greedy)
            .is_err());
    }
}
