//! The virtualization design problem statement.

use crate::CoreError;
use dbvirt_engine::Database;
use dbvirt_optimizer::LogicalPlan;
use dbvirt_vmm::MachineSpec;

/// One workload: a name, the database it runs against, and its query
/// sequence (the paper's `Wᵢ`, "a sequence of SQL statements against a
/// separate database").
#[derive(Debug, Clone)]
pub struct WorkloadSpec<'a> {
    /// Display name.
    pub name: String,
    /// The database the workload queries (what-if planning needs its
    /// catalog and statistics only).
    pub db: &'a Database,
    /// The workload's queries.
    pub queries: Vec<LogicalPlan>,
    /// Service-level weight in the design objective (the paper's Section 7
    /// "different service-level objectives" extension): the search
    /// minimizes `Σᵢ weightᵢ · Cost(Wᵢ, Rᵢ)`. Default 1.0.
    pub weight: f64,
}

impl<'a> WorkloadSpec<'a> {
    /// Creates a workload spec with the default weight of 1.
    pub fn new(
        name: impl Into<String>,
        db: &'a Database,
        queries: Vec<LogicalPlan>,
    ) -> WorkloadSpec<'a> {
        WorkloadSpec {
            name: name.into(),
            db,
            queries,
            weight: 1.0,
        }
    }

    /// Sets the service-level weight (must be positive and finite).
    pub fn with_weight(mut self, weight: f64) -> WorkloadSpec<'a> {
        assert!(
            weight.is_finite() && weight > 0.0,
            "workload weight must be positive and finite, got {weight}"
        );
        self.weight = weight;
        self
    }
}

/// The design problem: `N` workloads to consolidate onto one machine.
#[derive(Debug)]
pub struct DesignProblem<'a> {
    /// The physical machine.
    pub machine: MachineSpec,
    /// The workloads, one virtual machine each.
    pub workloads: Vec<WorkloadSpec<'a>>,
}

impl<'a> DesignProblem<'a> {
    /// Creates and validates a problem.
    pub fn new(
        machine: MachineSpec,
        workloads: Vec<WorkloadSpec<'a>>,
    ) -> Result<DesignProblem<'a>, CoreError> {
        machine.validate()?;
        if workloads.is_empty() {
            return Err(CoreError::BadProblem {
                reason: "a design problem needs at least one workload".to_string(),
            });
        }
        if workloads.iter().any(|w| w.queries.is_empty()) {
            return Err(CoreError::BadProblem {
                reason: "every workload needs at least one query".to_string(),
            });
        }
        Ok(DesignProblem { machine, workloads })
    }

    /// Number of workloads (`N`).
    pub fn num_workloads(&self) -> usize {
        self.workloads.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_problems() {
        let err = DesignProblem::new(MachineSpec::tiny(), vec![]).unwrap_err();
        assert!(matches!(err, CoreError::BadProblem { .. }));

        let db = Database::new();
        let err = DesignProblem::new(
            MachineSpec::tiny(),
            vec![WorkloadSpec::new("w", &db, vec![])],
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::BadProblem { .. }));
    }
}
