//! The measured oracle: actually run a workload under an allocation.
//!
//! The paper validates its estimates against *actual* execution times
//! measured in Xen VMs. This module is the simulator equivalent: plan each
//! query the way the deployed database would (default optimizer settings —
//! a stock PostgreSQL does not know about its VM's allocation), execute it
//! for real through the buffer pool, and convert the accumulated demand to
//! simulated time under the VM's shares. It exists for validation and the
//! experiment figures; the advisor itself never calls it.

use crate::CoreError;
use dbvirt_calibrate::DbVmConfig;
use dbvirt_engine::{run_plan, CpuCosts, Database};
use dbvirt_optimizer::{plan_query, LogicalPlan, OptimizerParams};
use dbvirt_storage::BufferPool;
use dbvirt_vmm::sched::{co_schedule, SchedMode, VmJob};
use dbvirt_vmm::{AllocationMatrix, MachineSpec, ResourceDemand, ResourceVector, VirtualMachine};

/// Plans (with stock optimizer settings, `work_mem` from the VM) and
/// executes every query of a workload, returning each query's demand.
pub fn workload_demands(
    db: &mut Database,
    queries: &[LogicalPlan],
    machine: MachineSpec,
    shares: ResourceVector,
) -> Result<Vec<ResourceDemand>, CoreError> {
    let vm = VirtualMachine::new(machine, shares)?;
    let cfg = DbVmConfig::for_vm(&vm);
    let params = OptimizerParams {
        work_mem_bytes: cfg.work_mem_bytes as f64,
        effective_cache_size_pages: cfg.effective_cache_pages as f64,
        ..OptimizerParams::postgres_defaults()
    };
    // One pool for the whole workload: a cold start, then queries warm the
    // cache for each other, as on a real consolidated server.
    let mut pool = BufferPool::new(cfg.buffer_pool_pages);
    let mut demands = Vec::with_capacity(queries.len());
    for q in queries {
        let planned = plan_query(db, q, &params)?;
        let out = run_plan(
            db,
            &mut pool,
            &planned.physical,
            cfg.work_mem_bytes,
            CpuCosts::default(),
        )?;
        demands.push(out.demand);
    }
    Ok(demands)
}

/// Measured seconds for a workload running **alone** in a VM at `shares`.
pub fn measure_workload_seconds(
    db: &mut Database,
    queries: &[LogicalPlan],
    machine: MachineSpec,
    shares: ResourceVector,
) -> Result<f64, CoreError> {
    let mut span = dbvirt_telemetry::span("measure.workload");
    span.set_attr("queries", queries.len());
    let vm = VirtualMachine::new(machine, shares)?;
    let demands = workload_demands(db, queries, machine, shares)?;
    let seconds: f64 = demands.iter().map(|d| vm.demand_seconds(d)).sum();
    // The measured run *is* the simulated time; advance the virtual clock
    // so spans carry the simulation's timeline alongside wall clock.
    dbvirt_telemetry::advance_virtual_secs(seconds);
    span.set_attr("simulated_secs", seconds);
    Ok(seconds)
}

/// Measured per-VM completion times when several workloads run
/// **concurrently**, one VM each, under `allocation` (the paper's Figure 5
/// setup). Workload `i` runs against `dbs[i]`. The co-run is simulated by
/// `sched::co_schedule` — the incremental event-driven scheduler, so
/// fleet-scale measurements pay per-event work proportional to the VMs an
/// event actually touches, not the fleet size.
pub fn measure_concurrent_seconds(
    dbs: &mut [&mut Database],
    workloads: &[&[LogicalPlan]],
    machine: MachineSpec,
    allocation: &AllocationMatrix,
    mode: SchedMode,
) -> Result<Vec<f64>, CoreError> {
    if dbs.len() != workloads.len() || dbs.len() != allocation.num_workloads() {
        return Err(CoreError::BadProblem {
            reason: "databases, workloads, and allocation rows must align".to_string(),
        });
    }
    let mut span = dbvirt_telemetry::span("measure.concurrent");
    span.set_attr("vms", workloads.len());
    let mut jobs = Vec::with_capacity(workloads.len());
    for (i, (db, queries)) in dbs.iter_mut().zip(workloads).enumerate() {
        let demands = workload_demands(db, queries, machine, allocation.row(i))?;
        jobs.push(VmJob::new(demands));
    }
    let outcomes = co_schedule(machine, allocation, &jobs, mode)?;
    let times: Vec<f64> = outcomes
        .into_iter()
        .map(|o| o.makespan().as_secs_f64())
        .collect();
    // Concurrent VMs share the simulated wall clock: the run occupies the
    // longest makespan, not the sum.
    let longest = times.iter().copied().fold(0.0_f64, f64::max);
    dbvirt_telemetry::advance_virtual_secs(longest);
    span.set_attr("simulated_secs", longest);
    Ok(times)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbvirt_engine::Expr;
    use dbvirt_storage::{DataType, Datum, Field, Schema, Tuple};

    fn test_db(rows: i64) -> Database {
        let mut db = Database::new();
        let t = db.create_table("t", Schema::new(vec![Field::new("a", DataType::Int)]));
        db.insert_rows(t, (0..rows).map(|i| Tuple::new(vec![Datum::Int(i)])))
            .unwrap();
        db.analyze_all().unwrap();
        db
    }

    fn scan_all(db: &Database) -> LogicalPlan {
        let t = db.table_id("t").unwrap();
        LogicalPlan::scan_filtered(t, Expr::ge(Expr::col(0), Expr::int(0)))
    }

    #[test]
    fn solo_measurement_scales_with_cpu_for_cpu_bound_work() {
        let mut db = test_db(30_000);
        let machine = MachineSpec::paper_testbed();
        let q = scan_all(&db);
        let slow = measure_workload_seconds(
            &mut db,
            std::slice::from_ref(&q),
            machine,
            ResourceVector::from_fractions(0.25, 0.5, 0.5).unwrap(),
        )
        .unwrap();
        let fast = measure_workload_seconds(
            &mut db,
            &[q],
            machine,
            ResourceVector::from_fractions(0.75, 0.5, 0.5).unwrap(),
        )
        .unwrap();
        assert!(slow > fast, "{slow} vs {fast}");
    }

    #[test]
    fn concurrent_measurement_reports_per_vm_times() {
        let mut db1 = test_db(10_000);
        let mut db2 = test_db(10_000);
        let machine = MachineSpec::paper_testbed();
        let q1 = vec![scan_all(&db1)];
        let q2 = vec![scan_all(&db2), scan_all(&db2)];
        let alloc = AllocationMatrix::equal_split(2).unwrap();
        let times = measure_concurrent_seconds(
            &mut [&mut db1, &mut db2],
            &[&q1, &q2],
            machine,
            &alloc,
            SchedMode::Capped,
        )
        .unwrap();
        assert_eq!(times.len(), 2);
        assert!(times[1] > times[0], "two queries take longer than one");
    }

    #[test]
    fn misaligned_concurrent_inputs_are_rejected() {
        let mut db = test_db(100);
        let machine = MachineSpec::tiny();
        let alloc = AllocationMatrix::equal_split(2).unwrap();
        let q = vec![scan_all(&db)];
        let err =
            measure_concurrent_seconds(&mut [&mut db], &[&q], machine, &alloc, SchedMode::Capped)
                .unwrap_err();
        assert!(matches!(err, CoreError::BadProblem { .. }));
    }
}
