//! Baselines and summary metrics for design experiments.

use crate::{CoreError, CostModel, DesignProblem};
use dbvirt_vmm::{AllocationMatrix, ResourceVector, Share};

/// Predicted per-workload costs under the paper's default allocation
/// (every resource divided equally).
pub fn equal_split_costs(
    problem: &DesignProblem<'_>,
    model: &dyn CostModel,
) -> Result<Vec<f64>, CoreError> {
    let n = problem.num_workloads();
    let share = Share::new(1.0 / n as f64)?;
    (0..n)
        .map(|w| model.cost(problem, w, ResourceVector::uniform(share)))
        .collect()
}

/// Predicted per-workload costs under an arbitrary allocation.
pub fn allocation_costs(
    problem: &DesignProblem<'_>,
    model: &dyn CostModel,
    allocation: &AllocationMatrix,
) -> Result<Vec<f64>, CoreError> {
    (0..problem.num_workloads())
        .map(|w| model.cost(problem, w, allocation.row(w)))
        .collect()
}

/// `baseline / candidate` — how many times faster the candidate is
/// (> 1 means the candidate wins).
pub fn speedup(baseline: f64, candidate: f64) -> f64 {
    if candidate <= 0.0 {
        return f64::INFINITY;
    }
    baseline / candidate
}

/// Normalizes a series to one of its entries (the paper's Figures 4 and 5
/// normalize to the default 50% allocation).
pub fn normalize_to(series: &[f64], reference_idx: usize) -> Vec<f64> {
    let reference = series[reference_idx];
    series
        .iter()
        .map(|&v| {
            if reference > 0.0 {
                v / reference
            } else {
                f64::NAN
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::tests_support::{dummy_db, dummy_problem, SyntheticModel};

    #[test]
    fn equal_split_uses_uniform_shares() {
        let db = dummy_db();
        let problem = dummy_problem(&db, 2);
        let model = SyntheticModel {
            weights: vec![(1.0, 1.0), (2.0, 2.0)],
        };
        let costs = equal_split_costs(&problem, &model).unwrap();
        // cost = w/(0.5) + w/(0.5) = 4w.
        assert!((costs[0] - 4.0).abs() < 1e-12);
        assert!((costs[1] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_and_normalize() {
        assert!((speedup(2.0, 1.0) - 2.0).abs() < 1e-12);
        assert_eq!(speedup(1.0, 0.0), f64::INFINITY);
        let norm = normalize_to(&[2.0, 4.0, 1.0], 0);
        assert_eq!(norm, vec![1.0, 2.0, 0.5]);
    }
}
