//! Baselines and summary metrics for design experiments.

use crate::{CoreError, CostModel, DesignProblem};
use dbvirt_vmm::{AllocationMatrix, ResourceVector, Share};

/// Predicted per-workload costs under the paper's default allocation
/// (every resource divided equally).
pub fn equal_split_costs(
    problem: &DesignProblem<'_>,
    model: &dyn CostModel,
) -> Result<Vec<f64>, CoreError> {
    let n = problem.num_workloads();
    let share = Share::new(1.0 / n as f64)?;
    (0..n)
        .map(|w| model.cost(problem, w, ResourceVector::uniform(share)))
        .collect()
}

/// Predicted per-workload costs under an arbitrary allocation.
pub fn allocation_costs(
    problem: &DesignProblem<'_>,
    model: &dyn CostModel,
    allocation: &AllocationMatrix,
) -> Result<Vec<f64>, CoreError> {
    (0..problem.num_workloads())
        .map(|w| model.cost(problem, w, allocation.row(w)))
        .collect()
}

/// `baseline / candidate` — how many times faster the candidate is
/// (> 1 means the candidate wins).
///
/// Costs are execution times, so only non-negative finite inputs are
/// meaningful: a zero candidate against a positive baseline is an infinite
/// speedup, `0 / 0` is undefined (NaN), and a negative or non-finite input
/// on either side yields NaN rather than masquerading as a huge win.
pub fn speedup(baseline: f64, candidate: f64) -> f64 {
    if !(baseline.is_finite() && candidate.is_finite()) || baseline < 0.0 || candidate < 0.0 {
        return f64::NAN;
    }
    if candidate == 0.0 {
        return if baseline > 0.0 { f64::INFINITY } else { f64::NAN };
    }
    baseline / candidate
}

/// Normalizes a series to one of its entries (the paper's Figures 4 and 5
/// normalize to the default 50% allocation).
///
/// Errors if `reference_idx` is out of range; a non-positive reference
/// value makes every entry NaN (there is no meaningful scale).
pub fn normalize_to(series: &[f64], reference_idx: usize) -> Result<Vec<f64>, CoreError> {
    let reference = *series
        .get(reference_idx)
        .ok_or_else(|| CoreError::BadProblem {
            reason: format!(
                "normalize_to reference index {reference_idx} out of range for a series of \
                 length {}",
                series.len()
            ),
        })?;
    Ok(series
        .iter()
        .map(|&v| {
            if reference > 0.0 {
                v / reference
            } else {
                f64::NAN
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::tests_support::{dummy_db, dummy_problem, SyntheticModel};

    #[test]
    fn equal_split_uses_uniform_shares() {
        let db = dummy_db();
        let problem = dummy_problem(&db, 2);
        let model = SyntheticModel {
            weights: vec![(1.0, 1.0), (2.0, 2.0)],
        };
        let costs = equal_split_costs(&problem, &model).unwrap();
        // cost = w/(0.5) + w/(0.5) = 4w.
        assert!((costs[0] - 4.0).abs() < 1e-12);
        assert!((costs[1] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_and_normalize() {
        assert!((speedup(2.0, 1.0) - 2.0).abs() < 1e-12);
        assert_eq!(speedup(1.0, 0.0), f64::INFINITY);
        let norm = normalize_to(&[2.0, 4.0, 1.0], 0).unwrap();
        assert_eq!(norm, vec![1.0, 2.0, 0.5]);
    }

    #[test]
    fn speedup_edge_cases() {
        // Regression: a negative candidate used to report an *infinite*
        // speedup; negative "times" are invalid on either side.
        assert!(speedup(1.0, -2.0).is_nan());
        assert!(speedup(-1.0, 2.0).is_nan());
        // 0 / 0 has no meaningful value.
        assert!(speedup(0.0, 0.0).is_nan());
        // Non-finite inputs never produce a number.
        assert!(speedup(f64::NAN, 1.0).is_nan());
        assert!(speedup(f64::INFINITY, 1.0).is_nan());
        assert!(speedup(1.0, f64::INFINITY).is_nan());
        // Zero baseline against a real candidate is simply 0x.
        assert_eq!(speedup(0.0, 2.0), 0.0);
    }

    #[test]
    fn normalize_rejects_out_of_range_reference() {
        // Regression: this used to panic instead of returning an error.
        let err = normalize_to(&[1.0, 2.0], 2).unwrap_err();
        assert!(err.to_string().contains("out of range"));
        assert!(normalize_to(&[], 0).is_err());
        // A non-positive reference yields NaNs, not a panic or +-inf.
        let norm = normalize_to(&[0.0, 2.0], 0).unwrap();
        assert!(norm.iter().all(|v| v.is_nan()));
    }
}
