//! Exact dynamic programming over separable workload costs.
//!
//! The total objective `Σᵢ Cost(Wᵢ, Rᵢ)` is separable: workload `i`'s cost
//! depends only on its own `(cpu, mem)` units. So the optimum over a
//! discretized simplex is a textbook resource-allocation DP — the
//! "standard techniques such as dynamic programming" the paper expects to
//! apply (Section 7):
//!
//! ```text
//! f(i, c, m) = min over (cᵢ, mᵢ) of  cost_i(cᵢ, mᵢ) + f(i+1, c-cᵢ, m-mᵢ)
//! ```
//!
//! with every workload receiving at least `min_units` of each resource
//! and the last workload absorbing the remainder (allocations that waste
//! units are dominated, since cost is non-increasing in resources).

use super::{ParallelEvaluator, UnitAssignment};
use crate::CoreError;
use std::collections::HashMap;

/// Memo table: `(workload, cpu units left, mem units left)` -> best
/// remaining cost plus the chosen `(cpu, mem)` units at this level.
type Memo = HashMap<(usize, u32, u32), (f64, (u32, u32))>;

pub(super) fn search(eval: &ParallelEvaluator<'_, '_>) -> Result<UnitAssignment, CoreError> {
    let n = eval.problem.num_workloads();
    let cfg = eval.config;
    // memo[(i, c, m)] = (best cost of workloads i.., chosen (cᵢ, mᵢ)).
    let mut memo: Memo = Memo::new();

    fn solve(
        eval: &ParallelEvaluator<'_, '_>,
        memo: &mut Memo,
        i: usize,
        cpu_left: u32,
        mem_left: u32,
    ) -> Result<(f64, (u32, u32)), CoreError> {
        let n = eval.problem.num_workloads();
        let min = eval.config.min_units;
        if let Some(&hit) = memo.get(&(i, cpu_left, mem_left)) {
            return Ok(hit);
        }
        let result = if i == n - 1 {
            // Last workload takes everything that remains.
            let cost = eval.cost(i, cpu_left, mem_left)?;
            (cost, (cpu_left, mem_left))
        } else {
            let reserve = min * (n - 1 - i) as u32;
            let mut best: Option<(f64, (u32, u32))> = None;
            let mut ci = min;
            while ci + reserve <= cpu_left {
                let mut mi = min;
                while mi + reserve <= mem_left {
                    let here = eval.cost(i, ci, mi)?;
                    let (rest, _) = solve(eval, memo, i + 1, cpu_left - ci, mem_left - mi)?;
                    let total = here + rest;
                    let better = best.is_none_or(|(b, _)| total < b);
                    if better {
                        best = Some((total, (ci, mi)));
                    }
                    mi += 1;
                }
                ci += 1;
            }
            best.ok_or_else(|| CoreError::BadProblem {
                reason: "no feasible allocation remains".to_string(),
            })?
        };
        memo.insert((i, cpu_left, mem_left), result);
        Ok(result)
    }

    solve(eval, &mut memo, 0, cfg.cpu_budget, cfg.mem_budget)?;

    // Reconstruct the assignment by replaying the memoized choices.
    let mut assignment = Vec::with_capacity(n);
    let (mut cpu_left, mut mem_left) = (cfg.cpu_budget, cfg.mem_budget);
    for i in 0..n {
        let (_, (ci, mi)) = memo[&(i, cpu_left, mem_left)];
        assignment.push((ci, mi));
        cpu_left -= ci;
        mem_left -= mi;
    }
    Ok(assignment)
}
