//! Combinatorial search over candidate allocations (paper, Section 3:
//! "a search algorithm for enumerating candidate solutions" plus "a method
//! for evaluating the cost of a candidate solution").
//!
//! Shares are discretized into `units` equal steps per resource; a
//! candidate gives each workload an integer number of units of CPU and of
//! memory (disk is a fixed per-VM policy, matching the paper's testbed,
//! where Xen could not throttle disk independently). Three algorithms are
//! provided:
//!
//! * [`SearchAlgorithm::Exhaustive`] — enumerate every composition
//!   (ground truth, exponential in `N`);
//! * [`SearchAlgorithm::Greedy`] — start from the equal split and
//!   repeatedly move one unit between workloads while that improves total
//!   cost;
//! * [`SearchAlgorithm::DynamicProgramming`] — the paper's suggested
//!   "standard technique": costs are separable across workloads, so an
//!   exact DP over (workload, remaining cpu units, remaining memory
//!   units) finds the optimum in polynomial time.
//!
//! Cost evaluations are cached per `(workload, cpu units, mem units)` —
//! the what-if optimizer is cheap but not free, and the same cell recurs
//! across candidates. The cache ([`CostCache`]) is sharded and
//! thread-safe, and [`SearchConfig::parallelism`] turns on parallel
//! what-if evaluation: DP and exhaustive search precompute their full
//! per-workload cost tables across worker threads, greedy batch-evaluates
//! each iteration's move frontier. Parallel runs touch exactly the cell
//! set a serial run would, so the returned [`Recommendation`] — including
//! its `evaluations` count — is bit-identical either way (see DESIGN.md
//! for the determinism contract).

mod cache;
mod dynprog;
mod exhaustive;
mod greedy;

pub use cache::{CellKey, CostCache};

use crate::{CoreError, CostModel, DesignProblem};
use dbvirt_telemetry as telemetry;
use dbvirt_vmm::{AllocationMatrix, ResourceVector};
use std::sync::{Arc, Mutex};

/// What-if evaluations answered from the [`CostCache`].
static TM_CACHE_HITS: telemetry::Counter = telemetry::Counter::new("search.cache.hits");
/// What-if evaluations that had to call the cost model.
static TM_CACHE_MISSES: telemetry::Counter = telemetry::Counter::new("search.cache.misses");
/// Wall-clock latency of individual cost-model calls (cache misses only).
static TM_EVAL_US: telemetry::Histogram = telemetry::Histogram::new("search.eval_us");
/// Worker threads used by the most recent parallel batch evaluation.
static TM_BATCH_WORKERS: telemetry::Gauge = telemetry::Gauge::new("search.batch_workers");

/// Search configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchConfig {
    /// Number of discrete units each resource is divided into.
    pub units: u32,
    /// Fixed disk share given to every VM (typically `1 / N`).
    pub disk_share: f64,
    /// Minimum units of each resource per workload (≥ 1 so every VM can
    /// make progress).
    pub min_units: u32,
    /// Worker threads for what-if evaluation: `1` runs serially, `0` uses
    /// one worker per available core, `n` uses exactly `n`. The result is
    /// identical at every setting; only wall-clock time changes.
    pub parallelism: usize,
    /// CPU units the search may distribute among this problem's workloads
    /// (`units` for a whole-machine solve; less when a caller pins some
    /// workloads' shares and re-solves only the remainder). Shares are
    /// always expressed as fractions of the *whole* machine — budgets
    /// restrict the search space, not the denominator.
    pub cpu_budget: u32,
    /// Memory units the search may distribute (see `cpu_budget`).
    pub mem_budget: u32,
}

impl SearchConfig {
    /// A config with `units` steps, equal-split disk for `n` workloads,
    /// a 1-unit floor, serial evaluation, and the full machine as budget.
    pub fn for_workloads(units: u32, n: usize) -> SearchConfig {
        SearchConfig {
            units,
            disk_share: 1.0 / n as f64,
            min_units: 1,
            parallelism: 1,
            cpu_budget: units,
            mem_budget: units,
        }
    }

    /// Returns the config with the parallelism knob set (`0` = one worker
    /// per available core).
    pub fn with_parallelism(mut self, parallelism: usize) -> SearchConfig {
        self.parallelism = parallelism;
        self
    }

    /// Returns the config restricted to a sub-budget of `cpu`/`mem` units
    /// (a localized re-solve over a workload subset, with the rest of the
    /// machine pinned elsewhere).
    pub fn with_budgets(mut self, cpu: u32, mem: u32) -> SearchConfig {
        self.cpu_budget = cpu;
        self.mem_budget = mem;
        self
    }

    /// The number of evaluation workers this config resolves to.
    pub fn effective_parallelism(&self) -> usize {
        match self.parallelism {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            p => p,
        }
    }

    fn validate(&self, n: usize) -> Result<(), CoreError> {
        if self.units == 0 || self.min_units == 0 {
            return Err(CoreError::BadProblem {
                reason: "units and min_units must be positive".to_string(),
            });
        }
        if self.cpu_budget > self.units || self.mem_budget > self.units {
            return Err(CoreError::BadProblem {
                reason: format!(
                    "budget ({}, {}) exceeds {} total units",
                    self.cpu_budget, self.mem_budget, self.units
                ),
            });
        }
        let floor = (self.min_units as usize) * n;
        if floor > self.cpu_budget as usize || floor > self.mem_budget as usize {
            return Err(CoreError::BadProblem {
                reason: format!(
                    "{} workloads x {} min units exceed budget ({}, {})",
                    n, self.min_units, self.cpu_budget, self.mem_budget
                ),
            });
        }
        if !(self.disk_share > 0.0 && self.disk_share <= 1.0) {
            return Err(CoreError::BadProblem {
                reason: format!("disk share {} out of range", self.disk_share),
            });
        }
        Ok(())
    }
}

/// Which search algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchAlgorithm {
    /// Full enumeration of all candidates.
    Exhaustive,
    /// Unit-transfer hill climbing from the equal split.
    Greedy,
    /// Exact dynamic programming over separable costs.
    DynamicProgramming,
}

impl SearchAlgorithm {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SearchAlgorithm::Exhaustive => "exhaustive",
            SearchAlgorithm::Greedy => "greedy",
            SearchAlgorithm::DynamicProgramming => "dynamic-programming",
        }
    }
}

/// The search's output: the recommended allocation and its predicted
/// costs.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// The recommended allocation matrix.
    pub allocation: AllocationMatrix,
    /// Predicted cost (seconds) per workload under the recommendation.
    pub per_workload_costs: Vec<f64>,
    /// Sum of the per-workload costs.
    pub total_cost: f64,
    /// The optimized objective: the service-level-weighted cost sum
    /// (equals `total_cost` when every weight is 1).
    pub objective: f64,
    /// Distinct what-if cost evaluations performed by this search (cells
    /// already present in a shared warm cache are not counted).
    pub evaluations: usize,
    /// The algorithm that produced this recommendation.
    pub algorithm: &'static str,
}

/// Per-workload integer allocation: `(cpu units, mem units)`.
pub(crate) type UnitAssignment = Vec<(u32, u32)>;

/// Shared evaluation machinery: share conversion plus memoized —
/// optionally parallel — what-if cost calls over a [`CostCache`].
///
/// The cache holds *unweighted* model costs; the SLO weight is applied on
/// every read. `CostModel::cost` must therefore not itself depend on
/// workload weights (none of the in-tree models do), and entries stay
/// valid across problems that differ only in weights.
pub struct ParallelEvaluator<'p, 'm> {
    /// The problem being solved.
    pub problem: &'p DesignProblem<'p>,
    /// The cost model pricing each cell.
    pub model: &'m dyn CostModel,
    /// The search configuration (units, disk policy, parallelism).
    pub config: SearchConfig,
    cache: Arc<CostCache>,
    evals_at_start: usize,
}

impl<'p, 'm> ParallelEvaluator<'p, 'm> {
    /// An evaluator with its own fresh cache.
    pub fn new(
        problem: &'p DesignProblem<'p>,
        model: &'m dyn CostModel,
        config: SearchConfig,
    ) -> ParallelEvaluator<'p, 'm> {
        ParallelEvaluator::with_cache(problem, model, config, Arc::new(CostCache::new()))
    }

    /// An evaluator over a shared (possibly pre-warmed) cache. Its
    /// [`ParallelEvaluator::evaluations`] counts only cells this
    /// evaluator's searches added.
    pub fn with_cache(
        problem: &'p DesignProblem<'p>,
        model: &'m dyn CostModel,
        config: SearchConfig,
        cache: Arc<CostCache>,
    ) -> ParallelEvaluator<'p, 'm> {
        let evals_at_start = cache.evaluations();
        ParallelEvaluator {
            problem,
            model,
            config,
            cache,
            evals_at_start,
        }
    }

    /// The resource shares a `(cpu units, mem units)` cell denotes.
    pub fn shares(&self, cpu_units: u32, mem_units: u32) -> Result<ResourceVector, CoreError> {
        let u = self.config.units as f64;
        Ok(ResourceVector::from_fractions(
            cpu_units as f64 / u,
            mem_units as f64 / u,
            self.config.disk_share,
        )?)
    }

    /// Memoized `weightᵢ · Cost(Wᵢ, Rᵢ)` at a grid cell — the quantity the
    /// search algorithms minimize (the paper's objective when every weight
    /// is 1; the SLO extension otherwise).
    pub fn cost(&self, w: usize, cpu_units: u32, mem_units: u32) -> Result<f64, CoreError> {
        let weight = self.problem.workloads[w].weight;
        let key = (w, cpu_units, mem_units);
        if let Some(c) = self.cache.get(&key) {
            TM_CACHE_HITS.add(1);
            return Ok(c * weight);
        }
        TM_CACHE_MISSES.add(1);
        let shares = self.shares(cpu_units, mem_units)?;
        // Observation only: the clock is read solely when telemetry is on,
        // and nothing downstream depends on the measured duration.
        let t0 = telemetry::is_enabled().then(std::time::Instant::now);
        let c = self.model.cost(self.problem, w, shares)?;
        if let Some(t0) = t0 {
            TM_EVAL_US.record_duration(t0.elapsed());
        }
        self.cache.insert(key, c);
        Ok(c * weight)
    }

    /// Distinct what-if evaluations this evaluator has added to its cache.
    pub fn evaluations(&self) -> usize {
        self.cache.evaluations() - self.evals_at_start
    }

    /// Evaluates a set of cells into the cache, splitting the work across
    /// [`SearchConfig::parallelism`] threads. Already-cached cells cost a
    /// lookup only. On failure the error for the lowest-indexed failing
    /// cell is returned, regardless of thread interleaving, so error
    /// behavior is deterministic too.
    pub fn batch_evaluate(&self, cells: &[CellKey]) -> Result<(), CoreError> {
        let workers = self.config.effective_parallelism().min(cells.len());
        let mut batch_span = telemetry::span("search.batch");
        batch_span.set_attr("cells", cells.len());
        batch_span.set_attr("workers", workers.max(1));
        TM_BATCH_WORKERS.set(workers.max(1) as f64);
        if workers <= 1 {
            for &(w, c, m) in cells {
                self.cost(w, c, m)?;
            }
            return Ok(());
        }
        let batch_parent = batch_span.id();
        let failures: Mutex<Vec<(usize, CoreError)>> = Mutex::new(Vec::new());
        let chunk_len = cells.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for (chunk_idx, chunk) in cells.chunks(chunk_len).enumerate() {
                let failures = &failures;
                scope.spawn(move || {
                    // Workers adopt the batch span as parent so per-chunk
                    // spans nest under it in the trace.
                    let mut worker_span =
                        telemetry::span_with_parent("search.worker", batch_parent);
                    worker_span.set_attr("chunk", chunk_idx);
                    worker_span.set_attr("cells", chunk.len());
                    for (offset, &(w, c, m)) in chunk.iter().enumerate() {
                        if let Err(e) = self.cost(w, c, m) {
                            failures
                                .lock()
                                .unwrap()
                                .push((chunk_idx * chunk_len + offset, e));
                            return;
                        }
                    }
                });
            }
        });
        let mut failures = failures.into_inner().unwrap();
        failures.sort_by_key(|(idx, _)| *idx);
        match failures.into_iter().next() {
            Some((_, e)) => Err(e),
            None => Ok(()),
        }
    }

    /// The exact cell set a serial DP or exhaustive search evaluates: for
    /// `n ≥ 2` every workload's full feasible rectangle
    /// `[min_units, budget − (n−1)·min_units]` per resource (both
    /// enumerate every feasible per-workload cell), for `n = 1` the single
    /// whole-budget cell. Precomputing it in parallel therefore leaves the
    /// evaluation count identical to a serial run.
    fn full_table_cells(&self) -> Vec<CellKey> {
        let n = self.problem.num_workloads();
        let cfg = self.config;
        if n == 1 {
            return vec![(0, cfg.cpu_budget, cfg.mem_budget)];
        }
        let lo = cfg.min_units;
        let reserve = cfg.min_units * (n as u32 - 1);
        let (cpu_hi, mem_hi) = (cfg.cpu_budget - reserve, cfg.mem_budget - reserve);
        let mut cells =
            Vec::with_capacity(n * (cpu_hi - lo + 1) as usize * (mem_hi - lo + 1) as usize);
        for w in 0..n {
            for c in lo..=cpu_hi {
                for m in lo..=mem_hi {
                    cells.push((w, c, m));
                }
            }
        }
        cells
    }

    /// Total cost of a full unit assignment, summed in workload order.
    pub fn total(&self, assignment: &UnitAssignment) -> Result<f64, CoreError> {
        assignment
            .iter()
            .enumerate()
            .map(|(w, &(c, m))| self.cost(w, c, m))
            .sum()
    }

    /// Converts a unit assignment into the final recommendation.
    pub fn finish(
        &self,
        assignment: &UnitAssignment,
        algorithm: SearchAlgorithm,
    ) -> Result<Recommendation, CoreError> {
        let rows: Vec<ResourceVector> = assignment
            .iter()
            .map(|&(c, m)| self.shares(c, m))
            .collect::<Result<_, _>>()?;
        let allocation = AllocationMatrix::new(rows)?;
        let weighted: Vec<f64> = assignment
            .iter()
            .enumerate()
            .map(|(w, &(c, m))| self.cost(w, c, m))
            .collect::<Result<_, _>>()?;
        let per_workload_costs: Vec<f64> = weighted
            .iter()
            .enumerate()
            .map(|(w, &c)| c / self.problem.workloads[w].weight)
            .collect();
        Ok(Recommendation {
            allocation,
            objective: weighted.iter().sum(),
            total_cost: per_workload_costs.iter().sum(),
            per_workload_costs,
            evaluations: self.evaluations(),
            algorithm: algorithm.name(),
        })
    }
}

/// An equal split of `units` into `n` parts (remainder units go to the
/// first workloads).
pub(crate) fn equal_units(n: usize, units: u32) -> Vec<u32> {
    let base = units / n as u32;
    let extra = units as usize % n;
    (0..n).map(|i| base + u32::from(i < extra)).collect()
}

/// The equal split as a unit assignment (remainder units go to the first
/// workloads).
#[cfg(test)]
pub(crate) fn equal_assignment(n: usize, units: u32) -> UnitAssignment {
    equal_units(n, units)
        .into_iter()
        .zip(equal_units(n, units))
        .collect()
}

/// Runs the requested search with a fresh evaluation cache.
pub fn run_search(
    algorithm: SearchAlgorithm,
    problem: &DesignProblem<'_>,
    model: &dyn CostModel,
    config: SearchConfig,
) -> Result<Recommendation, CoreError> {
    run_search_cached(algorithm, problem, model, config, &Arc::new(CostCache::new()))
}

/// Runs the requested search against a caller-owned [`CostCache`], so
/// repeated solves over the same databases and queries (e.g. consecutive
/// [`crate::dynamic::DynamicTimeline`] phases) reuse each other's what-if
/// evaluations. The cache stores unweighted costs, so sharing is sound
/// across problems that differ only in workload weights; the caller must
/// not share a cache across different databases, queries, machines, or
/// share discretizations.
pub fn run_search_cached(
    algorithm: SearchAlgorithm,
    problem: &DesignProblem<'_>,
    model: &dyn CostModel,
    config: SearchConfig,
    cache: &Arc<CostCache>,
) -> Result<Recommendation, CoreError> {
    config.validate(problem.num_workloads())?;
    let mut run_span = telemetry::span("search.run");
    run_span.set_attr("algorithm", algorithm.name());
    run_span.set_attr("workloads", problem.num_workloads());
    run_span.set_attr("units", config.units);
    let workers = config.effective_parallelism();
    run_span.set_attr("workers", workers);
    let eval = ParallelEvaluator::with_cache(problem, model, config, Arc::clone(cache));
    if workers > 1
        && matches!(
            algorithm,
            SearchAlgorithm::Exhaustive | SearchAlgorithm::DynamicProgramming
        )
    {
        // DP and exhaustive search deterministically touch their full
        // per-workload cost tables; fill those tables with all workers
        // before the (cheap) combinatorial pass runs over warm cells.
        eval.batch_evaluate(&eval.full_table_cells())?;
    }
    let assignment = match algorithm {
        SearchAlgorithm::Exhaustive => exhaustive::search(&eval)?,
        SearchAlgorithm::Greedy => greedy::search(&eval)?,
        SearchAlgorithm::DynamicProgramming => dynprog::search(&eval)?,
    };
    let rec = eval.finish(&assignment, algorithm)?;
    run_span.set_attr("evaluations", rec.evaluations);
    Ok(rec)
}

#[cfg(test)]
pub(crate) mod tests_support {
    //! A synthetic, analytically-minimizable cost model for search tests.

    use super::*;
    use dbvirt_engine::Database;
    use dbvirt_optimizer::LogicalPlan;
    use dbvirt_storage::{DataType, Datum, Field, Schema, Tuple};
    use dbvirt_vmm::MachineSpec;

    /// `cost_i(R) = cpu_weight_i / cpu + mem_weight_i / mem` — convex and
    /// separable, so the optimum is unique and the greedy landscape is
    /// well-behaved.
    pub struct SyntheticModel {
        pub weights: Vec<(f64, f64)>,
    }

    impl CostModel for SyntheticModel {
        fn cost(
            &self,
            _problem: &DesignProblem<'_>,
            w_idx: usize,
            shares: ResourceVector,
        ) -> Result<f64, CoreError> {
            let (wc, wm) = self.weights[w_idx];
            Ok(wc / shares.cpu().fraction() + wm / shares.memory().fraction())
        }
    }

    /// Builds a minimal valid problem with `n` trivial workloads (the
    /// synthetic model never looks at the queries).
    pub fn dummy_problem(db: &Database, n: usize) -> DesignProblem<'_> {
        let t = db.table_id("t").unwrap();
        let workloads = (0..n)
            .map(|i| crate::WorkloadSpec::new(format!("w{i}"), db, vec![LogicalPlan::scan(t)]))
            .collect();
        DesignProblem::new(MachineSpec::paper_testbed(), workloads).unwrap()
    }

    pub fn dummy_db() -> Database {
        let mut db = Database::new();
        let t = db.create_table("t", Schema::new(vec![Field::new("a", DataType::Int)]));
        db.insert_rows(t, (0..10).map(|i| Tuple::new(vec![Datum::Int(i)])))
            .unwrap();
        db.analyze_all().unwrap();
        db
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::*;
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn equal_assignment_distributes_remainder() {
        assert_eq!(equal_assignment(2, 8), vec![(4, 4), (4, 4)]);
        assert_eq!(equal_assignment(3, 8), vec![(3, 3), (3, 3), (2, 2)]);
    }

    #[test]
    fn config_validation() {
        let db = dummy_db();
        let problem = dummy_problem(&db, 3);
        let model = SyntheticModel {
            weights: vec![(1.0, 1.0); 3],
        };
        let bad = SearchConfig::for_workloads(2, 3);
        assert!(run_search(SearchAlgorithm::Greedy, &problem, &model, bad).is_err());
        let mut bad = SearchConfig::for_workloads(8, 3);
        bad.disk_share = 0.0;
        assert!(run_search(SearchAlgorithm::Greedy, &problem, &model, bad).is_err());
        // Budgets must cover the per-workload floor and fit the machine.
        let bad = SearchConfig::for_workloads(8, 3).with_budgets(2, 8);
        assert!(run_search(SearchAlgorithm::Greedy, &problem, &model, bad).is_err());
        let bad = SearchConfig::for_workloads(8, 3).with_budgets(8, 9);
        assert!(run_search(SearchAlgorithm::Greedy, &problem, &model, bad).is_err());
    }

    #[test]
    fn all_algorithms_agree_on_symmetric_workloads() {
        let db = dummy_db();
        let problem = dummy_problem(&db, 2);
        let model = SyntheticModel {
            weights: vec![(1.0, 1.0), (1.0, 1.0)],
        };
        let config = SearchConfig::for_workloads(8, 2);
        for alg in [
            SearchAlgorithm::Exhaustive,
            SearchAlgorithm::Greedy,
            SearchAlgorithm::DynamicProgramming,
        ] {
            let rec = run_search(alg, &problem, &model, config).unwrap();
            // Symmetric convex costs: equal split is optimal.
            let row = rec.allocation.row(0);
            assert!(
                (row.cpu().fraction() - 0.5).abs() < 1e-9,
                "{alg:?} cpu {row}"
            );
            assert!((row.memory().fraction() - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn skewed_workloads_get_skewed_allocations() {
        let db = dummy_db();
        let problem = dummy_problem(&db, 2);
        // Workload 0 is CPU-hungry, workload 1 memory-hungry.
        let model = SyntheticModel {
            weights: vec![(10.0, 0.1), (0.1, 10.0)],
        };
        let config = SearchConfig::for_workloads(8, 2);
        let rec = run_search(
            SearchAlgorithm::DynamicProgramming,
            &problem,
            &model,
            config,
        )
        .unwrap();
        assert!(rec.allocation.row(0).cpu().fraction() > 0.6);
        assert!(rec.allocation.row(1).memory().fraction() > 0.6);
        // It beats the equal split.
        let eq_cost: f64 = (0..2)
            .map(|w| {
                model
                    .cost(
                        &problem,
                        w,
                        ResourceVector::from_fractions(0.5, 0.5, 0.5).unwrap(),
                    )
                    .unwrap()
            })
            .sum();
        assert!(rec.total_cost < eq_cost);
    }

    #[test]
    fn slo_weights_skew_the_allocation() {
        let db = dummy_db();
        let mut problem = dummy_problem(&db, 2);
        // Two identical workloads, but workload 1 carries a 5x SLO weight.
        problem.workloads[1].weight = 5.0;
        let model = SyntheticModel {
            weights: vec![(1.0, 1.0), (1.0, 1.0)],
        };
        let config = SearchConfig::for_workloads(8, 2);
        let rec = run_search(
            SearchAlgorithm::DynamicProgramming,
            &problem,
            &model,
            config,
        )
        .unwrap();
        assert!(
            rec.allocation.row(1).cpu() > rec.allocation.row(0).cpu(),
            "the weighted workload should get more CPU: {}",
            rec.allocation
        );
        assert!(rec.allocation.row(1).memory() > rec.allocation.row(0).memory());
        // The objective is the weighted sum, the total the raw sum.
        let raw: f64 = rec.per_workload_costs.iter().sum();
        assert!((rec.total_cost - raw).abs() < 1e-12);
        let weighted = rec.per_workload_costs[0] + 5.0 * rec.per_workload_costs[1];
        assert!((rec.objective - weighted).abs() < 1e-9);
    }

    #[test]
    fn budgeted_solves_stay_inside_the_budget_and_agree() {
        let db = dummy_db();
        let problem = dummy_problem(&db, 2);
        let model = SyntheticModel {
            weights: vec![(6.0, 0.5), (0.5, 6.0)],
        };
        // Localized sub-solve: only 5 CPU units and 6 memory units are on
        // the table; shares stay fractions of the full 8-unit machine.
        let config = SearchConfig::for_workloads(8, 2).with_budgets(5, 6);
        let mut recs = Vec::new();
        for alg in [
            SearchAlgorithm::Exhaustive,
            SearchAlgorithm::Greedy,
            SearchAlgorithm::DynamicProgramming,
        ] {
            let rec = run_search(alg, &problem, &model, config).unwrap();
            let units = config.units as f64;
            let cpu_units: f64 = (0..2)
                .map(|w| rec.allocation.row(w).cpu().fraction() * units)
                .sum();
            let mem_units: f64 = (0..2)
                .map(|w| rec.allocation.row(w).memory().fraction() * units)
                .sum();
            assert!((cpu_units - 5.0).abs() < 1e-9, "{alg:?} spent {cpu_units} cpu units");
            assert!((mem_units - 6.0).abs() < 1e-9, "{alg:?} spent {mem_units} mem units");
            recs.push(rec);
        }
        // DP is exact on the restricted space too.
        assert!((recs[0].total_cost - recs[2].total_cost).abs() < 1e-9);
        // The skewed model pulls CPU to workload 0 even inside the budget.
        assert!(recs[2].allocation.row(0).cpu() > recs[2].allocation.row(1).cpu());
        // A full-budget config prices at least as well (superset space).
        let full = run_search(
            SearchAlgorithm::DynamicProgramming,
            &problem,
            &model,
            SearchConfig::for_workloads(8, 2),
        )
        .unwrap();
        assert!(full.total_cost <= recs[2].total_cost + 1e-9);
    }

    #[test]
    fn dp_matches_exhaustive_exactly() {
        let db = dummy_db();
        for n in [2usize, 3] {
            let problem = dummy_problem(&db, n);
            let weights: Vec<(f64, f64)> = (0..n)
                .map(|i| (1.0 + i as f64 * 2.5, 4.0 / (1.0 + i as f64)))
                .collect();
            let model = SyntheticModel { weights };
            let config = SearchConfig::for_workloads(6, n);
            let ex = run_search(SearchAlgorithm::Exhaustive, &problem, &model, config).unwrap();
            let dp = run_search(
                SearchAlgorithm::DynamicProgramming,
                &problem,
                &model,
                config,
            )
            .unwrap();
            assert!(
                (ex.total_cost - dp.total_cost).abs() < 1e-9,
                "n={n}: {} vs {}",
                ex.total_cost,
                dp.total_cost
            );
        }
    }

    #[test]
    fn greedy_never_loses_to_equal_split_and_uses_fewer_evals() {
        let db = dummy_db();
        let problem = dummy_problem(&db, 3);
        let model = SyntheticModel {
            weights: vec![(8.0, 0.5), (0.5, 8.0), (2.0, 2.0)],
        };
        let config = SearchConfig::for_workloads(9, 3);
        let greedy = run_search(SearchAlgorithm::Greedy, &problem, &model, config).unwrap();
        let exhaustive = run_search(SearchAlgorithm::Exhaustive, &problem, &model, config).unwrap();
        let eval = ParallelEvaluator::new(&problem, &model, config);
        let eq = eval.total(&equal_assignment(3, 9)).unwrap();
        assert!(greedy.total_cost <= eq + 1e-9);
        assert!(greedy.total_cost >= exhaustive.total_cost - 1e-9);
        assert!(
            greedy.evaluations < exhaustive.evaluations,
            "greedy {} vs exhaustive {}",
            greedy.evaluations,
            exhaustive.evaluations
        );
    }

    #[test]
    fn greedy_reports_the_exact_objective_and_breaks_ties_low() {
        let db = dummy_db();
        let problem = dummy_problem(&db, 3);
        // Workload 0 barely needs anything; 1 and 2 are identical and
        // hungry, so donations from 0 tie between recipients 1 and 2 and
        // the tracked total crosses many magnitudes of delta.
        let model = SyntheticModel {
            weights: vec![(0.1, 0.1), (4.0, 4.0), (4.0, 4.0)],
        };
        let config = SearchConfig::for_workloads(10, 3);
        let rec = run_search(SearchAlgorithm::Greedy, &problem, &model, config).unwrap();
        // Regression (float drift): the reported objective must equal the
        // objective recomputed from scratch, bit for bit — the search
        // tracks totals by re-summing cached cells, never by accumulating
        // per-move deltas.
        let eval = ParallelEvaluator::new(&problem, &model, config);
        let units = config.units as f64;
        let assignment: UnitAssignment = (0..3)
            .map(|w| {
                let row = rec.allocation.row(w);
                (
                    (row.cpu().fraction() * units).round() as u32,
                    (row.memory().fraction() * units).round() as u32,
                )
            })
            .collect();
        let exact = eval.total(&assignment).unwrap();
        assert_eq!(rec.objective.to_bits(), exact.to_bits());
        // Deterministic tie-break: equal-cost moves resolve to the lowest
        // donor, then the lowest recipient, so workload 1 never ends up
        // behind its identical twin 2 — and a re-run reproduces the same
        // result exactly.
        assert!(rec.allocation.row(1).cpu() >= rec.allocation.row(2).cpu());
        assert!(rec.allocation.row(1).memory() >= rec.allocation.row(2).memory());
        let again = run_search(SearchAlgorithm::Greedy, &problem, &model, config).unwrap();
        assert_eq!(rec.objective.to_bits(), again.objective.to_bits());
        assert_eq!(rec.allocation.to_string(), again.allocation.to_string());
    }

    /// Asserts two recommendations are identical to the bit.
    fn assert_bit_identical(a: &Recommendation, b: &Recommendation, context: &str) {
        assert_eq!(a.algorithm, b.algorithm, "{context}");
        assert_eq!(a.evaluations, b.evaluations, "{context}: evaluations");
        assert_eq!(
            a.total_cost.to_bits(),
            b.total_cost.to_bits(),
            "{context}: total_cost {} vs {}",
            a.total_cost,
            b.total_cost
        );
        assert_eq!(a.objective.to_bits(), b.objective.to_bits(), "{context}");
        assert_eq!(a.per_workload_costs.len(), b.per_workload_costs.len());
        for (x, y) in a.per_workload_costs.iter().zip(&b.per_workload_costs) {
            assert_eq!(x.to_bits(), y.to_bits(), "{context}: per-workload cost");
        }
        for w in 0..a.per_workload_costs.len() {
            let (ra, rb) = (a.allocation.row(w), b.allocation.row(w));
            assert_eq!(
                ra.cpu().fraction().to_bits(),
                rb.cpu().fraction().to_bits(),
                "{context}: cpu row {w}"
            );
            assert_eq!(
                ra.memory().fraction().to_bits(),
                rb.memory().fraction().to_bits(),
                "{context}: mem row {w}"
            );
            assert_eq!(
                ra.disk().fraction().to_bits(),
                rb.disk().fraction().to_bits(),
                "{context}: disk row {w}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn parallel_results_are_bit_identical_to_serial(
            weights in prop::collection::vec((0.05f64..16.0, 0.05f64..16.0), 1..5),
            units in 6u32..11,
            threads in 2usize..7,
        ) {
            let db = dummy_db();
            let n = weights.len();
            let problem = dummy_problem(&db, n);
            let model = SyntheticModel { weights };
            let serial_cfg = SearchConfig::for_workloads(units, n);
            let parallel_cfg = serial_cfg.with_parallelism(threads);
            for alg in [
                SearchAlgorithm::Exhaustive,
                SearchAlgorithm::Greedy,
                SearchAlgorithm::DynamicProgramming,
            ] {
                let serial = run_search(alg, &problem, &model, serial_cfg).unwrap();
                let parallel = run_search(alg, &problem, &model, parallel_cfg).unwrap();
                assert_bit_identical(
                    &serial,
                    &parallel,
                    &format!("{} n={n} units={units} threads={threads}", alg.name()),
                );
            }
        }
    }

    #[test]
    fn auto_parallelism_resolves_to_available_cores() {
        let auto = SearchConfig::for_workloads(8, 2).with_parallelism(0);
        assert!(auto.effective_parallelism() >= 1);
        let fixed = SearchConfig::for_workloads(8, 2).with_parallelism(3);
        assert_eq!(fixed.effective_parallelism(), 3);
        assert_eq!(SearchConfig::for_workloads(8, 2).effective_parallelism(), 1);
    }

    #[test]
    fn shared_cache_warms_across_searches() {
        let db = dummy_db();
        let problem = dummy_problem(&db, 2);
        let model = SyntheticModel {
            weights: vec![(3.0, 1.0), (1.0, 3.0)],
        };
        let config = SearchConfig::for_workloads(8, 2);
        let cache = Arc::new(CostCache::new());
        let first = run_search_cached(
            SearchAlgorithm::DynamicProgramming,
            &problem,
            &model,
            config,
            &cache,
        )
        .unwrap();
        assert!(first.evaluations > 0);
        // Re-solving against the warm cache costs zero new evaluations and
        // returns the identical recommendation.
        let second = run_search_cached(
            SearchAlgorithm::DynamicProgramming,
            &problem,
            &model,
            config,
            &cache,
        )
        .unwrap();
        assert_eq!(second.evaluations, 0);
        assert_eq!(first.total_cost.to_bits(), second.total_cost.to_bits());
        // Weights live outside the cache: a differently-weighted problem
        // over the same cells also needs no new evaluations.
        let mut reweighted = dummy_problem(&db, 2);
        reweighted.workloads[0].weight = 7.5;
        let third = run_search_cached(
            SearchAlgorithm::DynamicProgramming,
            &reweighted,
            &model,
            config,
            &cache,
        )
        .unwrap();
        assert_eq!(third.evaluations, 0);
        assert!((third.objective - 7.5 * third.per_workload_costs[0] - third.per_workload_costs[1]).abs() < 1e-9);
    }

    /// Two threads sharing one warm cache across *different problems*
    /// (different weights, different budgets) must produce recommendations
    /// bit-identical to sequential runs over the same shared cache. The
    /// fleet tier leans on exactly this: many concurrent what-if requests
    /// draining one warm `CostCache`. Evaluation *attribution* is the one
    /// quantity that may legitimately shift between interleavings (both
    /// threads can race to fill the same cell), so the pinned contract is:
    /// identical recommendations, and an identical *total* distinct-cell
    /// count in the shared cache.
    #[test]
    fn concurrent_searches_share_one_cache_across_problems_deterministically() {
        let db = dummy_db();
        let model = SyntheticModel {
            weights: vec![(5.0, 0.8), (0.7, 6.0), (2.0, 2.0)],
        };
        // Problem A: plain 3-workload solve. Problem B: same workloads
        // reweighted, solved under a restricted budget (a localized
        // re-solve) — weights live outside the cache, budgets only shrink
        // the cell set, so sharing is sound.
        let problem_a = dummy_problem(&db, 3);
        let mut problem_b = dummy_problem(&db, 3);
        problem_b.workloads[0].weight = 4.0;
        problem_b.workloads[2].weight = 0.25;
        let cfg_a = SearchConfig::for_workloads(9, 3);
        let cfg_b = SearchConfig::for_workloads(9, 3).with_budgets(7, 8);

        // Sequential reference: both problems against one fresh shared cache.
        let seq_cache = Arc::new(CostCache::new());
        let seq_a = run_search_cached(
            SearchAlgorithm::DynamicProgramming,
            &problem_a,
            &model,
            cfg_a,
            &seq_cache,
        )
        .unwrap();
        let seq_b = run_search_cached(
            SearchAlgorithm::DynamicProgramming,
            &problem_b,
            &model,
            cfg_b,
            &seq_cache,
        )
        .unwrap();

        for round in 0..8 {
            let shared = Arc::new(CostCache::new());
            let (par_a, par_b) = std::thread::scope(|scope| {
                let cache_a = Arc::clone(&shared);
                let cache_b = Arc::clone(&shared);
                let (problem_a, problem_b) = (&problem_a, &problem_b);
                let model = &model;
                let ha = scope.spawn(move || {
                    run_search_cached(
                        SearchAlgorithm::DynamicProgramming,
                        problem_a,
                        model,
                        cfg_a,
                        &cache_a,
                    )
                    .unwrap()
                });
                let hb = scope.spawn(move || {
                    run_search_cached(
                        SearchAlgorithm::DynamicProgramming,
                        problem_b,
                        model,
                        cfg_b,
                        &cache_b,
                    )
                    .unwrap()
                });
                (ha.join().unwrap(), hb.join().unwrap())
            });
            for (seq, par, label) in [(&seq_a, &par_a, "A"), (&seq_b, &par_b, "B")] {
                assert_eq!(seq.objective.to_bits(), par.objective.to_bits(), "round {round} {label}");
                assert_eq!(seq.total_cost.to_bits(), par.total_cost.to_bits(), "round {round} {label}");
                assert_eq!(
                    seq.allocation.to_string(),
                    par.allocation.to_string(),
                    "round {round} {label}"
                );
                for (x, y) in seq.per_workload_costs.iter().zip(&par.per_workload_costs) {
                    assert_eq!(x.to_bits(), y.to_bits(), "round {round} {label}");
                }
            }
            // The distinct-cell population of the shared cache is exact
            // under any interleaving.
            assert_eq!(shared.evaluations(), seq_cache.evaluations(), "round {round}");
            assert_eq!(shared.entries(), seq_cache.entries(), "round {round}");
        }
    }

    #[test]
    fn batch_evaluate_reports_the_lowest_failing_cell() {
        struct FailsAboveCpu(f64);
        impl CostModel for FailsAboveCpu {
            fn cost(
                &self,
                _problem: &DesignProblem<'_>,
                _w: usize,
                shares: ResourceVector,
            ) -> Result<f64, CoreError> {
                if shares.cpu().fraction() > self.0 {
                    return Err(CoreError::BadProblem {
                        reason: format!("cpu {} too high", shares.cpu().fraction()),
                    });
                }
                Ok(1.0 / shares.cpu().fraction())
            }
        }
        let db = dummy_db();
        let problem = dummy_problem(&db, 2);
        let model = FailsAboveCpu(0.5);
        let config = SearchConfig::for_workloads(8, 2).with_parallelism(4);
        let eval = ParallelEvaluator::new(&problem, &model, config);
        let cells = eval.full_table_cells();
        // The lowest-indexed failing cell is the first with cpu > 4 units.
        let expected_idx = cells
            .iter()
            .position(|&(_, c, _)| c > 4)
            .expect("some cell fails");
        let expected = match eval.shares(cells[expected_idx].1, cells[expected_idx].2) {
            Ok(shares) => format!("cpu {} too high", shares.cpu().fraction()),
            Err(_) => unreachable!(),
        };
        for _ in 0..8 {
            let fresh = ParallelEvaluator::new(&problem, &model, config);
            let err = fresh.batch_evaluate(&cells).unwrap_err();
            assert_eq!(
                err.to_string(),
                format!("bad problem: {expected}"),
                "error must be the lowest failing cell on every run"
            );
        }
    }
}
