//! Combinatorial search over candidate allocations (paper, Section 3:
//! "a search algorithm for enumerating candidate solutions" plus "a method
//! for evaluating the cost of a candidate solution").
//!
//! Shares are discretized into `units` equal steps per resource; a
//! candidate gives each workload an integer number of units of CPU and of
//! memory (disk is a fixed per-VM policy, matching the paper's testbed,
//! where Xen could not throttle disk independently). Three algorithms are
//! provided:
//!
//! * [`SearchAlgorithm::Exhaustive`] — enumerate every composition
//!   (ground truth, exponential in `N`);
//! * [`SearchAlgorithm::Greedy`] — start from the equal split and
//!   repeatedly move one unit between workloads while that improves total
//!   cost;
//! * [`SearchAlgorithm::DynamicProgramming`] — the paper's suggested
//!   "standard technique": costs are separable across workloads, so an
//!   exact DP over (workload, remaining cpu units, remaining memory
//!   units) finds the optimum in polynomial time.
//!
//! Cost evaluations are cached per `(workload, cpu units, mem units)` —
//! the what-if optimizer is cheap but not free, and the same cell recurs
//! across candidates.

mod dynprog;
mod exhaustive;
mod greedy;

use crate::{CoreError, CostModel, DesignProblem};
use dbvirt_vmm::{AllocationMatrix, ResourceVector};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

/// Search configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchConfig {
    /// Number of discrete units each resource is divided into.
    pub units: u32,
    /// Fixed disk share given to every VM (typically `1 / N`).
    pub disk_share: f64,
    /// Minimum units of each resource per workload (≥ 1 so every VM can
    /// make progress).
    pub min_units: u32,
}

impl SearchConfig {
    /// A config with `units` steps, equal-split disk for `n` workloads,
    /// and a 1-unit floor.
    pub fn for_workloads(units: u32, n: usize) -> SearchConfig {
        SearchConfig {
            units,
            disk_share: 1.0 / n as f64,
            min_units: 1,
        }
    }

    fn validate(&self, n: usize) -> Result<(), CoreError> {
        if self.units == 0 || self.min_units == 0 {
            return Err(CoreError::BadProblem {
                reason: "units and min_units must be positive".to_string(),
            });
        }
        if (self.min_units as usize) * n > self.units as usize {
            return Err(CoreError::BadProblem {
                reason: format!(
                    "{} workloads x {} min units exceed {} total units",
                    n, self.min_units, self.units
                ),
            });
        }
        if !(self.disk_share > 0.0 && self.disk_share <= 1.0) {
            return Err(CoreError::BadProblem {
                reason: format!("disk share {} out of range", self.disk_share),
            });
        }
        Ok(())
    }
}

/// Which search algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchAlgorithm {
    /// Full enumeration of all candidates.
    Exhaustive,
    /// Unit-transfer hill climbing from the equal split.
    Greedy,
    /// Exact dynamic programming over separable costs.
    DynamicProgramming,
}

impl SearchAlgorithm {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SearchAlgorithm::Exhaustive => "exhaustive",
            SearchAlgorithm::Greedy => "greedy",
            SearchAlgorithm::DynamicProgramming => "dynamic-programming",
        }
    }
}

/// The search's output: the recommended allocation and its predicted
/// costs.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// The recommended allocation matrix.
    pub allocation: AllocationMatrix,
    /// Predicted cost (seconds) per workload under the recommendation.
    pub per_workload_costs: Vec<f64>,
    /// Sum of the per-workload costs.
    pub total_cost: f64,
    /// The optimized objective: the service-level-weighted cost sum
    /// (equals `total_cost` when every weight is 1).
    pub objective: f64,
    /// Distinct what-if cost evaluations performed.
    pub evaluations: usize,
    /// The algorithm that produced this recommendation.
    pub algorithm: &'static str,
}

/// Per-workload integer allocation: `(cpu units, mem units)`.
pub(crate) type UnitAssignment = Vec<(u32, u32)>;

/// Shared evaluation machinery: share conversion + memoized cost calls.
pub(crate) struct Evaluator<'p, 'm> {
    pub problem: &'p DesignProblem<'p>,
    pub model: &'m dyn CostModel,
    pub config: SearchConfig,
    cache: RefCell<HashMap<(usize, u32, u32), f64>>,
    evals: Cell<usize>,
}

impl<'p, 'm> Evaluator<'p, 'm> {
    pub fn new(
        problem: &'p DesignProblem<'p>,
        model: &'m dyn CostModel,
        config: SearchConfig,
    ) -> Evaluator<'p, 'm> {
        Evaluator {
            problem,
            model,
            config,
            cache: RefCell::new(HashMap::new()),
            evals: Cell::new(0),
        }
    }

    pub fn shares(&self, cpu_units: u32, mem_units: u32) -> Result<ResourceVector, CoreError> {
        let u = self.config.units as f64;
        Ok(ResourceVector::from_fractions(
            cpu_units as f64 / u,
            mem_units as f64 / u,
            self.config.disk_share,
        )?)
    }

    /// Memoized `weightᵢ · Cost(Wᵢ, Rᵢ)` at a grid cell — the quantity the
    /// search algorithms minimize (the paper's objective when every weight
    /// is 1; the SLO extension otherwise).
    pub fn cost(&self, w: usize, cpu_units: u32, mem_units: u32) -> Result<f64, CoreError> {
        let key = (w, cpu_units, mem_units);
        if let Some(&c) = self.cache.borrow().get(&key) {
            return Ok(c);
        }
        let shares = self.shares(cpu_units, mem_units)?;
        let c = self.model.cost(self.problem, w, shares)? * self.problem.workloads[w].weight;
        self.cache.borrow_mut().insert(key, c);
        self.evals.set(self.evals.get() + 1);
        Ok(c)
    }

    pub fn evaluations(&self) -> usize {
        self.evals.get()
    }

    /// Total cost of a full unit assignment.
    pub fn total(&self, assignment: &UnitAssignment) -> Result<f64, CoreError> {
        assignment
            .iter()
            .enumerate()
            .map(|(w, &(c, m))| self.cost(w, c, m))
            .sum()
    }

    /// Converts a unit assignment into the final recommendation.
    pub fn finish(
        &self,
        assignment: &UnitAssignment,
        algorithm: SearchAlgorithm,
    ) -> Result<Recommendation, CoreError> {
        let rows: Vec<ResourceVector> = assignment
            .iter()
            .map(|&(c, m)| self.shares(c, m))
            .collect::<Result<_, _>>()?;
        let allocation = AllocationMatrix::new(rows)?;
        let weighted: Vec<f64> = assignment
            .iter()
            .enumerate()
            .map(|(w, &(c, m))| self.cost(w, c, m))
            .collect::<Result<_, _>>()?;
        let per_workload_costs: Vec<f64> = weighted
            .iter()
            .enumerate()
            .map(|(w, &c)| c / self.problem.workloads[w].weight)
            .collect();
        Ok(Recommendation {
            allocation,
            objective: weighted.iter().sum(),
            total_cost: per_workload_costs.iter().sum(),
            per_workload_costs,
            evaluations: self.evaluations(),
            algorithm: algorithm.name(),
        })
    }
}

/// The equal split as a unit assignment (remainder units go to the first
/// workloads).
pub(crate) fn equal_assignment(n: usize, units: u32) -> UnitAssignment {
    let base = units / n as u32;
    let extra = units as usize % n;
    (0..n)
        .map(|i| {
            let u = base + u32::from(i < extra);
            (u, u)
        })
        .collect()
}

/// Runs the requested search.
pub fn run_search(
    algorithm: SearchAlgorithm,
    problem: &DesignProblem<'_>,
    model: &dyn CostModel,
    config: SearchConfig,
) -> Result<Recommendation, CoreError> {
    config.validate(problem.num_workloads())?;
    let eval = Evaluator::new(problem, model, config);
    let assignment = match algorithm {
        SearchAlgorithm::Exhaustive => exhaustive::search(&eval)?,
        SearchAlgorithm::Greedy => greedy::search(&eval)?,
        SearchAlgorithm::DynamicProgramming => dynprog::search(&eval)?,
    };
    eval.finish(&assignment, algorithm)
}

#[cfg(test)]
pub(crate) mod tests_support {
    //! A synthetic, analytically-minimizable cost model for search tests.

    use super::*;
    use dbvirt_engine::Database;
    use dbvirt_optimizer::LogicalPlan;
    use dbvirt_storage::{DataType, Datum, Field, Schema, Tuple};
    use dbvirt_vmm::MachineSpec;

    /// `cost_i(R) = cpu_weight_i / cpu + mem_weight_i / mem` — convex and
    /// separable, so the optimum is unique and the greedy landscape is
    /// well-behaved.
    pub struct SyntheticModel {
        pub weights: Vec<(f64, f64)>,
    }

    impl CostModel for SyntheticModel {
        fn cost(
            &self,
            _problem: &DesignProblem<'_>,
            w_idx: usize,
            shares: ResourceVector,
        ) -> Result<f64, CoreError> {
            let (wc, wm) = self.weights[w_idx];
            Ok(wc / shares.cpu().fraction() + wm / shares.memory().fraction())
        }
    }

    /// Builds a minimal valid problem with `n` trivial workloads (the
    /// synthetic model never looks at the queries).
    pub fn dummy_problem(db: &Database, n: usize) -> DesignProblem<'_> {
        let t = db.table_id("t").unwrap();
        let workloads = (0..n)
            .map(|i| crate::WorkloadSpec::new(format!("w{i}"), db, vec![LogicalPlan::scan(t)]))
            .collect();
        DesignProblem::new(MachineSpec::paper_testbed(), workloads).unwrap()
    }

    pub fn dummy_db() -> Database {
        let mut db = Database::new();
        let t = db.create_table("t", Schema::new(vec![Field::new("a", DataType::Int)]));
        db.insert_rows(t, (0..10).map(|i| Tuple::new(vec![Datum::Int(i)])))
            .unwrap();
        db.analyze_all().unwrap();
        db
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::*;
    use super::*;

    #[test]
    fn equal_assignment_distributes_remainder() {
        assert_eq!(equal_assignment(2, 8), vec![(4, 4), (4, 4)]);
        assert_eq!(equal_assignment(3, 8), vec![(3, 3), (3, 3), (2, 2)]);
    }

    #[test]
    fn config_validation() {
        let db = dummy_db();
        let problem = dummy_problem(&db, 3);
        let model = SyntheticModel {
            weights: vec![(1.0, 1.0); 3],
        };
        let bad = SearchConfig {
            units: 2,
            disk_share: 0.33,
            min_units: 1,
        };
        assert!(run_search(SearchAlgorithm::Greedy, &problem, &model, bad).is_err());
        let bad = SearchConfig {
            units: 8,
            disk_share: 0.0,
            min_units: 1,
        };
        assert!(run_search(SearchAlgorithm::Greedy, &problem, &model, bad).is_err());
    }

    #[test]
    fn all_algorithms_agree_on_symmetric_workloads() {
        let db = dummy_db();
        let problem = dummy_problem(&db, 2);
        let model = SyntheticModel {
            weights: vec![(1.0, 1.0), (1.0, 1.0)],
        };
        let config = SearchConfig::for_workloads(8, 2);
        for alg in [
            SearchAlgorithm::Exhaustive,
            SearchAlgorithm::Greedy,
            SearchAlgorithm::DynamicProgramming,
        ] {
            let rec = run_search(alg, &problem, &model, config).unwrap();
            // Symmetric convex costs: equal split is optimal.
            let row = rec.allocation.row(0);
            assert!(
                (row.cpu().fraction() - 0.5).abs() < 1e-9,
                "{alg:?} cpu {row}"
            );
            assert!((row.memory().fraction() - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn skewed_workloads_get_skewed_allocations() {
        let db = dummy_db();
        let problem = dummy_problem(&db, 2);
        // Workload 0 is CPU-hungry, workload 1 memory-hungry.
        let model = SyntheticModel {
            weights: vec![(10.0, 0.1), (0.1, 10.0)],
        };
        let config = SearchConfig::for_workloads(8, 2);
        let rec = run_search(
            SearchAlgorithm::DynamicProgramming,
            &problem,
            &model,
            config,
        )
        .unwrap();
        assert!(rec.allocation.row(0).cpu().fraction() > 0.6);
        assert!(rec.allocation.row(1).memory().fraction() > 0.6);
        // It beats the equal split.
        let eq_cost: f64 = (0..2)
            .map(|w| {
                model
                    .cost(
                        &problem,
                        w,
                        ResourceVector::from_fractions(0.5, 0.5, 0.5).unwrap(),
                    )
                    .unwrap()
            })
            .sum();
        assert!(rec.total_cost < eq_cost);
    }

    #[test]
    fn slo_weights_skew_the_allocation() {
        let db = dummy_db();
        let mut problem = dummy_problem(&db, 2);
        // Two identical workloads, but workload 1 carries a 5x SLO weight.
        problem.workloads[1].weight = 5.0;
        let model = SyntheticModel {
            weights: vec![(1.0, 1.0), (1.0, 1.0)],
        };
        let config = SearchConfig::for_workloads(8, 2);
        let rec = run_search(
            SearchAlgorithm::DynamicProgramming,
            &problem,
            &model,
            config,
        )
        .unwrap();
        assert!(
            rec.allocation.row(1).cpu() > rec.allocation.row(0).cpu(),
            "the weighted workload should get more CPU: {}",
            rec.allocation
        );
        assert!(rec.allocation.row(1).memory() > rec.allocation.row(0).memory());
        // The objective is the weighted sum, the total the raw sum.
        let raw: f64 = rec.per_workload_costs.iter().sum();
        assert!((rec.total_cost - raw).abs() < 1e-12);
        let weighted = rec.per_workload_costs[0] + 5.0 * rec.per_workload_costs[1];
        assert!((rec.objective - weighted).abs() < 1e-9);
    }

    #[test]
    fn dp_matches_exhaustive_exactly() {
        let db = dummy_db();
        for n in [2usize, 3] {
            let problem = dummy_problem(&db, n);
            let weights: Vec<(f64, f64)> = (0..n)
                .map(|i| (1.0 + i as f64 * 2.5, 4.0 / (1.0 + i as f64)))
                .collect();
            let model = SyntheticModel { weights };
            let config = SearchConfig::for_workloads(6, n);
            let ex = run_search(SearchAlgorithm::Exhaustive, &problem, &model, config).unwrap();
            let dp = run_search(
                SearchAlgorithm::DynamicProgramming,
                &problem,
                &model,
                config,
            )
            .unwrap();
            assert!(
                (ex.total_cost - dp.total_cost).abs() < 1e-9,
                "n={n}: {} vs {}",
                ex.total_cost,
                dp.total_cost
            );
        }
    }

    #[test]
    fn greedy_never_loses_to_equal_split_and_uses_fewer_evals() {
        let db = dummy_db();
        let problem = dummy_problem(&db, 3);
        let model = SyntheticModel {
            weights: vec![(8.0, 0.5), (0.5, 8.0), (2.0, 2.0)],
        };
        let config = SearchConfig::for_workloads(9, 3);
        let greedy = run_search(SearchAlgorithm::Greedy, &problem, &model, config).unwrap();
        let exhaustive = run_search(SearchAlgorithm::Exhaustive, &problem, &model, config).unwrap();
        let eval = Evaluator::new(&problem, &model, config);
        let eq = eval.total(&equal_assignment(3, 9)).unwrap();
        assert!(greedy.total_cost <= eq + 1e-9);
        assert!(greedy.total_cost >= exhaustive.total_cost - 1e-9);
        assert!(
            greedy.evaluations < exhaustive.evaluations,
            "greedy {} vs exhaustive {}",
            greedy.evaluations,
            exhaustive.evaluations
        );
    }
}
