//! Greedy unit-transfer search.
//!
//! Start from the paper's default allocation (the equal split) and
//! repeatedly apply the best single-unit transfer of CPU or memory from
//! one workload to another, stopping when no transfer improves the total
//! cost. This is exactly the manual reasoning in the paper's Section 6
//! ("take CPU away from Q4 and give it to Q13"), automated.

use super::{equal_assignment, Evaluator, UnitAssignment};
use crate::CoreError;

/// Which resource a transfer moves.
#[derive(Clone, Copy)]
enum Res {
    Cpu,
    Mem,
}

pub(super) fn search(eval: &Evaluator<'_, '_>) -> Result<UnitAssignment, CoreError> {
    let n = eval.problem.num_workloads();
    let cfg = eval.config;
    let mut current = equal_assignment(n, cfg.units);
    let mut current_cost = eval.total(&current)?;

    // Each accepted transfer strictly improves a bounded-below objective
    // over a finite state space, so this terminates; the explicit cap is
    // a defensive bound only.
    let max_moves = (cfg.units as usize * n * 4).max(64);
    for _ in 0..max_moves {
        let mut best_move: Option<(f64, usize, usize, Res)> = None;
        for donor in 0..n {
            for recipient in 0..n {
                if donor == recipient {
                    continue;
                }
                for res in [Res::Cpu, Res::Mem] {
                    let (dc, dm) = current[donor];
                    let units_held = match res {
                        Res::Cpu => dc,
                        Res::Mem => dm,
                    };
                    if units_held <= cfg.min_units {
                        continue;
                    }
                    // Only donor and recipient change; reuse the rest.
                    let mut candidate = current.clone();
                    match res {
                        Res::Cpu => {
                            candidate[donor].0 -= 1;
                            candidate[recipient].0 += 1;
                        }
                        Res::Mem => {
                            candidate[donor].1 -= 1;
                            candidate[recipient].1 += 1;
                        }
                    }
                    let delta = eval.cost(donor, candidate[donor].0, candidate[donor].1)?
                        + eval.cost(recipient, candidate[recipient].0, candidate[recipient].1)?
                        - eval.cost(donor, current[donor].0, current[donor].1)?
                        - eval.cost(recipient, current[recipient].0, current[recipient].1)?;
                    if delta < -1e-12 {
                        let cost = current_cost + delta;
                        let better = best_move.as_ref().is_none_or(|(b, ..)| cost < *b);
                        if better {
                            best_move = Some((cost, donor, recipient, res));
                        }
                    }
                }
            }
        }
        let Some((cost, donor, recipient, res)) = best_move else {
            break; // local optimum
        };
        match res {
            Res::Cpu => {
                current[donor].0 -= 1;
                current[recipient].0 += 1;
            }
            Res::Mem => {
                current[donor].1 -= 1;
                current[recipient].1 += 1;
            }
        }
        current_cost = cost;
    }
    Ok(current)
}
