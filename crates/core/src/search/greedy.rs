//! Greedy unit-transfer search.
//!
//! Start from the paper's default allocation (the equal split) and
//! repeatedly apply the best single-unit transfer of CPU or memory from
//! one workload to another, stopping when no transfer improves the total
//! cost. This is exactly the manual reasoning in the paper's Section 6
//! ("take CPU away from Q4 and give it to Q13"), automated.

use super::{equal_units, CellKey, ParallelEvaluator, UnitAssignment};
use crate::CoreError;

/// Which resource a transfer moves.
#[derive(Clone, Copy)]
enum Res {
    Cpu,
    Mem,
}

/// The two cells a transfer changes, or `None` if the donor sits at the
/// minimum and cannot give.
fn moved_cells(
    current: &UnitAssignment,
    donor: usize,
    recipient: usize,
    res: Res,
    min_units: u32,
) -> Option<[CellKey; 2]> {
    let (dc, dm) = current[donor];
    let (rc, rm) = current[recipient];
    match res {
        Res::Cpu if dc > min_units => {
            Some([(donor, dc - 1, dm), (recipient, rc + 1, rm)])
        }
        Res::Mem if dm > min_units => {
            Some([(donor, dc, dm - 1), (recipient, rc, rm + 1)])
        }
        _ => None,
    }
}

pub(super) fn search(eval: &ParallelEvaluator<'_, '_>) -> Result<UnitAssignment, CoreError> {
    let n = eval.problem.num_workloads();
    let cfg = eval.config;
    let parallel = cfg.effective_parallelism() > 1;
    let mut current: UnitAssignment = equal_units(n, cfg.cpu_budget)
        .into_iter()
        .zip(equal_units(n, cfg.mem_budget))
        .collect();
    let mut current_cost = eval.total(&current)?;

    // Each accepted transfer strictly improves a bounded-below objective
    // over a finite state space, so this terminates; the explicit cap is
    // a defensive bound only.
    let max_moves = (cfg.units as usize * n * 4).max(64);
    for _ in 0..max_moves {
        if parallel {
            // Batch-evaluate this iteration's move frontier — exactly the
            // cells the serial scan below would touch — across workers.
            let mut frontier: Vec<CellKey> = Vec::new();
            for donor in 0..n {
                for recipient in 0..n {
                    if donor == recipient {
                        continue;
                    }
                    for res in [Res::Cpu, Res::Mem] {
                        if let Some(cells) =
                            moved_cells(&current, donor, recipient, res, cfg.min_units)
                        {
                            frontier.extend(cells);
                        }
                    }
                }
            }
            frontier.sort_unstable();
            frontier.dedup();
            eval.batch_evaluate(&frontier)?;
        }
        let mut best_move: Option<(f64, usize, usize, Res)> = None;
        for donor in 0..n {
            for recipient in 0..n {
                if donor == recipient {
                    continue;
                }
                for res in [Res::Cpu, Res::Mem] {
                    if moved_cells(&current, donor, recipient, res, cfg.min_units).is_none() {
                        continue;
                    }
                    let mut candidate = current.clone();
                    match res {
                        Res::Cpu => {
                            candidate[donor].0 -= 1;
                            candidate[recipient].0 += 1;
                        }
                        Res::Mem => {
                            candidate[donor].1 -= 1;
                            candidate[recipient].1 += 1;
                        }
                    }
                    // The candidate's exact objective, re-summed from the
                    // cache in workload order. Summing per-move deltas
                    // instead lets the tracked total drift away from the
                    // true objective after many moves.
                    let cost = eval.total(&candidate)?;
                    if cost < current_cost - 1e-12 {
                        // Strict `<` keeps the first improving move on
                        // exact ties: lowest donor, then recipient, then
                        // CPU before memory — a deterministic tie-break.
                        let better = best_move.as_ref().is_none_or(|(b, ..)| cost < *b);
                        if better {
                            best_move = Some((cost, donor, recipient, res));
                        }
                    }
                }
            }
        }
        let Some((cost, donor, recipient, res)) = best_move else {
            break; // local optimum
        };
        match res {
            Res::Cpu => {
                current[donor].0 -= 1;
                current[recipient].0 += 1;
            }
            Res::Mem => {
                current[donor].1 -= 1;
                current[recipient].1 += 1;
            }
        }
        current_cost = cost;
    }
    Ok(current)
}
