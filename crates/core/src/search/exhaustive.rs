//! Exhaustive enumeration of every feasible unit assignment.
//!
//! Ground truth for the other algorithms (and the candidate-count
//! baseline for the EXT-SEARCH experiment): every composition of the CPU
//! units crossed with every composition of the memory units.

use super::{ParallelEvaluator, UnitAssignment};
use crate::CoreError;

/// Generates all compositions of `total` units into `n` parts, each at
/// least `min`.
fn compositions(total: u32, n: usize, min: u32) -> Vec<Vec<u32>> {
    fn rec(remaining: u32, slots: usize, min: u32, prefix: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if slots == 1 {
            if remaining >= min {
                prefix.push(remaining);
                out.push(prefix.clone());
                prefix.pop();
            }
            return;
        }
        let reserve = min * (slots as u32 - 1);
        let mut take = min;
        while take + reserve <= remaining {
            prefix.push(take);
            rec(remaining - take, slots - 1, min, prefix, out);
            prefix.pop();
            take += 1;
        }
    }
    let mut out = Vec::new();
    rec(total, n, min, &mut Vec::new(), &mut out);
    out
}

/// Searches every candidate; returns the cheapest.
pub(super) fn search(eval: &ParallelEvaluator<'_, '_>) -> Result<UnitAssignment, CoreError> {
    let n = eval.problem.num_workloads();
    let cfg = eval.config;
    let cpu_splits = compositions(cfg.cpu_budget, n, cfg.min_units);
    let mem_splits = compositions(cfg.mem_budget, n, cfg.min_units);

    let mut best: Option<(f64, UnitAssignment)> = None;
    for cpu in &cpu_splits {
        for mem in &mem_splits {
            let assignment: UnitAssignment = cpu.iter().copied().zip(mem.iter().copied()).collect();
            let cost = eval.total(&assignment)?;
            let better = best.as_ref().is_none_or(|(b, _)| cost < *b);
            if better {
                best = Some((cost, assignment));
            }
        }
    }
    Ok(best.expect("at least one feasible composition exists").1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compositions_cover_all_and_respect_minimum() {
        let all = compositions(5, 2, 1);
        assert_eq!(all.len(), 4); // (1,4) (2,3) (3,2) (4,1)
        assert!(all.iter().all(|c| c.iter().sum::<u32>() == 5));
        assert!(all.iter().all(|c| c.iter().all(|&x| x >= 1)));

        let constrained = compositions(6, 3, 2);
        assert_eq!(constrained.len(), 1);
        assert_eq!(constrained[0], vec![2, 2, 2]);
    }

    #[test]
    fn infeasible_compositions_are_empty() {
        assert!(compositions(2, 3, 1).is_empty());
    }

    #[test]
    fn single_workload_gets_everything() {
        assert_eq!(compositions(8, 1, 1), vec![vec![8]]);
    }
}
