//! A sharded, thread-safe memo table for what-if cost evaluations.
//!
//! The search algorithms evaluate the same `(workload, cpu units, mem
//! units)` cell many times across candidates; the cache makes each cell a
//! single model call. Sharding by key hash keeps lock contention low when
//! a [`super::ParallelEvaluator`] fills the table from many threads.
//!
//! The cache stores **unweighted** model costs (no SLO weight folded in).
//! That makes entries reusable across design problems that differ only in
//! workload weights — in particular across the phases of a
//! [`crate::dynamic::DynamicTimeline`], which share databases and queries
//! but shift service-level objectives.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Shard lock acquisitions that had to wait behind another thread.
static TM_SHARD_CONTENTION: dbvirt_telemetry::Counter =
    dbvirt_telemetry::Counter::new("search.cache.shard_contention");

/// A cache key: `(workload index, cpu units, mem units)`.
pub type CellKey = (usize, u32, u32);

const SHARDS: usize = 16;

/// Sharded concurrent map from allocation cells to unweighted costs.
///
/// `evaluations()` counts *distinct* cells inserted, not insert calls: if
/// two threads race to compute the same cell, the loser's insert is
/// dropped and not counted, so the count is identical to a serial run
/// touching the same cell set.
pub struct CostCache {
    shards: [Mutex<HashMap<CellKey, f64>>; SHARDS],
    evals: AtomicUsize,
}

impl Default for CostCache {
    fn default() -> CostCache {
        CostCache::new()
    }
}

impl CostCache {
    /// An empty cache.
    pub fn new() -> CostCache {
        CostCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            evals: AtomicUsize::new(0),
        }
    }

    fn shard(&self, key: &CellKey) -> &Mutex<HashMap<CellKey, f64>> {
        // Cells cluster along rows (same workload, nearby units), so mix
        // all three components rather than taking one modulo.
        let h = key
            .0
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add((key.1 as usize).wrapping_mul(0x85EB_CA6B))
            .wrapping_add((key.2 as usize).wrapping_mul(0xC2B2_AE35));
        &self.shards[h % SHARDS]
    }

    /// Locks a key's shard, counting the acquisition as contended when the
    /// uncontended fast path (`try_lock`) fails. Pure observation: blocking
    /// semantics are identical to a plain `lock()`.
    fn lock_shard(&self, key: &CellKey) -> MutexGuard<'_, HashMap<CellKey, f64>> {
        let shard = self.shard(key);
        if let Ok(guard) = shard.try_lock() {
            return guard;
        }
        TM_SHARD_CONTENTION.add(1);
        shard.lock().unwrap()
    }

    /// The cached unweighted cost of a cell, if present.
    pub fn get(&self, key: &CellKey) -> Option<f64> {
        self.lock_shard(key).get(key).copied()
    }

    /// Inserts a freshly computed cell cost. Returns `true` (and counts
    /// one evaluation) only if the cell was not already present.
    pub fn insert(&self, key: CellKey, cost: f64) -> bool {
        let mut shard = self.lock_shard(&key);
        if shard.contains_key(&key) {
            return false;
        }
        shard.insert(key, cost);
        drop(shard);
        self.evals.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Number of distinct cells evaluated into this cache so far.
    pub fn evaluations(&self) -> usize {
        self.evals.load(Ordering::Relaxed)
    }

    /// Total number of cached cells (equals [`CostCache::evaluations`]).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// A snapshot of every cached cell, sorted by key so the result is
    /// deterministic regardless of insertion order or sharding.
    ///
    /// This is the seeding path for callers that maintain a longer-lived
    /// cost store and spin up per-solve caches from it (the fleet advisor
    /// re-keys cells from global VM identities to per-problem workload
    /// indices this way). The snapshot is not atomic across shards —
    /// concurrent inserts may or may not appear — which is sound for pure
    /// memo values: a missed cell is merely re-evaluated to the identical
    /// value.
    pub fn entries(&self) -> Vec<(CellKey, f64)> {
        let mut all: Vec<(CellKey, f64)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let guard = shard.lock().unwrap();
            all.extend(guard.iter().map(|(k, v)| (*k, *v)));
        }
        all.sort_unstable_by_key(|(k, _)| *k);
        all
    }

    /// True if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn insert_counts_distinct_cells_only() {
        let cache = CostCache::new();
        assert!(cache.insert((0, 1, 2), 1.5));
        assert!(!cache.insert((0, 1, 2), 1.5));
        assert!(cache.insert((1, 1, 2), 2.5));
        assert_eq!(cache.evaluations(), 2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&(0, 1, 2)), Some(1.5));
        assert_eq!(cache.get(&(2, 1, 2)), None);
    }

    #[test]
    fn entries_are_sorted_and_complete() {
        let cache = CostCache::new();
        cache.insert((1, 2, 3), 0.5);
        cache.insert((0, 9, 1), 1.5);
        cache.insert((0, 2, 7), 2.5);
        assert_eq!(
            cache.entries(),
            vec![((0, 2, 7), 2.5), ((0, 9, 1), 1.5), ((1, 2, 3), 0.5)]
        );
    }

    #[test]
    fn concurrent_hammering_keeps_exact_counts() {
        // Many threads racing over an overlapping key set: every key must
        // end up present exactly once, with the evaluation count equal to
        // the number of distinct keys regardless of interleaving.
        let cache = Arc::new(CostCache::new());
        let n_threads = 8;
        let keys_per_thread = 500usize;
        std::thread::scope(|scope| {
            for t in 0..n_threads {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..keys_per_thread {
                        // Overlap: every thread also writes the shared
                        // stripe (workload 0), plus its own stripe.
                        let shared = (0usize, (i % 50) as u32, (i / 50) as u32);
                        cache.insert(shared, (i % 50) as f64);
                        let own = (t + 1, i as u32, (t * 31) as u32);
                        cache.insert(own, i as f64);
                    }
                });
            }
        });
        let distinct_shared = 50 * (keys_per_thread / 50);
        let distinct_own = n_threads * keys_per_thread;
        assert_eq!(cache.len(), distinct_shared + distinct_own);
        assert_eq!(cache.evaluations(), cache.len());
        // Values are the deterministic function of the key, not of the
        // winning thread.
        for i in 0..keys_per_thread {
            let key = (0usize, (i % 50) as u32, (i / 50) as u32);
            assert_eq!(cache.get(&key), Some((i % 50) as f64));
        }
    }
}
