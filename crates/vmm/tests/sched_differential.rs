//! Differential suite for the incremental event-driven scheduler.
//!
//! Pins the determinism contract of `crates/vmm/src/sched`: for every
//! input, **all three event cores** report **identical** completions — the
//! reported `SimTime`s compare equal, which at the microsecond clock's
//! integer representation means bit-identical:
//!
//! * [`co_schedule_reference`] — the whole-fleet rescan baseline,
//! * [`SchedCore::Heap`] — the binary heap with lazy invalidation,
//! * [`SchedCore::Calendar`] — the calendar queue with per-VM handles,
//!
//! across random fleets, both scheduling modes, the class-flipping
//! adversarial mix (every query alternates resource class, so
//! work-conserving events re-key whole classes — the calendar core's
//! stress case), zero-demand queries, exactly simultaneous completions,
//! and hostile demands (which must yield the same typed error from every
//! path, never a panic).

use dbvirt_vmm::sched::{
    co_schedule, co_schedule_reference, co_schedule_with_core, co_schedule_with_stats, SchedCore,
    SchedMode, VmJob, VmOutcome,
};
use dbvirt_vmm::{
    AllocationMatrix, MachineSpec, ResourceDemand, ResourceVector, SimTime, VmmError,
};
use proptest::prelude::*;

const MODES: [SchedMode; 2] = [SchedMode::Capped, SchedMode::WorkConserving];
const CORES: [SchedCore; 2] = [SchedCore::Heap, SchedCore::Calendar];

/// A fleet description: per-VM share fractions and query lists.
#[derive(Debug, Clone)]
struct Fleet {
    rows: Vec<ResourceVector>,
    jobs: Vec<VmJob>,
}

fn demand(cpu: f64, seq: u64, rand: u64, writes: u64) -> ResourceDemand {
    ResourceDemand {
        cpu_cycles: cpu,
        seq_page_reads: seq,
        random_page_reads: rand,
        page_writes: writes,
    }
}

/// Query demands spanning zero-demand queries, single-resource queries, and
/// mixed CPU/disk queries at very different unit scales.
fn arb_demand() -> impl Strategy<Value = ResourceDemand> {
    (
        0u64..3_000_000_000,
        0u64..1_500,
        0u64..150,
        0u64..80,
        0u32..10,
    )
        .prop_map(|(cpu, seq, rand, writes, zero)| {
            if zero == 0 {
                // ~10% of queries are fully zero-demand: they must complete
                // instantly without ever entering the event loop.
                ResourceDemand::ZERO
            } else {
                demand(cpu as f64, seq, rand, writes)
            }
        })
}

/// Random fleets of 1–32 VMs with 0–6 queries each and feasible shares.
///
/// Share rows are raw fractions scaled down by the fleet size so every
/// column sums below 1.0 (the allocation feasibility constraint), while
/// still varying by an order of magnitude across VMs.
fn arb_fleet() -> impl Strategy<Value = Fleet> {
    prop::collection::vec(
        (
            prop::collection::vec(arb_demand(), 0..6),
            0.05f64..1.0,
            0.05f64..1.0,
        ),
        1..33,
    )
    .prop_map(|vms| {
        let n = vms.len() as f64;
        let scale = 1.0 / (n * 1.001);
        let rows = vms
            .iter()
            .map(|(_, cpu, disk)| {
                ResourceVector::from_fractions(cpu * scale, 0.5 * scale, disk * scale).unwrap()
            })
            .collect();
        let jobs = vms
            .into_iter()
            .map(|(queries, _, _)| VmJob::new(queries))
            .collect();
        Fleet { rows, jobs }
    })
}

/// Runs every implementation — the reference rescan loop, the
/// mode-selected production core, and both explicit event cores — and
/// asserts the determinism contract plus the per-VM structural
/// invariants; returns the shared outcome.
fn assert_identical(spec: MachineSpec, fleet: &Fleet, mode: SchedMode) -> Vec<VmOutcome> {
    let alloc = AllocationMatrix::new(fleet.rows.clone()).unwrap();
    let incr = co_schedule(spec, &alloc, &fleet.jobs, mode).unwrap();
    let refr = co_schedule_reference(spec, &alloc, &fleet.jobs, mode).unwrap();
    assert_eq!(
        incr, refr,
        "incremental vs reference diverged in mode {mode:?}"
    );
    for core in CORES {
        let (out, _) = co_schedule_with_core(spec, &alloc, &fleet.jobs, mode, core).unwrap();
        assert_eq!(out, refr, "{core:?} core vs reference diverged in mode {mode:?}");
    }
    for (i, (o, job)) in incr.iter().zip(&fleet.jobs).enumerate() {
        assert_eq!(
            o.query_completions.len(),
            job.queries.len(),
            "VM {i} lost or duplicated query completions"
        );
        assert!(
            o.query_completions.windows(2).all(|p| p[0] <= p[1]),
            "VM {i} query completions are not monotone: {:?}",
            o.query_completions
        );
        let last = o.query_completions.last().copied().unwrap_or(SimTime::ZERO);
        assert_eq!(o.completion, last, "VM {i} completion != last query");
    }
    incr
}

/// Class-flipping adversarial fleets: every VM's queries alternate
/// between a pure-CPU class and a pure-disk class, so in work-conserving
/// mode each phase completion changes the membership of *both* resource
/// classes and re-keys every VM in them — the maximal-re-key regime the
/// calendar core was built for (and the heap's worst case for stale
/// entries). Same shape as `ext_sched`'s benchmark mix, but with random
/// magnitudes instead of a fixed stream.
fn arb_flipping_fleet() -> impl Strategy<Value = Fleet> {
    prop::collection::vec(
        (
            prop::collection::vec((1u64..2_000_000_000, 1u64..1_200), 2..8),
            0.05f64..1.0,
            0.05f64..1.0,
        ),
        2..33,
    )
    .prop_map(|vms| {
        let n = vms.len() as f64;
        let scale = 1.0 / (n * 1.001);
        let rows = vms
            .iter()
            .map(|(_, cpu, disk)| {
                ResourceVector::from_fractions(cpu * scale, 0.5 * scale, disk * scale).unwrap()
            })
            .collect();
        let jobs = vms
            .into_iter()
            .map(|(queries, _, _)| {
                VmJob::new(
                    queries
                        .into_iter()
                        .enumerate()
                        .map(|(k, (cpu, pages))| {
                            if k % 2 == 0 {
                                demand(cpu as f64, 0, 0, 0)
                            } else {
                                demand(0.0, pages, pages / 16, 0)
                            }
                        })
                        .collect(),
                )
            })
            .collect();
        Fleet { rows, jobs }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The core contract: arbitrary fleets, both modes, identical reports.
    #[test]
    fn prop_incremental_matches_reference(fleet in arb_fleet()) {
        let spec = MachineSpec::paper_testbed();
        for mode in MODES {
            assert_identical(spec, &fleet, mode);
        }
    }

    /// The class-flipping adversarial mix — the work-conserving regime's
    /// whole-class re-key storm — stays bit-identical across the
    /// reference loop and both event cores, in both modes.
    #[test]
    fn prop_class_flipping_mix_stays_identical(fleet in arb_flipping_fleet()) {
        let spec = MachineSpec::paper_testbed();
        for mode in MODES {
            assert_identical(spec, &fleet, mode);
        }
    }

    /// Identical VMs under an equal split produce exactly simultaneous
    /// completions at every phase boundary — the event-batch path — and
    /// every VM must report the same schedule in both implementations.
    #[test]
    fn prop_simultaneous_completions_stay_identical(
        queries in prop::collection::vec(arb_demand(), 1..5),
        n in 2usize..17,
    ) {
        let spec = MachineSpec::paper_testbed();
        let fleet = Fleet {
            rows: AllocationMatrix::equal_split(n).unwrap().rows().copied().collect(),
            jobs: vec![VmJob::new(queries); n],
        };
        for mode in MODES {
            let out = assert_identical(spec, &fleet, mode);
            for (i, o) in out.iter().enumerate().skip(1) {
                assert_eq!(o, &out[0], "identical VM {i} diverged from VM 0 in mode {mode:?}");
            }
        }
    }

    /// Hostile CPU demands (NaN, infinities, negatives) anywhere in the
    /// stream yield the same typed error from both paths — never a panic,
    /// never a silently skipped phase.
    #[test]
    fn prop_hostile_demands_error_identically(
        fleet in arb_fleet(),
        vm_pick in 0usize..32,
        q_pick in 0usize..8,
        which in 0usize..4,
    ) {
        let mut fleet = fleet;
        let hostile = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -42.0][which];
        let vm = vm_pick % fleet.jobs.len();
        let queries = &mut fleet.jobs[vm].queries;
        queries.insert(q_pick % (queries.len() + 1), demand(hostile, 5, 0, 0));
        let alloc = AllocationMatrix::new(fleet.rows.clone()).unwrap();
        for mode in MODES {
            for schedule in [co_schedule, co_schedule_reference] {
                match schedule(MachineSpec::paper_testbed(), &alloc, &fleet.jobs, mode) {
                    Err(VmmError::InvalidSchedule { reason }) => {
                        assert!(reason.contains("cpu_cycles"), "unexpected error reason: {reason}");
                    }
                    other => panic!("hostile demand {hostile} must be a typed error, got {other:?}"),
                }
            }
            for core in CORES {
                match co_schedule_with_core(
                    MachineSpec::paper_testbed(), &alloc, &fleet.jobs, mode, core,
                ) {
                    Err(VmmError::InvalidSchedule { reason }) => {
                        assert!(reason.contains("cpu_cycles"), "unexpected error reason: {reason}");
                    }
                    other => panic!(
                        "hostile demand {hostile} must be a typed error from {core:?}, got {other:?}"
                    ),
                }
            }
        }
    }

    /// Demands too large for the microsecond clock are typed errors from
    /// both paths, in both modes.
    #[test]
    fn prop_clock_overflow_errors_identically(fleet in arb_fleet(), vm_pick in 0usize..32) {
        let mut fleet = fleet;
        let vm = vm_pick % fleet.jobs.len();
        fleet.jobs[vm].queries.push(demand(1e300, 0, 0, 0));
        let alloc = AllocationMatrix::new(fleet.rows.clone()).unwrap();
        for mode in MODES {
            for schedule in [co_schedule, co_schedule_reference] {
                let res = schedule(MachineSpec::paper_testbed(), &alloc, &fleet.jobs, mode);
                prop_assert!(
                    matches!(res, Err(VmmError::InvalidSchedule { .. })),
                    "1e300 cycles must be a typed error, got {:?}",
                    res
                );
            }
            for core in CORES {
                let res = co_schedule_with_core(
                    MachineSpec::paper_testbed(), &alloc, &fleet.jobs, mode, core,
                );
                prop_assert!(
                    matches!(res, Err(VmmError::InvalidSchedule { .. })),
                    "1e300 cycles must be a typed error from {:?}, got {:?}",
                    core,
                    res
                );
            }
        }
    }

    /// The incremental scheduler's work accounting is consistent: phase
    /// completions equal the fleet's total phase count, and capped-mode
    /// events touch exactly the completing VMs.
    #[test]
    fn prop_stats_are_consistent(fleet in arb_fleet()) {
        let spec = MachineSpec::paper_testbed();
        let alloc = AllocationMatrix::new(fleet.rows.clone()).unwrap();
        let (_, stats) =
            co_schedule_with_stats(spec, &alloc, &fleet.jobs, SchedMode::Capped).unwrap();
        prop_assert!(stats.phase_completions >= stats.events);
        prop_assert_eq!(
            stats.vms_touched,
            stats.phase_completions,
            "capped completions must touch only the completing VMs"
        );
        prop_assert!(stats.heap_peak <= fleet.jobs.len() + 1);
    }
}
