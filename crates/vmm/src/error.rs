//! Error type for the VMM simulator.

use std::error::Error;
use std::fmt;

/// Errors raised when constructing or validating virtualized configurations.
#[derive(Debug, Clone, PartialEq)]
pub enum VmmError {
    /// A share value was outside `[0, 1]` or not finite.
    InvalidShare {
        /// The offending value.
        value: f64,
    },
    /// The shares of one resource across all VMs exceed the whole machine.
    Oversubscribed {
        /// Which resource column is oversubscribed.
        resource: &'static str,
        /// The column sum that exceeded 1.
        total: f64,
    },
    /// An allocation matrix had no rows, or a row index was out of range.
    EmptyAllocation,
    /// A machine parameter was non-positive or otherwise nonsensical.
    InvalidMachine {
        /// Description of the invalid parameter.
        reason: String,
    },
    /// The co-scheduler was given inconsistent input.
    InvalidSchedule {
        /// Description of the inconsistency.
        reason: String,
    },
    /// A seconds value could not be represented as a simulated duration
    /// (negative, NaN, infinite, or beyond the microsecond counter).
    InvalidDuration {
        /// The offending value, in seconds.
        seconds: f64,
    },
}

impl fmt::Display for VmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmmError::InvalidShare { value } => {
                write!(f, "share must be a finite value in [0, 1], got {value}")
            }
            VmmError::Oversubscribed { resource, total } => write!(
                f,
                "allocation oversubscribes {resource}: shares sum to {total:.4} > 1"
            ),
            VmmError::EmptyAllocation => write!(f, "allocation matrix has no workloads"),
            VmmError::InvalidMachine { reason } => write!(f, "invalid machine spec: {reason}"),
            VmmError::InvalidSchedule { reason } => write!(f, "invalid schedule: {reason}"),
            VmmError::InvalidDuration { seconds } => write!(
                f,
                "{seconds} seconds is not representable as a simulated duration"
            ),
        }
    }
}

impl Error for VmmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = VmmError::InvalidShare { value: 1.5 };
        assert!(e.to_string().contains("1.5"));
        let e = VmmError::Oversubscribed {
            resource: "cpu",
            total: 1.25,
        };
        assert!(e.to_string().contains("cpu"));
        assert!(e.to_string().contains("1.25"));
    }
}
