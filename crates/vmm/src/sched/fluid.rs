//! Shared primitives of the fluid co-scheduler.
//!
//! Both scheduler implementations — the legacy whole-fleet scan loop
//! ([`super::co_schedule_reference`]) and the incremental event-driven
//! scheduler ([`super::co_schedule`]) — are built from the helpers in this
//! module, and the bit-identical-completions contract between them rests on
//! three rules every caller follows:
//!
//! 1. **Anchored integration.** A phase's progress is never accumulated by
//!    repeated subtraction. Each in-flight phase stores an *anchor*: the
//!    continuous-time instant (`anchor_us`, f64 microseconds) at which its
//!    remaining work (`anchor_remaining`) was last evaluated, plus the rate
//!    in force since then. Remaining work at any later instant, and the
//!    phase's projected completion instant, are single closed-form
//!    expressions over the anchor ([`ActivePhase::remaining_at`],
//!    [`ActivePhase::completion_us`]). The anchor moves ([`ActivePhase::
//!    reanchor`]) only when the rate actually changes (bitwise), so a lazy
//!    evaluator that skips untouched VMs computes *exactly* the same f64
//!    values as one that rescans everything every event. This is also the
//!    fix for the legacy work/clock quantization skew: the old loop
//!    advanced the clock by the microsecond-rounded step but decremented
//!    work by the raw `rate * dt`, letting work and time drift apart by up
//!    to a microsecond of work per event. With anchors, the clock is
//!    continuous f64 microseconds and is only rounded when a completion is
//!    *reported* as a [`SimTime`]; integrated work equals demand to f64
//!    precision regardless of stream length.
//!
//! 2. **Ordered share sums.** Work-conserving rates divide a VM's
//!    configured share by the total configured share of the VMs currently
//!    demanding the resource class. f64 addition is not associative, so
//!    both implementations compute that total with [`class_total`] over
//!    members in ascending VM index order.
//!
//! 3. **Unit-aware completion fuzz.** Re-anchoring can leave a residue of
//!    floating-point noise in `anchor_remaining`. The legacy loop absorbed
//!    this with an absolute `remaining <= 1e-6` threshold — wrong for
//!    phases measured in cycles (~1e9 units, where accumulated ulps exceed
//!    the threshold) and wrong for pages at very low rates (where 1e-6
//!    pages is *real, observable* work it silently dropped). The threshold
//!    is now relative to the phase's initial size
//!    ([`PHASE_DONE_REL_EPS`]): residue below one part in 10^12 of the
//!    phase is rounding noise and snaps to zero, anything larger is kept
//!    and scheduled.

use crate::{MachineSpec, ResourceDemand, ResourceVector, SimTime, VmmError};

use super::SchedMode;

/// Work within this fraction of a phase's *initial* size is treated as
/// floating-point residue rather than real remaining work. Relative, so it
/// scales correctly from page-count phases (~1e3 units) to cycle-count
/// phases (~1e9 units); at either scale the absorbed work is far below the
/// microsecond reporting resolution.
pub(super) const PHASE_DONE_REL_EPS: f64 = 1e-12;

/// Which resource a phase consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum PhaseKind {
    /// Sequential page reads.
    SeqRead,
    /// Random page reads.
    RandRead,
    /// CPU cycles.
    Cpu,
    /// Page write-back.
    Write,
}

/// The resource *class* a phase contends on. The credit scheduler shares
/// CPU and disk independently; all three disk-phase kinds (sequential,
/// random, write-back) draw from the same disk share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum ResClass {
    /// CPU time.
    Cpu,
    /// Disk time (sequential, random, and write-back phases).
    Disk,
}

/// Number of resource classes (for per-class arrays).
pub(super) const NUM_CLASSES: usize = 2;

impl ResClass {
    /// Dense index for per-class arrays.
    pub(super) fn index(self) -> usize {
        match self {
            ResClass::Cpu => 0,
            ResClass::Disk => 1,
        }
    }
}

impl PhaseKind {
    /// The class this phase kind contends on.
    pub(super) fn class(self) -> ResClass {
        match self {
            PhaseKind::Cpu => ResClass::Cpu,
            _ => ResClass::Disk,
        }
    }
}

/// A not-yet-started phase: its kind and total work in phase units
/// (pages or cycles).
#[derive(Debug, Clone, Copy)]
pub(super) struct PhaseSpec {
    pub(super) kind: PhaseKind,
    pub(super) size: f64,
}

/// Splits a query's demand into its deterministic phase sequence: reads,
/// then CPU, then write-back (the fluid model only cares about per-resource
/// totals, so the order is a convention).
pub(super) fn phases_of(demand: &ResourceDemand) -> Vec<PhaseSpec> {
    let mut out = Vec::with_capacity(4);
    if demand.seq_page_reads > 0 {
        out.push(PhaseSpec {
            kind: PhaseKind::SeqRead,
            size: demand.seq_page_reads as f64,
        });
    }
    if demand.random_page_reads > 0 {
        out.push(PhaseSpec {
            kind: PhaseKind::RandRead,
            size: demand.random_page_reads as f64,
        });
    }
    if demand.cpu_cycles > 0.0 {
        out.push(PhaseSpec {
            kind: PhaseKind::Cpu,
            size: demand.cpu_cycles,
        });
    }
    if demand.page_writes > 0 {
        out.push(PhaseSpec {
            kind: PhaseKind::Write,
            size: demand.page_writes as f64,
        });
    }
    out
}

/// An in-flight phase with its integration anchor (rule 1 above).
#[derive(Debug, Clone, Copy)]
pub(super) struct ActivePhase {
    pub(super) kind: PhaseKind,
    /// Total work of the phase, in phase units; fixed at activation.
    pub(super) initial: f64,
    /// Work remaining as of `anchor_us`.
    pub(super) anchor_remaining: f64,
    /// Continuous-time instant (f64 microseconds) the anchor was taken.
    pub(super) anchor_us: f64,
    /// Progress rate in force since the anchor, phase units per second.
    pub(super) rate: f64,
}

impl ActivePhase {
    /// Starts a phase at `now_us` running at `rate`.
    pub(super) fn activate(spec: PhaseSpec, now_us: f64, rate: f64) -> ActivePhase {
        ActivePhase {
            kind: spec.kind,
            initial: spec.size,
            anchor_remaining: spec.size,
            anchor_us: now_us,
            rate,
        }
    }

    /// Work remaining at instant `t_us` (must not precede the anchor).
    pub(super) fn remaining_at(&self, t_us: f64) -> f64 {
        self.anchor_remaining - (t_us - self.anchor_us) * 1e-6 * self.rate
    }

    /// Projected completion instant, in continuous f64 microseconds.
    pub(super) fn completion_us(&self) -> f64 {
        self.anchor_us + (self.anchor_remaining / self.rate) * 1e6
    }

    /// Moves the anchor to `now_us` and switches to `new_rate`, integrating
    /// the work done at the old rate. Residue within
    /// [`PHASE_DONE_REL_EPS`] of the phase's initial size is rounding
    /// noise and snaps to zero, so the phase completes at the very next
    /// event without dropping or double-counting observable work.
    pub(super) fn reanchor(&mut self, now_us: f64, new_rate: f64) {
        let left = self.remaining_at(now_us);
        self.anchor_remaining = if left <= self.initial * PHASE_DONE_REL_EPS {
            0.0
        } else {
            left
        };
        self.anchor_us = now_us;
        self.rate = new_rate;
    }
}

/// Checks a projected event instant is representable on the microsecond
/// virtual clock (finite and within `u64` microseconds), returning the
/// scheduler's typed error otherwise.
pub(super) fn checked_event_us(completion_us: f64) -> Result<f64, VmmError> {
    if completion_us.is_finite() && completion_us <= u64::MAX as f64 {
        Ok(completion_us)
    } else {
        Err(VmmError::InvalidSchedule {
            reason: format!(
                "phase completion at {completion_us} microseconds is not representable \
                 on the virtual clock"
            ),
        })
    }
}

/// Rounds a continuous event instant to the reported microsecond clock.
/// Callers must have passed the instant through [`checked_event_us`].
pub(super) fn report_instant(event_us: f64) -> SimTime {
    SimTime::from_micros(event_us.round() as u64)
}

/// The progress rate (phase units per second) of a phase of `kind` run by a
/// VM holding `shares`, given the class's total demanded share
/// (work-conserving mode only). Pure: both implementations call this with
/// identical inputs and obtain bitwise-identical rates.
pub(super) fn rate_of(
    spec: &MachineSpec,
    mode: SchedMode,
    kind: PhaseKind,
    shares: &ResourceVector,
    class_total: f64,
) -> f64 {
    let configured = if kind == PhaseKind::Cpu {
        shares.cpu().fraction()
    } else {
        shares.disk().fraction()
    };
    let eff_share = match mode {
        SchedMode::Capped => configured,
        SchedMode::WorkConserving => {
            if class_total > 0.0 {
                configured / class_total
            } else {
                configured
            }
        }
    };
    match kind {
        PhaseKind::Cpu => spec.total_cycles_per_sec() * eff_share,
        PhaseKind::SeqRead | PhaseKind::Write => {
            eff_share * spec.disk_seq_bytes_per_sec / spec.page_size as f64
        }
        PhaseKind::RandRead => eff_share * spec.disk_random_iops,
    }
}

/// Total configured share of `class` over `members` — **which must be
/// supplied in ascending VM index order** (rule 2 above).
pub(super) fn class_total(
    members: impl Iterator<Item = usize>,
    shares: &[ResourceVector],
    class: ResClass,
) -> f64 {
    members.fold(0.0, |acc, i| {
        acc + match class {
            ResClass::Cpu => shares[i].cpu().fraction(),
            ResClass::Disk => shares[i].disk().fraction(),
        }
    })
}

/// Per-VM execution state: the pending queries, the in-flight query's
/// remaining phases, and the completions recorded so far.
#[derive(Debug)]
pub(super) struct VmState {
    /// Queries not yet started, in reverse order (pop from the back).
    pending: Vec<ResourceDemand>,
    /// Phases of the in-flight query after `active`, in reverse order.
    phase_queue: Vec<PhaseSpec>,
    /// The anchored in-flight phase, if any.
    pub(super) active: Option<ActivePhase>,
    /// Instant at which each query finished, in order.
    pub(super) completions: Vec<SimTime>,
    /// True once every query has completed.
    pub(super) done: bool,
}

impl VmState {
    /// Builds the state for one job and loads its first query. Leading
    /// zero-demand queries complete instantly at `t = 0`; the first real
    /// phase (if any) is left un-anchored for the scheduler to activate.
    pub(super) fn new(queries: &[ResourceDemand]) -> VmState {
        let mut pending: Vec<ResourceDemand> = queries.to_vec();
        pending.reverse();
        let mut state = VmState {
            pending,
            phase_queue: Vec::new(),
            active: None,
            completions: Vec::new(),
            done: false,
        };
        state.advance_query(SimTime::ZERO);
        state
    }

    /// Loads the next query (recording completions for any queries whose
    /// demand is empty), marking the VM done when the job is exhausted.
    fn advance_query(&mut self, now: SimTime) {
        while self.phase_queue.is_empty() {
            match self.pending.pop() {
                Some(demand) => {
                    let mut phases = phases_of(&demand);
                    phases.reverse();
                    if phases.is_empty() {
                        // Zero-demand query completes instantly.
                        self.completions.push(now);
                    }
                    self.phase_queue = phases;
                }
                None => {
                    self.done = true;
                    return;
                }
            }
        }
    }

    /// The phase spec the scheduler should activate next, if the VM is not
    /// yet running one. `None` when the VM is done.
    pub(super) fn next_spec(&mut self) -> Option<PhaseSpec> {
        debug_assert!(self.active.is_none());
        self.phase_queue.pop()
    }

    /// Retires the active phase at reported instant `t`, recording a query
    /// completion when it was the query's last phase, and returns the next
    /// phase spec to activate (`None` when the VM is done).
    pub(super) fn complete_active(&mut self, t: SimTime) -> Option<PhaseSpec> {
        debug_assert!(self.active.is_some());
        self.active = None;
        if let Some(spec) = self.phase_queue.pop() {
            return Some(spec);
        }
        self.completions.push(t);
        self.advance_query(t);
        self.phase_queue.pop()
    }
}

/// Total number of phase activations a job set can produce — the hard event
/// budget of the reference loop (every phase completes exactly once).
pub(super) fn total_phases(jobs: &[super::VmJob]) -> usize {
    jobs.iter()
        .flat_map(|j| j.queries.iter())
        .map(|q| phases_of(q).len().max(1))
        .sum::<usize>()
        + jobs.len()
        + 1
}
