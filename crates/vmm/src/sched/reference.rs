//! The reference fluid loop: a whole-fleet rescan per event.
//!
//! This is the legacy `co_schedule` structure — every event recomputes
//! every VM's rate and projected completion, O(V) work per event and
//! O(V · P) overall — kept as the differential-testing baseline for the
//! incremental scheduler. It is *not* the byte-for-byte legacy code: the
//! two correctness fixes documented in [`super::fluid`] (anchored
//! integration instead of quantized work decrements, and the unit-aware
//! completion threshold) apply here too, because the incremental scheduler
//! is pinned bit-identical to *this* loop and the old behaviour was wrong.

use crate::{MachineSpec, ResourceVector, VmmError};

use super::fluid::{
    checked_event_us, class_total, rate_of, report_instant, total_phases, ActivePhase, PhaseSpec,
    ResClass, VmState, NUM_CLASSES,
};
use super::{SchedMode, VmJob, VmOutcome};

/// Runs the rescan loop. Inputs are pre-validated by the public wrappers.
pub(super) fn run(
    spec: &MachineSpec,
    mode: SchedMode,
    shares: &[ResourceVector],
    jobs: &[VmJob],
) -> Result<Vec<VmOutcome>, VmmError> {
    let n = jobs.len();
    let mut states: Vec<VmState> = jobs.iter().map(|j| VmState::new(&j.queries)).collect();
    // Phases awaiting a rate assignment (initially each VM's first phase).
    let mut to_activate: Vec<Option<PhaseSpec>> = states
        .iter_mut()
        .map(|s| if s.done { None } else { s.next_spec() })
        .collect();
    let mut now_us: f64 = 0.0;
    sync_rates(spec, mode, shares, &mut states, &mut to_activate, now_us)?;

    // Hard bound on events: every phase of every query completes exactly
    // once (zero-length cascade steps complete a phase too).
    let budget = total_phases(jobs);
    for _ in 0..budget {
        if states.iter().all(|s| s.done) {
            break;
        }

        // The earliest projected phase completion across the fleet.
        let mut t_next = f64::INFINITY;
        for s in &states {
            if let Some(p) = &s.active {
                let c = p.completion_us();
                if c < t_next {
                    t_next = c;
                }
            }
        }
        if !t_next.is_finite() {
            return Err(VmmError::InvalidSchedule {
                reason: "no VM can make progress".to_string(),
            });
        }
        debug_assert!(t_next >= now_us, "events must be causally ordered");
        now_us = t_next;
        let now = report_instant(now_us);

        // Complete every phase projected at exactly this instant, in
        // ascending VM order (simultaneous completions form one batch).
        for i in 0..n {
            let completes = states[i]
                .active
                .as_ref()
                .is_some_and(|p| p.completion_us() == t_next);
            if completes {
                to_activate[i] = states[i].complete_active(now);
            }
        }

        sync_rates(spec, mode, shares, &mut states, &mut to_activate, now_us)?;
    }

    if !states.iter().all(|s| s.done) {
        return Err(VmmError::InvalidSchedule {
            reason: "simulation failed to converge (event budget exhausted)".to_string(),
        });
    }

    Ok(super::collect_outcomes(states))
}

/// Recomputes every VM's rate from the current class memberships,
/// activating pending phases and re-anchoring any in-flight phase whose
/// rate actually changed (bitwise). The incremental scheduler performs the
/// identical per-VM computations, but only for VMs it can prove affected.
fn sync_rates(
    spec: &MachineSpec,
    mode: SchedMode,
    shares: &[ResourceVector],
    states: &mut [VmState],
    to_activate: &mut [Option<PhaseSpec>],
    now_us: f64,
) -> Result<(), VmmError> {
    let n = states.len();
    // The phase kind each VM currently demands: its in-flight phase, or
    // the phase awaiting activation (mirrors the legacy loop allocating a
    // per-event rates vector).
    let kinds: Vec<_> = (0..n)
        .map(|i| {
            states[i]
                .active
                .as_ref()
                .map(|p| p.kind)
                .or_else(|| to_activate[i].map(|s| s.kind))
        })
        .collect();

    // Per-class demand totals, summed in ascending VM index order.
    let mut totals = [0.0f64; NUM_CLASSES];
    for class in [ResClass::Cpu, ResClass::Disk] {
        let members = (0..n).filter(|&i| kinds[i].map(|k| k.class()) == Some(class));
        totals[class.index()] = class_total(members, shares, class);
    }

    for i in 0..n {
        let Some(kind) = kinds[i] else {
            continue;
        };
        let rate = rate_of(spec, mode, kind, &shares[i], totals[kind.class().index()]);
        if !(rate.is_finite() && rate > 0.0) {
            return Err(VmmError::InvalidSchedule {
                reason: "no VM can make progress".to_string(),
            });
        }
        if let Some(phase_spec) = to_activate[i].take() {
            let phase = ActivePhase::activate(phase_spec, now_us, rate);
            checked_event_us(phase.completion_us())?;
            states[i].active = Some(phase);
        } else if let Some(phase) = states[i].active.as_mut() {
            if rate != phase.rate {
                phase.reanchor(now_us, rate);
                checked_event_us(phase.completion_us())?;
            }
        }
    }
    Ok(())
}
