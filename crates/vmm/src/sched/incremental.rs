//! The incremental event-driven co-scheduler.
//!
//! Instead of rescanning every VM at every event (the reference loop's
//! O(V) per event), this scheduler maintains:
//!
//! * **per-class active sets** (sorted `Vec<usize>`, ascending VM index)
//!   and their cached demand totals — only in work-conserving mode, and
//!   recomputed only when a class's membership actually changes. In
//!   capped mode rates depend on nothing but the VM's own configured
//!   share, so no set or total is maintained at all;
//! * an **event structure** keyed by each VM's projected phase-completion
//!   instant (the f64 microsecond value from
//!   [`super::fluid::ActivePhase::completion_us`], compared by IEEE bit
//!   pattern, which orders non-negative floats numerically). The loop is
//!   generic over the structure ([`EventCore`]): capped mode uses the
//!   binary heap with lazy invalidation ([`super::event_core::HeapCore`]),
//!   work-conserving mode the calendar queue
//!   ([`super::calendar::CalendarCore`]) whose O(1) re-keys survive the
//!   adversarial class-flipping regime — see [`super::SchedCore`] for the
//!   mode-based selection and the override hook.
//!
//! Per event it touches only the VMs whose effective rate can have
//! changed: in [`SchedMode::Capped`] a completion perturbs nobody else,
//! so an event is O(log V); in [`SchedMode::WorkConserving`] only the
//! members of the resource classes whose membership changed are
//! re-anchored. Consecutive same-VM phase integrations are batched by
//! construction — a VM's work is integrated in closed form from its
//! anchor, never stepped through other VMs' events.
//!
//! **Event-structure invariants** (checked by `debug_assert`s and the
//! differential suite):
//!
//! 1. Every VM with an in-flight phase has exactly one live entry; a
//!    re-key replaces it (heap: generation bump, calendar: handle-based
//!    removal).
//! 2. Keys never decrease: a pushed key is `>=` the instant of the event
//!    being processed (phases project completions forward from their
//!    anchor).
//! 3. Entries with equal keys pop in ascending VM order, which is exactly
//!    the order the reference loop completes a simultaneous batch in.
//!
//! The determinism contract — completions bit-identical to
//! [`super::co_schedule_reference`] *and across event cores* — holds
//! because every f64 this module produces (rates, class totals, anchors,
//! projected completions) is computed by the same [`super::fluid`]
//! primitive over the same operands in the same order regardless of the
//! core; the cores differ only in how they store and surface the
//! identical event sequence.

use crate::{MachineSpec, ResourceVector, VmmError};

use super::calendar::CalendarCore;
use super::event_core::{EventCore, HeapCore};
use super::fluid::{
    checked_event_us, class_total, rate_of, report_instant, PhaseSpec, ResClass, VmState,
    NUM_CLASSES,
};
use super::{SchedCore, SchedMode, VmJob, VmOutcome};

use dbvirt_telemetry as telemetry;

// Scheduler telemetry (no-ops until `dbvirt_telemetry::enable()`).
static TM_EVENTS: telemetry::Counter = telemetry::Counter::new("sched.events");
static TM_PHASES: telemetry::Counter = telemetry::Counter::new("sched.phase_completions");
static TM_TOUCHED: telemetry::Counter = telemetry::Counter::new("sched.vms_touched");
static TM_TOUCHED_HIST: telemetry::Histogram =
    telemetry::Histogram::new("sched.vms_touched_per_event");
static TM_HEAP_HIST: telemetry::Histogram = telemetry::Histogram::new("sched.heap_size");
static TM_HEAP_PEAK: telemetry::Gauge = telemetry::Gauge::new("sched.heap_peak");

/// Work counters of one incremental [`super::co_schedule`] run, exposed by
/// [`super::co_schedule_with_stats`] so benchmarks can report event counts
/// and per-event locality without scraping telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Number of event batches processed (distinct completion instants).
    pub events: u64,
    /// Phases retired across the run (equals the fleet's total phase count).
    pub phase_completions: u64,
    /// VMs whose state was touched, summed over events (completions +
    /// activations + re-anchors). `vms_touched / events` is the per-event
    /// locality the rewrite exists to minimise.
    pub vms_touched: u64,
    /// Entries pushed into the event structure (named for the original
    /// heap; the calendar core counts its inserts here).
    pub heap_pushes: u64,
    /// Largest event-structure population observed (stale entries included
    /// for the heap core; the calendar core has none).
    pub heap_peak: usize,
}

impl SchedStats {
    /// Accumulates another run's counters (peak is a max, the rest sum) —
    /// how the multi-machine driver folds per-machine stats into a fleet
    /// total.
    pub fn absorb(&mut self, other: &SchedStats) {
        self.events += other.events;
        self.phase_completions += other.phase_completions;
        self.vms_touched += other.vms_touched;
        self.heap_pushes += other.heap_pushes;
        self.heap_peak = self.heap_peak.max(other.heap_peak);
    }
}

/// Inserts `i` into a sorted ascending member list.
fn insert_member(set: &mut Vec<usize>, i: usize) {
    if let Err(pos) = set.binary_search(&i) {
        set.insert(pos, i);
    }
}

/// Removes `i` from a sorted ascending member list.
fn remove_member(set: &mut Vec<usize>, i: usize) {
    if let Ok(pos) = set.binary_search(&i) {
        set.remove(pos);
    }
}

/// Runs the incremental scheduler with the given event core. Inputs are
/// pre-validated by the public wrappers.
pub(super) fn run(
    spec: &MachineSpec,
    mode: SchedMode,
    shares: &[ResourceVector],
    jobs: &[VmJob],
    core: SchedCore,
) -> Result<(Vec<VmOutcome>, SchedStats), VmmError> {
    match core {
        SchedCore::Heap => run_loop::<HeapCore>(spec, mode, shares, jobs),
        SchedCore::Calendar => run_loop::<CalendarCore>(spec, mode, shares, jobs),
    }
}

/// The event loop, monomorphized per core. Every fluid computation — and
/// therefore every completion — is independent of `C` by construction.
fn run_loop<C: EventCore>(
    spec: &MachineSpec,
    mode: SchedMode,
    shares: &[ResourceVector],
    jobs: &[VmJob],
) -> Result<(Vec<VmOutcome>, SchedStats), VmmError> {
    let n = jobs.len();
    let wc = mode == SchedMode::WorkConserving;
    let mut span = telemetry::span("sched.co_schedule");

    let mut states: Vec<VmState> = jobs.iter().map(|j| VmState::new(&j.queries)).collect();
    // Active sets and totals are pure work-conserving machinery: capped
    // rates never change after activation, so maintaining them would be
    // the O(V)-per-event work this scheduler exists to avoid.
    let mut members: [Vec<usize>; NUM_CLASSES] = [Vec::new(), Vec::new()];
    let mut totals = [0.0f64; NUM_CLASSES];
    let mut events = C::new(n);
    let mut stats = SchedStats::default();

    // Initial activations: seed memberships, then totals, then rates — the
    // same order the reference loop's first `sync_rates` pass uses.
    let mut to_activate: Vec<Option<PhaseSpec>> = states
        .iter_mut()
        .map(|s| if s.done { None } else { s.next_spec() })
        .collect();
    if wc {
        // Ascending iteration keeps the member lists sorted by construction.
        for (i, spec_p) in to_activate.iter().enumerate() {
            if let Some(p) = spec_p {
                members[p.kind.class().index()].push(i);
            }
        }
        for class in [ResClass::Cpu, ResClass::Disk] {
            totals[class.index()] =
                class_total(members[class.index()].iter().copied(), shares, class);
        }
    }
    for i in 0..n {
        if let Some(phase_spec) = to_activate[i].take() {
            activate(spec, mode, shares, &mut states, &totals, &mut events, i, phase_spec, 0.0)?;
        }
    }

    let mut batch: Vec<usize> = Vec::with_capacity(n);
    while let Some(bits) = {
        batch.clear();
        events.pop_min_batch(&mut batch)
    } {
        let t_next = f64::from_bits(bits);
        let now = report_instant(t_next);

        // 1. Retire completed phases; in work-conserving mode also track
        //    which class memberships changed.
        let mut changed = [false; NUM_CLASSES];
        for &i in batch.iter() {
            let old_class = if wc {
                states[i]
                    .active
                    .as_ref()
                    .expect("a live event entry implies an in-flight phase")
                    .kind
                    .class()
            } else {
                ResClass::Cpu // unused
            };
            let next = states[i].complete_active(now);
            stats.phase_completions += 1;
            match next {
                Some(phase_spec) => {
                    if wc {
                        let new_class = phase_spec.kind.class();
                        if new_class != old_class {
                            remove_member(&mut members[old_class.index()], i);
                            insert_member(&mut members[new_class.index()], i);
                            changed[old_class.index()] = true;
                            changed[new_class.index()] = true;
                        }
                    }
                    to_activate[i] = Some(phase_spec);
                }
                None => {
                    if wc {
                        remove_member(&mut members[old_class.index()], i);
                        changed[old_class.index()] = true;
                    }
                }
            }
        }

        // 2./3. Work-conserving mode only: refresh the demand totals of
        //    classes whose membership changed (a fresh ascending-order
        //    sum, never an incremental +=/-=, so the value is bit-identical
        //    to the reference's rescan), then re-anchor and re-key the
        //    surviving members whose rate actually changed (bitwise).
        //    Capped rates depend only on configured shares: nobody else is
        //    ever touched.
        let mut touched = batch.len() as u64;
        if wc {
            for class in [ResClass::Cpu, ResClass::Disk] {
                if !changed[class.index()] {
                    continue;
                }
                totals[class.index()] =
                    class_total(members[class.index()].iter().copied(), shares, class);
                let total = totals[class.index()];
                for idx in 0..members[class.index()].len() {
                    let i = members[class.index()][idx];
                    if to_activate[i].is_some() {
                        continue; // fresh phase, activated below with the new totals
                    }
                    let phase = states[i]
                        .active
                        .as_mut()
                        .expect("class members without a pending phase are in flight");
                    let rate = rate_of(spec, mode, phase.kind, &shares[i], total);
                    if rate != phase.rate {
                        phase.reanchor(t_next, rate);
                        let key = checked_event_us(phase.completion_us())?;
                        debug_assert!(key >= t_next, "re-keyed events must not move backwards");
                        events.rekey(i, key.to_bits());
                        touched += 1;
                    }
                }
            }
        }

        // 4. Activate the batch VMs' next phases under the new totals.
        for &i in batch.iter() {
            if let Some(phase_spec) = to_activate[i].take() {
                activate(
                    spec,
                    mode,
                    shares,
                    &mut states,
                    &totals,
                    &mut events,
                    i,
                    phase_spec,
                    t_next,
                )?;
            }
        }

        stats.events += 1;
        stats.vms_touched += touched;
        TM_TOUCHED_HIST.record_micros(touched);
        TM_HEAP_HIST.record_micros(events.len() as u64);
    }

    if !states.iter().all(|s| s.done) {
        return Err(VmmError::InvalidSchedule {
            reason: "no VM can make progress".to_string(),
        });
    }
    stats.heap_pushes = events.pushes();
    stats.heap_peak = events.peak();

    TM_EVENTS.add(stats.events);
    TM_PHASES.add(stats.phase_completions);
    TM_TOUCHED.add(stats.vms_touched);
    TM_HEAP_PEAK.set(stats.heap_peak as f64);
    span.set_attr("vms", n);
    span.set_attr("events", stats.events);
    span.set_attr("phase_completions", stats.phase_completions);
    span.set_attr("vms_touched", stats.vms_touched);
    span.set_attr("heap_peak", stats.heap_peak);

    Ok((super::collect_outcomes(states), stats))
}

/// Anchors a fresh phase for VM `i` at `now_us` under the current totals
/// and pushes its completion event. Shared by setup and the event loop.
#[allow(clippy::too_many_arguments)]
fn activate<C: EventCore>(
    spec: &MachineSpec,
    mode: SchedMode,
    shares: &[ResourceVector],
    states: &mut [VmState],
    totals: &[f64; NUM_CLASSES],
    events: &mut C,
    i: usize,
    phase_spec: PhaseSpec,
    now_us: f64,
) -> Result<(), VmmError> {
    let rate = rate_of(
        spec,
        mode,
        phase_spec.kind,
        &shares[i],
        totals[phase_spec.kind.class().index()],
    );
    if !(rate.is_finite() && rate > 0.0) {
        return Err(VmmError::InvalidSchedule {
            reason: "no VM can make progress".to_string(),
        });
    }
    let phase = super::fluid::ActivePhase::activate(phase_spec, now_us, rate);
    let key = checked_event_us(phase.completion_us())?;
    debug_assert!(key >= now_us, "activations must not project into the past");
    states[i].active = Some(phase);
    events.insert(i, key.to_bits());
    Ok(())
}
