//! Multi-machine driver: one `co_schedule` per machine, in parallel.
//!
//! A deployed fleet placement is a set of *independent* single-machine
//! co-schedules — VMs only contend with co-residents of their own
//! machine, never across machines. That independence is the whole
//! parallelism story: each machine's simulation is a pure function of its
//! own `(spec, allocation, jobs, mode)`, so machines can run on any
//! number of worker threads and the result is **bit-identical at every
//! parallelism setting** (the same contract as the search evaluator of
//! PR 1 and the fleet pre-warm of PR 8). Workers claim machines from an
//! atomic counter and write each result into that machine's dedicated
//! slot; the reduction then reads the slots in ascending machine index,
//! so neither scheduling order nor thread count can reorder anything.
//! Errors are deterministic the same way: the error surfaced is always
//! the one from the lowest-indexed failing machine.
//!
//! The layer above (`dbvirt-fleet`'s `sim` module) builds the
//! [`MachineSim`] inputs from a placement and folds the per-machine
//! outcomes into fleet totals.

use crate::{AllocationMatrix, MachineSpec, VmmError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use super::{co_schedule_with_stats, SchedMode, SchedStats, VmJob, VmOutcome};

use dbvirt_telemetry as telemetry;

/// Machines simulated by fleet drivers.
static TM_MACHINES: telemetry::Counter = telemetry::Counter::new("sched.fleet_machines");
/// VMs simulated by fleet drivers.
static TM_FLEET_VMS: telemetry::Counter = telemetry::Counter::new("sched.fleet_vms");

/// One machine's simulation input: its hardware, the per-resident share
/// allocation (row `i` = resident `i`), and each resident's job.
#[derive(Debug, Clone)]
pub struct MachineSim {
    /// The machine's hardware description.
    pub spec: MachineSpec,
    /// Share allocation across the machine's residents.
    pub allocation: AllocationMatrix,
    /// One job per resident, aligned with the allocation rows.
    pub jobs: Vec<VmJob>,
}

/// One machine's simulation output: per-resident outcomes (aligned with
/// the input jobs) plus the scheduler's work counters.
#[derive(Debug, Clone)]
pub struct MachineRun {
    /// Per-resident completion reports, in input order.
    pub outcomes: Vec<VmOutcome>,
    /// Event-loop work counters for this machine.
    pub stats: SchedStats,
}

/// Simulates every machine of a deployed fleet, returning per-machine
/// runs in machine-index order.
///
/// `parallelism` follows the workspace convention: `1` serial (inline on
/// the caller's thread), `0` one worker per core, `n` exactly `n`
/// workers. Results and errors are independent of the setting — see the
/// module docs.
pub fn co_schedule_fleet(
    machines: &[MachineSim],
    mode: SchedMode,
    parallelism: usize,
) -> Result<Vec<MachineRun>, VmmError> {
    let mut span = telemetry::span("sched.fleet");
    let total_vms: usize = machines.iter().map(|m| m.jobs.len()).sum();
    span.set_attr("machines", machines.len());
    span.set_attr("vms", total_vms);
    TM_MACHINES.add(machines.len() as u64);
    TM_FLEET_VMS.add(total_vms as u64);

    let workers = match parallelism {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        p => p,
    }
    .min(machines.len().max(1));
    span.set_attr("workers", workers);

    let run_machine = |m: &MachineSim| -> Result<MachineRun, VmmError> {
        let (outcomes, stats) = co_schedule_with_stats(m.spec, &m.allocation, &m.jobs, mode)?;
        Ok(MachineRun { outcomes, stats })
    };

    let mut slots: Vec<Option<Result<MachineRun, VmmError>>> = Vec::new();
    if workers <= 1 {
        for m in machines {
            slots.push(Some(run_machine(m)));
        }
    } else {
        let cells: Vec<Mutex<Option<Result<MachineRun, VmmError>>>> =
            machines.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let parent = span.id();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let _w = telemetry::span_with_parent("sched.fleet_worker", parent);
                    loop {
                        let at = next.fetch_add(1, Ordering::Relaxed);
                        let Some(m) = machines.get(at) else { break };
                        *cells[at].lock().unwrap() = Some(run_machine(m));
                    }
                });
            }
        });
        slots = cells
            .into_iter()
            .map(|c| c.into_inner().unwrap())
            .collect();
    }

    // Deterministic reduction: read slots in ascending machine index, so
    // the surfaced error (if any) is always the lowest-indexed failure.
    let mut runs = Vec::with_capacity(machines.len());
    for slot in slots {
        runs.push(slot.expect("every claimed machine writes its slot")?);
    }
    Ok(runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ResourceDemand, ResourceVector};

    fn demand(cpu: f64, seq: u64) -> ResourceDemand {
        ResourceDemand {
            cpu_cycles: cpu,
            seq_page_reads: seq,
            random_page_reads: 0,
            page_writes: 0,
        }
    }

    fn mixed_fleet(machines: usize, vms_per: usize) -> Vec<MachineSim> {
        let spec = MachineSpec::paper_testbed();
        (0..machines)
            .map(|m| {
                let allocation = AllocationMatrix::equal_split(vms_per).unwrap();
                let jobs = (0..vms_per)
                    .map(|v| {
                        VmJob::new(vec![
                            demand(1e9 + (m * vms_per + v) as f64 * 3e7, 0),
                            demand(0.0, 200 + v as u64 * 17),
                        ])
                    })
                    .collect();
                MachineSim {
                    spec,
                    allocation,
                    jobs,
                }
            })
            .collect()
    }

    #[test]
    fn serial_and_parallel_runs_are_bit_identical() {
        let machines = mixed_fleet(7, 4);
        for mode in [SchedMode::Capped, SchedMode::WorkConserving] {
            let serial = co_schedule_fleet(&machines, mode, 1).unwrap();
            for workers in [0, 2, 5, 16] {
                let par = co_schedule_fleet(&machines, mode, workers).unwrap();
                assert_eq!(par.len(), serial.len());
                for (a, b) in par.iter().zip(&serial) {
                    assert_eq!(a.outcomes, b.outcomes, "workers={workers} diverged");
                    assert_eq!(a.stats, b.stats);
                }
            }
        }
    }

    #[test]
    fn machines_are_independent_of_fleet_context() {
        // A machine simulated inside a fleet reports exactly what it
        // reports alone.
        let machines = mixed_fleet(3, 2);
        let fleet = co_schedule_fleet(&machines, SchedMode::WorkConserving, 0).unwrap();
        for (m, run) in machines.iter().zip(&fleet) {
            let solo =
                co_schedule_with_stats(m.spec, &m.allocation, &m.jobs, SchedMode::WorkConserving)
                    .unwrap();
            assert_eq!(run.outcomes, solo.0);
        }
    }

    #[test]
    fn lowest_indexed_error_wins_at_any_parallelism() {
        let mut machines = mixed_fleet(6, 2);
        // Machines 2 and 4 both carry hostile demands; the surfaced error
        // must always be machine 2's.
        machines[2].jobs[0].queries[0].cpu_cycles = f64::NAN;
        machines[4].jobs[1].queries[0].cpu_cycles = -1.0;
        let mut reasons = Vec::new();
        for workers in [1, 0, 3] {
            let err = co_schedule_fleet(&machines, SchedMode::Capped, workers).unwrap_err();
            match err {
                VmmError::InvalidSchedule { reason } => reasons.push(reason),
                other => panic!("expected InvalidSchedule, got {other:?}"),
            }
        }
        assert!(reasons.iter().all(|r| r == &reasons[0]), "{reasons:?}");
        assert!(reasons[0].contains("VM 0 query 0"), "{}", reasons[0]);
    }

    #[test]
    fn empty_fleet_is_a_valid_noop() {
        let runs = co_schedule_fleet(&[], SchedMode::Capped, 0).unwrap();
        assert!(runs.is_empty());
    }
}
