//! Pluggable event structures for the incremental scheduler.
//!
//! The incremental loop in [`super::incremental`] is generic over the
//! structure that holds pending phase-completion events. Two cores
//! implement the contract:
//!
//! * [`HeapCore`] — the original binary min-heap with lazy invalidation
//!   via per-VM generation counters. O(log V) push/pop; stale entries
//!   accumulate until they reach the top. Ideal for capped mode, where a
//!   completion perturbs nobody and the heap never sees a re-key.
//! * [`super::calendar::CalendarCore`] — a calendar queue with per-VM
//!   entry handles: O(1) insert, O(1) *true* removal (no stale entries),
//!   monotone bucket-walking dequeue. Built for the work-conserving
//!   regime, where nearly every event re-keys every member of the
//!   changed resource classes and lazy invalidation degenerates into a
//!   heap full of corpses.
//!
//! The **contract** every core must honour, because batch order is what
//! makes completions bit-identical to the reference loop:
//!
//! 1. At most one *live* entry per VM; [`EventCore::insert`] requires the
//!    VM has none, [`EventCore::rekey`] replaces the existing one.
//! 2. [`EventCore::pop_min_batch`] returns the minimal key (compared as
//!    IEEE bits, which orders the non-negative completion instants
//!    numerically) and appends **every** VM whose live key is bit-equal
//!    to it, in **ascending VM order**, consuming those entries.
//! 3. Keys never decrease: a key passed to `insert`/`rekey` is `>=` the
//!    last key returned by `pop_min_batch` (the scheduler projects
//!    completions forward from the event being processed).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The event-structure contract of the incremental scheduler (see the
/// module docs for the three rules).
pub(super) trait EventCore {
    /// An empty core for `n` VMs.
    fn new(n: usize) -> Self;
    /// Adds a completion event for `vm`, which must have no live entry.
    fn insert(&mut self, vm: usize, key_bits: u64);
    /// Replaces `vm`'s live entry with a new key.
    fn rekey(&mut self, vm: usize, key_bits: u64);
    /// Pops the minimal key and appends every VM whose live key is
    /// bit-equal, in ascending VM order. Returns the key bits, or `None`
    /// when no live entries remain.
    fn pop_min_batch(&mut self, batch: &mut Vec<usize>) -> Option<u64>;
    /// Entries pushed over the core's lifetime (the `heap_pushes` stat).
    fn pushes(&self) -> u64;
    /// Peak entry population (stale entries included for the heap).
    fn peak(&self) -> usize;
    /// Current entry population (stale entries included for the heap).
    fn len(&self) -> usize;
}

/// One heap entry: (projected completion instant as IEEE bits, VM index,
/// generation). Wrapped in `Reverse` for a min-heap.
type Event = Reverse<(u64, usize, u64)>;

/// The original binary-heap event core with lazy invalidation: a re-key
/// bumps the VM's generation and pushes a fresh entry; superseded entries
/// stay in the heap and are discarded when popped.
pub(super) struct HeapCore {
    heap: BinaryHeap<Event>,
    gens: Vec<u64>,
    pushes: u64,
    peak: usize,
}

impl EventCore for HeapCore {
    fn new(n: usize) -> HeapCore {
        HeapCore {
            heap: BinaryHeap::with_capacity(n + 1),
            gens: vec![0; n],
            pushes: 0,
            peak: 0,
        }
    }

    fn insert(&mut self, vm: usize, key_bits: u64) {
        self.heap.push(Reverse((key_bits, vm, self.gens[vm])));
        self.pushes += 1;
        self.peak = self.peak.max(self.heap.len());
    }

    fn rekey(&mut self, vm: usize, key_bits: u64) {
        self.gens[vm] += 1; // invalidate the live entry
        self.insert(vm, key_bits);
    }

    fn pop_min_batch(&mut self, batch: &mut Vec<usize>) -> Option<u64> {
        loop {
            let Reverse((bits, vm, gen)) = self.heap.pop()?;
            if gen != self.gens[vm] {
                continue; // stale key, superseded by a re-key
            }
            batch.push(vm);
            self.gens[vm] += 1; // consume: later re-activations get a fresh gen
            // Gather the whole simultaneous batch: every live entry whose
            // key is bit-equal to the minimum. Equal keys pop in ascending
            // VM order (the heap tuple is `(key bits, vm, generation)`).
            while let Some(&Reverse((b2, v2, g2))) = self.heap.peek() {
                if b2 != bits {
                    break;
                }
                self.heap.pop();
                if g2 == self.gens[v2] {
                    batch.push(v2);
                    self.gens[v2] += 1;
                }
            }
            return Some(bits);
        }
    }

    fn pushes(&self) -> u64 {
        self.pushes
    }

    fn peak(&self) -> usize {
        self.peak
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(x: f64) -> u64 {
        x.to_bits()
    }

    #[test]
    fn heap_core_pops_equal_keys_in_ascending_vm_order() {
        let mut core = HeapCore::new(4);
        core.insert(2, bits(5.0));
        core.insert(0, bits(5.0));
        core.insert(3, bits(7.0));
        core.insert(1, bits(5.0));
        let mut batch = Vec::new();
        assert_eq!(core.pop_min_batch(&mut batch), Some(bits(5.0)));
        assert_eq!(batch, vec![0, 1, 2]);
        batch.clear();
        assert_eq!(core.pop_min_batch(&mut batch), Some(bits(7.0)));
        assert_eq!(batch, vec![3]);
        batch.clear();
        assert_eq!(core.pop_min_batch(&mut batch), None);
    }

    #[test]
    fn heap_core_rekey_supersedes_the_old_entry() {
        let mut core = HeapCore::new(2);
        core.insert(0, bits(1.0));
        core.insert(1, bits(2.0));
        core.rekey(0, bits(3.0)); // old entry at 1.0 is now stale
        let mut batch = Vec::new();
        assert_eq!(core.pop_min_batch(&mut batch), Some(bits(2.0)));
        assert_eq!(batch, vec![1]);
        batch.clear();
        assert_eq!(core.pop_min_batch(&mut batch), Some(bits(3.0)));
        assert_eq!(batch, vec![0]);
        assert_eq!(core.pushes(), 3);
        assert_eq!(core.peak(), 3); // the stale entry counts
    }
}
