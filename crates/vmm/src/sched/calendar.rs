//! The calendar-queue event core for the work-conserving regime.
//!
//! In the adversarial class-flipping mix, nearly every event changes both
//! resource classes' memberships, so the scheduler re-keys every member of
//! both classes. Under the binary heap each of those re-keys is a push
//! (O(log H) with H inflated by every previously superseded entry), and
//! the abandoned entries pile up until they surface at the top — the heap
//! spends its time sifting corpses. A calendar queue makes the same
//! operations O(1): events live in time-bucketed vectors, every VM carries
//! a handle `(bucket, index)` to its single live entry, and a re-key is a
//! `swap_remove` plus a push. No entry is ever stale.
//!
//! **Bucket mapping.** Keys are projected completion instants in f64
//! microseconds, compared as IEEE bits (which orders the non-negative
//! instants numerically). The bucket width is a power of two `2^e` µs, so
//! the *window index* `floor(t · 2⁻ᵉ)` is exact — multiplying an f64 by a
//! power of two shifts the exponent without touching the mantissa, and
//! the cast to `u128` floors exactly. A key with window `w` lives in
//! bucket `w mod nbuckets`; a monotone cursor walks windows in increasing
//! order. Because the window function is monotone in `t`, the smallest
//! key in the first non-empty window is the global minimum, and
//! bit-equal keys necessarily share a window (and therefore a bucket), so
//! a simultaneous batch is collected from a single bucket and sorted
//! ascending by VM — exactly the batch order the heap produces.
//!
//! **Width priming.** The width is chosen once, at the first dequeue:
//! the observed spread of the initial completion instants divided by
//! their count, rounded to the nearest power of two. If later events
//! drift far from that spacing the cursor walk is capped at one full lap
//! (`nbuckets` windows); past it a direct scan over all live entries
//! finds the minimum and re-seats the cursor. The fallback keeps every
//! dequeue correct at any width — the width only decides how often the
//! O(live) scan happens instead of the O(1) bucket hit.

use super::event_core::EventCore;

/// Sentinel: the VM has no live entry.
const NO_SLOT: (u32, u32) = (u32::MAX, u32::MAX);

/// A calendar queue with per-VM entry handles. See the module docs for
/// the bucket mapping and the correctness argument.
pub(super) struct CalendarCore {
    /// `buckets[b]` holds `(key bits, vm)` entries, unordered within.
    buckets: Vec<Vec<(u64, u32)>>,
    /// `slot[vm]` = `(bucket, index)` of the VM's live entry.
    slot: Vec<(u32, u32)>,
    /// `nbuckets - 1` (bucket count is a power of two).
    mask: u64,
    /// `2^-e` where the bucket width is `2^e` µs; 0.0 until primed, which
    /// maps every key to window 0 (bucket 0).
    inv_width: f64,
    /// The window the dequeue cursor is parked on.
    cur_win: u128,
    primed: bool,
    live: usize,
    pushes: u64,
    peak: usize,
}

impl CalendarCore {
    /// The window index of a key: `floor(t / 2^e)`, exact (see module
    /// docs). Monotone non-decreasing in `t`.
    #[inline]
    fn window(&self, key_bits: u64) -> u128 {
        (f64::from_bits(key_bits) * self.inv_width) as u128
    }

    /// The bucket a key lives in.
    #[inline]
    fn bucket_of(&self, key_bits: u64) -> usize {
        (self.window(key_bits) as u64 & self.mask) as usize
    }

    /// Removes `vm`'s live entry via its handle, fixing the handle of the
    /// entry `swap_remove` relocates.
    fn remove(&mut self, vm: usize) {
        debug_assert!(self.slot[vm] != NO_SLOT, "remove of a VM with no live entry");
        let (b, idx) = self.slot[vm];
        let bucket = &mut self.buckets[b as usize];
        bucket.swap_remove(idx as usize);
        if let Some(&(_, moved)) = bucket.get(idx as usize) {
            self.slot[moved as usize] = (b, idx);
        }
        self.slot[vm] = NO_SLOT;
        self.live -= 1;
    }

    /// Chooses the bucket width from the initial key population and
    /// redistributes bucket 0 (where every pre-prime insert landed).
    fn prime(&mut self) {
        self.primed = true;
        let seed: Vec<(u64, u32)> = std::mem::take(&mut self.buckets[0]);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(bits, _) in &seed {
            let t = f64::from_bits(bits);
            lo = lo.min(t);
            hi = hi.max(t);
        }
        let span = hi - lo;
        let ideal = span / seed.len().max(1) as f64;
        let exp = if ideal.is_finite() && ideal > 0.0 {
            ideal.log2().round().clamp(-20.0, 63.0) as i32
        } else {
            0
        };
        self.inv_width = 2.0f64.powi(-exp);
        for (bits, vm) in seed {
            let b = self.bucket_of(bits);
            self.buckets[b].push((bits, vm));
            self.slot[vm as usize] = (b as u32, (self.buckets[b].len() - 1) as u32);
        }
        self.cur_win = if lo.is_finite() { (lo * self.inv_width) as u128 } else { 0 };
    }

    /// Collects every entry of `bucket` whose key is bit-equal to
    /// `min_bits` into `batch` (ascending VM order), consuming them.
    fn collect_batch(&mut self, bucket: usize, min_bits: u64, batch: &mut Vec<usize>) {
        let entries = &mut self.buckets[bucket];
        let mut i = 0;
        while i < entries.len() {
            if entries[i].0 == min_bits {
                let (_, vm) = entries.swap_remove(i);
                if let Some(&(_, moved)) = entries.get(i) {
                    self.slot[moved as usize] = (bucket as u32, i as u32);
                }
                self.slot[vm as usize] = NO_SLOT;
                self.live -= 1;
                batch.push(vm as usize);
                // Do not advance: `swap_remove` moved a new entry into `i`.
            } else {
                i += 1;
            }
        }
        batch.sort_unstable();
    }

    /// Direct O(live) scan for the minimal key, used when the cursor walk
    /// exhausts a full lap without a hit (events far sparser than the
    /// primed width). Ties need no resolution here — all bit-equal
    /// minima share one bucket.
    fn scan_min(&self) -> Option<u64> {
        let mut min: Option<u64> = None;
        for bucket in &self.buckets {
            for &(bits, _) in bucket {
                // Non-negative f64 bit patterns order numerically.
                if min.map_or(true, |m| bits < m) {
                    min = Some(bits);
                }
            }
        }
        min
    }
}

impl EventCore for CalendarCore {
    fn new(n: usize) -> CalendarCore {
        assert!(n < u32::MAX as usize, "calendar core addresses VMs as u32");
        let nbuckets = (2 * n.max(1)).next_power_of_two().clamp(8, 1 << 16);
        CalendarCore {
            buckets: vec![Vec::new(); nbuckets],
            slot: vec![NO_SLOT; n],
            mask: (nbuckets - 1) as u64,
            inv_width: 0.0,
            cur_win: 0,
            primed: false,
            live: 0,
            pushes: 0,
            peak: 0,
        }
    }

    fn insert(&mut self, vm: usize, key_bits: u64) {
        debug_assert!(self.slot[vm] == NO_SLOT, "insert of a VM with a live entry");
        let b = self.bucket_of(key_bits);
        self.buckets[b].push((key_bits, vm as u32));
        self.slot[vm] = (b as u32, (self.buckets[b].len() - 1) as u32);
        self.live += 1;
        self.pushes += 1;
        self.peak = self.peak.max(self.live);
    }

    fn rekey(&mut self, vm: usize, key_bits: u64) {
        self.remove(vm);
        self.insert(vm, key_bits);
    }

    fn pop_min_batch(&mut self, batch: &mut Vec<usize>) -> Option<u64> {
        if self.live == 0 {
            return None;
        }
        if !self.primed {
            self.prime();
        }
        // Walk windows from the cursor, at most one full lap. An entry
        // qualifies for window `w` only if its own window is exactly `w`
        // — same-bucket entries from later laps are skipped.
        let nbuckets = self.buckets.len() as u128;
        for step in 0..nbuckets {
            let w = self.cur_win + step;
            let b = (w as u64 & self.mask) as usize;
            let mut min: Option<u64> = None;
            for &(bits, _) in &self.buckets[b] {
                if self.window(bits) == w && min.map_or(true, |m| bits < m) {
                    min = Some(bits);
                }
            }
            if let Some(min_bits) = min {
                self.cur_win = w;
                self.collect_batch(b, min_bits, batch);
                return Some(min_bits);
            }
        }
        // Sparse tail: one direct scan re-seats the cursor.
        let min_bits = self.scan_min().expect("live > 0 implies a minimum exists");
        self.cur_win = self.window(min_bits);
        let b = self.bucket_of(min_bits);
        self.collect_batch(b, min_bits, batch);
        Some(min_bits)
    }

    fn pushes(&self) -> u64 {
        self.pushes
    }

    fn peak(&self) -> usize {
        self.peak
    }

    fn len(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(x: f64) -> u64 {
        x.to_bits()
    }

    fn drain(core: &mut CalendarCore) -> Vec<(f64, Vec<usize>)> {
        let mut out = Vec::new();
        let mut batch = Vec::new();
        while let Some(b) = core.pop_min_batch(&mut batch) {
            out.push((f64::from_bits(b), std::mem::take(&mut batch)));
        }
        out
    }

    #[test]
    fn pops_in_key_order_with_ascending_vm_batches() {
        let mut core = CalendarCore::new(5);
        core.insert(3, bits(10.0));
        core.insert(0, bits(30.0));
        core.insert(1, bits(10.0));
        core.insert(4, bits(20.0));
        core.insert(2, bits(10.0));
        assert_eq!(
            drain(&mut core),
            vec![
                (10.0, vec![1, 2, 3]),
                (20.0, vec![4]),
                (30.0, vec![0]),
            ]
        );
    }

    #[test]
    fn rekey_moves_the_single_live_entry() {
        let mut core = CalendarCore::new(3);
        core.insert(0, bits(5.0));
        core.insert(1, bits(6.0));
        core.insert(2, bits(7.0));
        core.rekey(0, bits(9.0));
        core.rekey(2, bits(6.0));
        assert_eq!(core.len(), 3, "rekeys must not leave stale entries");
        assert_eq!(
            drain(&mut core),
            vec![(6.0, vec![1, 2]), (9.0, vec![0])]
        );
    }

    #[test]
    fn sparse_tail_falls_back_to_direct_scan() {
        // Events spaced ~1 µs prime a narrow width; the final event jumps
        // nine orders of magnitude past the lap, exercising the fallback.
        let mut core = CalendarCore::new(4);
        core.insert(0, bits(1.0));
        core.insert(1, bits(2.0));
        core.insert(2, bits(3.0));
        core.insert(3, bits(4.0));
        let mut batch = Vec::new();
        for want in [1.0, 2.0, 3.0] {
            batch.clear();
            assert_eq!(core.pop_min_batch(&mut batch), Some(bits(want)));
        }
        core.rekey(3, bits(4.0e9));
        core.insert(0, bits(5.0e9));
        batch.clear();
        assert_eq!(core.pop_min_batch(&mut batch), Some(bits(4.0e9)));
        assert_eq!(batch, vec![3]);
        batch.clear();
        assert_eq!(core.pop_min_batch(&mut batch), Some(bits(5.0e9)));
        assert_eq!(batch, vec![0]);
    }

    #[test]
    fn identical_keys_across_rekeys_form_one_batch() {
        let mut core = CalendarCore::new(8);
        for vm in 0..8 {
            core.insert(vm, bits(100.0 + vm as f64));
        }
        let mut batch = Vec::new();
        assert_eq!(core.pop_min_batch(&mut batch), Some(bits(100.0)));
        // Re-key every survivor to one shared instant.
        for vm in 1..8 {
            core.rekey(vm, bits(250.0));
        }
        batch.clear();
        assert_eq!(core.pop_min_batch(&mut batch), Some(bits(250.0)));
        assert_eq!(batch, (1..8).collect::<Vec<_>>());
        assert_eq!(core.len(), 0);
    }

    #[test]
    fn peak_tracks_live_entries_only() {
        let mut core = CalendarCore::new(4);
        core.insert(0, bits(1.0));
        core.insert(1, bits(2.0));
        core.rekey(0, bits(3.0));
        core.rekey(1, bits(4.0));
        assert_eq!(core.peak(), 2, "rekeys must not inflate the peak");
        assert_eq!(core.pushes(), 4);
    }
}
