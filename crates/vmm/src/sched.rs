//! Fluid-approximation credit scheduler for co-running VMs.
//!
//! The paper's Figure 5 experiment runs two database workloads *at the same
//! time* in two Xen VMs and measures each workload's completion time under
//! different CPU splits. This module provides the equivalent facility: a
//! deterministic fluid simulation of several VMs sharing one
//! [`MachineSpec`], where each VM executes a sequence of queries (each a
//! [`ResourceDemand`]) phase by phase.
//!
//! Two scheduling modes are supported, mirroring the Xen credit scheduler:
//!
//! * [`SchedMode::Capped`] — a VM never receives more than its configured
//!   share, even when the machine is otherwise idle (Xen's `cap` parameter;
//!   this is the mode the paper's experiments use);
//! * [`SchedMode::WorkConserving`] — idle capacity is redistributed among
//!   the VMs currently demanding the resource, in proportion to their
//!   shares (Xen's default `weight`-based behaviour).

use crate::{
    AllocationMatrix, MachineSpec, ResourceDemand, SimDuration, SimTime, VirtualMachine, VmmError,
};

/// How unclaimed resource capacity is treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// Shares are hard caps (Xen `cap`); unclaimed capacity is wasted.
    Capped,
    /// Unclaimed capacity is shared among demanding VMs in proportion to
    /// their configured shares (Xen `weight`).
    WorkConserving,
}

/// One VM's job: execute `queries` in order under `shares`.
#[derive(Debug, Clone)]
pub struct VmJob {
    /// The demands of the queries to run, in order.
    pub queries: Vec<ResourceDemand>,
}

impl VmJob {
    /// Creates a job from a sequence of query demands.
    pub fn new(queries: Vec<ResourceDemand>) -> VmJob {
        VmJob { queries }
    }
}

/// Completion report for one VM.
#[derive(Debug, Clone, PartialEq)]
pub struct VmOutcome {
    /// Instant at which each query finished, in order.
    pub query_completions: Vec<SimTime>,
    /// Instant at which the whole job finished (equals the last query
    /// completion, or `t = 0` for an empty job).
    pub completion: SimTime,
}

impl VmOutcome {
    /// Total simulated time the VM's job took.
    pub fn makespan(&self) -> SimDuration {
        self.completion.duration_since(SimTime::ZERO)
    }
}

/// Which resource a phase consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PhaseKind {
    SeqRead,
    RandRead,
    Write,
    Cpu,
}

impl PhaseKind {
    fn uses_disk(self) -> bool {
        !matches!(self, PhaseKind::Cpu)
    }
}

/// Remaining work of a phase, in phase units (pages or cycles).
#[derive(Debug, Clone, Copy)]
struct Phase {
    kind: PhaseKind,
    remaining: f64,
}

fn phases_of(demand: &ResourceDemand) -> Vec<Phase> {
    // A query thread alternates between disk waits and computation; since
    // the fluid model only cares about totals per resource, we order the
    // phases deterministically: reads, then CPU, then write-back.
    let mut out = Vec::with_capacity(4);
    if demand.seq_page_reads > 0 {
        out.push(Phase {
            kind: PhaseKind::SeqRead,
            remaining: demand.seq_page_reads as f64,
        });
    }
    if demand.random_page_reads > 0 {
        out.push(Phase {
            kind: PhaseKind::RandRead,
            remaining: demand.random_page_reads as f64,
        });
    }
    if demand.cpu_cycles > 0.0 {
        out.push(Phase {
            kind: PhaseKind::Cpu,
            remaining: demand.cpu_cycles,
        });
    }
    if demand.page_writes > 0 {
        out.push(Phase {
            kind: PhaseKind::Write,
            remaining: demand.page_writes as f64,
        });
    }
    out
}

struct VmState {
    /// Queries not yet started, in reverse order (pop from the back).
    pending: Vec<ResourceDemand>,
    /// Phases of the in-flight query, in reverse order.
    current: Vec<Phase>,
    completions: Vec<SimTime>,
    done: bool,
}

impl VmState {
    fn new(job: &VmJob) -> VmState {
        let mut pending: Vec<ResourceDemand> = job.queries.clone();
        pending.reverse();
        let mut state = VmState {
            pending,
            current: Vec::new(),
            completions: Vec::new(),
            done: false,
        };
        state.advance_query(SimTime::ZERO);
        state
    }

    /// Loads the next query (recording completions for any queries whose
    /// demand is empty), marking the VM done when the job is exhausted.
    fn advance_query(&mut self, now: SimTime) {
        while self.current.is_empty() {
            match self.pending.pop() {
                Some(demand) => {
                    let mut phases = phases_of(&demand);
                    phases.reverse();
                    if phases.is_empty() {
                        // Zero-demand query completes instantly.
                        self.completions.push(now);
                    }
                    self.current = phases;
                }
                None => {
                    self.done = true;
                    return;
                }
            }
        }
    }

    fn current_phase(&self) -> Option<&Phase> {
        self.current.last()
    }
}

/// Runs `jobs` concurrently on `spec` under `allocation`, one VM per job,
/// and reports each VM's query completion instants.
///
/// Row `i` of `allocation` gives VM `i`'s shares. The number of jobs must
/// match the number of allocation rows, and every VM needs strictly positive
/// shares (enforced via [`VirtualMachine::new`]).
///
/// The simulation is a deterministic fluid model: at every instant each
/// in-flight phase progresses at a rate set by its VM's effective share of
/// the relevant resource; the simulator repeatedly advances to the next
/// phase-completion event. With a single VM in [`SchedMode::Capped`] mode
/// the result is identical to summing [`VirtualMachine::demand_duration`]
/// over the job, which is checked by tests.
pub fn co_schedule(
    spec: MachineSpec,
    allocation: &AllocationMatrix,
    jobs: &[VmJob],
    mode: SchedMode,
) -> Result<Vec<VmOutcome>, VmmError> {
    spec.validate()?;
    if jobs.len() != allocation.num_workloads() {
        return Err(VmmError::InvalidSchedule {
            reason: format!(
                "{} jobs but {} allocation rows",
                jobs.len(),
                allocation.num_workloads()
            ),
        });
    }
    // Validate each VM up front (positive shares etc.).
    let vms: Vec<VirtualMachine> = (0..jobs.len())
        .map(|i| VirtualMachine::new(spec, allocation.row(i)))
        .collect::<Result<_, _>>()?;

    // Validate demands up front: the scheduler is fed by external
    // controllers, so hostile CPU demands (NaN, negative, or so large that
    // no finite schedule exists) must surface as typed errors rather than
    // silently-skipped phases or clock-overflow panics deep in the loop.
    // Page counts are u64 and need no check.
    for (i, job) in jobs.iter().enumerate() {
        for (q, demand) in job.queries.iter().enumerate() {
            if !demand.cpu_cycles.is_finite() || demand.cpu_cycles < 0.0 {
                return Err(VmmError::InvalidSchedule {
                    reason: format!(
                        "VM {i} query {q}: cpu_cycles must be finite and non-negative, got {}",
                        demand.cpu_cycles
                    ),
                });
            }
        }
    }

    let mut states: Vec<VmState> = jobs.iter().map(VmState::new).collect();
    let mut now = SimTime::ZERO;

    // Hard bound on events: every phase of every query completes exactly once.
    let max_events: usize = jobs
        .iter()
        .flat_map(|j| j.queries.iter())
        .map(|q| phases_of(q).len().max(1))
        .sum::<usize>()
        + jobs.len()
        + 1;

    for _ in 0..max_events {
        if states.iter().all(|s| s.done) {
            break;
        }

        // Effective share per active VM for each resource.
        let cpu_demand_total: f64 = states
            .iter()
            .zip(&vms)
            .filter(|(s, _)| matches!(s.current_phase().map(|p| p.kind), Some(PhaseKind::Cpu)))
            .map(|(_, vm)| vm.shares().cpu().fraction())
            .sum();
        let disk_demand_total: f64 = states
            .iter()
            .zip(&vms)
            .filter(|(s, _)| {
                s.current_phase()
                    .map(|p| p.kind.uses_disk())
                    .unwrap_or(false)
            })
            .map(|(_, vm)| vm.shares().disk().fraction())
            .sum();

        // Rate (phase units per second) for each active VM's current phase.
        let rates: Vec<Option<f64>> = states
            .iter()
            .zip(&vms)
            .map(|(s, vm)| {
                let phase = s.current_phase()?;
                let configured = if phase.kind == PhaseKind::Cpu {
                    vm.shares().cpu().fraction()
                } else {
                    vm.shares().disk().fraction()
                };
                let eff_share = match mode {
                    SchedMode::Capped => configured,
                    SchedMode::WorkConserving => {
                        let total = if phase.kind == PhaseKind::Cpu {
                            cpu_demand_total
                        } else {
                            disk_demand_total
                        };
                        if total > 0.0 {
                            configured / total
                        } else {
                            configured
                        }
                    }
                };
                let rate = match phase.kind {
                    PhaseKind::Cpu => spec.total_cycles_per_sec() * eff_share,
                    PhaseKind::SeqRead | PhaseKind::Write => {
                        eff_share * spec.disk_seq_bytes_per_sec / spec.page_size as f64
                    }
                    PhaseKind::RandRead => eff_share * spec.disk_random_iops,
                };
                Some(rate)
            })
            .collect();

        // Time until the earliest phase completion.
        let dt = states
            .iter()
            .zip(&rates)
            .filter_map(|(s, rate)| {
                let phase = s.current_phase()?;
                let rate = (*rate)?;
                (rate > 0.0).then(|| phase.remaining / rate)
            })
            .fold(f64::INFINITY, f64::min);
        if !dt.is_finite() {
            return Err(VmmError::InvalidSchedule {
                reason: "no VM can make progress".to_string(),
            });
        }
        // A huge-but-finite demand can produce a step (or an accumulated
        // clock) beyond the microsecond counter; both are schedule errors,
        // not panics.
        let step = SimDuration::try_from_secs_f64(dt).map_err(|_| VmmError::InvalidSchedule {
            reason: format!("virtual-clock step of {dt} seconds is not representable"),
        })?;
        now = now.checked_add(step).ok_or_else(|| VmmError::InvalidSchedule {
            reason: "virtual clock overflowed".to_string(),
        })?;

        // Advance every active VM by dt, popping completed phases/queries.
        for (state, rate) in states.iter_mut().zip(&rates) {
            let Some(rate) = *rate else { continue };
            let Some(phase) = state.current.last_mut() else {
                continue;
            };
            phase.remaining -= rate * dt;
            // Absorb float fuzz: a phase within half a unit of zero is done.
            if phase.remaining <= 1e-6 {
                state.current.pop();
                if state.current.is_empty() {
                    state.completions.push(now);
                    state.advance_query(now);
                }
            }
        }
    }

    if !states.iter().all(|s| s.done) {
        return Err(VmmError::InvalidSchedule {
            reason: "simulation failed to converge (event budget exhausted)".to_string(),
        });
    }

    Ok(states
        .into_iter()
        .map(|s| VmOutcome {
            completion: s.completions.last().copied().unwrap_or(SimTime::ZERO),
            query_completions: s.completions,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ResourceVector, Share};

    fn demand(cpu: f64, seq: u64, rand: u64) -> ResourceDemand {
        ResourceDemand {
            cpu_cycles: cpu,
            seq_page_reads: seq,
            random_page_reads: rand,
            page_writes: 0,
        }
    }

    #[test]
    fn single_vm_matches_direct_model() {
        let spec = MachineSpec::paper_testbed();
        let shares = ResourceVector::from_fractions(0.5, 0.5, 0.5).unwrap();
        let alloc = AllocationMatrix::new(vec![shares]).unwrap();
        let queries = vec![demand(2.8e9, 1000, 50), demand(1.0e9, 0, 10)];
        let job = VmJob::new(queries.clone());
        let out = co_schedule(spec, &alloc, &[job], SchedMode::Capped).unwrap();

        let vm = VirtualMachine::new(spec, shares).unwrap();
        let expect: f64 = queries.iter().map(|q| vm.demand_seconds(q)).sum();
        let got = out[0].completion.as_secs_f64();
        assert!(
            (got - expect).abs() / expect < 1e-6,
            "fluid sim {got} vs direct {expect}"
        );
        assert_eq!(out[0].query_completions.len(), 2);
    }

    #[test]
    fn capped_vms_do_not_interfere() {
        // Two CPU-bound VMs at 50% each finish exactly when they would alone.
        let spec = MachineSpec::paper_testbed();
        let alloc = AllocationMatrix::equal_split(2).unwrap();
        let job = VmJob::new(vec![demand(5.6e9, 0, 0)]);
        let out = co_schedule(spec, &alloc, &[job.clone(), job], SchedMode::Capped).unwrap();
        // 5.6e9 cycles at 50% of 5.6e9 cycles/s = 2 seconds.
        for o in &out {
            assert!((o.completion.as_secs_f64() - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn work_conserving_redistributes_idle_capacity() {
        let spec = MachineSpec::paper_testbed();
        let alloc = AllocationMatrix::equal_split(2).unwrap();
        let long = VmJob::new(vec![demand(11.2e9, 0, 0)]);
        let short = VmJob::new(vec![demand(2.8e9, 0, 0)]);
        let out = co_schedule(spec, &alloc, &[long, short], SchedMode::WorkConserving).unwrap();
        // While both run, each gets 50% (2.8e9 cyc/s). The short job needs
        // 2.8e9 cycles -> 1s. Then the long job gets 100%: it has consumed
        // 2.8e9 of 11.2e9, so 8.4e9 remain at 5.6e9 cyc/s -> 1.5s more.
        assert!((out[1].completion.as_secs_f64() - 1.0).abs() < 1e-6);
        assert!((out[0].completion.as_secs_f64() - 2.5).abs() < 1e-6);
    }

    #[test]
    fn cpu_and_disk_phases_overlap_across_vms() {
        // One VM doing pure CPU and one doing pure I/O never contend, so in
        // both modes each finishes at its solo time.
        let spec = MachineSpec::paper_testbed();
        let rows = vec![
            ResourceVector::from_fractions(0.9, 0.5, 0.1).unwrap(),
            ResourceVector::from_fractions(0.1, 0.5, 0.9).unwrap(),
        ];
        let alloc = AllocationMatrix::new(rows.clone()).unwrap();
        let jobs = [
            VmJob::new(vec![demand(5.6e9, 0, 0)]),
            VmJob::new(vec![demand(0.0, 10_000, 0)]),
        ];
        for mode in [SchedMode::Capped, SchedMode::WorkConserving] {
            let out = co_schedule(spec, &alloc, &jobs, mode).unwrap();
            let vm0 = VirtualMachine::new(spec, rows[0]).unwrap();
            let vm1 = VirtualMachine::new(spec, rows[1]).unwrap();
            let solo0 = vm0.demand_seconds(&jobs[0].queries[0]);
            let solo1 = vm1.demand_seconds(&jobs[1].queries[0]);
            let relerr = |got: f64, want: f64| (got - want).abs() / want.max(1e-12);
            if mode == SchedMode::Capped {
                assert!(relerr(out[0].completion.as_secs_f64(), solo0) < 1e-6);
                assert!(relerr(out[1].completion.as_secs_f64(), solo1) < 1e-6);
            } else {
                // Work-conserving can only be faster than the capped time.
                assert!(out[0].completion.as_secs_f64() <= solo0 + 1e-9);
                assert!(out[1].completion.as_secs_f64() <= solo1 + 1e-9);
            }
        }
    }

    #[test]
    fn job_count_must_match_allocation() {
        let spec = MachineSpec::tiny();
        let alloc = AllocationMatrix::equal_split(2).unwrap();
        let err = co_schedule(spec, &alloc, &[VmJob::new(vec![])], SchedMode::Capped).unwrap_err();
        assert!(matches!(err, VmmError::InvalidSchedule { .. }));
    }

    #[test]
    fn empty_jobs_complete_at_time_zero() {
        let spec = MachineSpec::tiny();
        let alloc = AllocationMatrix::new(vec![ResourceVector::uniform(Share::HALF)]).unwrap();
        let out = co_schedule(spec, &alloc, &[VmJob::new(vec![])], SchedMode::Capped).unwrap();
        assert_eq!(out[0].completion, SimTime::ZERO);
        assert!(out[0].query_completions.is_empty());
    }

    #[test]
    fn hostile_cpu_demands_are_rejected_with_typed_errors() {
        let spec = MachineSpec::tiny();
        let alloc = AllocationMatrix::new(vec![ResourceVector::uniform(Share::HALF)]).unwrap();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            let job = VmJob::new(vec![demand(bad, 10, 0)]);
            let err = co_schedule(spec, &alloc, &[job], SchedMode::Capped).unwrap_err();
            match err {
                VmmError::InvalidSchedule { reason } => {
                    assert!(reason.contains("cpu_cycles"), "unexpected reason: {reason}")
                }
                other => panic!("expected InvalidSchedule for cpu={bad}, got {other:?}"),
            }
        }
    }

    #[test]
    fn huge_finite_demand_errors_instead_of_panicking() {
        // 1e300 cycles on a 1e9 cycles/s machine is ~1e291 seconds: finite,
        // but far beyond the microsecond clock. Must be an error, not a panic.
        let spec = MachineSpec::tiny();
        let alloc = AllocationMatrix::new(vec![ResourceVector::uniform(Share::HALF)]).unwrap();
        let job = VmJob::new(vec![demand(1e300, 0, 0)]);
        let err = co_schedule(spec, &alloc, &[job], SchedMode::Capped).unwrap_err();
        assert!(matches!(err, VmmError::InvalidSchedule { .. }));
    }

    #[test]
    fn zero_demand_queries_complete_instantly() {
        let spec = MachineSpec::tiny();
        let alloc = AllocationMatrix::new(vec![ResourceVector::uniform(Share::HALF)]).unwrap();
        let job = VmJob::new(vec![ResourceDemand::ZERO, demand(1e9, 0, 0)]);
        let out = co_schedule(spec, &alloc, &[job], SchedMode::Capped).unwrap();
        assert_eq!(out[0].query_completions.len(), 2);
        assert_eq!(out[0].query_completions[0], SimTime::ZERO);
        assert!(out[0].completion > SimTime::ZERO);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::ResourceVector;
    use proptest::prelude::*;

    fn arb_demand() -> impl Strategy<Value = ResourceDemand> {
        (0u64..5_000_000_000, 0u64..2_000, 0u64..200, 0u64..100).prop_map(
            |(cpu, seq, rand, writes)| ResourceDemand {
                cpu_cycles: cpu as f64,
                seq_page_reads: seq,
                random_page_reads: rand,
                page_writes: writes,
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// A single capped VM's fluid-simulated completion time equals the
        /// closed-form demand model, for arbitrary demand sequences.
        #[test]
        fn prop_single_vm_fluid_matches_direct(
            queries in prop::collection::vec(arb_demand(), 1..6),
            cpu in 0.05f64..1.0,
            disk in 0.05f64..1.0,
        ) {
            let spec = MachineSpec::paper_testbed();
            let shares = ResourceVector::from_fractions(cpu, 0.5, disk).unwrap();
            let alloc = AllocationMatrix::new(vec![shares]).unwrap();
            let out = co_schedule(
                spec,
                &alloc,
                &[VmJob::new(queries.clone())],
                SchedMode::Capped,
            )
            .unwrap();
            let vm = VirtualMachine::new(spec, shares).unwrap();
            let expect: f64 = queries.iter().map(|q| vm.demand_seconds(q)).sum();
            let got = out[0].completion.as_secs_f64();
            prop_assert!(
                (got - expect).abs() <= expect.max(1e-9) * 1e-6 + 2e-6,
                "fluid {got} vs direct {expect}"
            );
        }

        /// Work conservation never makes any VM slower than capped mode,
        /// and query completions are monotone within each VM.
        #[test]
        fn prop_work_conserving_dominates_capped(
            q1 in prop::collection::vec(arb_demand(), 1..4),
            q2 in prop::collection::vec(arb_demand(), 1..4),
            split in 0.1f64..0.9,
        ) {
            let spec = MachineSpec::paper_testbed();
            let rows = vec![
                ResourceVector::from_fractions(split, 0.5, split).unwrap(),
                ResourceVector::from_fractions(1.0 - split, 0.5, 1.0 - split).unwrap(),
            ];
            let alloc = AllocationMatrix::new(rows).unwrap();
            let jobs = [VmJob::new(q1), VmJob::new(q2)];
            let capped = co_schedule(spec, &alloc, &jobs, SchedMode::Capped).unwrap();
            let wc = co_schedule(spec, &alloc, &jobs, SchedMode::WorkConserving).unwrap();
            for (c, w) in capped.iter().zip(&wc) {
                let (tc, tw) = (c.completion.as_secs_f64(), w.completion.as_secs_f64());
                prop_assert!(tw <= tc * (1.0 + 1e-6) + 1e-6, "wc {tw} vs capped {tc}");
                prop_assert!(w.query_completions.windows(2).all(|p| p[0] <= p[1]));
                prop_assert!(c.query_completions.windows(2).all(|p| p[0] <= p[1]));
            }
        }
    }
}
