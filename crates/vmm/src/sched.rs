//! Fluid-approximation credit scheduler for co-running VMs.
//!
//! The paper's Figure 5 experiment runs two database workloads *at the same
//! time* in two Xen VMs and measures each workload's completion time under
//! different CPU splits. This module provides the equivalent facility: a
//! deterministic fluid simulation of several VMs sharing one
//! [`MachineSpec`], where each VM executes a sequence of queries (each a
//! [`ResourceDemand`]) phase by phase.
//!
//! Two scheduling modes are supported, mirroring the Xen credit scheduler:
//!
//! * [`SchedMode::Capped`] — a VM never receives more than its configured
//!   share, even when the machine is otherwise idle (Xen's `cap` parameter;
//!   this is the mode the paper's experiments use);
//! * [`SchedMode::WorkConserving`] — idle capacity is redistributed among
//!   the VMs currently demanding the resource, in proportion to their
//!   shares (Xen's default `weight`-based behaviour).
//!
//! Two implementations share one semantics (see [`fluid`] for the shared
//! arithmetic and its determinism rules):
//!
//! * [`co_schedule`] — the production path: an incremental event-driven
//!   scheduler ([`incremental`]) that keeps per-resource active sets and a
//!   binary event heap, touching only the VMs an event can affect. This is
//!   what every controller epoch, regret replay, and measured-oracle run
//!   bottoms out in, so its per-event cost is the fleet-scale wall clock.
//! * [`co_schedule_reference`] — the legacy whole-fleet rescan loop
//!   ([`reference`]), O(V) per event, retained as the differential-testing
//!   baseline. Identical inputs produce completions **bit-identical** to
//!   the incremental scheduler; `tests/sched_differential.rs` and the
//!   `ext_sched` bench enforce the contract.

use crate::{
    AllocationMatrix, MachineSpec, ResourceDemand, ResourceVector, SimDuration, SimTime,
    VirtualMachine, VmmError,
};

mod calendar;
mod event_core;
mod fluid;
mod incremental;
mod multi;
mod reference;

pub use incremental::SchedStats;
pub use multi::{co_schedule_fleet, MachineRun, MachineSim};

/// How unclaimed resource capacity is treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// Shares are hard caps (Xen `cap`); unclaimed capacity is wasted.
    Capped,
    /// Unclaimed capacity is shared among demanding VMs in proportion to
    /// their configured shares (Xen `weight`).
    WorkConserving,
}

/// Which event structure drives the incremental scheduler. Selected
/// automatically per mode by [`SchedCore::for_mode`]; the explicit choice
/// exists for differential tests and benchmarks, which pin all cores
/// bit-identical on the same inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedCore {
    /// Binary min-heap with lazy invalidation: O(log V) operations, stale
    /// entries accumulate on re-key. Best when re-keys are rare.
    Heap,
    /// Calendar queue with per-VM handles: O(1) insert/re-key, no stale
    /// entries. Built for the work-conserving regime, where most events
    /// re-key every member of the changed resource classes.
    Calendar,
}

impl SchedCore {
    /// The production core for a mode: capped events never re-key (the
    /// heap's best case), work-conserving adversarial mixes re-key
    /// everybody (the calendar's reason to exist).
    pub fn for_mode(mode: SchedMode) -> SchedCore {
        match mode {
            SchedMode::Capped => SchedCore::Heap,
            SchedMode::WorkConserving => SchedCore::Calendar,
        }
    }
}

/// One VM's job: execute `queries` in order under `shares`.
#[derive(Debug, Clone)]
pub struct VmJob {
    /// The demands of the queries to run, in order.
    pub queries: Vec<ResourceDemand>,
}

impl VmJob {
    /// Creates a job from a sequence of query demands.
    pub fn new(queries: Vec<ResourceDemand>) -> VmJob {
        VmJob { queries }
    }
}

/// Completion report for one VM.
#[derive(Debug, Clone, PartialEq)]
pub struct VmOutcome {
    /// Instant at which each query finished, in order.
    pub query_completions: Vec<SimTime>,
    /// Instant at which the whole job finished (equals the last query
    /// completion, or `t = 0` for an empty job).
    pub completion: SimTime,
}

impl VmOutcome {
    /// Total simulated time the VM's job took.
    pub fn makespan(&self) -> SimDuration {
        self.completion.duration_since(SimTime::ZERO)
    }
}

/// Runs `jobs` concurrently on `spec` under `allocation`, one VM per job,
/// and reports each VM's query completion instants.
///
/// Row `i` of `allocation` gives VM `i`'s shares. The number of jobs must
/// match the number of allocation rows, and every VM needs strictly positive
/// shares (enforced via [`VirtualMachine::new`]).
///
/// The simulation is a deterministic fluid model: at every instant each
/// in-flight phase progresses at a rate set by its VM's effective share of
/// the relevant resource; the simulator advances from phase-completion
/// event to phase-completion event. Time is continuous (f64 microseconds)
/// internally and rounded to the microsecond [`SimTime`] clock only when a
/// completion is reported, so integrated work equals demand to f64
/// precision regardless of stream length. With a single VM in
/// [`SchedMode::Capped`] mode the result matches summing
/// [`VirtualMachine::demand_duration`] over the job at microsecond
/// resolution, which is checked by tests.
///
/// This entry point is the incremental event-driven scheduler; see
/// [`co_schedule_reference`] for the O(V)-per-event baseline it is pinned
/// bit-identical to, and [`co_schedule_with_stats`] for the same run plus
/// its work counters.
pub fn co_schedule(
    spec: MachineSpec,
    allocation: &AllocationMatrix,
    jobs: &[VmJob],
    mode: SchedMode,
) -> Result<Vec<VmOutcome>, VmmError> {
    let shares = validate_inputs(&spec, allocation, jobs)?;
    incremental::run(&spec, mode, &shares, jobs, SchedCore::for_mode(mode))
        .map(|(outcomes, _)| outcomes)
}

/// [`co_schedule`], additionally returning the scheduler's work counters
/// (events processed, VMs touched per event, heap population) for
/// benchmarking and locality assertions.
pub fn co_schedule_with_stats(
    spec: MachineSpec,
    allocation: &AllocationMatrix,
    jobs: &[VmJob],
    mode: SchedMode,
) -> Result<(Vec<VmOutcome>, SchedStats), VmmError> {
    let shares = validate_inputs(&spec, allocation, jobs)?;
    incremental::run(&spec, mode, &shares, jobs, SchedCore::for_mode(mode))
}

/// [`co_schedule_with_stats`] with an explicit event core instead of the
/// mode-based default. Completions are bit-identical across cores (and to
/// [`co_schedule_reference`]); the choice only moves wall clock, which is
/// exactly what the differential suite and `ext_sched` pin.
pub fn co_schedule_with_core(
    spec: MachineSpec,
    allocation: &AllocationMatrix,
    jobs: &[VmJob],
    mode: SchedMode,
    core: SchedCore,
) -> Result<(Vec<VmOutcome>, SchedStats), VmmError> {
    let shares = validate_inputs(&spec, allocation, jobs)?;
    incremental::run(&spec, mode, &shares, jobs, core)
}

/// The legacy whole-fleet rescan loop: identical semantics (and identical
/// completions, to the bit) as [`co_schedule`], at O(V) work per event.
/// Kept as the differential-testing and benchmarking baseline; production
/// callers should use [`co_schedule`].
pub fn co_schedule_reference(
    spec: MachineSpec,
    allocation: &AllocationMatrix,
    jobs: &[VmJob],
    mode: SchedMode,
) -> Result<Vec<VmOutcome>, VmmError> {
    let shares = validate_inputs(&spec, allocation, jobs)?;
    reference::run(&spec, mode, &shares, jobs)
}

/// Shared up-front validation: machine sanity, job/allocation alignment,
/// strictly positive shares, and hostile demand screening. The scheduler
/// is fed by external controllers, so hostile CPU demands (NaN, negative,
/// or so large that no finite schedule exists) must surface as typed
/// errors rather than silently-skipped phases or clock-overflow panics
/// deep in the event loop. Page counts are `u64` and need no check.
fn validate_inputs(
    spec: &MachineSpec,
    allocation: &AllocationMatrix,
    jobs: &[VmJob],
) -> Result<Vec<ResourceVector>, VmmError> {
    spec.validate()?;
    if jobs.len() != allocation.num_workloads() {
        return Err(VmmError::InvalidSchedule {
            reason: format!(
                "{} jobs but {} allocation rows",
                jobs.len(),
                allocation.num_workloads()
            ),
        });
    }
    // Validate each VM up front (positive shares etc.).
    let vms: Vec<VirtualMachine> = (0..jobs.len())
        .map(|i| VirtualMachine::new(*spec, allocation.row(i)))
        .collect::<Result<_, _>>()?;

    for (i, job) in jobs.iter().enumerate() {
        for (q, demand) in job.queries.iter().enumerate() {
            if !demand.cpu_cycles.is_finite() || demand.cpu_cycles < 0.0 {
                return Err(VmmError::InvalidSchedule {
                    reason: format!(
                        "VM {i} query {q}: cpu_cycles must be finite and non-negative, got {}",
                        demand.cpu_cycles
                    ),
                });
            }
        }
    }
    Ok(vms.into_iter().map(|vm| vm.shares()).collect())
}

/// Folds final per-VM states into the public outcome report.
fn collect_outcomes(states: Vec<fluid::VmState>) -> Vec<VmOutcome> {
    states
        .into_iter()
        .map(|s| VmOutcome {
            completion: s.completions.last().copied().unwrap_or(SimTime::ZERO),
            query_completions: s.completions,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ResourceVector, Share};

    fn demand(cpu: f64, seq: u64, rand: u64) -> ResourceDemand {
        ResourceDemand {
            cpu_cycles: cpu,
            seq_page_reads: seq,
            random_page_reads: rand,
            page_writes: 0,
        }
    }

    /// Runs both implementations, asserts they agree to the bit, and
    /// returns the (shared) outcome.
    fn co_schedule_both(
        spec: MachineSpec,
        alloc: &AllocationMatrix,
        jobs: &[VmJob],
        mode: SchedMode,
    ) -> Vec<VmOutcome> {
        let incr = co_schedule(spec, alloc, jobs, mode).unwrap();
        let refr = co_schedule_reference(spec, alloc, jobs, mode).unwrap();
        assert_eq!(incr, refr, "incremental and reference completions diverged");
        incr
    }

    #[test]
    fn single_vm_matches_direct_model() {
        let spec = MachineSpec::paper_testbed();
        let shares = ResourceVector::from_fractions(0.5, 0.5, 0.5).unwrap();
        let alloc = AllocationMatrix::new(vec![shares]).unwrap();
        let queries = vec![demand(2.8e9, 1000, 50), demand(1.0e9, 0, 10)];
        let job = VmJob::new(queries.clone());
        let out = co_schedule_both(spec, &alloc, &[job], SchedMode::Capped);

        let vm = VirtualMachine::new(spec, shares).unwrap();
        let expect: f64 = queries.iter().map(|q| vm.demand_seconds(q)).sum();
        let got = out[0].completion.as_secs_f64();
        assert!(
            (got - expect).abs() / expect < 1e-6,
            "fluid sim {got} vs direct {expect}"
        );
        assert_eq!(out[0].query_completions.len(), 2);
    }

    #[test]
    fn capped_vms_do_not_interfere() {
        // Two CPU-bound VMs at 50% each finish exactly when they would alone.
        let spec = MachineSpec::paper_testbed();
        let alloc = AllocationMatrix::equal_split(2).unwrap();
        let job = VmJob::new(vec![demand(5.6e9, 0, 0)]);
        let out = co_schedule_both(spec, &alloc, &[job.clone(), job], SchedMode::Capped);
        // 5.6e9 cycles at 50% of 5.6e9 cycles/s = 2 seconds.
        for o in &out {
            assert!((o.completion.as_secs_f64() - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn work_conserving_redistributes_idle_capacity() {
        let spec = MachineSpec::paper_testbed();
        let alloc = AllocationMatrix::equal_split(2).unwrap();
        let long = VmJob::new(vec![demand(11.2e9, 0, 0)]);
        let short = VmJob::new(vec![demand(2.8e9, 0, 0)]);
        let out = co_schedule_both(spec, &alloc, &[long, short], SchedMode::WorkConserving);
        // While both run, each gets 50% (2.8e9 cyc/s). The short job needs
        // 2.8e9 cycles -> 1s. Then the long job gets 100%: it has consumed
        // 2.8e9 of 11.2e9, so 8.4e9 remain at 5.6e9 cyc/s -> 1.5s more.
        assert!((out[1].completion.as_secs_f64() - 1.0).abs() < 1e-6);
        assert!((out[0].completion.as_secs_f64() - 2.5).abs() < 1e-6);
    }

    #[test]
    fn cpu_and_disk_phases_overlap_across_vms() {
        // One VM doing pure CPU and one doing pure I/O never contend, so in
        // both modes each finishes at its solo time.
        let spec = MachineSpec::paper_testbed();
        let rows = vec![
            ResourceVector::from_fractions(0.9, 0.5, 0.1).unwrap(),
            ResourceVector::from_fractions(0.1, 0.5, 0.9).unwrap(),
        ];
        let alloc = AllocationMatrix::new(rows.clone()).unwrap();
        let jobs = [
            VmJob::new(vec![demand(5.6e9, 0, 0)]),
            VmJob::new(vec![demand(0.0, 10_000, 0)]),
        ];
        for mode in [SchedMode::Capped, SchedMode::WorkConserving] {
            let out = co_schedule_both(spec, &alloc, &jobs, mode);
            let vm0 = VirtualMachine::new(spec, rows[0]).unwrap();
            let vm1 = VirtualMachine::new(spec, rows[1]).unwrap();
            let solo0 = vm0.demand_seconds(&jobs[0].queries[0]);
            let solo1 = vm1.demand_seconds(&jobs[1].queries[0]);
            let relerr = |got: f64, want: f64| (got - want).abs() / want.max(1e-12);
            if mode == SchedMode::Capped {
                assert!(relerr(out[0].completion.as_secs_f64(), solo0) < 1e-6);
                assert!(relerr(out[1].completion.as_secs_f64(), solo1) < 1e-6);
            } else {
                // Work-conserving can only be faster than the capped time.
                assert!(out[0].completion.as_secs_f64() <= solo0 + 1e-9);
                assert!(out[1].completion.as_secs_f64() <= solo1 + 1e-9);
            }
        }
    }

    #[test]
    fn job_count_must_match_allocation() {
        let spec = MachineSpec::tiny();
        let alloc = AllocationMatrix::equal_split(2).unwrap();
        let err = co_schedule(spec, &alloc, &[VmJob::new(vec![])], SchedMode::Capped).unwrap_err();
        assert!(matches!(err, VmmError::InvalidSchedule { .. }));
    }

    #[test]
    fn empty_jobs_complete_at_time_zero() {
        let spec = MachineSpec::tiny();
        let alloc = AllocationMatrix::new(vec![ResourceVector::uniform(Share::HALF)]).unwrap();
        let out = co_schedule_both(spec, &alloc, &[VmJob::new(vec![])], SchedMode::Capped);
        assert_eq!(out[0].completion, SimTime::ZERO);
        assert!(out[0].query_completions.is_empty());
    }

    #[test]
    fn hostile_cpu_demands_are_rejected_with_typed_errors() {
        let spec = MachineSpec::tiny();
        let alloc = AllocationMatrix::new(vec![ResourceVector::uniform(Share::HALF)]).unwrap();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            let job = VmJob::new(vec![demand(bad, 10, 0)]);
            for schedule in [co_schedule, co_schedule_reference] {
                let err = schedule(spec, &alloc, &[job.clone()], SchedMode::Capped).unwrap_err();
                match err {
                    VmmError::InvalidSchedule { reason } => {
                        assert!(reason.contains("cpu_cycles"), "unexpected reason: {reason}")
                    }
                    other => panic!("expected InvalidSchedule for cpu={bad}, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn huge_finite_demand_errors_instead_of_panicking() {
        // 1e300 cycles on a 1e9 cycles/s machine is ~1e291 seconds: finite,
        // but far beyond the microsecond clock. Must be an error, not a panic.
        let spec = MachineSpec::tiny();
        let alloc = AllocationMatrix::new(vec![ResourceVector::uniform(Share::HALF)]).unwrap();
        let job = VmJob::new(vec![demand(1e300, 0, 0)]);
        for schedule in [co_schedule, co_schedule_reference] {
            let err = schedule(spec, &alloc, &[job.clone()], SchedMode::Capped).unwrap_err();
            assert!(matches!(err, VmmError::InvalidSchedule { .. }));
        }
    }

    #[test]
    fn zero_demand_queries_complete_instantly() {
        let spec = MachineSpec::tiny();
        let alloc = AllocationMatrix::new(vec![ResourceVector::uniform(Share::HALF)]).unwrap();
        let job = VmJob::new(vec![ResourceDemand::ZERO, demand(1e9, 0, 0)]);
        let out = co_schedule_both(spec, &alloc, &[job], SchedMode::Capped);
        assert_eq!(out[0].query_completions.len(), 2);
        assert_eq!(out[0].query_completions[0], SimTime::ZERO);
        assert!(out[0].completion > SimTime::ZERO);
    }

    /// Regression for the work/clock quantization skew: the pre-rewrite
    /// loop advanced the clock by the microsecond-rounded step but
    /// decremented `remaining` by the raw `rate * dt`, so every phase
    /// completed at a per-phase-rounded instant and the error compounded —
    /// 10,000 phases of 10.4 µs each reported ~100,000 µs instead of
    /// 104,000 µs (a 4 ms drift). With anchored continuous-time
    /// integration, integrated work equals demand and the reported
    /// completion matches `demand_seconds` at microsecond resolution over
    /// the whole stream.
    #[test]
    fn long_streams_do_not_accumulate_quantization_skew() {
        let spec = MachineSpec::paper_testbed();
        let shares = ResourceVector::from_fractions(0.5, 0.5, 0.5).unwrap();
        let alloc = AllocationMatrix::new(vec![shares]).unwrap();
        // 29,120 cycles at 50% of 5.6e9 cycles/s = 10.4 µs per query: every
        // phase has a fractional-microsecond duration, the worst case for
        // per-event rounding.
        let queries = vec![demand(29_120.0, 0, 0); 10_000];
        let job = VmJob::new(queries.clone());
        let out = co_schedule_both(spec, &alloc, &[job], SchedMode::Capped);

        let vm = VirtualMachine::new(spec, shares).unwrap();
        let expect_secs: f64 = queries.iter().map(|q| vm.demand_seconds(q)).sum();
        let expect_us = SimDuration::from_secs_f64(expect_secs).as_micros();
        let got_us = out[0].completion.as_micros();
        assert!(
            got_us.abs_diff(expect_us) <= 1,
            "10k-event stream drifted: got {got_us} µs, want {expect_us} µs"
        );
        // Every intermediate completion is also on the exact integrated
        // timeline, not a per-phase-rounded one.
        for (k, t) in out[0].query_completions.iter().enumerate() {
            let want = ((k + 1) as f64 * 10.4).round() as u64;
            assert!(
                t.as_micros().abs_diff(want) <= 1,
                "query {k} completed at {} µs, want ~{want} µs",
                t.as_micros()
            );
        }
    }

    /// Regression for the completion threshold: the pre-rewrite loop
    /// absorbed float fuzz with an absolute `remaining <= 1e-6` check,
    /// applied uniformly to phases measured in cycles and in pages. At a
    /// low enough rate, 1e-6 phase units is *real, observable* work: here
    /// VM A still owes 9e-7 cycles when VM B finishes — a full microsecond
    /// of runtime at A's post-completion rate — and the old loop silently
    /// dropped it, completing A one microsecond early. The threshold is
    /// now relative to the phase's initial size, so the residue is kept
    /// and scheduled.
    #[test]
    fn sub_unit_residual_work_is_not_dropped() {
        // A deliberately slow machine: 1 cycle per second, so fractions of
        // a cycle are visible on the microsecond clock.
        let spec = MachineSpec {
            cores: 1,
            cycles_per_sec: 1.0,
            memory_bytes: 1 << 20,
            disk_seq_bytes_per_sec: 1e6,
            disk_random_iops: 100.0,
            page_size: 8192,
        };
        let alloc = AllocationMatrix::equal_split(2).unwrap();
        let b_cycles = 2.0 - 9e-7;
        let jobs = [
            VmJob::new(vec![demand(2.0, 0, 0)]),
            VmJob::new(vec![demand(b_cycles, 0, 0)]),
        ];
        let out = co_schedule_both(spec, &alloc, &jobs, SchedMode::WorkConserving);

        // Shared phase: both run at 0.5 cycles/s. B finishes first, having
        // consumed b_cycles of A's 2.0 as well.
        let t_b_us = (b_cycles / 0.5) * 1e6;
        assert_eq!(out[1].completion.as_micros(), t_b_us.round() as u64);
        // A then owes 9e-7 cycles at 1 cycle/s (work-conserving, alone):
        // 0.9 µs more. The old absolute threshold dropped this work and
        // reported A finishing at B's instant.
        let t_a_us = t_b_us + ((2.0 - b_cycles) / 1.0) * 1e6;
        assert_eq!(out[0].completion.as_micros(), t_a_us.round() as u64);
        assert!(
            out[0].completion > out[1].completion,
            "A's residual work must be scheduled, not dropped"
        );
    }

    /// The other direction of the threshold fix: at cycle scale (~1e10
    /// units) the float residue of integrating a phase exceeds the old
    /// absolute 1e-6 threshold, which cost the legacy loop spurious
    /// zero-length events. A relative threshold recognises the residue as
    /// noise: one phase is exactly one event, completed at the exact
    /// microsecond, with no work double-counted.
    #[test]
    fn cycle_scale_phases_complete_in_one_event_at_exact_micros() {
        let spec = MachineSpec::paper_testbed();
        let shares = ResourceVector::from_fractions(0.5, 0.5, 0.5).unwrap();
        let alloc = AllocationMatrix::new(vec![shares]).unwrap();
        let cycles = 5.6e10;
        let job = VmJob::new(vec![demand(cycles, 0, 0)]);
        let (out, stats) =
            co_schedule_with_stats(spec, &alloc, &[job.clone()], SchedMode::Capped).unwrap();
        let refr = co_schedule_reference(spec, &alloc, &[job], SchedMode::Capped).unwrap();
        assert_eq!(out, refr);
        assert_eq!(stats.events, 1, "one phase must be exactly one event");
        assert_eq!(stats.phase_completions, 1);
        // 5.6e10 cycles at 2.8e9 cycles/s = 20 s exactly.
        let want_us = ((cycles / 2.8e9) * 1e6).round() as u64;
        assert_eq!(out[0].completion.as_micros(), want_us);
    }

    #[test]
    fn capped_mode_touches_only_the_completing_vm() {
        // 8 VMs, staggered CPU demands: every completion is an O(1) event
        // in capped mode (1 VM touched: the completer re-activating).
        let spec = MachineSpec::paper_testbed();
        let alloc = AllocationMatrix::equal_split(8).unwrap();
        let jobs: Vec<VmJob> = (0..8)
            .map(|i| VmJob::new(vec![demand(1e9 + i as f64 * 7e7, 100 + i, 0); 4]))
            .collect();
        let (_, stats) = co_schedule_with_stats(spec, &alloc, &jobs, SchedMode::Capped).unwrap();
        assert_eq!(
            stats.vms_touched, stats.events,
            "capped completions must not perturb other VMs"
        );
    }

    #[test]
    fn simultaneous_completions_form_one_event_batch() {
        // 4 identical VMs: all phases complete at bit-identical instants,
        // so each wave is a single event batch touching all 4 VMs.
        let spec = MachineSpec::paper_testbed();
        let alloc = AllocationMatrix::equal_split(4).unwrap();
        let job = VmJob::new(vec![demand(1.4e9, 200, 10); 3]);
        let jobs = vec![job; 4];
        for mode in [SchedMode::Capped, SchedMode::WorkConserving] {
            let (out, stats) = co_schedule_with_stats(spec, &alloc, &jobs, mode).unwrap();
            let refr = co_schedule_reference(spec, &alloc, &jobs, mode).unwrap();
            assert_eq!(out, refr);
            for o in &out[1..] {
                assert_eq!(o, &out[0], "identical VMs must complete identically");
            }
            assert_eq!(
                stats.phase_completions % stats.events,
                0,
                "identical VMs must complete in whole batches"
            );
            assert_eq!(stats.phase_completions / stats.events, 4);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::ResourceVector;
    use proptest::prelude::*;

    fn arb_demand() -> impl Strategy<Value = ResourceDemand> {
        (0u64..5_000_000_000, 0u64..2_000, 0u64..200, 0u64..100).prop_map(
            |(cpu, seq, rand, writes)| ResourceDemand {
                cpu_cycles: cpu as f64,
                seq_page_reads: seq,
                random_page_reads: rand,
                page_writes: writes,
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// A single capped VM's fluid-simulated completion time equals the
        /// closed-form demand model, for arbitrary demand sequences.
        #[test]
        fn prop_single_vm_fluid_matches_direct(
            queries in prop::collection::vec(arb_demand(), 1..6),
            cpu in 0.05f64..1.0,
            disk in 0.05f64..1.0,
        ) {
            let spec = MachineSpec::paper_testbed();
            let shares = ResourceVector::from_fractions(cpu, 0.5, disk).unwrap();
            let alloc = AllocationMatrix::new(vec![shares]).unwrap();
            let out = co_schedule(
                spec,
                &alloc,
                &[VmJob::new(queries.clone())],
                SchedMode::Capped,
            )
            .unwrap();
            let vm = VirtualMachine::new(spec, shares).unwrap();
            let expect: f64 = queries.iter().map(|q| vm.demand_seconds(q)).sum();
            let got = out[0].completion.as_secs_f64();
            prop_assert!(
                (got - expect).abs() <= expect.max(1e-9) * 1e-6 + 2e-6,
                "fluid {got} vs direct {expect}"
            );
        }

        /// Work conservation never makes any VM slower than capped mode,
        /// and query completions are monotone within each VM.
        #[test]
        fn prop_work_conserving_dominates_capped(
            q1 in prop::collection::vec(arb_demand(), 1..4),
            q2 in prop::collection::vec(arb_demand(), 1..4),
            split in 0.1f64..0.9,
        ) {
            let spec = MachineSpec::paper_testbed();
            let rows = vec![
                ResourceVector::from_fractions(split, 0.5, split).unwrap(),
                ResourceVector::from_fractions(1.0 - split, 0.5, 1.0 - split).unwrap(),
            ];
            let alloc = AllocationMatrix::new(rows).unwrap();
            let jobs = [VmJob::new(q1), VmJob::new(q2)];
            let capped = co_schedule(spec, &alloc, &jobs, SchedMode::Capped).unwrap();
            let wc = co_schedule(spec, &alloc, &jobs, SchedMode::WorkConserving).unwrap();
            for (c, w) in capped.iter().zip(&wc) {
                let (tc, tw) = (c.completion.as_secs_f64(), w.completion.as_secs_f64());
                prop_assert!(tw <= tc * (1.0 + 1e-6) + 1e-6, "wc {tw} vs capped {tc}");
                prop_assert!(w.query_completions.windows(2).all(|p| p[0] <= p[1]));
                prop_assert!(c.query_completions.windows(2).all(|p| p[0] <= p[1]));
            }
        }
    }
}
