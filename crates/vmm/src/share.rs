//! Resource shares and the paper's allocation matrix `R`.
//!
//! The virtualization design problem allocates, for each of `m` physical
//! resources, a fraction `r_ij` of resource `j` to workload `i`, subject to
//! `r_ij >= 0` and `sum_i r_ij = 1` for every resource `j`. This module
//! provides validated building blocks for those fractions:
//! [`Share`] (one fraction), [`ResourceVector`] (the paper's `R_i`, one row)
//! and [`AllocationMatrix`] (the paper's `R`, all rows).

use crate::VmmError;
use std::fmt;

/// The controllable physical resources (the paper's `m = 3` case:
/// CPU, memory, and I/O bandwidth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// CPU time share (Xen credit-scheduler cap in the paper).
    Cpu,
    /// Physical memory share (Xen memory allocation in the paper).
    Memory,
    /// Disk bandwidth share.
    DiskBandwidth,
}

/// All resource kinds, in the canonical column order used by
/// [`ResourceVector`] and [`AllocationMatrix`].
pub const RESOURCE_KINDS: [ResourceKind; 3] = [
    ResourceKind::Cpu,
    ResourceKind::Memory,
    ResourceKind::DiskBandwidth,
];

impl ResourceKind {
    /// Canonical column index of this resource.
    pub fn index(self) -> usize {
        match self {
            ResourceKind::Cpu => 0,
            ResourceKind::Memory => 1,
            ResourceKind::DiskBandwidth => 2,
        }
    }

    /// Short lowercase name, used in reports and error messages.
    pub fn name(self) -> &'static str {
        match self {
            ResourceKind::Cpu => "cpu",
            ResourceKind::Memory => "memory",
            ResourceKind::DiskBandwidth => "disk-bw",
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A validated resource fraction in `[0, 1]`.
///
/// `Share` is a newtype over `f64` whose constructor enforces the paper's
/// `r_ij >= 0` constraint (and the physical upper bound of the whole
/// machine). Comparisons are exact on the underlying float, which is safe
/// because shares are only produced by deterministic constructors.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Share(f64);

impl Share {
    /// The full machine (share = 1).
    pub const FULL: Share = Share(1.0);
    /// No allocation (share = 0).
    pub const ZERO: Share = Share(0.0);
    /// Half the machine; the "default allocation" in the paper's experiments.
    pub const HALF: Share = Share(0.5);

    /// Creates a share, validating that it is finite and within `[0, 1]`.
    pub fn new(value: f64) -> Result<Share, VmmError> {
        if value.is_finite() && (0.0..=1.0).contains(&value) {
            Ok(Share(value))
        } else {
            Err(VmmError::InvalidShare { value })
        }
    }

    /// Creates a share from a percentage in `[0, 100]`.
    pub fn from_percent(pct: f64) -> Result<Share, VmmError> {
        Share::new(pct / 100.0)
    }

    /// The share as a fraction in `[0, 1]`.
    pub fn fraction(self) -> f64 {
        self.0
    }

    /// The share as a percentage.
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// True if the share is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl TryFrom<f64> for Share {
    type Error = VmmError;
    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Share::new(value)
    }
}

impl From<Share> for f64 {
    fn from(s: Share) -> f64 {
        s.0
    }
}

impl fmt::Display for Share {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.percent())
    }
}

/// The paper's `R_i = [r_i1, ..., r_im]`: the share of each resource given
/// to one workload's virtual machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceVector {
    cpu: Share,
    memory: Share,
    disk: Share,
}

impl ResourceVector {
    /// Builds a resource vector from explicit shares.
    pub fn new(cpu: Share, memory: Share, disk: Share) -> ResourceVector {
        ResourceVector { cpu, memory, disk }
    }

    /// Builds a resource vector from raw fractions, validating each.
    pub fn from_fractions(cpu: f64, memory: f64, disk: f64) -> Result<ResourceVector, VmmError> {
        Ok(ResourceVector {
            cpu: Share::new(cpu)?,
            memory: Share::new(memory)?,
            disk: Share::new(disk)?,
        })
    }

    /// The same share of every resource — e.g. `uniform(Share::HALF)` is one
    /// row of the paper's "default allocation".
    pub fn uniform(share: Share) -> ResourceVector {
        ResourceVector {
            cpu: share,
            memory: share,
            disk: share,
        }
    }

    /// The whole machine; what a single VM should get (paper, Section 3).
    pub fn full_machine() -> ResourceVector {
        ResourceVector::uniform(Share::FULL)
    }

    /// The CPU share.
    pub fn cpu(&self) -> Share {
        self.cpu
    }

    /// The memory share.
    pub fn memory(&self) -> Share {
        self.memory
    }

    /// The disk-bandwidth share.
    pub fn disk(&self) -> Share {
        self.disk
    }

    /// The share of resource `kind`.
    pub fn get(&self, kind: ResourceKind) -> Share {
        match kind {
            ResourceKind::Cpu => self.cpu,
            ResourceKind::Memory => self.memory,
            ResourceKind::DiskBandwidth => self.disk,
        }
    }

    /// Returns a copy with the share of `kind` replaced.
    pub fn with(&self, kind: ResourceKind, share: Share) -> ResourceVector {
        let mut out = *self;
        match kind {
            ResourceKind::Cpu => out.cpu = share,
            ResourceKind::Memory => out.memory = share,
            ResourceKind::DiskBandwidth => out.disk = share,
        }
        out
    }

    /// Shares in canonical [`RESOURCE_KINDS`] order.
    pub fn as_array(&self) -> [Share; 3] {
        [self.cpu, self.memory, self.disk]
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[cpu {}, mem {}, disk {}]",
            self.cpu, self.memory, self.disk
        )
    }
}

/// The paper's `m x N` allocation matrix `R`: one [`ResourceVector`] row per
/// workload, with the feasibility constraint that each resource column sums
/// to at most the whole machine.
///
/// The paper states `sum_i r_ij = 1`; we validate `<= 1 + eps` so that
/// partial allocations (holding capacity back) are representable, and expose
/// [`AllocationMatrix::is_fully_utilized`] to check the equality case.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationMatrix {
    rows: Vec<ResourceVector>,
}

/// Tolerance used when checking column sums against 1.
const COLUMN_SUM_EPS: f64 = 1e-9;

impl AllocationMatrix {
    /// Builds a validated allocation matrix from per-workload rows.
    pub fn new(rows: Vec<ResourceVector>) -> Result<AllocationMatrix, VmmError> {
        if rows.is_empty() {
            return Err(VmmError::EmptyAllocation);
        }
        for kind in RESOURCE_KINDS {
            let total: f64 = rows.iter().map(|r| r.get(kind).fraction()).sum();
            if total > 1.0 + COLUMN_SUM_EPS {
                return Err(VmmError::Oversubscribed {
                    resource: kind.name(),
                    total,
                });
            }
        }
        Ok(AllocationMatrix { rows })
    }

    /// The paper's default allocation: every resource divided equally among
    /// `n` workloads.
    pub fn equal_split(n: usize) -> Result<AllocationMatrix, VmmError> {
        if n == 0 {
            return Err(VmmError::EmptyAllocation);
        }
        let share = Share::new(1.0 / n as f64).expect("1/n is in (0,1]");
        AllocationMatrix::new(vec![ResourceVector::uniform(share); n])
    }

    /// Number of workloads (rows).
    pub fn num_workloads(&self) -> usize {
        self.rows.len()
    }

    /// The row for workload `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> ResourceVector {
        self.rows[i]
    }

    /// Iterates over the per-workload rows.
    pub fn rows(&self) -> impl Iterator<Item = &ResourceVector> {
        self.rows.iter()
    }

    /// Returns a copy with row `i` replaced, re-validating feasibility.
    pub fn with_row(&self, i: usize, row: ResourceVector) -> Result<AllocationMatrix, VmmError> {
        if i >= self.rows.len() {
            return Err(VmmError::EmptyAllocation);
        }
        let mut rows = self.rows.clone();
        rows[i] = row;
        AllocationMatrix::new(rows)
    }

    /// The column sum for one resource.
    pub fn column_sum(&self, kind: ResourceKind) -> f64 {
        self.rows.iter().map(|r| r.get(kind).fraction()).sum()
    }

    /// True if every resource column sums to 1 (within tolerance) — the
    /// paper's strict `sum_i r_ij = 1` constraint.
    pub fn is_fully_utilized(&self) -> bool {
        RESOURCE_KINDS
            .into_iter()
            .all(|k| (self.column_sum(k) - 1.0).abs() <= 1e-6)
    }

    /// Moves `delta` of resource `kind` from workload `from` to workload
    /// `to`, clamping at the `[0, 1]` share bounds. This is the elementary
    /// step used by the greedy search in `dbvirt-core`.
    pub fn transfer(
        &self,
        kind: ResourceKind,
        from: usize,
        to: usize,
        delta: f64,
    ) -> Result<AllocationMatrix, VmmError> {
        if from >= self.rows.len() || to >= self.rows.len() {
            return Err(VmmError::EmptyAllocation);
        }
        if !delta.is_finite() || delta < 0.0 {
            return Err(VmmError::InvalidShare { value: delta });
        }
        let avail = self.rows[from].get(kind).fraction();
        let moved = delta.min(avail);
        let mut rows = self.rows.clone();
        rows[from] = rows[from].with(kind, Share::new(avail - moved)?);
        let new_to = (rows[to].get(kind).fraction() + moved).min(1.0);
        rows[to] = rows[to].with(kind, Share::new(new_to)?);
        AllocationMatrix::new(rows)
    }
}

impl fmt::Display for AllocationMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, row) in self.rows.iter().enumerate() {
            writeln!(f, "W{i}: {row}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn share_bounds_are_enforced() {
        assert!(Share::new(0.0).is_ok());
        assert!(Share::new(1.0).is_ok());
        assert!(Share::new(-0.01).is_err());
        assert!(Share::new(1.01).is_err());
        assert!(Share::new(f64::NAN).is_err());
        assert!(Share::new(f64::INFINITY).is_err());
    }

    #[test]
    fn share_percent_conversions() {
        let s = Share::from_percent(25.0).unwrap();
        assert!((s.fraction() - 0.25).abs() < 1e-12);
        assert!((s.percent() - 25.0).abs() < 1e-12);
        assert_eq!(s.to_string(), "25.0%");
    }

    #[test]
    fn resource_vector_accessors() {
        let r = ResourceVector::from_fractions(0.25, 0.5, 0.75).unwrap();
        assert_eq!(r.get(ResourceKind::Cpu).fraction(), 0.25);
        assert_eq!(r.get(ResourceKind::Memory).fraction(), 0.5);
        assert_eq!(r.get(ResourceKind::DiskBandwidth).fraction(), 0.75);
        let r2 = r.with(ResourceKind::Cpu, Share::new(0.9).unwrap());
        assert_eq!(r2.cpu().fraction(), 0.9);
        assert_eq!(r2.memory().fraction(), 0.5);
    }

    #[test]
    fn equal_split_is_feasible_and_fully_utilized() {
        for n in 1..=8 {
            let m = AllocationMatrix::equal_split(n).unwrap();
            assert_eq!(m.num_workloads(), n);
            assert!(
                m.is_fully_utilized(),
                "equal split of {n} not fully utilized"
            );
        }
    }

    #[test]
    fn oversubscription_is_rejected() {
        let row = ResourceVector::uniform(Share::new(0.6).unwrap());
        let err = AllocationMatrix::new(vec![row, row]).unwrap_err();
        match err {
            VmmError::Oversubscribed { resource, total } => {
                assert_eq!(resource, "cpu");
                assert!((total - 1.2).abs() < 1e-9);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_matrix_is_rejected() {
        assert_eq!(
            AllocationMatrix::new(vec![]).unwrap_err(),
            VmmError::EmptyAllocation
        );
        assert_eq!(
            AllocationMatrix::equal_split(0).unwrap_err(),
            VmmError::EmptyAllocation
        );
    }

    #[test]
    fn transfer_moves_share_between_rows() {
        let m = AllocationMatrix::equal_split(2).unwrap();
        let m2 = m.transfer(ResourceKind::Cpu, 0, 1, 0.25).unwrap();
        assert!((m2.row(0).cpu().fraction() - 0.25).abs() < 1e-12);
        assert!((m2.row(1).cpu().fraction() - 0.75).abs() < 1e-12);
        // Memory untouched.
        assert!((m2.row(0).memory().fraction() - 0.5).abs() < 1e-12);
        assert!(m2.is_fully_utilized());
    }

    #[test]
    fn transfer_clamps_at_available_share() {
        let m = AllocationMatrix::equal_split(2).unwrap();
        let m2 = m.transfer(ResourceKind::Memory, 0, 1, 2.0).unwrap();
        assert_eq!(m2.row(0).memory(), Share::ZERO);
        assert_eq!(m2.row(1).memory(), Share::FULL);
    }

    #[test]
    fn with_row_revalidates() {
        let m = AllocationMatrix::equal_split(2).unwrap();
        let bad = ResourceVector::uniform(Share::new(0.9).unwrap());
        assert!(m.with_row(0, bad).is_err());
        let ok = ResourceVector::uniform(Share::new(0.4).unwrap());
        assert!(m.with_row(0, ok).is_ok());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// `transfer` preserves each resource's column sum and feasibility.
        #[test]
        fn prop_transfer_preserves_column_sums(
            n in 2usize..5,
            from in 0usize..5,
            to in 0usize..5,
            delta in 0.0f64..1.0,
            kind_idx in 0usize..3,
        ) {
            let from = from % n;
            let to = to % n;
            prop_assume!(from != to);
            let kind = RESOURCE_KINDS[kind_idx];
            let m = AllocationMatrix::equal_split(n).unwrap();
            let before: Vec<f64> = RESOURCE_KINDS.iter().map(|&k| m.column_sum(k)).collect();
            let m2 = m.transfer(kind, from, to, delta).unwrap();
            let after: Vec<f64> = RESOURCE_KINDS.iter().map(|&k| m2.column_sum(k)).collect();
            for (b, a) in before.iter().zip(&after) {
                prop_assert!((b - a).abs() < 1e-9, "column sum drifted: {b} -> {a}");
            }
            // Every share stays a valid fraction.
            for row in m2.rows() {
                for s in row.as_array() {
                    prop_assert!((0.0..=1.0).contains(&s.fraction()));
                }
            }
        }
    }
}
