//! Physical machine description.

use crate::VmmError;

/// Specification of the physical machine that hosts the virtual machines.
///
/// The defaults mirror the paper's testbed: two 2.8 GHz Xeon CPUs, 4 GB of
/// memory, and a 2007-era SCSI disk (modeled as ~80 MB/s sequential
/// bandwidth and ~130 random IOPS).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineSpec {
    /// Number of physical cores.
    pub cores: u32,
    /// Cycles per second delivered by one core at full allocation.
    pub cycles_per_sec: f64,
    /// Physical memory in bytes.
    pub memory_bytes: u64,
    /// Sequential disk read/write bandwidth in bytes per second.
    pub disk_seq_bytes_per_sec: f64,
    /// Random I/O operations per second (one page each).
    pub disk_random_iops: f64,
    /// Database page size in bytes.
    pub page_size: u32,
}

impl MachineSpec {
    /// The paper's testbed: 2 x 2.8 GHz Xeon, 4 GB RAM, 2007-era disk.
    pub fn paper_testbed() -> MachineSpec {
        MachineSpec {
            cores: 2,
            cycles_per_sec: 2.8e9,
            memory_bytes: 4 * 1024 * 1024 * 1024,
            disk_seq_bytes_per_sec: 80.0 * 1024.0 * 1024.0,
            disk_random_iops: 130.0,
            page_size: 8192,
        }
    }

    /// A small machine for fast unit tests: 1 core, 64 MiB RAM, slow disk.
    pub fn tiny() -> MachineSpec {
        MachineSpec {
            cores: 1,
            cycles_per_sec: 1.0e9,
            memory_bytes: 64 * 1024 * 1024,
            disk_seq_bytes_per_sec: 20.0 * 1024.0 * 1024.0,
            disk_random_iops: 100.0,
            page_size: 8192,
        }
    }

    /// Validates that every parameter is physically meaningful.
    pub fn validate(&self) -> Result<(), VmmError> {
        let bad = |reason: &str| {
            Err(VmmError::InvalidMachine {
                reason: reason.to_string(),
            })
        };
        if self.cores == 0 {
            return bad("cores must be >= 1");
        }
        if !(self.cycles_per_sec.is_finite() && self.cycles_per_sec > 0.0) {
            return bad("cycles_per_sec must be positive and finite");
        }
        if self.memory_bytes == 0 {
            return bad("memory_bytes must be positive");
        }
        if !(self.disk_seq_bytes_per_sec.is_finite() && self.disk_seq_bytes_per_sec > 0.0) {
            return bad("disk_seq_bytes_per_sec must be positive and finite");
        }
        if !(self.disk_random_iops.is_finite() && self.disk_random_iops > 0.0) {
            return bad("disk_random_iops must be positive and finite");
        }
        if self.page_size == 0 {
            return bad("page_size must be positive");
        }
        // Unit-mismatch guard: a machine whose physical memory cannot hold
        // even the minimum buffer pool (64 pages) was almost certainly
        // specified in the wrong unit (megabytes instead of bytes, or a
        // page size in kilobytes). Catch it here with a typed error rather
        // than letting a degenerate pool confuse every layer above.
        let floor = crate::vm::MIN_BUFFER_PAGES as u64 * self.page_size as u64;
        if self.memory_bytes < floor {
            return bad(&format!(
                "memory_bytes ({}) is smaller than the minimum buffer pool \
                 ({} pages x {} bytes = {} bytes) — bytes/megabytes unit mismatch?",
                self.memory_bytes,
                crate::vm::MIN_BUFFER_PAGES,
                self.page_size,
                floor
            ));
        }
        // Aggregate rates must stay representable: absurd per-core rates
        // multiplied by the core count must not overflow to infinity.
        if !self.total_cycles_per_sec().is_finite() {
            return bad("cores x cycles_per_sec overflows to a non-finite rate");
        }
        Ok(())
    }

    /// Total CPU cycles per second across all cores.
    pub fn total_cycles_per_sec(&self) -> f64 {
        self.cycles_per_sec * self.cores as f64
    }

    /// Seconds to sequentially read one page at full disk allocation.
    pub fn seq_page_seconds(&self) -> f64 {
        self.page_size as f64 / self.disk_seq_bytes_per_sec
    }

    /// Seconds for one random page I/O at full disk allocation.
    pub fn random_page_seconds(&self) -> f64 {
        1.0 / self.disk_random_iops
    }
}

impl Default for MachineSpec {
    fn default() -> MachineSpec {
        MachineSpec::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_is_valid() {
        MachineSpec::paper_testbed().validate().unwrap();
        MachineSpec::tiny().validate().unwrap();
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut m = MachineSpec::tiny();
        m.cores = 0;
        assert!(m.validate().is_err());

        let mut m = MachineSpec::tiny();
        m.cycles_per_sec = 0.0;
        assert!(m.validate().is_err());

        let mut m = MachineSpec::tiny();
        m.disk_random_iops = f64::NAN;
        assert!(m.validate().is_err());

        let mut m = MachineSpec::tiny();
        m.page_size = 0;
        assert!(m.validate().is_err());
    }

    /// Hostile-input audit: zero / negative / NaN / infinite capacities and
    /// unit-mismatched fields must all surface as typed `VmmError`s from
    /// `validate()`, never as panics (or nonsense) further downstream.
    #[test]
    fn hostile_specs_return_typed_errors() {
        let hostile: Vec<MachineSpec> = vec![
            // Negative and non-finite float capacities.
            MachineSpec {
                cycles_per_sec: -2.8e9,
                ..MachineSpec::tiny()
            },
            MachineSpec {
                cycles_per_sec: f64::INFINITY,
                ..MachineSpec::tiny()
            },
            MachineSpec {
                disk_seq_bytes_per_sec: f64::NAN,
                ..MachineSpec::tiny()
            },
            MachineSpec {
                disk_seq_bytes_per_sec: -1.0,
                ..MachineSpec::tiny()
            },
            MachineSpec {
                disk_random_iops: 0.0,
                ..MachineSpec::tiny()
            },
            // Unit mismatch: "64 megabytes" written as 64 bytes cannot hold
            // the minimum buffer pool.
            MachineSpec {
                memory_bytes: 64,
                ..MachineSpec::tiny()
            },
            // Memory smaller than a single page.
            MachineSpec {
                memory_bytes: 4096,
                page_size: 8192,
                ..MachineSpec::tiny()
            },
            // Per-core rate near f64::MAX overflows the aggregate rate.
            MachineSpec {
                cores: u32::MAX,
                cycles_per_sec: f64::MAX / 2.0,
                ..MachineSpec::tiny()
            },
        ];
        for (i, m) in hostile.iter().enumerate() {
            let err = m.validate().expect_err(&format!("spec {i} must be rejected"));
            assert!(
                matches!(err, VmmError::InvalidMachine { .. }),
                "spec {i}: wrong error {err:?}"
            );
            // And the layers above propagate the same typed error instead
            // of panicking.
            let vm = crate::VirtualMachine::new(*m, crate::ResourceVector::full_machine());
            assert!(matches!(vm, Err(VmmError::InvalidMachine { .. })), "spec {i}");
        }
    }

    #[test]
    fn smallest_honest_memory_is_accepted() {
        // Exactly the minimum pool is fine; one byte less is not.
        let mut m = MachineSpec::tiny();
        m.memory_bytes = 64 * 8192;
        m.validate().unwrap();
        m.memory_bytes -= 1;
        assert!(m.validate().is_err());
    }

    #[test]
    fn derived_rates_make_sense() {
        let m = MachineSpec::paper_testbed();
        assert!((m.total_cycles_per_sec() - 5.6e9).abs() < 1.0);
        // 8 KiB at 80 MiB/s is ~97.7 microseconds.
        assert!((m.seq_page_seconds() - 8192.0 / (80.0 * 1024.0 * 1024.0)).abs() < 1e-12);
        // Random I/O is much slower than sequential for a spinning disk.
        assert!(m.random_page_seconds() > 50.0 * m.seq_page_seconds());
    }
}
