//! Deterministic fault injection for the measurement path.
//!
//! The calibration pipeline assumes it can time a probe query and get the
//! true demand-derived duration back. Real virtualized measurements are
//! nothing like that: timings jitter with co-tenant interference, the
//! occasional measurement is wildly off (a heavy-tailed spike from a
//! scheduler stall or cache eviction storm), probes sometimes fail
//! transiently, and long measurements are cut off by timeouts. This module
//! injects exactly those faults — deterministically, from a seed — so the
//! robust calibration loop can be tested against realistic VM conditions
//! and a chaos sweep can replay any failure by seed.
//!
//! Determinism contract: every draw is keyed by
//! `(seed, context, probe, trial, attempt)`, so re-running a measurement
//! (same attempt) reproduces the same fault, while a *retry* (next attempt)
//! sees fresh noise. Nothing here keeps mutable state, so the injector can
//! be shared freely across the grid sweep's worker threads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fault raised instead of a measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbeFault {
    /// The probe failed transiently (connection drop, scheduler hiccup);
    /// retrying may succeed.
    Transient,
    /// The (noisy) measurement exceeded the timeout budget and was
    /// abandoned.
    Timeout {
        /// The duration the measurement would have taken, in seconds.
        seconds: f64,
        /// The budget it exceeded, in seconds.
        limit_seconds: f64,
    },
}

/// The fate of one whole sensor reading, drawn by
/// [`FaultInjector::sensor_fault`] independently of the per-component
/// measurement noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorFault {
    /// The reading arrives intact and on time.
    Clean,
    /// The reading is silently lost.
    Dropout,
    /// The reading arrives, but describes the state `age` epochs ago.
    Stale {
        /// How many epochs late the reading is (≥ 1).
        age: usize,
    },
    /// One component of the reading is corrupted to a non-finite value.
    Corrupt {
        /// Index of the corrupted component in the consumer's layout.
        component: usize,
    },
}

impl std::fmt::Display for ProbeFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProbeFault::Transient => write!(f, "transient probe failure"),
            ProbeFault::Timeout {
                seconds,
                limit_seconds,
            } => write!(f, "probe timed out ({seconds:.3}s > {limit_seconds:.3}s budget)"),
        }
    }
}

/// What noise to inject, configurable per resource component.
///
/// Jitter is multiplicative and uniform: a component measured as `t`
/// becomes `t * u` with `u ~ U[1 - j, 1 + j]`. Outlier spikes multiply the
/// whole measurement by a Pareto(α = 2) tail starting at `outlier_scale`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Relative jitter half-width on the CPU component.
    pub cpu_jitter: f64,
    /// Relative jitter half-width on the sequential-read component.
    pub seq_io_jitter: f64,
    /// Relative jitter half-width on the random-read component.
    pub random_io_jitter: f64,
    /// Relative jitter half-width on the write component.
    pub write_jitter: f64,
    /// Probability that a measurement is a heavy-tailed outlier spike.
    pub outlier_prob: f64,
    /// Minimum multiplier of an outlier spike (the Pareto scale).
    pub outlier_scale: f64,
    /// Probability that a measurement fails transiently.
    pub failure_prob: f64,
    /// A measurement exceeding `timeout_factor ×` its clean duration is
    /// reported as a timeout instead of a value (`INFINITY` disables).
    pub timeout_factor: f64,
    /// Probability that a whole sensor reading silently drops out (the
    /// monitoring agent never delivers it). Drawn by
    /// [`FaultInjector::sensor_fault`], independently of the per-component
    /// measurement stream.
    pub dropout_prob: f64,
    /// Probability that a sensor reading arrives stale: the delivered
    /// value describes the workload `age` epochs ago, not now.
    pub stale_prob: f64,
    /// Maximum staleness age in epochs (ages are drawn uniformly from
    /// `1..=stale_max_age`). Must be ≥ 1 whenever `stale_prob > 0`.
    pub stale_max_age: usize,
    /// Probability that one component of a reading is corrupted to a
    /// non-finite value (a garbage counter the consumer must reject).
    pub corrupt_prob: f64,
}

/// Cap on the Pareto outlier multiplier, so a spike is "wildly off" but
/// still finite.
const OUTLIER_CAP: f64 = 1000.0;

impl NoiseModel {
    /// The identity model: no jitter, no outliers, no failures, no
    /// timeouts. Measurements pass through bit-identically.
    pub fn none() -> NoiseModel {
        NoiseModel {
            cpu_jitter: 0.0,
            seq_io_jitter: 0.0,
            random_io_jitter: 0.0,
            write_jitter: 0.0,
            outlier_prob: 0.0,
            outlier_scale: 1.0,
            failure_prob: 0.0,
            timeout_factor: f64::INFINITY,
            dropout_prob: 0.0,
            stale_prob: 0.0,
            stale_max_age: 0,
            corrupt_prob: 0.0,
        }
    }

    /// Uniform relative jitter of half-width `j` on every resource
    /// component (e.g. `0.1` for ±10%).
    pub fn uniform_jitter(j: f64) -> NoiseModel {
        NoiseModel {
            cpu_jitter: j,
            seq_io_jitter: j,
            random_io_jitter: j,
            write_jitter: j,
            ..NoiseModel::none()
        }
    }

    /// A realistic composite: uniform jitter `j`, 5% heavy-tailed spikes
    /// of at least 8×, 5% transient failures, and a 20× timeout budget.
    pub fn realistic(j: f64) -> NoiseModel {
        NoiseModel {
            outlier_prob: 0.05,
            outlier_scale: 8.0,
            failure_prob: 0.05,
            timeout_factor: 20.0,
            ..NoiseModel::uniform_jitter(j)
        }
    }

    /// Returns the model with transient-failure probability `p`.
    pub fn with_failures(mut self, p: f64) -> NoiseModel {
        self.failure_prob = p;
        self
    }

    /// Returns the model with outlier probability `p` and minimum spike
    /// multiplier `scale`.
    pub fn with_outliers(mut self, p: f64, scale: f64) -> NoiseModel {
        self.outlier_prob = p;
        self.outlier_scale = scale;
        self
    }

    /// Returns the model with the timeout budget set to `factor ×` the
    /// clean duration.
    pub fn with_timeout_factor(mut self, factor: f64) -> NoiseModel {
        self.timeout_factor = factor;
        self
    }

    /// A sensor-degradation model on top of an otherwise clean pipeline:
    /// whole readings drop out with probability `dropout`, arrive up to
    /// `stale_max_age` epochs stale with probability `stale`, and have one
    /// component corrupted to a non-finite value with probability
    /// `corrupt`. Measurement values themselves pass through unjittered.
    pub fn sensor_degraded(
        dropout: f64,
        stale: f64,
        stale_max_age: usize,
        corrupt: f64,
    ) -> NoiseModel {
        NoiseModel {
            dropout_prob: dropout,
            stale_prob: stale,
            stale_max_age,
            corrupt_prob: corrupt,
            ..NoiseModel::none()
        }
    }

    /// True if this model can never alter a per-component measurement
    /// value (whole-reading sensor faults — dropout, staleness,
    /// corruption — are drawn separately and do not affect this).
    pub fn is_measurement_identity(&self) -> bool {
        self.cpu_jitter == 0.0
            && self.seq_io_jitter == 0.0
            && self.random_io_jitter == 0.0
            && self.write_jitter == 0.0
            && self.outlier_prob == 0.0
            && self.failure_prob == 0.0
            && self.timeout_factor.is_infinite()
    }

    /// True if this model can never alter, drop, delay, or corrupt a
    /// reading in any way.
    pub fn is_identity(&self) -> bool {
        self.is_measurement_identity()
            && self.dropout_prob == 0.0
            && self.stale_prob == 0.0
            && self.corrupt_prob == 0.0
    }

    /// Validates that probabilities are in `[0, 1]` and jitters in
    /// `[0, 1)` (a jitter of 1 could zero out a measurement).
    pub fn validate(&self) -> Result<(), crate::VmmError> {
        let probs_ok = [
            self.outlier_prob,
            self.failure_prob,
            self.dropout_prob,
            self.stale_prob,
            self.corrupt_prob,
        ]
        .iter()
        .all(|p| (0.0..=1.0).contains(p));
        let jitters_ok = [
            self.cpu_jitter,
            self.seq_io_jitter,
            self.random_io_jitter,
            self.write_jitter,
        ]
        .iter()
        .all(|j| (0.0..1.0).contains(j));
        // The three sensor outcomes are drawn from one partition of [0, 1).
        let sensor_ok = self.dropout_prob + self.stale_prob + self.corrupt_prob <= 1.0
            && (self.stale_prob == 0.0 || self.stale_max_age >= 1);
        if probs_ok
            && jitters_ok
            && sensor_ok
            && self.outlier_scale >= 1.0
            && self.timeout_factor > 1.0
        {
            Ok(())
        } else {
            Err(crate::VmmError::InvalidShare { value: f64::NAN })
        }
    }
}

/// splitmix64 finalizer: spreads structured integer keys over u64 space.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a measurement's identity into one RNG seed.
fn mix(seed: u64, context: u64, probe: usize, trial: usize, attempt: usize) -> u64 {
    let mut h = splitmix(seed);
    h = splitmix(h ^ context);
    h = splitmix(h ^ (probe as u64).wrapping_mul(0x8573_9A2B));
    h = splitmix(h ^ (trial as u64).wrapping_mul(0xC2B2_AE35));
    splitmix(h ^ (attempt as u64).wrapping_mul(0x2545_F491))
}

/// A seeded, stateless fault injector for probe measurements.
///
/// `measure` perturbs a clean `(cpu, seq, random, write)` seconds
/// breakdown according to the [`NoiseModel`], or raises a [`ProbeFault`].
/// With [`NoiseModel::none`] the clean sum is returned bit-identically and
/// no random numbers are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjector {
    model: NoiseModel,
    seed: u64,
}

// Process-wide fault-injection telemetry (no-ops until
// `dbvirt_telemetry::enable()`): how many probe attempts the injector
// perturbed, failed, timed out, or spiked — the denominators behind the
// calibration retry counters in `CalibrationReport`.
static TM_MEASURES: dbvirt_telemetry::Counter =
    dbvirt_telemetry::Counter::new("vmm.fault.measurements");
static TM_FAILURES: dbvirt_telemetry::Counter =
    dbvirt_telemetry::Counter::new("vmm.fault.transient_failures");
static TM_TIMEOUTS: dbvirt_telemetry::Counter =
    dbvirt_telemetry::Counter::new("vmm.fault.timeouts");
static TM_OUTLIERS: dbvirt_telemetry::Counter =
    dbvirt_telemetry::Counter::new("vmm.fault.outlier_spikes");
static TM_DROPOUTS: dbvirt_telemetry::Counter =
    dbvirt_telemetry::Counter::new("vmm.fault.sensor_dropouts");
static TM_STALE: dbvirt_telemetry::Counter =
    dbvirt_telemetry::Counter::new("vmm.fault.sensor_stale");
static TM_CORRUPT: dbvirt_telemetry::Counter =
    dbvirt_telemetry::Counter::new("vmm.fault.sensor_corrupt");

impl FaultInjector {
    /// Creates an injector from a noise model and a seed.
    pub fn new(model: NoiseModel, seed: u64) -> FaultInjector {
        FaultInjector { model, seed }
    }

    /// The injector's noise model.
    pub fn model(&self) -> &NoiseModel {
        &self.model
    }

    /// The injector's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Produces the (possibly noisy) measurement for one probe attempt.
    ///
    /// `context` distinguishes measurement campaigns (e.g. grid cells) so
    /// each gets an independent noise stream; `probe`, `trial` and
    /// `attempt` key the draw within a campaign. The clean measurement is
    /// the component sum `cpu + seq + random + write`, matching
    /// [`crate::VirtualMachine::demand_seconds`].
    pub fn measure(
        &self,
        context: u64,
        probe: usize,
        trial: usize,
        attempt: usize,
        breakdown: (f64, f64, f64, f64),
    ) -> Result<f64, ProbeFault> {
        let (cpu, seq, random, write) = breakdown;
        let clean = cpu + seq + random + write;
        if self.model.is_measurement_identity() {
            return Ok(clean);
        }
        TM_MEASURES.add(1);
        let mut rng = StdRng::seed_from_u64(mix(self.seed, context, probe, trial, attempt));

        // Draw order is part of the determinism contract: failure, then
        // the four jitter factors, then the outlier pair.
        if self.model.failure_prob > 0.0 && rng.gen_bool(self.model.failure_prob) {
            TM_FAILURES.add(1);
            return Err(ProbeFault::Transient);
        }
        let mut factor = |j: f64| {
            if j > 0.0 {
                rng.gen_range(1.0 - j..=1.0 + j)
            } else {
                1.0
            }
        };
        let mut noisy = cpu * factor(self.model.cpu_jitter)
            + seq * factor(self.model.seq_io_jitter)
            + random * factor(self.model.random_io_jitter)
            + write * factor(self.model.write_jitter);
        if self.model.outlier_prob > 0.0 && rng.gen_bool(self.model.outlier_prob) {
            // Pareto(α = 2) tail: scale / sqrt(u), capped.
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            noisy *= (self.model.outlier_scale / u.sqrt()).min(OUTLIER_CAP);
            TM_OUTLIERS.add(1);
        }
        if clean > 0.0 && noisy > clean * self.model.timeout_factor {
            TM_TIMEOUTS.add(1);
            return Err(ProbeFault::Timeout {
                seconds: noisy,
                limit_seconds: clean * self.model.timeout_factor,
            });
        }
        Ok(noisy)
    }

    /// Draws the fate of one whole sensor reading, keyed by
    /// `(seed, context, probe, trial)` on a stream independent of
    /// [`FaultInjector::measure`]'s (salted seed), so enabling sensor
    /// faults does not re-shuffle the measurement noise. `components` is
    /// the size of the consumer's reading layout; a corruption picks one
    /// index uniformly from it.
    pub fn sensor_fault(
        &self,
        context: u64,
        probe: usize,
        trial: usize,
        components: usize,
    ) -> SensorFault {
        let m = &self.model;
        if m.dropout_prob == 0.0 && m.stale_prob == 0.0 && m.corrupt_prob == 0.0 {
            return SensorFault::Clean;
        }
        const SENSOR_SALT: u64 = 0x5E2_50E5_EED5;
        let mut rng =
            StdRng::seed_from_u64(mix(self.seed ^ SENSOR_SALT, context, probe, trial, 0));
        let u: f64 = rng.gen_range(0.0..1.0);
        if u < m.dropout_prob {
            TM_DROPOUTS.add(1);
            return SensorFault::Dropout;
        }
        if u < m.dropout_prob + m.stale_prob {
            TM_STALE.add(1);
            return SensorFault::Stale {
                age: rng.gen_range(1..=m.stale_max_age.max(1)),
            };
        }
        if u < m.dropout_prob + m.stale_prob + m.corrupt_prob {
            TM_CORRUPT.add(1);
            return SensorFault::Corrupt {
                component: rng.gen_range(0..components.max(1)),
            };
        }
        SensorFault::Clean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BD: (f64, f64, f64, f64) = (0.1, 0.2, 0.3, 0.4);

    #[test]
    fn identity_model_is_bit_exact_passthrough() {
        let inj = FaultInjector::new(NoiseModel::none(), 42);
        let clean = BD.0 + BD.1 + BD.2 + BD.3;
        for probe in 0..8 {
            let got = inj.measure(7, probe, 0, 0, BD).unwrap();
            assert_eq!(got.to_bits(), clean.to_bits());
        }
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let inj = FaultInjector::new(NoiseModel::uniform_jitter(0.1), 1);
        let clean = BD.0 + BD.1 + BD.2 + BD.3;
        for trial in 0..100 {
            let a = inj.measure(0, 3, trial, 0, BD).unwrap();
            let b = inj.measure(0, 3, trial, 0, BD).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "same key, same draw");
            assert!(a >= clean * 0.9 && a <= clean * 1.1, "trial {trial}: {a}");
        }
        // Different keys give different draws.
        let a = inj.measure(0, 3, 0, 0, BD).unwrap();
        let b = inj.measure(0, 3, 1, 0, BD).unwrap();
        let c = inj.measure(0, 3, 0, 1, BD).unwrap();
        let d = inj.measure(1, 3, 0, 0, BD).unwrap();
        assert!(a != b && a != c && a != d);
    }

    #[test]
    fn per_resource_jitter_only_touches_its_component() {
        // Jitter on CPU only: a pure-I/O measurement stays clean.
        let model = NoiseModel {
            cpu_jitter: 0.5,
            ..NoiseModel::none()
        };
        let inj = FaultInjector::new(model, 9);
        let io_only = (0.0, 0.2, 0.3, 0.1);
        let clean = 0.2 + 0.3 + 0.1;
        for trial in 0..20 {
            let got = inj.measure(0, 0, trial, 0, io_only).unwrap();
            assert!((got - clean).abs() < 1e-15, "trial {trial}: {got}");
        }
        // But a CPU-heavy measurement moves.
        let moved = (0..20).any(|t| {
            let got = inj.measure(0, 0, t, 0, BD).unwrap();
            (got - (BD.0 + BD.1 + BD.2 + BD.3)).abs() > 1e-6
        });
        assert!(moved);
    }

    #[test]
    fn failures_fire_at_roughly_the_configured_rate() {
        let inj = FaultInjector::new(NoiseModel::none().with_failures(0.25), 5);
        let fails = (0..4000)
            .filter(|&t| inj.measure(0, 0, t, 0, BD).is_err())
            .count();
        let frac = fails as f64 / 4000.0;
        assert!((frac - 0.25).abs() < 0.03, "observed {frac}");
    }

    #[test]
    fn retry_sees_fresh_noise_after_a_transient_failure() {
        let inj = FaultInjector::new(NoiseModel::none().with_failures(0.5), 3);
        // Find a failing (trial, attempt 0) and check some later attempt
        // succeeds: the attempt index re-keys the draw.
        let trial = (0..100)
            .find(|&t| inj.measure(0, 0, t, 0, BD).is_err())
            .expect("some failure at p = 0.5");
        let recovered = (1..20).any(|a| inj.measure(0, 0, trial, a, BD).is_ok());
        assert!(recovered);
    }

    #[test]
    fn outliers_are_heavy_tailed_spikes() {
        let inj = FaultInjector::new(NoiseModel::none().with_outliers(1.0, 8.0), 11);
        let clean = BD.0 + BD.1 + BD.2 + BD.3;
        let mut max = 0.0f64;
        for t in 0..1000 {
            let got = inj.measure(0, 0, t, 0, BD).unwrap();
            assert!(got >= clean * 8.0 * 0.999, "spike below scale: {got}");
            assert!(got <= clean * OUTLIER_CAP * 1.001, "spike above cap: {got}");
            max = max.max(got / clean);
        }
        assert!(max > 40.0, "tail never materialized: max {max}x");
    }

    #[test]
    fn timeouts_cut_off_extreme_measurements() {
        let model = NoiseModel::none()
            .with_outliers(1.0, 8.0)
            .with_timeout_factor(4.0);
        let inj = FaultInjector::new(model, 13);
        // Every measurement spikes ≥8x against a 4x budget: all time out.
        for t in 0..50 {
            match inj.measure(0, 0, t, 0, BD) {
                Err(ProbeFault::Timeout {
                    seconds,
                    limit_seconds,
                }) => assert!(seconds > limit_seconds),
                other => panic!("expected timeout, got {other:?}"),
            }
        }
    }

    #[test]
    fn zero_demand_passes_through() {
        let inj = FaultInjector::new(NoiseModel::realistic(0.1), 1);
        // A zero breakdown has nothing to jitter or time out.
        for t in 0..50 {
            match inj.measure(0, 0, t, 0, (0.0, 0.0, 0.0, 0.0)) {
                Ok(v) => assert_eq!(v, 0.0),
                Err(ProbeFault::Transient) => {} // failures can still fire
                Err(f) => panic!("unexpected {f:?}"),
            }
        }
    }

    #[test]
    fn model_validation() {
        assert!(NoiseModel::none().validate().is_ok());
        assert!(NoiseModel::realistic(0.1).validate().is_ok());
        assert!(NoiseModel::uniform_jitter(1.0).validate().is_err());
        assert!(NoiseModel::none().with_failures(1.5).validate().is_err());
        let mut m = NoiseModel::none();
        m.timeout_factor = 0.5;
        assert!(m.validate().is_err());
        // Sensor-fault probabilities partition [0, 1); stale needs an age.
        assert!(NoiseModel::sensor_degraded(0.1, 0.1, 3, 0.1).validate().is_ok());
        assert!(NoiseModel::sensor_degraded(0.6, 0.5, 3, 0.0).validate().is_err());
        assert!(NoiseModel::sensor_degraded(0.0, 0.2, 0, 0.0).validate().is_err());
    }

    #[test]
    fn sensor_faults_are_deterministic_and_bounded() {
        let model = NoiseModel::sensor_degraded(0.2, 0.2, 3, 0.2);
        assert!(!model.is_identity());
        assert!(model.is_measurement_identity());
        let inj = FaultInjector::new(model, 21);
        let mut counts = [0usize; 4]; // clean, dropout, stale, corrupt
        for trial in 0..2000 {
            let a = inj.sensor_fault(5, 0, trial, 7);
            let b = inj.sensor_fault(5, 0, trial, 7);
            assert_eq!(a, b, "same key, same fate");
            match a {
                SensorFault::Clean => counts[0] += 1,
                SensorFault::Dropout => counts[1] += 1,
                SensorFault::Stale { age } => {
                    assert!((1..=3).contains(&age));
                    counts[2] += 1;
                }
                SensorFault::Corrupt { component } => {
                    assert!(component < 7);
                    counts[3] += 1;
                }
            }
        }
        // Each 20% mode should land near its rate.
        for (i, &c) in counts.iter().enumerate().skip(1) {
            let frac = c as f64 / 2000.0;
            assert!((frac - 0.2).abs() < 0.05, "mode {i} observed {frac}");
        }
    }

    #[test]
    fn sensor_only_models_pass_measurements_through_bit_identically() {
        // Sensor faults must not perturb the per-component measurement
        // stream: a dropout-only injector measures exactly like a clean one.
        let clean = FaultInjector::new(NoiseModel::none(), 17);
        let sensor = FaultInjector::new(NoiseModel::sensor_degraded(0.5, 0.3, 2, 0.1), 17);
        for trial in 0..50 {
            let a = clean.measure(0, 0, trial, 0, BD).unwrap();
            let b = sensor.measure(0, 0, trial, 0, BD).unwrap();
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // And a clean model draws no sensor faults at all.
        for trial in 0..50 {
            assert_eq!(clean.sensor_fault(0, 0, trial, 7), SensorFault::Clean);
        }
    }
}
