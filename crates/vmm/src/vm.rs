//! The virtual machine model: shares × machine → effective resources.

use crate::{MachineSpec, ResourceDemand, ResourceVector, SimDuration, VmmError};

/// Fraction of a VM's memory available to the database as page cache
/// (standing in for `shared_buffers` plus the OS file cache that PostgreSQL
/// relies on).
pub(crate) const BUFFER_FRACTION: f64 = 0.6;

/// Minimum buffer pool size, in pages, regardless of how little memory the
/// VM was given (PostgreSQL likewise refuses to run with a degenerate
/// buffer pool).
pub(crate) const MIN_BUFFER_PAGES: usize = 64;

/// A virtual machine: a [`MachineSpec`] plus the [`ResourceVector`] of shares
/// granted to it by the virtualization layer.
///
/// The conversion laws are the ones the paper's calibration must recover:
///
/// * **CPU**: the VM's compute rate is `total_cycles_per_sec * cpu_share`
///   (a Xen credit-scheduler cap dilates CPU-bound work as `1 / share`);
/// * **Disk**: sequential bandwidth and random IOPS are throttled by the
///   disk share;
/// * **Memory**: the memory share bounds the VM's page cache, which in turn
///   determines how many logical reads become physical reads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VirtualMachine {
    spec: MachineSpec,
    shares: ResourceVector,
}

impl VirtualMachine {
    /// Creates a VM, validating the machine and requiring strictly positive
    /// CPU, memory and disk shares (a VM with a zero share of any resource
    /// can make no progress).
    pub fn new(spec: MachineSpec, shares: ResourceVector) -> Result<VirtualMachine, VmmError> {
        spec.validate()?;
        for share in shares.as_array() {
            if share.is_zero() {
                return Err(VmmError::InvalidShare {
                    value: share.fraction(),
                });
            }
        }
        Ok(VirtualMachine { spec, shares })
    }

    /// A VM granted the entire physical machine.
    pub fn whole_machine(spec: MachineSpec) -> Result<VirtualMachine, VmmError> {
        VirtualMachine::new(spec, ResourceVector::full_machine())
    }

    /// The underlying physical machine.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// The shares granted to this VM.
    pub fn shares(&self) -> ResourceVector {
        self.shares
    }

    /// Memory visible to the VM, in bytes.
    pub fn memory_bytes(&self) -> u64 {
        (self.spec.memory_bytes as f64 * self.shares.memory().fraction()) as u64
    }

    /// Buffer-pool capacity in pages implied by the VM's memory share.
    pub fn buffer_pool_pages(&self) -> usize {
        let bytes = self.memory_bytes() as f64 * BUFFER_FRACTION;
        let pages = (bytes / self.spec.page_size as f64) as usize;
        pages.max(MIN_BUFFER_PAGES)
    }

    /// CPU cycles per second the VM can consume.
    pub fn cpu_rate(&self) -> f64 {
        self.spec.total_cycles_per_sec() * self.shares.cpu().fraction()
    }

    /// Sequential page reads per second the VM can perform.
    pub fn seq_page_rate(&self) -> f64 {
        self.shares.disk().fraction() * self.spec.disk_seq_bytes_per_sec
            / self.spec.page_size as f64
    }

    /// Random page reads per second the VM can perform.
    pub fn random_page_rate(&self) -> f64 {
        self.shares.disk().fraction() * self.spec.disk_random_iops
    }

    /// Simulated seconds to satisfy `demand` on this VM, as a breakdown of
    /// `(cpu, sequential I/O, random I/O, writes)`.
    ///
    /// Phases are serial (a single query thread alternates between computing
    /// and waiting on the disk), matching the additive structure of the
    /// PostgreSQL cost model the optimizer side uses.
    pub fn demand_seconds_breakdown(&self, demand: &ResourceDemand) -> (f64, f64, f64, f64) {
        let cpu = demand.cpu_cycles / self.cpu_rate();
        let seq = demand.seq_page_reads as f64 / self.seq_page_rate();
        let rand = demand.random_page_reads as f64 / self.random_page_rate();
        let writes = demand.page_writes as f64 / self.seq_page_rate();
        (cpu, seq, rand, writes)
    }

    /// Total simulated seconds to satisfy `demand` on this VM.
    pub fn demand_seconds(&self, demand: &ResourceDemand) -> f64 {
        let (cpu, seq, rand, writes) = self.demand_seconds_breakdown(demand);
        cpu + seq + rand + writes
    }

    /// Total simulated time to satisfy `demand` on this VM.
    pub fn demand_duration(&self, demand: &ResourceDemand) -> SimDuration {
        SimDuration::from_secs_f64(self.demand_seconds(demand))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Share;

    fn vm(cpu: f64, mem: f64, disk: f64) -> VirtualMachine {
        VirtualMachine::new(
            MachineSpec::paper_testbed(),
            ResourceVector::from_fractions(cpu, mem, disk).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn zero_share_is_rejected() {
        let r = ResourceVector::new(Share::ZERO, Share::HALF, Share::HALF);
        assert!(VirtualMachine::new(MachineSpec::paper_testbed(), r).is_err());
    }

    #[test]
    fn cpu_time_dilates_inversely_with_share() {
        let demand = ResourceDemand::cpu(5.6e9); // one second at full machine
        let full = vm(1.0, 0.5, 0.5);
        let half = vm(0.5, 0.5, 0.5);
        let quarter = vm(0.25, 0.5, 0.5);
        let t_full = full.demand_seconds(&demand);
        assert!((t_full - 1.0).abs() < 1e-9);
        assert!((half.demand_seconds(&demand) - 2.0 * t_full).abs() < 1e-9);
        assert!((quarter.demand_seconds(&demand) - 4.0 * t_full).abs() < 1e-9);
    }

    #[test]
    fn io_time_dilates_inversely_with_disk_share() {
        let demand = ResourceDemand {
            seq_page_reads: 1000,
            random_page_reads: 100,
            ..ResourceDemand::ZERO
        };
        let full = vm(0.5, 0.5, 1.0);
        let half = vm(0.5, 0.5, 0.5);
        assert!((half.demand_seconds(&demand) - 2.0 * full.demand_seconds(&demand)).abs() < 1e-9);
    }

    #[test]
    fn memory_share_scales_buffer_pool() {
        let quarter = vm(0.5, 0.25, 0.5);
        let half = vm(0.5, 0.5, 0.5);
        let three_quarters = vm(0.5, 0.75, 0.5);
        assert!(quarter.buffer_pool_pages() < half.buffer_pool_pages());
        assert!(half.buffer_pool_pages() < three_quarters.buffer_pool_pages());
        // 4 GiB * 0.5 share * 0.6 fraction / 8 KiB pages.
        let expect = (4.0 * 1024.0 * 1024.0 * 1024.0 * 0.5 * 0.6 / 8192.0) as usize;
        assert_eq!(half.buffer_pool_pages(), expect);
    }

    #[test]
    fn buffer_pool_has_floor() {
        let v = VirtualMachine::new(
            MachineSpec::tiny(),
            ResourceVector::from_fractions(0.5, 0.01, 0.5).unwrap(),
        )
        .unwrap();
        assert_eq!(v.buffer_pool_pages(), super::MIN_BUFFER_PAGES);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let demand = ResourceDemand {
            cpu_cycles: 1e9,
            seq_page_reads: 500,
            random_page_reads: 50,
            page_writes: 20,
        };
        let v = vm(0.3, 0.6, 0.7);
        let (c, s, r, w) = v.demand_seconds_breakdown(&demand);
        assert!((c + s + r + w - v.demand_seconds(&demand)).abs() < 1e-12);
        assert!(c > 0.0 && s > 0.0 && r > 0.0 && w > 0.0);
    }

    #[test]
    fn random_io_is_costlier_than_sequential() {
        let v = vm(0.5, 0.5, 0.5);
        let seq = ResourceDemand {
            seq_page_reads: 100,
            ..ResourceDemand::ZERO
        };
        let rand = ResourceDemand {
            random_page_reads: 100,
            ..ResourceDemand::ZERO
        };
        assert!(v.demand_seconds(&rand) > 10.0 * v.demand_seconds(&seq));
    }
}
