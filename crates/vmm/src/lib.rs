//! # dbvirt-vmm — virtual machine monitor simulator
//!
//! This crate is the machine-virtualization substrate for the `dbvirt`
//! workspace. The paper being reproduced (Soror, Aboulnaga, Salem:
//! *Database Virtualization: A New Frontier for Database Tuning and Physical
//! Design*, ICDE 2007) runs PostgreSQL inside Xen virtual machines and varies
//! the CPU and memory shares given to each VM. We do not have Xen or 2007
//! hardware, so this crate provides a deterministic simulator with the same
//! observable behaviour the paper relies on:
//!
//! * a [`MachineSpec`] describing the physical machine (cores, CPU speed,
//!   memory, disk sequential bandwidth and random IOPS);
//! * [`Share`]s, [`ResourceVector`]s and [`AllocationMatrix`]es encoding the
//!   paper's `r_ij` resource-fraction formulation, with its feasibility
//!   constraints (`r_ij >= 0`, `sum_i r_ij <= 1` per resource);
//! * a [`ResourceDemand`] accumulator that the database engine fills in while
//!   *actually executing* a query (CPU cycles, sequential/random page reads,
//!   page writes);
//! * a [`VirtualMachine`] that converts demand into simulated wall-clock time
//!   under a given share vector — CPU time dilates as `1/cpu_share`, disk
//!   time as `1/io_share`, and the memory share bounds the buffer pool; and
//! * a seeded [`FaultInjector`]/[`NoiseModel`] ([`fault`]) that perturbs
//!   measurements with per-resource jitter, heavy-tailed outlier spikes,
//!   transient failures and timeouts, so the calibration layer can be
//!   exercised under realistic VM measurement conditions; and
//! * a fluid-approximation credit scheduler ([`sched`]) that co-schedules
//!   several VMs on one machine, in capped or work-conserving mode, for the
//!   experiments where two workloads run concurrently (the paper's Figure 5).
//!   The production entry point ([`sched::co_schedule`]) is an incremental
//!   event-driven scheduler; a whole-fleet rescan baseline
//!   ([`sched::co_schedule_reference`]) is kept bit-identical to it for
//!   differential testing.
//!
//! Everything is deterministic: "measuring" an execution twice yields the
//! same [`SimDuration`], which is what makes optimizer calibration exactly
//! reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod demand;
mod error;
pub mod fault;
mod machine;
pub mod sched;
mod share;
mod vm;

pub use clock::{SimDuration, SimTime};
pub use demand::ResourceDemand;
pub use fault::{FaultInjector, NoiseModel, ProbeFault};
pub use error::VmmError;
pub use machine::MachineSpec;
pub use share::{AllocationMatrix, ResourceKind, ResourceVector, Share, RESOURCE_KINDS};
pub use vm::VirtualMachine;
