//! Simulated time.
//!
//! All "measurements" in the reproduction are simulated wall-clock readings.
//! Times are kept as integer microseconds so that simulation results are
//! exactly reproducible and hashable; conversions to floating-point seconds
//! are provided for reporting and for the calibration least-squares solver.

use crate::VmmError;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A span of simulated time, in integer microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from integer microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from (non-negative, finite) seconds, rounding to
    /// the nearest microsecond.
    ///
    /// # Panics
    /// Panics if `secs` is negative, NaN, or too large to represent. Use
    /// [`SimDuration::try_from_secs_f64`] when the value comes from
    /// untrusted input (e.g. externally supplied demands).
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration requires finite non-negative seconds, got {secs}"
        );
        let us = secs * 1e6;
        assert!(
            us <= u64::MAX as f64,
            "SimDuration overflow: {secs} seconds"
        );
        SimDuration(us.round() as u64)
    }

    /// Creates a duration from seconds, returning a typed error instead of
    /// panicking when `secs` is negative, NaN, infinite, or larger than the
    /// microsecond counter can hold.
    pub fn try_from_secs_f64(secs: f64) -> Result<SimDuration, VmmError> {
        if !(secs.is_finite() && secs >= 0.0) {
            return Err(VmmError::InvalidDuration { seconds: secs });
        }
        let us = secs * 1e6;
        if us > u64::MAX as f64 {
            return Err(VmmError::InvalidDuration { seconds: secs });
        }
        Ok(SimDuration(us.round() as u64))
    }

    /// The duration in integer microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// An instant on the simulated clock, as microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since the simulation epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the simulation epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Checked advance: `None` when the microsecond counter would overflow.
    pub const fn checked_add(self, rhs: SimDuration) -> Option<SimTime> {
        match self.0.checked_add(rhs.as_micros()) {
            Some(us) => Some(SimTime(us)),
            None => None,
        }
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is in the future"),
        )
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.as_micros())
                .expect("SimTime overflow"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_roundtrip_micros() {
        let d = SimDuration::from_micros(1_234_567);
        assert_eq!(d.as_micros(), 1_234_567);
        assert!((d.as_secs_f64() - 1.234_567).abs() < 1e-12);
    }

    #[test]
    fn duration_from_secs_rounds() {
        let d = SimDuration::from_secs_f64(0.000_001_4);
        assert_eq!(d.as_micros(), 1);
        let d = SimDuration::from_secs_f64(0.000_001_6);
        assert_eq!(d.as_micros(), 2);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn duration_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn try_from_secs_matches_the_panicking_constructor() {
        for secs in [0.0, 1e-6, 0.5, 1.0, 1234.567, 1e9] {
            assert_eq!(
                SimDuration::try_from_secs_f64(secs).unwrap(),
                SimDuration::from_secs_f64(secs)
            );
        }
    }

    #[test]
    fn try_from_secs_rejects_hostile_values_with_typed_errors() {
        for bad in [-1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1e290] {
            match SimDuration::try_from_secs_f64(bad) {
                Err(VmmError::InvalidDuration { seconds }) => {
                    assert!(seconds.is_nan() == bad.is_nan() && (bad.is_nan() || seconds == bad))
                }
                other => panic!("expected InvalidDuration for {bad}, got {other:?}"),
            }
        }
        // The largest representable duration is accepted; one order of
        // magnitude more is not.
        assert!(SimDuration::try_from_secs_f64(u64::MAX as f64 / 1e6 * 0.99).is_ok());
        assert!(SimDuration::try_from_secs_f64(u64::MAX as f64 / 1e6 * 10.0).is_err());
    }

    #[test]
    fn checked_add_saturates_to_none_on_overflow() {
        let late = SimTime::from_micros(u64::MAX - 10);
        assert!(late.checked_add(SimDuration::from_micros(10)).is_some());
        assert!(late.checked_add(SimDuration::from_micros(11)).is_none());
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_micros(10);
        let b = SimDuration::from_micros(3);
        assert_eq!((a + b).as_micros(), 13);
        assert_eq!((a - b).as_micros(), 7);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        let total: SimDuration = [a, b, b].into_iter().sum();
        assert_eq!(total.as_micros(), 16);
    }

    #[test]
    fn time_advances_and_measures() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_micros(500);
        let t2 = t + SimDuration::from_micros(250);
        assert_eq!(t2.duration_since(t).as_micros(), 250);
        assert_eq!(t2.as_micros(), 750);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_micros(12_000).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_micros(2_500_000).to_string(), "2.500s");
    }
}
