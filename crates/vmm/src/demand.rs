//! Resource demand accounting.
//!
//! While the database engine executes a query it does not consume real time;
//! instead it *accounts* for the physical work it performs into a
//! [`ResourceDemand`]: CPU cycles burned, pages read sequentially, pages read
//! at random, and pages written back. A [`crate::VirtualMachine`] then
//! converts a demand into simulated wall-clock time under its resource
//! shares. Keeping demand separate from time is what lets the same executed
//! query be "re-measured" under many different allocations.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Physical work performed by an execution, independent of any allocation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceDemand {
    /// CPU cycles consumed.
    pub cpu_cycles: f64,
    /// Pages read from disk with sequential access.
    pub seq_page_reads: u64,
    /// Pages read from disk with random access.
    pub random_page_reads: u64,
    /// Pages written back to disk (sequential writes, e.g. sort spills).
    pub page_writes: u64,
}

impl ResourceDemand {
    /// The empty demand.
    pub const ZERO: ResourceDemand = ResourceDemand {
        cpu_cycles: 0.0,
        seq_page_reads: 0,
        random_page_reads: 0,
        page_writes: 0,
    };

    /// A pure-CPU demand.
    pub fn cpu(cycles: f64) -> ResourceDemand {
        ResourceDemand {
            cpu_cycles: cycles,
            ..ResourceDemand::ZERO
        }
    }

    /// Records CPU work.
    pub fn add_cpu(&mut self, cycles: f64) {
        debug_assert!(cycles >= 0.0, "negative cpu demand");
        self.cpu_cycles += cycles;
    }

    /// Records sequential page reads.
    pub fn add_seq_reads(&mut self, pages: u64) {
        self.seq_page_reads += pages;
    }

    /// Records random page reads.
    pub fn add_random_reads(&mut self, pages: u64) {
        self.random_page_reads += pages;
    }

    /// Records page writes.
    pub fn add_writes(&mut self, pages: u64) {
        self.page_writes += pages;
    }

    /// Total pages transferred in either direction.
    pub fn total_pages(&self) -> u64 {
        self.seq_page_reads + self.random_page_reads + self.page_writes
    }

    /// True if no work at all was recorded.
    pub fn is_zero(&self) -> bool {
        self.cpu_cycles == 0.0 && self.total_pages() == 0
    }

    /// The work performed since an earlier snapshot of the same monotone
    /// accumulator (saturating, so a swapped argument order cannot panic).
    pub fn delta_since(&self, earlier: &ResourceDemand) -> ResourceDemand {
        ResourceDemand {
            cpu_cycles: (self.cpu_cycles - earlier.cpu_cycles).max(0.0),
            seq_page_reads: self.seq_page_reads.saturating_sub(earlier.seq_page_reads),
            random_page_reads: self
                .random_page_reads
                .saturating_sub(earlier.random_page_reads),
            page_writes: self.page_writes.saturating_sub(earlier.page_writes),
        }
    }

    /// Demand multiplied by a non-negative scalar (e.g. "`n` copies of this
    /// query" when composing workloads).
    pub fn scaled(&self, factor: f64) -> ResourceDemand {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        ResourceDemand {
            cpu_cycles: self.cpu_cycles * factor,
            seq_page_reads: (self.seq_page_reads as f64 * factor).round() as u64,
            random_page_reads: (self.random_page_reads as f64 * factor).round() as u64,
            page_writes: (self.page_writes as f64 * factor).round() as u64,
        }
    }
}

impl Add for ResourceDemand {
    type Output = ResourceDemand;
    fn add(self, rhs: ResourceDemand) -> ResourceDemand {
        ResourceDemand {
            cpu_cycles: self.cpu_cycles + rhs.cpu_cycles,
            seq_page_reads: self.seq_page_reads + rhs.seq_page_reads,
            random_page_reads: self.random_page_reads + rhs.random_page_reads,
            page_writes: self.page_writes + rhs.page_writes,
        }
    }
}

impl AddAssign for ResourceDemand {
    fn add_assign(&mut self, rhs: ResourceDemand) {
        *self = *self + rhs;
    }
}

impl Sum for ResourceDemand {
    fn sum<I: Iterator<Item = ResourceDemand>>(iter: I) -> ResourceDemand {
        iter.fold(ResourceDemand::ZERO, Add::add)
    }
}

impl fmt::Display for ResourceDemand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{cpu {:.2e} cyc, seq {} pg, rand {} pg, write {} pg}}",
            self.cpu_cycles, self.seq_page_reads, self.random_page_reads, self.page_writes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation() {
        let mut d = ResourceDemand::ZERO;
        assert!(d.is_zero());
        d.add_cpu(1000.0);
        d.add_seq_reads(5);
        d.add_random_reads(2);
        d.add_writes(1);
        assert_eq!(d.total_pages(), 8);
        assert!(!d.is_zero());
    }

    #[test]
    fn addition_and_sum() {
        let a = ResourceDemand {
            cpu_cycles: 10.0,
            seq_page_reads: 1,
            random_page_reads: 2,
            page_writes: 3,
        };
        let b = ResourceDemand::cpu(5.0);
        let c = a + b;
        assert_eq!(c.cpu_cycles, 15.0);
        assert_eq!(c.seq_page_reads, 1);
        let total: ResourceDemand = [a, b, c].into_iter().sum();
        assert_eq!(total.cpu_cycles, 30.0);
        assert_eq!(total.page_writes, 6);
    }

    #[test]
    fn scaling() {
        let d = ResourceDemand {
            cpu_cycles: 100.0,
            seq_page_reads: 10,
            random_page_reads: 4,
            page_writes: 2,
        };
        let s = d.scaled(3.0);
        assert_eq!(s.cpu_cycles, 300.0);
        assert_eq!(s.seq_page_reads, 30);
        assert_eq!(s.random_page_reads, 12);
        assert_eq!(s.page_writes, 6);
        assert!(d.scaled(0.0).is_zero());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn scaling_rejects_negative() {
        let _ = ResourceDemand::cpu(1.0).scaled(-1.0);
    }
}
